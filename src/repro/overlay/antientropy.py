"""Proactive anti-entropy reconciliation over replica chains.

PR 4's healing is query-driven: read-repair and ``stabilize()`` only fix
replicas a counting walk happens to traverse, so after amnesia, a
partition, or a crash-rejoin, untouched replicas stay divergent
indefinitely.  This module adds the background half of the paper's
soft-state story (section 3.3): every maintenance round, each node
exchanges *digest trees* with its replica-chain peers and OR-merges
whatever turns out to differ — independent of query traffic.

The digest tree is two levels of blake2b-128 over a node's register
state: one leaf per ``(metric, bit)`` slot, leaves grouped into
*segments* (one per stored DHS interval, via an injected ``segment_of``
mapping) whose digests roll up into a single node root.  A converged
pair exchanges two roots and stops — the steady-state bandwidth floor
is ``2 * SizeModel.digest_bytes`` per pair — and only mismatched
segments degrade to shipping their state as tuples.  On the ``"array"``
backend the leaf bytes come out of the register arena in one vectorized
row gather (:meth:`~repro.core.regstore.RegArena.rows_canonical`); the
packed backend encodes its Python-int bitmaps to the identical
canonical form, so digests are storage-layout independent.

Reconciliation between a node ``X`` and a chain peer ``S`` is two
asymmetric directions, chosen so repeated rounds converge without
flooding copies around the ring:

* **push** — ``X`` offers the bits it is *primary* for (live bits none
  of its ``R`` live predecessors hold, the same primacy rule
  ``stabilize`` uses), and ``S`` OR-merges what it misses.  This keeps
  every replica chain at its configured depth.
* **homecoming** — ``S`` returns the bits for which ``X`` is *visible*
  to the counting walk (in-interval, per the injected predicate) while
  ``S`` itself is not.  This is how an amnesiac rejoiner pulls its
  spilled state back home, and how bits stranded behind a partition
  reach a reachable in-interval holder.

Layering note: this module sits in the overlay and must not import the
core DHS machinery, so slots are duck-typed (:class:`RegisterSlot`) and
the interval geometry (``segment_of``, ``visible``) plus the store
writer arrive as callables injected by
:func:`repro.core.maintenance.antientropy_sweep`.  Digest computation
over arenas is confined *here* by dhslint rule DHS1001 — the mirror of
DHS901's shared-memory confinement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    cast,
)

from repro.obs import runtime as obs
from repro.overlay.dht import DHTProtocol
from repro.overlay.messages import DEFAULT_SIZE_MODEL, SizeModel
from repro.overlay.node import Node
from repro.overlay.replication import live_predecessors, replica_chain
from repro.overlay.stats import OpCost

__all__ = [
    "AntiEntropyStats",
    "DigestTree",
    "RegisterSlot",
    "antientropy_round",
    "reconcile_pair",
    "store_digest",
    "sync_stores",
    "view_digest",
]

#: blake2b output size for every digest in the tree (= SizeModel.digest_bytes).
_DIGEST_SIZE = 16


class RegisterSlot(Protocol):
    """Duck type of a DHS register slot (``PackedSlot`` / ``RegSlot``).

    The overlay never imports the core slot classes (layering); it only
    relies on this surface, which both backends provide.
    """

    mask: int
    expiring: Optional[Dict[int, float]]

    def live_mask(self, now: int) -> int: ...


#: A DHS store key: ``(metric, bit)``.
SlotKey = Tuple[Hashable, int]
#: Injected store writer: ``write_fn(node, metric, vector, bit, expiry)``.
WriteFn = Callable[[Node, Hashable, int, int, Optional[int]], None]
#: Injected walk-visibility predicate: ``visible(bit, node_id)``.
VisibleFn = Callable[[int, int], bool]
#: Injected interval geometry: ``segment_of(bit) -> segment index``.
SegmentFn = Callable[[int], int]


@dataclass(frozen=True)
class DigestTree:
    """A node root plus its per-segment digests."""

    root: bytes
    segments: Dict[int, bytes]


@dataclass
class AntiEntropyStats:
    """What one reconciliation round (or pair) did, and what it cost."""

    cost: OpCost = field(default_factory=OpCost)
    pairs: int = 0
    pairs_converged: int = 0
    segments_checked: int = 0
    segments_mismatched: int = 0
    entries_sent: int = 0
    entries_written: int = 0

    def merge(self, other: "AntiEntropyStats") -> None:
        """Fold another stats block into this one."""
        self.cost.add(other.cost)
        self.pairs += other.pairs
        self.pairs_converged += other.pairs_converged
        self.segments_checked += other.segments_checked
        self.segments_mismatched += other.segments_mismatched
        self.entries_sent += other.entries_sent
        self.entries_written += other.entries_written


def _dhs_slots(node: Node) -> Iterator[Tuple[SlotKey, RegisterSlot]]:
    """The node's DHS register slots (other applications' values skipped)."""
    for key, value in node.store.items():
        if (
            isinstance(key, tuple)
            and len(key) == 2
            and isinstance(key[1], int)
            and hasattr(value, "live_mask")
        ):
            yield cast(SlotKey, key), cast(RegisterSlot, value)


def _canonical(mask: int) -> bytes:
    """Canonical bitmap bytes: little-endian, no trailing zeros.

    Matches :meth:`repro.core.regstore.RegArena.rows_canonical` exactly,
    which is what makes digests backend-independent.
    """
    return mask.to_bytes((mask.bit_length() + 7) // 8, "little")


def _leaf(
    key: SlotKey, mask_bytes: bytes, ttl_items: Sequence[Tuple[int, float]]
) -> Tuple[bytes, bytes]:
    """One slot's ``(sort key, digest)`` leaf."""
    key_repr = repr(key).encode()
    digest = blake2b(key_repr, digest_size=_DIGEST_SIZE)
    digest.update(b"\x00")
    digest.update(mask_bytes)
    for vector, expiry in ttl_items:
        digest.update(f"|{vector}:{expiry!r}".encode())
    return key_repr, digest.digest()


def _rollup(leaves: Dict[int, List[Tuple[bytes, bytes]]]) -> DigestTree:
    """Per-segment digests and the node root over sorted leaves."""
    segments: Dict[int, bytes] = {}
    for segment, pairs in leaves.items():
        digest = blake2b(digest_size=_DIGEST_SIZE)
        for key_repr, leaf in sorted(pairs):
            digest.update(key_repr)
            digest.update(leaf)
        segments[segment] = digest.digest()
    root = blake2b(digest_size=_DIGEST_SIZE)
    for segment in sorted(segments):
        root.update(segment.to_bytes(4, "little", signed=True))
        root.update(segments[segment])
    return DigestTree(root.digest(), segments)


def _live_ttl_items(slot: RegisterSlot, now: int) -> Tuple[Tuple[int, float], ...]:
    """The slot's live TTL'd ``(vector, expiry)`` pairs, sorted."""
    expiring = slot.expiring
    if not expiring:
        return ()
    return tuple(sorted((v, e) for v, e in expiring.items() if e >= now))


def store_digest(node: Node, now: int, segment_of: SegmentFn) -> DigestTree:
    """Digest tree over ``node``'s full live register state.

    Two stores hold bit-identical live state iff their roots agree.
    Arena-backed TTL-free slots take the vectorized path: their rows are
    gathered out of the register matrix in one fancy-index slice per
    arena instead of round-tripping each bitmap through a Python int.
    """
    leaves: Dict[int, List[Tuple[bytes, bytes]]] = {}
    arena_groups: Dict[int, Tuple[object, List[int], List[Tuple[int, SlotKey]]]] = {}
    for key, slot in _dhs_slots(node):
        segment = segment_of(key[1])
        arena = getattr(slot, "arena", None)
        if arena is not None and not slot.expiring:
            group = arena_groups.setdefault(id(arena), (arena, [], []))
            group[1].append(cast(int, getattr(slot, "row")))
            group[2].append((segment, key))
            continue
        ttl_items = _live_ttl_items(slot, now)
        leaves.setdefault(segment, []).append(
            _leaf(key, _canonical(slot.mask), ttl_items)
        )
    for arena, rows, metas in arena_groups.values():
        row_bytes = cast(
            List[bytes], getattr(arena, "rows_canonical")(rows)
        )
        for mask_bytes, (segment, key) in zip(row_bytes, metas):
            leaves.setdefault(segment, []).append(_leaf(key, mask_bytes, ()))
    return _rollup(leaves)


def view_digest(view: Mapping[SlotKey, int], segment_of: SegmentFn) -> DigestTree:
    """Digest tree over a plain ``{key: bitmap}`` view (protocol messages)."""
    leaves: Dict[int, List[Tuple[bytes, bytes]]] = {}
    for key, mask in view.items():
        leaves.setdefault(segment_of(key[1]), []).append(
            _leaf(key, _canonical(mask), ())
        )
    return _rollup(leaves)


def _bits(mask: int) -> List[int]:
    """Set-bit positions, ascending (local copy — no core import here)."""
    out: List[int] = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


def _entry_expiry(slot: RegisterSlot, vector: int) -> Optional[int]:
    """Replication expiry for one live vector: ``None`` if immortal."""
    if (slot.mask >> vector) & 1:
        return None
    expiring = slot.expiring or {}
    return int(expiring[vector])


#: A sync view: per slot key, the bitmap on offer plus the source slot
#: (consulted for per-vector expiries when bits are actually shipped).
_View = Dict[SlotKey, Tuple[int, RegisterSlot]]


def _sync_direction(
    dht: DHTProtocol,
    dst_id: int,
    view: _View,
    now: int,
    *,
    model: SizeModel,
    segment_of: SegmentFn,
    write_fn: WriteFn,
    stats: AntiEntropyStats,
) -> bool:
    """One half of a reconciliation: offer ``view`` to ``dst_id``.

    Root digests are exchanged unconditionally (the bandwidth floor);
    on mismatch both sides ship per-segment digest lists, and only the
    mismatched segments degrade to tuple summaries which ``dst``
    OR-merges.  Returns whether the pair was already converged.
    """
    cost = stats.cost
    cost.messages += 2
    cost.hops += 2
    cost.bytes += 2 * model.digest_bytes
    dst = dht.node(dst_id)
    src_tree = view_digest({key: mask for key, (mask, _) in view.items()}, segment_of)
    dst_masks: Dict[SlotKey, int] = {}
    for key, (mask, _) in view.items():
        other = dst.store.get(key)
        have = (
            cast(RegisterSlot, other).live_mask(now)
            if hasattr(other, "live_mask")
            else 0
        )
        dst_masks[key] = have & mask
    dst_tree = view_digest(dst_masks, segment_of)
    if src_tree.root == dst_tree.root:
        return True
    segments = sorted(src_tree.segments)
    stats.segments_checked += len(segments)
    cost.messages += 2
    cost.hops += 2
    cost.bytes += 2 * len(segments) * model.digest_bytes
    mismatched = {
        segment
        for segment in segments
        if src_tree.segments[segment] != dst_tree.segments.get(segment)
    }
    stats.segments_mismatched += len(mismatched)
    shipped_slots = 0
    shipped_entries = 0
    for key, (mask, slot) in view.items():
        if segment_of(key[1]) not in mismatched:
            continue
        shipped_slots += 1
        shipped_entries += mask.bit_count()
        metric, bit = key
        for vector in _bits(mask & ~dst_masks[key]):
            write_fn(dst, metric, vector, bit, _entry_expiry(slot, vector))
            stats.entries_written += 1
            cost.repair_writes += 1
    stats.entries_sent += shipped_entries
    cost.messages += 1
    cost.hops += 1
    cost.bytes += model.summary_bytes(shipped_slots, shipped_entries)
    dht.load.record(dst_id)
    return False


def _primary_view(
    dht: DHTProtocol, node_id: int, now: int, degree: int
) -> _View:
    """Live bits ``node_id`` is primary for (none of its preds hold them).

    Predecessors are consulted through the current fault state: a
    partitioned predecessor cannot answer, so its bits count as absent
    and the node steps up as primary for them — which is exactly what
    lets anti-entropy re-cover a chain *during* an outage.
    """
    node = dht.node(node_id)
    preds = [
        dht.node(p)
        for p in live_predecessors(dht, node_id, degree, responsive_only=True)
    ]
    view: _View = {}
    for key, slot in _dhs_slots(node):
        live = slot.live_mask(now)
        if not live:
            continue
        pred_mask = 0
        for pred in preds:
            other = pred.store.get(key)
            if hasattr(other, "live_mask"):
                pred_mask |= cast(RegisterSlot, other).live_mask(now)
        primary = live & ~pred_mask
        if primary:
            view[key] = (primary, slot)
    return view


def _homecoming_view(
    dht: DHTProtocol, holder_id: int, home_id: int, now: int, visible: VisibleFn
) -> _View:
    """Bits at ``holder_id`` whose interval sees ``home_id`` but not the holder."""
    holder = dht.node(holder_id)
    view: _View = {}
    for key, slot in _dhs_slots(holder):
        bit = key[1]
        if not visible(bit, home_id) or visible(bit, holder_id):
            continue
        live = slot.live_mask(now)
        if live:
            view[key] = (live, slot)
    return view


def reconcile_pair(
    dht: DHTProtocol,
    left_id: int,
    right_id: int,
    now: int,
    *,
    degree: int,
    model: SizeModel,
    visible: VisibleFn,
    segment_of: SegmentFn,
    write_fn: WriteFn,
    stats: Optional[AntiEntropyStats] = None,
) -> AntiEntropyStats:
    """Reconcile one replica-chain pair: primary push + homecoming pull."""
    if stats is None:
        stats = AntiEntropyStats()
    stats.pairs += 1

    def _run() -> None:
        assert stats is not None
        push = _primary_view(dht, left_id, now, degree)
        converged = _sync_direction(
            dht, right_id, push, now,
            model=model, segment_of=segment_of, write_fn=write_fn, stats=stats,
        )
        home = _homecoming_view(dht, right_id, left_id, now, visible)
        converged &= _sync_direction(
            dht, left_id, home, now,
            model=model, segment_of=segment_of, write_fn=write_fn, stats=stats,
        )
        if converged:
            stats.pairs_converged += 1

    if obs.TRACING:
        with obs.TRACER.span(
            "dhs.antientropy.reconcile", tick=now, left=left_id, right=right_id
        ):
            _run()
    else:
        _run()
    return stats


def sync_stores(
    dht: DHTProtocol,
    left_id: int,
    right_id: int,
    now: int,
    *,
    model: SizeModel = DEFAULT_SIZE_MODEL,
    segment_of: SegmentFn,
    write_fn: WriteFn,
    stats: Optional[AntiEntropyStats] = None,
) -> AntiEntropyStats:
    """Full bidirectional sync: both stores end at the OR of their live state.

    The degenerate (chain-oblivious) exchange — used by tests to prove
    convergence properties and available as a forced whole-store repair.
    """
    if stats is None:
        stats = AntiEntropyStats()
    stats.pairs += 1

    def _full_view(node_id: int) -> _View:
        view: _View = {}
        for key, slot in _dhs_slots(dht.node(node_id)):
            live = slot.live_mask(now)
            if live:
                view[key] = (live, slot)
        return view

    converged = _sync_direction(
        dht, right_id, _full_view(left_id), now,
        model=model, segment_of=segment_of, write_fn=write_fn, stats=stats,
    )
    converged &= _sync_direction(
        dht, left_id, _full_view(right_id), now,
        model=model, segment_of=segment_of, write_fn=write_fn, stats=stats,
    )
    if converged:
        stats.pairs_converged += 1
    return stats


def antientropy_round(
    dht: DHTProtocol,
    replication: int,
    now: int,
    *,
    model: Optional[SizeModel] = None,
    visible: VisibleFn,
    segment_of: SegmentFn,
    write_fn: WriteFn,
    rng: Optional[random.Random] = None,
    sample: Optional[int] = None,
) -> AntiEntropyStats:
    """One reconciliation round over every responsive node's replica chain.

    Each responsive node reconciles with its ``max(1, replication)``
    responsive chain successors.  ``sample`` (with a seeded ``rng``)
    limits the round to a deterministic subset of initiators — the
    scheduler's knob for spreading repair load over several ticks.
    """
    size_model = model if model is not None else DEFAULT_SIZE_MODEL
    stats = AntiEntropyStats()
    ids: List[int] = list(dht.responsive_node_ids())
    if sample is not None and rng is not None and 0 < sample < len(ids):
        ids = sorted(rng.sample(ids, sample))
    degree = max(1, replication)

    def _run() -> None:
        for left_id in ids:
            for right_id in replica_chain(dht, left_id, degree, responsive_only=True):
                reconcile_pair(
                    dht, left_id, right_id, now,
                    degree=degree, model=size_model, visible=visible,
                    segment_of=segment_of, write_fn=write_fn, stats=stats,
                )

    if obs.TRACING:
        with obs.TRACER.span(
            "dhs.antientropy.round", tick=now, initiators=len(ids)
        ):
            _run()
    else:
        _run()
    if obs.METERING:
        obs.METRICS.inc("dhs.antientropy.pairs", stats.pairs)
        obs.METRICS.inc("dhs.antientropy.repair_writes", stats.entries_written)
        obs.METRICS.inc("dhs.antientropy.bytes", stats.cost.bytes)
        obs.METRICS.observe(
            "dhs.antientropy.segments_mismatched", stats.segments_mismatched
        )
    return stats
