"""Simulated Kademlia overlay (Maymounkov & Mazières, IPTPS 2002).

Included to substantiate the paper's DHT-agnosticism claim: DHS runs
unchanged over this XOR-metric geometry.  A key is owned by the node
whose id minimizes ``id XOR key``; routing greedily fixes the most
significant differing bit via a bucket contact, giving the expected
``O(log N)`` hop counts (slightly above Chord's ``~0.5 log2 N`` since
bucket contacts are random subtree members rather than exact successors).

The ring-neighbour walk DHS's retry phase needs (``successor_id`` /
``predecessor_id``) uses numeric adjacency — the standard extension
Kademlia deployments add for range support — and is inherited from
:class:`~repro.overlay.dht.DHTProtocol`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.errors import ConfigurationError, EmptyOverlayError
from repro.obs import runtime as obs
from repro.overlay.dht import DHTProtocol, LookupResult
from repro.overlay.idspace import IdSpace
from repro.overlay.node import Node
from repro.overlay.stats import OpCost
from repro.sim.seeds import rng_for

__all__ = ["KademliaOverlay"]


class KademliaOverlay(DHTProtocol):
    """An N-node Kademlia-style overlay over an ``L``-bit id space."""

    def __init__(self, space: IdSpace, seed: int = 0) -> None:
        super().__init__(space)
        self._seed = seed
        self._contact_cache: Dict[Tuple[int, int], Optional[int]] = {}

    @classmethod
    def build(cls, n_nodes: int, bits: int = 64, seed: int = 0) -> "KademliaOverlay":
        """Create an overlay of ``n_nodes`` with pseudo-random ids."""
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        space = IdSpace(bits)
        if n_nodes > space.size:
            raise ConfigurationError(
                f"cannot place {n_nodes} nodes in a {bits}-bit id space"
            )
        overlay = cls(space, seed=seed)
        # Keep the id stream byte-identical to the seed behaviour; only
        # the insertion switched to one vectorized bulk merge.
        rng = rng_for(seed, "kademlia-ids")
        seen: set[int] = set()
        while len(seen) < n_nodes:
            candidate = rng.randrange(space.size)
            if candidate not in seen:
                seen.add(candidate)
        overlay.add_nodes_bulk(seen)
        return overlay

    @classmethod
    def from_ids(cls, node_ids: Iterable[int], bits: int = 64, seed: int = 0) -> "KademliaOverlay":
        """Create an overlay from explicit node ids."""
        overlay = cls(IdSpace(bits), seed=seed)
        overlay.add_nodes_bulk(node_ids)
        if overlay.size == 0:
            raise ConfigurationError("from_ids needs at least one node id")
        return overlay

    # ------------------------------------------------------------------
    # Membership (invalidate bucket contacts on churn).
    # ------------------------------------------------------------------
    def add_node(self, node_id: int) -> Node:
        self._contact_cache.clear()
        return super().add_node(node_id)

    def remove_node(self, node_id: int, graceful: bool = True) -> None:
        self._contact_cache.clear()
        super().remove_node(node_id, graceful=graceful)

    def _on_bulk_join(self) -> None:
        self._contact_cache.clear()

    # ------------------------------------------------------------------
    # Geometry.
    # ------------------------------------------------------------------
    def owner_of(self, key: int) -> int:
        """The live node minimizing ``id XOR key``.

        Uses the fact that nodes sharing a bit prefix form a contiguous
        run of the sorted id list, descending one bit per step.
        """
        if not self._ids:
            raise EmptyOverlayError("overlay has no live nodes")
        key = self.space.wrap(key)
        lo, hi = 0, len(self._ids)
        prefix = 0
        for b in range(self.space.bits - 1, -1, -1):
            if hi - lo == 1:
                break
            mid = self._ids.bisect_left(prefix | (1 << b), lo, hi)
            if (key >> b) & 1:
                if mid < hi:
                    lo, prefix = mid, prefix | (1 << b)
                else:
                    hi = mid
            else:
                if mid > lo:
                    hi = mid
                else:
                    lo, prefix = mid, prefix | (1 << b)
        return self._ids[lo]

    def _bucket_range(self, node_id: int, i: int) -> Tuple[int, int]:
        """Sorted-list index range of bucket ``i``'s sibling subtree."""
        base = ((node_id >> i) ^ 1) << i
        lo = self._ids.bisect_left(base)
        hi = self._ids.bisect_left(base + (1 << i))
        return lo, hi

    def bucket_contact(self, node_id: int, i: int) -> Optional[int]:
        """The (cached, pseudo-random) contact in bucket ``i`` of a node.

        Bucket ``i`` holds nodes at XOR distance in ``[2^i, 2^(i+1))`` —
        the subtree that agrees with ``node_id`` above bit ``i`` and
        differs at bit ``i``.  Returns ``None`` when the subtree is empty.
        """
        cache_key = (node_id, i)
        if cache_key in self._contact_cache:
            return self._contact_cache[cache_key]
        lo, hi = self._bucket_range(node_id, i)
        if lo >= hi:
            contact: Optional[int] = None
        else:
            rng = rng_for(self._seed, "kademlia-bucket", node_id, i)
            contact = self._ids[rng.randrange(lo, hi)]
        self._contact_cache[cache_key] = contact
        return contact

    def lookup(self, key: int, origin: Optional[int] = None) -> LookupResult:
        """Greedy XOR routing from ``origin`` to the owner of ``key``."""
        if not self._ids:
            raise EmptyOverlayError("overlay has no live nodes")
        key = self.space.wrap(key)
        if origin is None:
            origin = self._ids[0]
        current = origin
        cost = OpCost(nodes_visited=[origin], lookups=1)
        self.load.record(origin)
        destination = self.owner_of(key)
        #: Greedy-routing goal: the key itself, unless a vetoed-eviction
        #: fallback re-pins the destination to a nearby responsive node —
        #: routing then converges on that node's own id.
        target = key
        while True:
            if not self.node_responsive(destination):
                cost.hops += 1
                cost.messages += 1
                cost.timeouts += 1
                self.timeout_repair(destination)
                if self.has_node(destination):
                    # Eviction vetoed (transient outage): settle on the
                    # first responsive ring neighbour and route to it.
                    destination = self._next_responsive(destination, cost)
                    target = destination
                else:
                    destination = self.owner_of(key)
                continue
            if current == destination:
                break
            i = (current ^ target).bit_length() - 1
            contact = self.bucket_contact(current, i)
            if contact is None:
                # No node shares target's bit i in this subtree, yet the
                # destination is closer than current — impossible unless
                # the owner is current's numeric twin; fall back directly.
                contact = destination
            if not self.node_responsive(contact):
                cost.hops += 1
                cost.messages += 1
                cost.timeouts += 1
                self.timeout_repair(contact)
                if self.has_node(contact):
                    # Eviction vetoed: skip the cached contact and hop
                    # straight to the (responsive) destination.
                    current = destination
                    cost.hops += 1
                    cost.messages += 1
                    cost.nodes_visited.append(current)
                    self.load.record(current)
                continue
            current = contact
            cost.hops += 1
            cost.messages += 1
            cost.nodes_visited.append(current)
            self.load.record(current)
            if cost.hops > 4 * self.space.bits:
                raise RuntimeError("XOR routing failed to converge")
        if obs.METERING:
            obs.METRICS.observe("dhs.lookup.hops", cost.hops)
        return LookupResult(node_id=destination, cost=cost)
