"""Deterministic, logical-clock-scripted fault injection.

The paper's fault model (§3.5, §4.1) is richer than crash-stop: nodes
fail *undetected* with probability ``p_f``, lookups discover corpses on
contact and pay timeout hops, and replication degree ``R`` drives the
probability of losing a stored bit to ``p_f^R``.  This module scripts
those scenarios — plus the classic systems failure modes the paper's
analysis abstracts over — against any :class:`~repro.overlay.dht.DHTProtocol`:

``lazy_crash``
    Today's ``mark_failed``: the node dies silently, stays in everyone's
    routing state, and is discovered (and evicted) on contact.
``crash``
    Eager crash-stop: the node leaves the membership immediately, data
    lost (``fail_node``).
``amnesia``
    Crash-with-amnesia rejoin: the node lazily crashes at ``at`` and
    returns ``duration`` ticks later with an *empty* store — the
    soft-state refresh / repair machinery has to repopulate it.
``transient``
    The node is unreachable for ``duration`` ticks and then answers
    again with its store intact.  Routing pays timeout hops but must
    *not* evict it permanently.
``partition``
    A set of nodes becomes unreachable together for ``duration`` ticks.
    Modelled as group transient unresponsiveness — the observer is
    always on the majority side (a deliberate simplification, see
    docs/ROBUSTNESS.md).

Everything is scheduled on a *logical clock* (``advance_to`` / ``tick``)
and every random choice — victim sampling, per-message drops — flows
through :func:`~repro.sim.seeds.rng_for` label paths, so a faulty run is
bit-identical at any ``DHS_JOBS`` parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError, MessageDropped
from repro.obs import runtime as obs
from repro.overlay.dht import DHTProtocol, FaultHooks, LookupResult
from repro.overlay.node import Node
from repro.overlay.stats import OpCost
from repro.sim.seeds import rng_for

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultPlan", "FaultInjector"]

#: The scripted fault kinds (see the module docstring).
FAULT_KINDS = ("lazy_crash", "crash", "amnesia", "transient", "partition")

#: Kinds whose effect ends after ``duration`` ticks.
_TIMED_KINDS = frozenset({"amnesia", "transient", "partition"})


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault, applied when the logical clock reaches ``at``.

    Victims are either explicit (``node_ids``) or sampled from the live
    membership at apply time (``fraction`` of it, at least one node)
    using a seed derived from the event's position in the plan.
    """

    kind: str
    at: int
    node_ids: Tuple[int, ...] = ()
    fraction: float = 0.0
    duration: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.at < 0:
            raise ConfigurationError(f"fault time must be >= 0, got {self.at}")
        if bool(self.node_ids) == (self.fraction > 0.0):
            raise ConfigurationError(
                "exactly one of node_ids / fraction must select the victims"
            )
        if not 0.0 <= self.fraction < 1.0:
            raise ConfigurationError(
                f"fraction must be in [0, 1), got {self.fraction}"
            )
        if self.kind in _TIMED_KINDS and self.duration <= 0:
            raise ConfigurationError(
                f"{self.kind} faults need a positive duration"
            )
        if self.kind not in _TIMED_KINDS and self.duration != 0:
            raise ConfigurationError(
                f"{self.kind} faults are permanent; duration must be 0"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A full fault script: scheduled events plus an ambient drop rate.

    ``drop_probability`` loses each routed message (lookup / store /
    probe) independently with that probability, from logical tick
    ``drop_from`` onwards — keeping population (tick 0) lossless while
    the counting phase is lossy is the common experiment shape.

    The default-constructed plan is empty and guaranteed side-effect
    free: no RNG stream is even created, so wrapping a ring in an
    injector with an empty plan leaves every run bit-identical to the
    bare ring.
    """

    drop_probability: float = 0.0
    drop_from: int = 0
    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability < 1.0:
            raise ConfigurationError(
                f"drop_probability must be in [0, 1), got {self.drop_probability}"
            )
        if self.drop_from < 0:
            raise ConfigurationError(
                f"drop_from must be >= 0, got {self.drop_from}"
            )

    @classmethod
    def empty(cls) -> "FaultPlan":
        """The no-fault plan (bit-identical passthrough)."""
        return cls()

    @property
    def is_empty(self) -> bool:
        """Whether this plan can never perturb an operation."""
        return self.drop_probability == 0.0 and not self.events


class FaultInjector(DHTProtocol, FaultHooks):
    """Wrap a DHT, injecting the faults scripted by a :class:`FaultPlan`.

    The injector *is* a :class:`DHTProtocol`: DHS cores and experiment
    drivers use it wherever they would use the bare overlay.  Membership
    state (``_nodes`` / ``_ids`` / load tracker) is shared with the
    wrapped overlay by reference and every membership mutation is
    delegated to it, so geometry-specific caches (Chord's memoized
    fingers) stay correct.  The injector also installs itself as the
    overlay's ``fault_layer``, which is how routing learns about
    transient unresponsiveness and why timed-out transient nodes are
    not permanently evicted.
    """

    def __init__(self, inner: DHTProtocol, plan: FaultPlan, seed: int = 0) -> None:
        if inner.fault_layer is not None:
            raise ConfigurationError("overlay already has a fault layer installed")
        self.inner = inner
        merge = inner.store_merge
        super().__init__(inner.space, trace=inner.trace)
        # Share membership and accounting with the wrapped overlay.
        self._nodes = inner._nodes
        self._ids = inner._ids
        self.load = inner.load
        self.store_merge = merge
        self.plan = plan
        self.seed = seed
        #: Logical clock; advanced explicitly by the experiment driver.
        self.clock = 0
        #: Messages lost to ``drop_probability`` so far.
        self.dropped_messages = 0
        #: node id -> tick at which it answers again (transient faults).
        self._down_until: Dict[int, int] = {}
        #: rejoin tick -> amnesiac node ids returning (empty) then.
        self._rejoins: Dict[int, List[int]] = {}
        self._events: Tuple[FaultEvent, ...] = tuple(
            sorted(plan.events, key=lambda e: e.at)
        )
        self._next_event = 0
        # Created only when drops can happen: an empty plan must not
        # even allocate an RNG stream (bit-identity with the bare ring).
        self._drop_rng = (
            rng_for(seed, "faults", "drops")
            if plan.drop_probability > 0.0
            else None
        )
        inner.fault_layer = self
        self.fault_layer = self
        self.advance_to(0)

    # ------------------------------------------------------------------
    # Logical clock.
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Advance the logical clock by one tick."""
        self.advance_to(self.clock + 1)

    def advance_to(self, now: int) -> None:
        """Advance the clock to ``now``, applying every due fault/rejoin.

        Same-tick ordering is fixed (rejoins before new events) so plans
        replay identically regardless of how the driver batches time.
        """
        if now < self.clock:
            raise ConfigurationError(
                f"logical clock cannot run backwards ({self.clock} -> {now})"
            )
        events = self._events
        while True:
            rejoin_t = min(self._rejoins) if self._rejoins else None
            event_t = (
                events[self._next_event].at
                if self._next_event < len(events)
                else None
            )
            due = [t for t in (rejoin_t, event_t) if t is not None and t <= now]
            if not due:
                break
            t = min(due)
            self.clock = t
            if rejoin_t == t:
                for node_id in self._rejoins.pop(t):
                    self._rejoin(node_id)
            while self._next_event < len(events) and events[self._next_event].at == t:
                self._apply_event(self._next_event)
                self._next_event += 1
        self.clock = now

    def _victims(self, index: int) -> List[int]:
        event = self._events[index]
        if event.node_ids:
            return [self.space.wrap(n) for n in event.node_ids]
        pool = [node_id for node_id in self._ids if self.is_alive(node_id)]
        if not pool:
            return []
        k = min(len(pool), max(1, round(event.fraction * len(pool))))
        rng = rng_for(self.seed, "faults", "victims", index)
        return sorted(rng.sample(pool, k))

    def _apply_event(self, index: int) -> None:
        event = self._events[index]
        victims = self._victims(index)
        if obs.TRACING:
            obs.TRACER.event(
                f"fault.{event.kind}",
                tick=event.at,
                victims=len(victims),
                duration=event.duration,
            )
        if obs.METERING:
            obs.METRICS.inc("dhs.faults.events")
            obs.METRICS.inc("dhs.faults.victims", len(victims))
        if event.kind == "crash":
            for node_id in victims:
                if self.has_node(node_id):
                    self.inner.fail_node(node_id)
        elif event.kind == "lazy_crash":
            for node_id in victims:
                if self.has_node(node_id):
                    self.inner.mark_failed(node_id)
        elif event.kind == "amnesia":
            back_at = event.at + event.duration
            for node_id in victims:
                if self.has_node(node_id):
                    self.inner.mark_failed(node_id)
                    self._rejoins.setdefault(back_at, []).append(node_id)
        else:  # transient / partition: unreachable, store intact.
            until = event.at + event.duration
            for node_id in victims:
                self._down_until[node_id] = max(
                    self._down_until.get(node_id, 0), until
                )

    def _rejoin(self, node_id: int) -> None:
        """An amnesiac node returns with an empty store."""
        if obs.TRACING:
            obs.TRACER.event("fault.rejoin", tick=self.clock, node=node_id)
        if self.has_node(node_id):
            # ``node()`` materializes on demand: an amnesia victim was
            # marked failed (hence materialized), but be robust anyway.
            node = self.node(node_id)
            node.store.clear()
            # The store is gone, so the incremental entry count must
            # follow — otherwise storage_entries reports phantom load
            # until something forces a rescan.
            node.app_entries = 0
            node.app_entries_stale = False
            node.alive = True
        else:
            # Evicted while down (a lookup discovered the corpse):
            # rejoin as a brand-new empty member.
            self.inner.add_node(node_id)

    # ------------------------------------------------------------------
    # FaultHooks (consulted by the wrapped overlay while routing).
    # ------------------------------------------------------------------
    def responsive(self, node_id: int) -> bool:
        return self._down_until.get(node_id, 0) <= self.clock

    def veto_eviction(self, node_id: int) -> bool:
        return self._down_until.get(node_id, 0) > self.clock

    # ------------------------------------------------------------------
    # Message drops.
    # ------------------------------------------------------------------
    def _maybe_drop(self, operation: str) -> None:
        rng = self._drop_rng
        if rng is None or self.clock < self.plan.drop_from:
            return
        if rng.random() < self.plan.drop_probability:
            self.dropped_messages += 1
            if obs.METERING:
                obs.METRICS.inc("dhs.faults.dropped_messages")
            if obs.TRACING:
                obs.TRACER.event("msg.dropped_by_fault", tick=self.clock, op=operation)
            raise MessageDropped(operation)

    # ------------------------------------------------------------------
    # DHTProtocol surface (delegated; membership mutations go through
    # the wrapped overlay so its cache hooks fire).
    # ------------------------------------------------------------------
    def owner_of(self, key: int) -> int:
        return self.inner.owner_of(key)

    def lookup(self, key: int, origin: Optional[int] = None) -> LookupResult:
        self._maybe_drop("lookup")
        return self.inner.lookup(key, origin=origin)

    def store(
        self,
        key: int,
        write: Callable[[Node], None],
        origin: Optional[int] = None,
        payload_bytes: int = 8,
    ) -> Tuple[int, OpCost]:
        self._maybe_drop("store")
        return self.inner.store(
            key, write, origin=origin, payload_bytes=payload_bytes
        )

    def probe(self, node_id: int, read: Callable[[Node], Any]) -> Any:
        self._maybe_drop("probe")
        return self.inner.probe(node_id, read)

    def add_node(self, node_id: int) -> Node:
        return self.inner.add_node(node_id)

    def add_nodes_bulk(self, node_ids: Iterable[int]) -> None:
        self.inner.add_nodes_bulk(node_ids)

    def remove_node(self, node_id: int, graceful: bool = True) -> None:
        # A caller may have set ``store_merge`` on the injector; the
        # graceful-leave merge runs inside the wrapped overlay.
        self.inner.store_merge = self.store_merge
        self.inner.remove_node(node_id, graceful=graceful)

    def mark_failed(self, node_id: int) -> None:
        self.inner.mark_failed(node_id)

    def repair(self, node_id: int) -> None:
        self.inner.repair(node_id)
