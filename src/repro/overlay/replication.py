"""Successor-list replication (paper section 3.5).

When inserting or refreshing a DHS bit, the set bit is copied to ``R``
successors of the storing node; a counting probe that hits a failed or
empty node can then walk up to ``R`` successors before declaring the bit
unset.  Each replica write costs one extra hop (the successors are direct
neighbours), so insertion stays ``O(log N)`` total for constant ``R``.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.overlay.dht import DHTProtocol
from repro.overlay.node import Node
from repro.overlay.stats import OpCost

__all__ = ["replicate_to_successors", "replica_chain", "live_predecessors"]


def replica_chain(
    dht: DHTProtocol, node_id: int, degree: int, responsive_only: bool = False
) -> List[int]:
    """The first ``degree`` distinct *live* successors of ``node_id``.

    Lazily-failed nodes (``mark_failed``) still occupy ring positions but
    have lost their stores — writing a replica there would silently void
    the ``p_f^R`` bit-survival guarantee, so the walk skips them.
    ``responsive_only`` additionally skips transiently-unreachable nodes
    (partitions): anti-entropy pairs only with peers it can actually
    exchange messages with right now.
    """
    chain: List[int] = []
    current = node_id
    # Bounded by the ring size: ``node_id`` may have been evicted, in
    # which case the walk never revisits it and must stop after one lap.
    for _ in range(dht.size):
        if len(chain) >= degree:
            break
        current = dht.successor_id(current)
        if current == node_id:
            break  # wrapped around a tiny ring
        if dht.is_alive(current) and (
            not responsive_only or dht.node_responsive(current)
        ):
            chain.append(current)
    return chain


def live_predecessors(
    dht: DHTProtocol, node_id: int, degree: int, responsive_only: bool = False
) -> List[int]:
    """The first ``degree`` live predecessors (mirror of :func:`replica_chain`).

    Used to decide chain *primacy*: a node is primary for the bits none
    of its ``degree`` live predecessors hold, which is what keeps repair
    sweeps from flooding copies around the whole ring.
    """
    preds: List[int] = []
    current = node_id
    for _ in range(dht.size):
        if len(preds) >= degree:
            break
        current = dht.predecessor_id(current)
        if current == node_id:
            break
        if dht.is_alive(current) and (
            not responsive_only or dht.node_responsive(current)
        ):
            preds.append(current)
    return preds


def replicate_to_successors(
    dht: DHTProtocol,
    node_id: int,
    write: Callable[[Node], None],
    degree: int,
    payload_bytes: int = 8,
) -> Optional[OpCost]:
    """Apply ``write`` to ``degree`` successors of ``node_id``.

    Returns the extra cost (1 hop per replica), or ``None`` when
    ``degree`` is zero.
    """
    if degree <= 0:
        return None
    cost = OpCost()
    for replica in replica_chain(dht, node_id, degree):
        write(dht.node(replica))
        dht.load.record(replica)
        cost.hops += 1
        cost.messages += 1
        cost.bytes += payload_bytes
        if dht.trace:
            cost.nodes_visited.append(replica)
    return cost
