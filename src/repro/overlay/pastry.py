"""Simulated Pastry overlay (Rowstron & Druschel, Middleware 2001).

The third DHT geometry (the paper names Pastry alongside Chord, CAN and
Kademlia): keys live on the *numerically closest* node, and routing
fixes one base-``2^b`` digit of shared prefix per hop via a routing
table, falling back to leaf-set steps near the destination — expected
``O(log_{2^b} N)`` hops.

As with the other overlays, tables are derived on demand from the live
membership (an ideally-maintained overlay).  The numeric-neighbour walk
DHS's retry phase uses maps onto Pastry's leaf set, which is exactly the
structure real Pastry maintains.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.errors import ConfigurationError, EmptyOverlayError
from repro.obs import runtime as obs
from repro.overlay.dht import DHTProtocol, LookupResult
from repro.overlay.idspace import IdSpace
from repro.overlay.node import Node
from repro.overlay.stats import OpCost
from repro.sim.seeds import rng_for

__all__ = ["PastryOverlay"]


class PastryOverlay(DHTProtocol):
    """An N-node Pastry-style overlay over an ``L``-bit id space."""

    def __init__(self, space: IdSpace, digit_bits: int = 4, seed: int = 0) -> None:
        super().__init__(space)
        if not 1 <= digit_bits <= 8:
            raise ConfigurationError(f"digit_bits must be in [1, 8], got {digit_bits}")
        if space.bits % digit_bits:
            raise ConfigurationError(
                f"digit_bits ({digit_bits}) must divide the id width ({space.bits})"
            )
        self.digit_bits = digit_bits
        self._seed = seed
        self._contact_cache: Dict[Tuple[int, int], Optional[int]] = {}

    @classmethod
    def build(
        cls, n_nodes: int, bits: int = 64, digit_bits: int = 4, seed: int = 0
    ) -> "PastryOverlay":
        """Create an overlay of ``n_nodes`` with pseudo-random ids."""
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        space = IdSpace(bits)
        if n_nodes > space.size:
            raise ConfigurationError(
                f"cannot place {n_nodes} nodes in a {bits}-bit id space"
            )
        overlay = cls(space, digit_bits=digit_bits, seed=seed)
        # Keep the id stream byte-identical to the seed behaviour; only
        # the insertion switched to one vectorized bulk merge.
        rng = rng_for(seed, "pastry-ids")
        seen: set[int] = set()
        while len(seen) < n_nodes:
            candidate = rng.randrange(space.size)
            if candidate not in seen:
                seen.add(candidate)
        overlay.add_nodes_bulk(seen)
        return overlay

    @classmethod
    def from_ids(
        cls, node_ids: Iterable[int], bits: int = 64, digit_bits: int = 4, seed: int = 0
    ) -> "PastryOverlay":
        """Create an overlay from explicit node ids."""
        overlay = cls(IdSpace(bits), digit_bits=digit_bits, seed=seed)
        overlay.add_nodes_bulk(node_ids)
        if overlay.size == 0:
            raise ConfigurationError("from_ids needs at least one node id")
        return overlay

    # ------------------------------------------------------------------
    # Membership (invalidate routing contacts on churn).
    # ------------------------------------------------------------------
    def add_node(self, node_id: int) -> Node:
        self._contact_cache.clear()
        return super().add_node(node_id)

    def remove_node(self, node_id: int, graceful: bool = True) -> None:
        self._contact_cache.clear()
        super().remove_node(node_id, graceful=graceful)

    def _on_bulk_join(self) -> None:
        self._contact_cache.clear()

    # ------------------------------------------------------------------
    # Geometry.
    # ------------------------------------------------------------------
    def _circular_distance(self, a: int, b: int) -> int:
        forward = self.space.distance(a, b)
        return min(forward, self.space.size - forward)

    def owner_of(self, key: int) -> int:
        """The numerically closest live node (ties → lower id)."""
        if not self._ids:
            raise EmptyOverlayError("overlay has no live nodes")
        key = self.space.wrap(key)
        index = self._ids.bisect_left(key)
        candidates = {
            self._ids[index % len(self._ids)],
            self._ids[index - 1],
        }
        return min(
            sorted(candidates),
            key=lambda node: self._circular_distance(node, key),
        )

    def shared_digits(self, a: int, b: int) -> int:
        """Number of leading base-``2^b`` digits ``a`` and ``b`` share."""
        n_digits = self.space.bits // self.digit_bits
        for digit in range(n_digits):
            shift = self.space.bits - (digit + 1) * self.digit_bits
            if (a >> shift) != (b >> shift):
                return digit
        return n_digits

    def _prefix_range(self, key: int, digits: int) -> Tuple[int, int]:
        """Sorted-index range of nodes sharing ``digits`` leading digits
        (and the next digit) with ``key``."""
        shift = self.space.bits - (digits + 1) * self.digit_bits
        base = (key >> shift) << shift
        lo = self._ids.bisect_left(base)
        hi = self._ids.bisect_left(base + (1 << shift))
        return lo, hi

    def routing_contact(self, node_id: int, key: int) -> Optional[int]:
        """A cached contact sharing one more digit with ``key`` than
        ``node_id`` does (None when that routing-table cell is empty)."""
        digits = self.shared_digits(node_id, key)
        cache_key = (node_id, (key >> (self.space.bits - (digits + 1) * self.digit_bits)))
        if cache_key in self._contact_cache:
            return self._contact_cache[cache_key]
        lo, hi = self._prefix_range(key, digits)
        if lo >= hi:
            contact: Optional[int] = None
        else:
            rng = rng_for(self._seed, "pastry-cell", node_id, cache_key[1])
            contact = self._ids[rng.randrange(lo, hi)]
            if contact == node_id:
                contact = self._ids[lo + (hi - lo) // 2]
                if contact == node_id:
                    contact = None
        self._contact_cache[cache_key] = contact
        return contact

    #: Leaf-set half-size (numeric neighbours kept per side).
    LEAF_SET_HALF = 8

    def _leaf_set(self, node_id: int) -> list[int]:
        """The node's leaf set: nearest neighbours on both sides."""
        leaves = []
        cursor = node_id
        for _ in range(min(self.LEAF_SET_HALF, self.size - 1)):
            cursor = self.successor_id(cursor)
            leaves.append(cursor)
        cursor = node_id
        for _ in range(min(self.LEAF_SET_HALF, self.size - 1)):
            cursor = self.predecessor_id(cursor)
            leaves.append(cursor)
        return leaves or [node_id]

    def lookup(self, key: int, origin: Optional[int] = None) -> LookupResult:
        """Prefix routing with leaf-set fallback, counting hops."""
        if not self._ids:
            raise EmptyOverlayError("overlay has no live nodes")
        key = self.space.wrap(key)
        if origin is None:
            origin = self._ids[0]
        current = origin
        cost = OpCost(nodes_visited=[origin], lookups=1)
        self.load.record(origin)
        destination = self.owner_of(key)
        #: Prefix-routing goal: the key itself, unless a vetoed-eviction
        #: fallback re-pins the destination to a nearby responsive node —
        #: routing then converges on that node's own id.
        target = key
        while True:
            if not self.node_responsive(destination):
                cost.hops += 1
                cost.messages += 1
                cost.timeouts += 1
                self.timeout_repair(destination)
                if self.has_node(destination):
                    # Eviction vetoed (transient outage): settle on the
                    # first responsive ring neighbour and route to it.
                    destination = self._next_responsive(destination, cost)
                    target = destination
                else:
                    destination = self.owner_of(key)
                continue
            if current == destination:
                break
            contact = self.routing_contact(current, target)
            if contact is not None and contact != current and (
                self.shared_digits(contact, target) > self.shared_digits(current, target)
            ):
                nxt = contact
            else:
                # Leaf-set step: Pastry keeps ``2 * LEAF_SET_HALF``
                # numeric neighbours; when the routing cell is empty,
                # jump to the leaf closest to the target (the destination
                # itself once it enters the leaf set).
                leaves = self._leaf_set(current)
                nxt = min(
                    leaves,
                    key=lambda node: self._circular_distance(node, target),
                )
                if self._circular_distance(nxt, target) >= self._circular_distance(current, target):
                    nxt = destination  # equidistant twin: one direct hop
            if not self.node_responsive(nxt):
                cost.hops += 1
                cost.messages += 1
                cost.timeouts += 1
                self.timeout_repair(nxt)
                if self.has_node(nxt):
                    # Eviction vetoed: skip the unresponsive contact and
                    # hop straight to the (responsive) destination.
                    current = destination
                    cost.hops += 1
                    cost.messages += 1
                    cost.nodes_visited.append(current)
                    self.load.record(current)
                continue
            current = nxt
            cost.hops += 1
            cost.messages += 1
            cost.nodes_visited.append(current)
            self.load.record(current)
            if cost.hops > 4 * self.space.bits:
                raise RuntimeError("Pastry routing failed to converge")
        if obs.METERING:
            obs.METRICS.observe("dhs.lookup.hops", cost.hops)
        return LookupResult(node_id=destination, cost=cost)
