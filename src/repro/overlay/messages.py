"""Wire-size model for overlay and DHS messages.

The paper's bandwidth figures count application payloads only
("excluding possible DHT protocol overheads and TCP/IP routing header
information", section 5.2), with the evaluation configuration packing a
DHS tuple ``<metric_id, vector_id, bit, time_out>`` into 64 bits:
8-bit metric id, 16-bit vector id, 8-bit bit index, 32-bit timeout.

A routed request costs its payload once per hop (recursive routing);
responses return directly to the requester over the underlying IP network
and cost their payload once.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SizeModel", "DEFAULT_SIZE_MODEL"]


@dataclass(frozen=True)
class SizeModel:
    """Byte sizes of the messages DHS exchanges.

    Attributes
    ----------
    tuple_bytes:
        One DHS tuple on the wire (8 in the paper's evaluation).
    key_bytes:
        One DHT key/identifier (L/8; 8 for 64-bit IDs).
    probe_request_bytes:
        A counting probe: metric id(s) + bit position + flags.
    digest_bytes:
        One anti-entropy digest (blake2b-128 over a register segment or
        a node root).  Digests are the bandwidth *floor* of a
        reconciliation round: a converged pair exchanges two roots and
        stops, so steady-state repair traffic is ``2 * digest_bytes``
        per pair instead of a full register transfer.
    """

    tuple_bytes: int = 8
    key_bytes: int = 8
    probe_request_bytes: int = 8
    digest_bytes: int = 16

    def insert_bytes(self, hops: int, tuples: int = 1) -> float:
        """Bytes to route ``tuples`` DHS tuples over ``hops`` hops."""
        return float(hops * tuples * self.tuple_bytes)

    def probe_bytes(self, request_hops: int, tuples_returned: int, metrics: int = 1) -> float:
        """Bytes for one probe: routed request + direct response.

        ``metrics`` scales the request (one metric id per metric probed);
        the response carries one tuple per matching (metric, vector) pair.
        """
        request = request_hops * (self.probe_request_bytes + (metrics - 1) * self.key_bytes)
        response = tuples_returned * self.tuple_bytes
        return float(request + response)

    def summary_bytes(self, slots: int, entries: int) -> float:
        """Bytes for a segment summary: slot keys plus their set bits.

        A mismatched anti-entropy segment degrades to shipping its state
        as tuples — one key per slot, one tuple per live ``(vector, bit)``
        entry — which is exactly what the receiving side needs to OR-merge.
        """
        return float(slots * self.key_bytes + entries * self.tuple_bytes)


#: The size model matching the paper's evaluation configuration.
DEFAULT_SIZE_MODEL = SizeModel()
