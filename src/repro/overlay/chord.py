"""Simulated Chord ring (Stoica et al., SIGCOMM 2001).

A node with id ``n`` is responsible for the keys in ``(pred(n), n]``.
Routing is the classic iterative walk: each step jumps to the closest
finger preceding the key, where finger ``i`` of node ``n`` is
``successor(n + 2^i)``.  Fingers are computed on demand from the live
membership, modelling an ideally-stabilized ring — the same idealization
the paper's evaluation makes — so hop counts land at the expected
``~0.5 * log2 N`` without simulating stabilization chatter.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Optional

from repro.errors import ConfigurationError, EmptyOverlayError
from repro.overlay.dht import DHTProtocol, LookupResult
from repro.overlay.idspace import IdSpace
from repro.overlay.stats import OpCost
from repro.sim.seeds import rng_for

__all__ = ["ChordRing"]


class ChordRing(DHTProtocol):
    """An N-node Chord overlay over an ``L``-bit id space."""

    def __init__(self, space: IdSpace) -> None:
        super().__init__(space)

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, n_nodes: int, bits: int = 64, seed: int = 0) -> "ChordRing":
        """Create a ring of ``n_nodes`` with pseudo-random ids."""
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        space = IdSpace(bits)
        if n_nodes > space.size:
            raise ConfigurationError(
                f"cannot place {n_nodes} nodes in a {bits}-bit id space"
            )
        ring = cls(space)
        rng = rng_for(seed, "chord-ids")
        seen: set[int] = set()
        while len(seen) < n_nodes:
            candidate = rng.randrange(space.size)
            if candidate not in seen:
                seen.add(candidate)
                ring.add_node(candidate)
        return ring

    @classmethod
    def from_ids(cls, node_ids: Iterable[int], bits: int = 64) -> "ChordRing":
        """Create a ring from explicit node ids (tests, edge cases)."""
        ring = cls(IdSpace(bits))
        for node_id in node_ids:
            ring.add_node(node_id)
        if ring.size == 0:
            raise ConfigurationError("from_ids needs at least one node id")
        return ring

    # ------------------------------------------------------------------
    # Geometry.
    # ------------------------------------------------------------------
    def owner_of(self, key: int) -> int:
        """``successor(key)``: the first live node at or after ``key``."""
        if not self._ids:
            raise EmptyOverlayError("overlay has no live nodes")
        key = self.space.wrap(key)
        index = bisect.bisect_left(self._ids, key)
        return self._ids[index % len(self._ids)]

    def finger(self, node_id: int, i: int) -> int:
        """Finger ``i`` of ``node_id``: ``successor(node_id + 2^i)``."""
        return self.owner_of(self.space.wrap(node_id + (1 << i)))

    def _closest_preceding(self, current: int, key: int) -> Optional[int]:
        """Best finger of ``current`` strictly inside ``(current, key)``."""
        distance = self.space.distance(current, key)
        if distance <= 1:
            return None
        # Largest finger that cannot overshoot starts at 2^i <= distance-1.
        for i in range((distance - 1).bit_length() - 1, -1, -1):
            candidate = self.finger(current, i)
            if self.space.in_open(candidate, current, key):
                return candidate
        return None

    def lookup(self, key: int, origin: Optional[int] = None) -> LookupResult:
        """Iteratively route ``key`` to its owner, counting hops.

        ``origin`` defaults to the owner's antipode-ish first node, but
        callers doing cost experiments should pass an explicit querying
        node.  A lookup starting at the owner itself costs 0 hops.
        """
        if not self._ids:
            raise EmptyOverlayError("overlay has no live nodes")
        key = self.space.wrap(key)
        if origin is None:
            origin = self._ids[0]
        current = origin
        cost = OpCost(nodes_visited=[origin], lookups=1)
        self.load.record(origin)
        while True:
            destination = self.owner_of(key)
            if not self.is_alive(destination):
                # Timed-out contact: pay the probe, evict, re-resolve.
                cost.hops += 1
                cost.messages += 1
                self.repair(destination)
                continue
            if current == destination:
                break
            nxt = self._closest_preceding(current, key)
            if nxt is None:
                # key lies between current and its successor: last hop.
                nxt = self.successor_id(current)
            if not self.is_alive(nxt):
                cost.hops += 1
                cost.messages += 1
                self.repair(nxt)
                continue
            current = nxt
            cost.hops += 1
            cost.messages += 1
            cost.nodes_visited.append(current)
            self.load.record(current)
            if cost.hops > 2 * self.space.bits + len(self._ids):
                raise RuntimeError("routing failed to converge; ring corrupt?")
        return LookupResult(node_id=destination, cost=cost)
