"""Simulated Chord ring (Stoica et al., SIGCOMM 2001).

A node with id ``n`` is responsible for the keys in ``(pred(n), n]``.
Routing is the classic iterative walk: each step jumps to the closest
finger preceding the key, where finger ``i`` of node ``n`` is
``successor(n + 2^i)``.  Fingers model an ideally-stabilized ring — the
same idealization the paper's evaluation makes — so hop counts land at
the expected ``~0.5 * log2 N`` without simulating stabilization chatter.

Hot-path engineering (see docs/PERFORMANCE.md): fingers are *memoized*
per node and invalidated incrementally on membership changes, so a
routed hop costs O(1) dictionary work instead of up to ``L`` bisects.
The memo is exact — an invalidation-correctness property test asserts
hop-for-hop agreement with the uncached on-demand computation
(``finger_cache=False``) under arbitrary join/leave/crash interleavings.

Memory-lean at scale (ROADMAP item 2): per-node finger memos are sparse
dicts holding only the exponents a route has actually probed (~log2 N
entries instead of an ``L``-slot list), nodes that never route own no
memo at all, and :meth:`ChordRing.build` constructs the membership with
one vectorized bulk merge (:meth:`~repro.overlay.dht.DHTProtocol.add_nodes_bulk`)
instead of N incremental binary insertions — an N=10^6 ring builds in
seconds with O(8 bytes) of resident state per untouched node.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.errors import ConfigurationError, EmptyOverlayError
from repro.obs import runtime as obs
from repro.overlay.dht import DHTProtocol, LookupResult
from repro.overlay.idspace import IdSpace
from repro.overlay.stats import OpCost
from repro.sim.seeds import rng_for

__all__ = ["ChordRing"]

#: Bound on the memoized ``owner_of`` results; when full the cache is
#: reset wholesale (it is an optimization cache — correctness never
#: depends on its contents).
_OWNER_CACHE_MAX = 1 << 16


class ChordRing(DHTProtocol):
    """An N-node Chord overlay over an ``L``-bit id space.

    Parameters
    ----------
    space:
        The identifier space.
    trace:
        When true, lookups record the full ``nodes_visited`` path in
        their :class:`~repro.overlay.stats.OpCost` (off by default —
        the counters are kept either way).
    finger_cache:
        When false, fingers are recomputed from the live membership on
        every use (the seed behaviour; kept for equivalence testing).
    """

    def __init__(
        self,
        space: IdSpace,
        trace: bool = False,
        finger_cache: bool = True,
    ) -> None:
        super().__init__(space, trace=trace)
        self._finger_cache_enabled = finger_cache
        #: ``space.size - 1``, cached: ``wrap`` via ``& mask`` keeps the
        #: hot routing loops free of property lookups.
        self._size_mask = space.size - 1
        #: node id -> sparse per-exponent finger memo (missing = stale).
        #: Sparse dicts keep memory proportional to the exponents a
        #: route actually probed (~log2 N), not the id width ``L``.
        self._fingers: Dict[int, Dict[int, int]] = {}
        #: finger value -> {(node, i)} entries currently memoized to it.
        self._finger_rev: Dict[int, Set[Tuple[int, int]]] = {}
        #: key -> owner memo; cleared on any membership change.
        self._owner_cache: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        n_nodes: int,
        bits: int = 64,
        seed: int = 0,
        trace: bool = False,
        finger_cache: bool = True,
    ) -> "ChordRing":
        """Create a ring of ``n_nodes`` with pseudo-random ids."""
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        space = IdSpace(bits)
        if n_nodes > space.size:
            raise ConfigurationError(
                f"cannot place {n_nodes} nodes in a {bits}-bit id space"
            )
        ring = cls(space, trace=trace, finger_cache=finger_cache)
        # The id stream must stay byte-identical to the seed behaviour
        # (golden fixtures pin it); only the insertion switched from
        # one-at-a-time joins to a single vectorized bulk merge.
        rng = rng_for(seed, "chord-ids")
        seen: set[int] = set()
        while len(seen) < n_nodes:
            candidate = rng.randrange(space.size)
            if candidate not in seen:
                seen.add(candidate)
        ring.add_nodes_bulk(seen)
        return ring

    @classmethod
    def from_ids(
        cls,
        node_ids: Iterable[int],
        bits: int = 64,
        trace: bool = False,
        finger_cache: bool = True,
    ) -> "ChordRing":
        """Create a ring from explicit node ids (tests, edge cases)."""
        ring = cls(IdSpace(bits), trace=trace, finger_cache=finger_cache)
        ring.add_nodes_bulk(node_ids)
        if ring.size == 0:
            raise ConfigurationError("from_ids needs at least one node id")
        return ring

    # ------------------------------------------------------------------
    # Geometry.
    # ------------------------------------------------------------------
    def owner_of(self, key: int) -> int:
        """``successor(key)``: the first live node at or after ``key``."""
        ids = self._ids
        if not ids:
            raise EmptyOverlayError("overlay has no live nodes")
        key &= self._size_mask
        cache = self._owner_cache
        owner = cache.get(key)
        if owner is not None:
            return owner
        index = ids.bisect_left(key)
        owner = ids[index % len(ids)]
        if len(cache) >= _OWNER_CACHE_MAX:
            cache.clear()
        cache[key] = owner
        return owner

    def finger(self, node_id: int, i: int) -> int:
        """Finger ``i`` of ``node_id``: ``successor(node_id + 2^i)``.

        With the cache enabled the value is memoized per ``(node, i)``
        and invalidated incrementally when membership changes could
        affect it; stale entries fall back to the on-demand computation.
        """
        if not self._finger_cache_enabled:
            return self.owner_of((node_id + (1 << i)) & self._size_mask)
        table = self._fingers.setdefault(node_id, {})
        value = table.get(i)
        if value is None:
            value = self.owner_of((node_id + (1 << i)) & self._size_mask)
            table[i] = value
            self._finger_rev.setdefault(value, set()).add((node_id, i))
        return value

    def materialize_fingers(self, node_id: int) -> Dict[int, int]:
        """Eagerly fill every finger of ``node_id`` and return the memo.

        Normal routing materializes fingers lazily, one probed exponent
        at a time; this helper forces the full ``L``-entry table (used
        by equivalence tests and callers that want warm routing state).
        """
        if not self._finger_cache_enabled:
            raise ConfigurationError(
                "materialize_fingers requires finger_cache=True"
            )
        for i in range(self.space.bits):
            self.finger(node_id, i)
        return dict(self._fingers.get(node_id, {}))

    # ------------------------------------------------------------------
    # Cache maintenance (membership-change hooks).
    # ------------------------------------------------------------------
    def _on_bulk_join(self) -> None:
        """Reset routing memos wholesale after a bulk membership merge."""
        self._owner_cache.clear()
        self._fingers.clear()
        self._finger_rev.clear()

    def _on_join(self, node_id: int) -> None:
        """Invalidate routing memos a join at ``node_id`` may stale.

        A memoized finger ``successor(start)`` changes only if the new
        node slots between ``start`` and the old successor — and that
        old successor is exactly ``successor(node_id)`` after the join.
        Dropping every entry memoized to that one node is a small,
        conservative superset of the affected entries.
        """
        self._owner_cache.clear()
        if len(self._ids) < 2:
            return
        heir = self.successor_id(node_id)
        self._invalidate_entries_pointing_at(heir)

    def _on_leave(self, node_id: int) -> None:
        """Drop routing memos referencing the departed ``node_id``."""
        self._owner_cache.clear()
        # Entries of other nodes that resolved to the departed node.
        self._invalidate_entries_pointing_at(node_id)
        # The departed node's own finger table.
        table = self._fingers.pop(node_id, None)
        if table is not None:
            for i, value in table.items():
                entries = self._finger_rev.get(value)
                if entries is not None:
                    entries.discard((node_id, i))
                    if not entries:
                        del self._finger_rev[value]

    def _invalidate_entries_pointing_at(self, value: int) -> None:
        entries = self._finger_rev.pop(value, None)
        if entries is None:
            return
        fingers = self._fingers
        for node_id, i in entries:
            table = fingers.get(node_id)
            if table is not None:
                table.pop(i, None)

    def _closest_preceding(self, current: int, key: int) -> Optional[int]:
        """Best finger of ``current`` strictly inside ``(current, key)``.

        This is the innermost routing loop: the id-space arithmetic
        (``wrap``/``distance``/``in_open``) is inlined as mask-and-
        compare operations and the finger memo is indexed directly, so
        probing a finger costs no Python function call.
        """
        size_mask = self.space.size - 1
        distance = (key - current) & size_mask
        if distance <= 1:
            return None
        if not self._finger_cache_enabled:
            # Seed behaviour: recompute each finger from the membership.
            for i in range((distance - 1).bit_length() - 1, -1, -1):
                candidate = self.owner_of((current + (1 << i)) & size_mask)
                if 0 < ((candidate - current) & size_mask) < distance:
                    return candidate
            return None
        table = self._fingers.setdefault(current, {})
        # Largest finger that cannot overshoot starts at 2^i <= distance-1.
        for i in range((distance - 1).bit_length() - 1, -1, -1):
            candidate = table.get(i)
            if candidate is None:
                candidate = self.owner_of((current + (1 << i)) & size_mask)
                table[i] = candidate
                self._finger_rev.setdefault(candidate, set()).add((current, i))
            # Inlined in_open(candidate, current, key); current != key
            # because distance > 1.
            if 0 < ((candidate - current) & size_mask) < distance:
                return candidate
        return None

    def lookup(self, key: int, origin: Optional[int] = None) -> LookupResult:
        """Iteratively route ``key`` to its owner, counting hops.

        ``origin`` defaults to the owner's antipode-ish first node, but
        callers doing cost experiments should pass an explicit querying
        node.  A lookup starting at the owner itself costs 0 hops.
        """
        if not self._ids:
            raise EmptyOverlayError("overlay has no live nodes")
        key &= self._size_mask
        if origin is None:
            origin = self._ids[0]
        current = origin
        trace = self.trace
        cost = OpCost(nodes_visited=[origin] if trace else [], lookups=1)
        self.load.record(origin)
        destination = self.owner_of(key)
        while True:
            if not self.node_responsive(destination):
                # Timed-out contact with the owner: pay the probe, evict
                # it, and re-resolve — repeating for every consecutive
                # dead heir — before resuming the route.  When the fault
                # layer vetoes the eviction (transient outage), the
                # route settles on the owner's first responsive
                # successor instead, exactly as a Chord successor list
                # would be used.
                cost.hops += 1
                cost.messages += 1
                cost.timeouts += 1
                self.timeout_repair(destination)
                if self.has_node(destination):
                    destination = self._next_responsive(destination, cost)
                else:
                    destination = self.owner_of(key)
                continue
            if current == destination:
                break
            nxt = self._closest_preceding(current, key)
            if nxt is None:
                # key lies between current and its successor: last hop.
                nxt = self.successor_id(current)
            if not self.node_responsive(nxt):
                cost.hops += 1
                cost.messages += 1
                cost.timeouts += 1
                self.timeout_repair(nxt)
                if self.has_node(nxt):
                    # Eviction vetoed: relay through the unresponsive
                    # node's first responsive successor (known from its
                    # successor list), paying the routed hop to it.
                    current = self._next_responsive(nxt, cost)
                    cost.hops += 1
                    cost.messages += 1
                    if trace:
                        cost.nodes_visited.append(current)
                    self.load.record(current)
                    continue
                destination = self.owner_of(key)
                continue
            current = nxt
            cost.hops += 1
            cost.messages += 1
            if trace:
                cost.nodes_visited.append(current)
            self.load.record(current)
            if cost.hops > 2 * self.space.bits + len(self._ids):
                raise RuntimeError("routing failed to converge; ring corrupt?")
        if obs.METERING:
            obs.METRICS.observe("dhs.lookup.hops", cost.hops)
        return LookupResult(node_id=destination, cost=cost)
