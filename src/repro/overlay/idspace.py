"""Circular identifier-space arithmetic for DHT overlays.

All DHTs in this library share an ``L``-bit identifier ring
``[0, 2^L)``; this module centralizes the wrap-around interval tests and
distances that Chord-style routing needs, so the routing code reads like
the protocol pseudo-code.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IdSpace"]


@dataclass(frozen=True)
class IdSpace:
    """An ``L``-bit circular identifier space."""

    bits: int

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 256:
            raise ValueError(f"bits must be in [1, 256], got {self.bits}")

    @property
    def size(self) -> int:
        """Number of identifiers, ``2^bits``."""
        return 1 << self.bits

    def contains(self, value: int) -> bool:
        """Whether ``value`` is a valid identifier."""
        return 0 <= value < self.size

    def wrap(self, value: int) -> int:
        """Reduce ``value`` modulo the ring size."""
        return value & (self.size - 1)

    def distance(self, src: int, dst: int) -> int:
        """Clockwise distance from ``src`` to ``dst``."""
        return self.wrap(dst - src)

    def in_open(self, x: int, a: int, b: int) -> bool:
        """Whether ``x`` lies in the clockwise-open interval ``(a, b)``.

        ``(a, a)`` denotes the whole ring minus ``a`` (Chord convention).
        """
        if a == b:
            return x != a
        return 0 < self.distance(a, x) < self.distance(a, b)

    def in_half_open(self, x: int, a: int, b: int) -> bool:
        """Whether ``x`` lies in ``(a, b]`` clockwise.

        ``(a, a]`` denotes the whole ring (every key has a successor).
        """
        if a == b:
            return True
        return 0 < self.distance(a, x) <= self.distance(a, b)

    def xor_distance(self, a: int, b: int) -> int:
        """Kademlia's XOR metric."""
        return a ^ b
