"""The DHT abstraction DHS is written against.

The paper stresses that DHS is *DHT-agnostic*: it only needs the classic
``insert(key, value)`` / ``lookup(key)`` primitives plus the ability to
walk a node's immediate ring neighbours (used by the counting algorithm's
retry phase).  :class:`DHTProtocol` captures exactly that contract;
:mod:`repro.overlay.chord` and :mod:`repro.overlay.kademlia` provide the
two concrete geometries.

Operations return ``(result, OpCost)`` pairs so callers can aggregate the
hop/bandwidth accounting the evaluation reports.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple, cast

from repro.errors import EmptyOverlayError, LookupFailedError, NodeNotFoundError
from repro.obs import runtime as obs
from repro.overlay.idarray import SortedIdArray
from repro.overlay.idspace import IdSpace
from repro.overlay.node import Node, StoreValue
from repro.overlay.stats import LoadTracker, OpCost

__all__ = ["DHTProtocol", "FaultHooks", "LookupResult"]


@dataclass
class LookupResult:
    """Outcome of routing a key to its responsible node."""

    node_id: int
    cost: OpCost


class FaultHooks(ABC):
    """Routing-time questions a fault-injection layer answers.

    Implemented by :class:`repro.overlay.faults.FaultInjector`; the
    overlay consults the installed instance (``self.fault_layer``)
    during lookups so transient outages cost timeout hops without
    permanently mutating the membership.
    """

    @abstractmethod
    def responsive(self, node_id: int) -> bool:
        """Whether the (alive) node currently answers messages."""

    @abstractmethod
    def veto_eviction(self, node_id: int) -> bool:
        """Whether a timed-out node must *not* be evicted (transient)."""


class DHTProtocol(ABC):
    """Common machinery for the simulated DHT geometries.

    Subclasses implement the geometry: who is responsible for a key, and
    how a lookup is routed hop by hop.

    Membership is memory-lean (see docs/PERFORMANCE.md): the ground
    truth is ``_ids``, a contiguous numpy-backed sorted id array, and
    ``_nodes`` holds only the *materialized* subset — nodes that have
    been routed a write, probed, or individually mutated.  A member
    absent from ``_nodes`` is an implicitly-alive node with an empty
    store; :meth:`node` materializes it on first touch.  Building an
    N=10^6 ring therefore allocates one 8 MB array, not 10^6 Python
    objects.
    """

    def __init__(self, space: IdSpace, trace: bool = False) -> None:
        self.space = space
        #: Materialized nodes only; membership truth lives in ``_ids``.
        self._nodes: dict[int, Node] = {}
        #: Sorted ids of all live members (numpy-backed).
        self._ids: SortedIdArray = SortedIdArray(bits=space.bits)
        #: Whether operations record per-hop ``nodes_visited`` lists.
        #: Off by default: the counters (hops/messages/bytes) are always
        #: kept, but the per-hop list append in the innermost routing
        #: loop is skipped unless a caller opts in (path-inspection
        #: tests, equivalence checks).
        self.trace = trace
        #: Per-node access counter (routing + storage + probes).
        self.load = LoadTracker()
        #: Optional application hook merging two store values for the same
        #: key during a graceful leave: ``merge(existing, incoming)`` with
        #: ``existing`` possibly ``None``.  Defaults to max-wins.
        self.store_merge: Optional[
            Callable[[Optional[StoreValue], StoreValue], StoreValue]
        ] = None
        #: Optional fault-injection layer (see :mod:`repro.overlay.faults`).
        #: When installed, routing consults it for transient
        #: unresponsiveness and it can veto the eviction of nodes that
        #: merely timed out.  ``None`` (the default) keeps the bare-ring
        #: fast path: :meth:`node_responsive` is then exactly
        #: :meth:`is_alive` and :meth:`timeout_repair` exactly
        #: :meth:`repair`.
        self.fault_layer: Optional["FaultHooks"] = None

    # ------------------------------------------------------------------
    # Membership.
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of live nodes."""
        return len(self._ids)

    def node_ids(self) -> Sequence[int]:
        """Sorted ids of the live nodes (do not mutate)."""
        return self._ids

    def responsive_node_ids(self) -> List[int]:
        """Sorted ids of the live nodes that would answer right now.

        The maintenance plane iterates this instead of :meth:`node_ids`:
        background rounds can only run on nodes reachable through the
        current fault state (partitioned peers rejoin the schedule when
        the outage lifts).
        """
        fault = self.fault_layer
        nodes = self._nodes
        out: List[int] = []
        for nid in self._ids:
            node = nodes.get(nid)
            if node is not None and not node.alive:
                continue  # unmaterialized members are alive by invariant
            if fault is not None and not fault.responsive(nid):
                continue
            out.append(nid)
        return out

    def node(self, node_id: int) -> Node:
        """The :class:`Node` for ``node_id``; raises if unknown/dead.

        Materializes the node on first touch: an unmaterialized member
        is an alive node with an empty store.
        """
        node = self._nodes.get(node_id)
        if node is not None:
            return node
        if node_id in self._ids:
            node = Node(node_id)
            self._nodes[node_id] = node
            return node
        raise NodeNotFoundError(node_id)

    def node_if_materialized(self, node_id: int) -> Optional[Node]:
        """The :class:`Node` if it has been materialized, else ``None``.

        Load-balance snapshots use this to read per-node storage without
        allocating Node objects for the (empty) untouched members.
        """
        return self._nodes.get(node_id)

    def has_node(self, node_id: int) -> bool:
        """Whether ``node_id`` is a live member."""
        return node_id in self._ids

    def membership_nbytes(self) -> int:
        """Bytes held by the membership id array (capacity included)."""
        return self._ids.nbytes

    def add_node(self, node_id: int) -> Node:
        """Join a new (empty) node under ``node_id``."""
        node_id = self.space.wrap(node_id)
        if node_id in self._ids:
            raise ValueError(f"node id {node_id:#x} already present")
        node = Node(node_id)
        self._nodes[node_id] = node
        self._insert_sorted(node_id)
        self._on_join(node_id)
        return node

    def add_nodes_bulk(self, node_ids: Iterable[int]) -> None:
        """Join many (empty) nodes in one vectorized membership merge.

        The bulk construction path: no Node objects are materialized and
        the sorted id array is rebuilt with a single sort instead of one
        binary-insertion shift per join.  Derived routing caches are
        invalidated wholesale via :meth:`_on_bulk_join`.  Raises
        ``ValueError`` on any duplicate id, leaving membership unchanged.
        """
        wrapped = [self.space.wrap(node_id) for node_id in node_ids]
        self._ids.merge(wrapped)
        self._on_bulk_join()

    def remove_node(self, node_id: int, graceful: bool = True) -> None:
        """Remove a node.

        ``graceful=True`` models a *leave*: stored entries are merged into
        the clockwise successor (newer/larger values win, matching DHS
        soft-state expiries).  ``graceful=False`` models a *crash*: the
        node's data is lost — the case the replication machinery exists
        for.
        """
        if node_id not in self._ids:
            raise NodeNotFoundError(node_id)
        node = self._nodes.pop(node_id, None)
        self._delete_sorted(node_id)
        self._on_leave(node_id)
        if node is None:
            # Never materialized: empty store, no live references —
            # nothing to merge and no alive flag anyone can observe.
            return
        node.alive = False
        if graceful and self._ids:
            heir = self.node(self.successor_id(node_id))
            for key, value in node.store.items():
                existing = heir.store.get(key)
                if self.store_merge is not None:
                    heir.store[key] = self.store_merge(existing, value)
                elif existing is None:
                    heir.store[key] = value
                else:
                    try:
                        heir.store[key] = max(cast(Any, existing), cast(Any, value))
                    except TypeError:
                        heir.store[key] = value
            if node.store:
                # Bulk merge bypasses the incremental entry accounting;
                # the heir recounts lazily on the next load snapshot.
                heir.app_entries_stale = True

    def fail_node(self, node_id: int) -> None:
        """Crash ``node_id`` (data lost)."""
        self.remove_node(node_id, graceful=False)

    def mark_failed(self, node_id: int) -> None:
        """Crash ``node_id`` *without* the overlay noticing (lazy failure).

        The node stays in everyone's routing state; lookups discover the
        crash on contact, pay a timeout hop, and repair (section 3.5's
        ``p_f`` model).  Its stored data is lost either way.
        """
        self.node(node_id).alive = False

    def is_alive(self, node_id: int) -> bool:
        """Whether ``node_id`` is present and not lazily failed.

        One dict probe for materialized nodes; unmaterialized members
        are alive by invariant (only :meth:`mark_failed` flips the flag,
        and it materializes), so the fallback is a membership search.
        """
        node = self._nodes.get(node_id)
        if node is not None:
            return node.alive
        return node_id in self._ids

    def live_node(self, node_id: int) -> Optional[Node]:
        """The :class:`Node` for ``node_id`` if present and alive, else ``None``.

        Fuses :meth:`is_alive` + :meth:`node` into one dict probe for the
        bare-ring (no fault layer) counting fast path; unmaterialized
        members materialize on demand.
        """
        node = self._nodes.get(node_id)
        if node is not None:
            return node if node.alive else None
        if node_id in self._ids:
            node = Node(node_id)
            self._nodes[node_id] = node
            return node
        return None

    def repair(self, node_id: int) -> None:
        """Evict a discovered-dead node from the routing state."""
        if node_id in self._ids:
            self.remove_node(node_id, graceful=False)

    # ------------------------------------------------------------------
    # Fault-layer indirection (routing-time liveness and eviction).
    # ------------------------------------------------------------------
    def node_responsive(self, node_id: int) -> bool:
        """Whether ``node_id`` would answer a message right now.

        Differs from :meth:`is_alive` only when a fault layer is
        installed: a transiently-unresponsive (or partitioned) node is
        alive but does not answer, so routing pays a timeout hop without
        the node having crashed.
        """
        fault = self.fault_layer
        if fault is None:
            return self.is_alive(node_id)
        return self.is_alive(node_id) and fault.responsive(node_id)

    def timeout_repair(self, node_id: int) -> None:
        """Evict a node that timed out during routing.

        The fault layer can veto the eviction: a transient outage looks
        like a crash to the router, but evicting the node would lose its
        (still intact) membership permanently.
        """
        fault = self.fault_layer
        if fault is not None and fault.veto_eviction(node_id):
            return
        self.repair(node_id)

    def _next_responsive(self, node_id: int, cost: OpCost) -> int:
        """First responsive node clockwise of ``node_id``.

        Walks the successor chain the way a router consults a successor
        list whose leading entries are down: one timeout hop is charged
        per unresponsive node tried, and each corpse is offered for
        eviction (the fault layer vetoes transient outages).
        """
        budget = len(self._ids) + 1
        current = node_id
        for _ in range(budget):
            candidate = self.successor_id(current)
            if self.node_responsive(candidate):
                return candidate
            cost.hops += 1
            cost.messages += 1
            cost.timeouts += 1
            if obs.METERING:
                obs.METRICS.inc("dht.timeouts")
            self.timeout_repair(candidate)
            current = candidate
        raise LookupFailedError("no responsive node reachable on the ring")

    def _insert_sorted(self, node_id: int) -> None:
        self._ids.insert(node_id)

    def _delete_sorted(self, node_id: int) -> None:
        try:
            self._ids.remove(node_id)
        except ValueError:
            raise NodeNotFoundError(node_id) from None

    # ------------------------------------------------------------------
    # Membership-change hooks (for derived routing-state caches).
    # ------------------------------------------------------------------
    def _on_join(self, node_id: int) -> None:
        """Called after ``node_id`` joined the sorted membership."""

    def _on_leave(self, node_id: int) -> None:
        """Called after ``node_id`` left the sorted membership."""

    def _on_bulk_join(self) -> None:
        """Called once after :meth:`add_nodes_bulk` merged its batch.

        Geometries with derived routing caches must invalidate them
        wholesale here (a bulk join can stale any entry)."""

    # ------------------------------------------------------------------
    # Geometry.
    # ------------------------------------------------------------------
    @abstractmethod
    def owner_of(self, key: int) -> int:
        """Id of the node responsible for ``key`` (ground truth)."""

    @abstractmethod
    def lookup(self, key: int, origin: Optional[int] = None) -> LookupResult:
        """Route ``key`` from ``origin`` to its owner, counting hops."""

    def successor_id(self, node_id: int) -> int:
        """Clockwise ring neighbour of ``node_id`` (numeric order)."""
        ids = self._ids
        if not ids:
            raise EmptyOverlayError("overlay has no live nodes")
        index = ids.bisect_right(node_id)
        return ids[index % len(ids)]

    def predecessor_id(self, node_id: int) -> int:
        """Counter-clockwise ring neighbour of ``node_id``."""
        ids = self._ids
        if not ids:
            raise EmptyOverlayError("overlay has no live nodes")
        index = ids.bisect_left(node_id)
        return ids[index - 1]

    # ------------------------------------------------------------------
    # Storage primitives.
    # ------------------------------------------------------------------
    def store(
        self,
        key: int,
        write: Callable[[Node], None],
        origin: Optional[int] = None,
        payload_bytes: int = 8,
    ) -> Tuple[int, OpCost]:
        """Route to the owner of ``key`` and apply ``write`` to its store.

        Returns the storing node id and the operation cost (payload
        carried on every routed hop, matching the paper's accounting).
        """
        result = self.lookup(key, origin=origin)
        node = self.node(result.node_id)
        write(node)
        self.load.record(result.node_id)
        cost = result.cost
        cost.bytes += max(0, result.cost.hops) * payload_bytes
        if obs.METERING:
            obs.METRICS.inc("dht.stores")
        return result.node_id, cost

    def probe(
        self,
        node_id: int,
        read: Callable[[Node], Any],
    ) -> Any:
        """Read from a specific node's store (no routing — caller pays)."""
        node = self.node(node_id)
        self.load.record(node_id)
        if obs.METERING:
            obs.METRICS.inc("dht.probes")
        return read(node)

    def random_live_node(self, rng: random.Random) -> int:
        """A uniformly random live (not lazily-failed) node id."""
        if not self._ids:
            raise EmptyOverlayError("overlay has no live nodes")
        for _ in range(64):
            candidate = rng.choice(self._ids)
            if self.is_alive(candidate):
                return candidate
        survivors = [node_id for node_id in self._ids if self.is_alive(node_id)]
        if not survivors:
            raise EmptyOverlayError("every node is (lazily) failed")
        return rng.choice(survivors)
