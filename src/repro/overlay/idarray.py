"""Contiguous sorted id storage for overlay membership.

The overlays keep their live membership as a sorted sequence of node
ids.  The seed representation was a Python ``list`` of ``int`` — fine at
the paper's 1024 nodes, but at the ROADMAP's N=10^5–10^6 every id costs
a 28-byte boxed integer plus an 8-byte list slot, and building a ring by
repeated ``list.insert`` is quadratic interpreter work.

:class:`SortedIdArray` replaces the list with one contiguous
``array('Q')`` buffer (8 bytes per id, buffer-protocol compatible with
numpy):

* membership for an N=10^6 ring is 8 MB of flat array instead of
  ~36 MB of boxed ints;
* scalar binary search (``bisect_left``/``bisect_right``/
  ``__contains__``) is stdlib C ``bisect`` straight on the buffer —
  ~0.6 µs per probe, two orders faster than a per-call scalar
  ``np.searchsorted`` (whose argument coercion dominates at this size)
  and the reason routing hot loops keep their throughput;
* bulk construction (:meth:`merge`) is a single vectorized numpy
  sort-and-verify pass over a zero-copy view of the buffer —
  O((N+K) log (N+K)) total instead of the O(N·K) memmove work of K
  one-at-a-time insertions;
* incremental :meth:`insert`/:meth:`remove` remain available for churn
  (C-speed memmove inside ``array``).

The class satisfies ``Sequence[int]`` exactly as the old list did:
``__getitem__`` returns Python ``int`` (including negative indices —
``ids[index - 1]`` ring wrap-around relies on it), iteration yields
Python ``int``, and ``random.Random.choice`` / stdlib ``bisect`` work
unchanged on it.  Because probes are compared as Python ints, values
outside the uint64 range need no special casing: ``bisect_left(2**64)``
is ``len(self)`` and ``bisect_left(-1)`` is ``lo`` by ordinary
comparison.  Id spaces wider than 64 bits fall back to a plain sorted
``list`` (same API, boxed storage — IdSpace allows up to 256 bits).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left as _bisect_left
from bisect import bisect_right as _bisect_right
from typing import Iterable, Iterator, List, Sequence, Union, overload

import numpy as np

__all__ = ["SortedIdArray"]


class SortedIdArray(Sequence[int]):
    """A sorted, duplicate-free sequence of node ids on a flat buffer.

    Parameters
    ----------
    bits:
        Width of the id space.  Ids up to 64 bits live in an
        ``array('Q')`` buffer; wider spaces use a plain list.
    ids:
        Optional initial ids (any order; duplicates raise ``ValueError``).
    """

    __slots__ = ("_data",)

    def __init__(self, bits: int = 64, ids: Iterable[int] = ()) -> None:
        self._data: Union["array[int]", List[int]] = (
            array("Q") if bits <= 64 else []
        )
        initial = list(ids)
        if initial:
            self.merge(initial)

    # ------------------------------------------------------------------
    # Sequence protocol (drop-in for the seed ``List[int]``).
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    @overload
    def __getitem__(self, index: int) -> int: ...

    @overload
    def __getitem__(self, index: slice) -> List[int]: ...

    def __getitem__(self, index: Union[int, slice]) -> Union[int, List[int]]:
        if isinstance(index, slice):
            return list(self._data[index])
        return self._data[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self._data)

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, int):
            return False
        index = _bisect_left(self._data, value)
        return index < len(self._data) and self._data[index] == value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SortedIdArray(n={len(self._data)}, nbytes={self.nbytes})"

    # ------------------------------------------------------------------
    # Binary search (stdlib C bisect on the raw buffer).
    # ------------------------------------------------------------------
    def bisect_left(self, value: int, lo: int = 0, hi: Union[int, None] = None) -> int:
        """Leftmost insertion point of ``value`` in ``[lo, hi)``."""
        if hi is None:
            hi = len(self._data)
        return _bisect_left(self._data, value, lo, hi)

    def bisect_right(self, value: int, lo: int = 0, hi: Union[int, None] = None) -> int:
        """Rightmost insertion point of ``value`` in ``[lo, hi)``."""
        if hi is None:
            hi = len(self._data)
        return _bisect_right(self._data, value, lo, hi)

    # ------------------------------------------------------------------
    # Mutation.
    # ------------------------------------------------------------------
    def insert(self, value: int) -> None:
        """Insert one id, keeping the buffer sorted.

        O(N) memmove in C.  Raises ``ValueError`` if the id is already
        present.
        """
        index = _bisect_left(self._data, value)
        if index < len(self._data) and self._data[index] == value:
            raise ValueError(f"id {value:#x} already present")
        self._data.insert(index, value)

    def remove(self, value: int) -> None:
        """Remove one id; raises ``ValueError`` when absent."""
        index = _bisect_left(self._data, value)
        if index >= len(self._data) or self._data[index] != value:
            raise ValueError(f"id {value:#x} not present")
        del self._data[index]

    def merge(self, values: Sequence[int]) -> None:
        """Bulk-add ``values`` with a single sort-and-verify pass.

        This is the O(1)-amortized-per-id construction path: building an
        N-node ring is one vectorized sort instead of N binary-insertion
        shifts.  Raises ``ValueError`` on any duplicate (within
        ``values`` or against the existing ids), leaving the array
        unchanged.
        """
        if not values:
            return
        if isinstance(self._data, list):  # wide id space: boxed path
            combined_list = self._data + [int(value) for value in values]
            combined_list.sort()
            for left, right in zip(combined_list, combined_list[1:]):
                if left == right:
                    raise ValueError(f"id {left:#x} already present")
            self._data = combined_list
            return
        incoming = np.array(values, dtype=np.uint64)
        existing = (
            np.frombuffer(self._data, dtype=np.uint64)
            if self._data
            else np.empty(0, dtype=np.uint64)
        )
        combined = np.concatenate([existing, incoming])
        combined.sort(kind="stable")
        if combined.size > 1:
            duplicate = np.nonzero(combined[1:] == combined[:-1])[0]
            if duplicate.size:
                value = int(combined[int(duplicate[0])])
                raise ValueError(f"id {value:#x} already present")
        fresh: "array[int]" = array("Q")
        fresh.frombytes(combined.tobytes())
        self._data = fresh

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def tolist(self) -> List[int]:
        """The ids as a plain list of Python ints."""
        return list(self._data)

    @property
    def nbytes(self) -> int:
        """Bytes held by the backing buffer (8 per stored id)."""
        if isinstance(self._data, list):
            return 8 * len(self._data)  # slot bytes; boxed ints extra
        return self._data.itemsize * len(self._data)
