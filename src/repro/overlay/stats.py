"""Cost accounting for overlay operations.

The paper evaluates DHS by *counting* — routing hops, bytes moved, nodes
visited, per-node storage and access load — rather than wall-clock timing.
:class:`OpCost` is the unit every overlay/DHS operation returns;
:class:`LoadTracker` aggregates per-node access counts for the
load-balancing analysis (constraint 3 of the paper's introduction).
"""

from __future__ import annotations

import statistics
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

__all__ = ["OpCost", "LoadTracker"]


@dataclass
class OpCost:
    """Hop/byte/visit tally of one (or many summed) overlay operations.

    ``nodes_visited`` holds the per-hop path only when the overlay was
    constructed with ``trace=True`` — by default the scalar counters
    (hops/messages/bytes/lookups) are maintained without allocating a
    list entry per routing hop (see docs/PERFORMANCE.md).
    """

    hops: int = 0
    bytes: float = 0.0
    messages: int = 0
    nodes_visited: List[int] = field(default_factory=list)
    lookups: int = 0
    #: Messages that timed out (dropped in flight or sent to a corpse and
    #: charged as a timeout hop by the retry machinery).
    timeouts: int = 0
    #: Retry attempts performed by a :class:`repro.core.policy.RetryPolicy`.
    retries: int = 0
    #: Messages lost for good after the retry budget ran out.
    drops: int = 0
    #: DHS entries re-written by read-repair / ``stabilize`` passes.
    repair_writes: int = 0

    def add(self, other: "OpCost") -> "OpCost":
        """Accumulate ``other`` into this cost (in place)."""
        self.hops += other.hops
        self.bytes += other.bytes
        self.messages += other.messages
        self.nodes_visited.extend(other.nodes_visited)
        self.lookups += other.lookups
        self.timeouts += other.timeouts
        self.retries += other.retries
        self.drops += other.drops
        self.repair_writes += other.repair_writes
        return self

    def __iadd__(self, other: "OpCost") -> "OpCost":
        return self.add(other)

    @property
    def unique_nodes(self) -> int:
        """Number of distinct nodes visited."""
        return len(set(self.nodes_visited))

    @classmethod
    def total(cls, costs: Iterable["OpCost"]) -> "OpCost":
        """Sum a collection of costs into a fresh one."""
        out = cls()
        for cost in costs:
            out.add(cost)
        return out


class LoadTracker:
    """Per-node access counter with simple imbalance statistics.

    ``record(node)`` is called by the overlay whenever a node handles a
    message (routing step, store, or probe).  The summary statistics feed
    the access-load-balance comparison between DHS and the
    one-node-per-counter baseline.
    """

    def __init__(self) -> None:
        self._counts: Counter[int] = Counter()

    def record(self, node_id: int, amount: int = 1) -> None:
        """Charge ``amount`` accesses to ``node_id``."""
        self._counts[node_id] += amount

    def count(self, node_id: int) -> int:
        """Accesses charged to ``node_id`` so far."""
        return self._counts[node_id]

    def counts(self) -> Dict[int, int]:
        """A copy of the whole access map."""
        return dict(self._counts)

    def reset(self) -> None:
        """Forget all recorded accesses."""
        self._counts.clear()

    @property
    def total(self) -> int:
        """Total accesses across all nodes."""
        return sum(self._counts.values())

    def max_load(self) -> int:
        """Largest per-node access count (0 when nothing recorded)."""
        return max(self._counts.values(), default=0)

    def imbalance(self, population: Iterable[int]) -> float:
        """``max / mean`` access load over ``population`` (1.0 = perfect).

        Nodes in ``population`` that were never accessed count as zeros,
        which is what makes a hot single-counter node show up as a huge
        imbalance figure.
        """
        loads = [self._counts.get(node, 0) for node in population]
        if not loads:
            return 0.0
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 0.0
        return max(loads) / mean

    def coefficient_of_variation(self, population: Iterable[int]) -> float:
        """stddev / mean of access load over ``population``."""
        loads = [self._counts.get(node, 0) for node in population]
        if len(loads) < 2:
            return 0.0
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 0.0
        return statistics.pstdev(loads) / mean
