"""Overlay node state.

A node is deliberately thin: an identifier, a liveness flag, and an
application-managed key/value store.  All routing intelligence lives in
the overlay (finger tables are derived on demand from the ring membership,
modelling an ideally-stabilized DHT, which is also what the paper's
evaluation assumes).
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["Node"]


class Node:
    """One overlay node."""

    __slots__ = ("node_id", "alive", "store")

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.alive = True
        #: Application-level storage; DHS keeps
        #: ``(metric_id, vector_id, bit) -> expiry`` entries here.
        self.store: Dict[Any, Any] = {}

    @property
    def storage_entries(self) -> int:
        """Number of stored entries (the per-node storage-load metric)."""
        return len(self.store)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"Node({self.node_id:#x}, {state}, entries={len(self.store)})"
