"""Overlay node state.

A node is deliberately thin: an identifier, a liveness flag, and an
application-managed key/value store.  All routing intelligence lives in
the overlay (finger tables are derived on demand from the ring membership,
modelling an ideally-stabilized DHT, which is also what the paper's
evaluation assumes).

The store is typed through the ``StoreKey``/``StoreValue``/``NodeStore``
aliases shared with :mod:`repro.core.tuples`: values are opaque to the
overlay (``object``), and each application narrows them back with
``isinstance`` — DHS keeps one packed ``PackedSlot`` per ``(metric, bit)``
key, the baselines keep their own counter/set slots.
"""

from __future__ import annotations

from typing import Dict, Hashable

__all__ = ["Node", "NodeStore", "StoreKey", "StoreValue"]

#: Store keys are application-defined hashables (DHS uses ``(metric, bit)``).
StoreKey = Hashable
#: Store values are opaque at the overlay layer; applications narrow them.
StoreValue = object
#: The per-node key/value store shared by every overlay geometry.
NodeStore = Dict[StoreKey, StoreValue]


class Node:
    """One overlay node."""

    __slots__ = ("node_id", "alive", "store", "app_entries", "app_entries_stale")

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.alive = True
        #: Application-level storage; DHS keeps one packed
        #: ``(metric_id, bit) -> PackedSlot`` slot per key here.
        self.store: NodeStore = {}
        #: Application-maintained entry count (DHS tuples stored here).
        #: Kept incrementally by ``repro.core.tuples.write_entry`` /
        #: ``purge_expired`` so load snapshots avoid a full store scan.
        self.app_entries = 0
        #: Set by bulk store merges (graceful leaves); the next
        #: ``storage_entries`` query rescans once to resynchronize.
        self.app_entries_stale = False

    @property
    def storage_entries(self) -> int:
        """Number of stored slots (the per-node storage-load metric)."""
        return len(self.store)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"Node({self.node_id:#x}, {state}, entries={len(self.store)})"
