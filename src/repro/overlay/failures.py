"""Failure injection for robustness experiments.

The paper analyses DHS fault tolerance under a per-node failure
probability ``p_f`` (section 3.5); these helpers crash a random fraction
of the overlay *after* data has been inserted, which is the scenario the
replication and bit-shift mechanisms defend against.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigurationError
from repro.overlay.dht import DHTProtocol
from repro.sim.seeds import rng_for

__all__ = ["fail_fraction", "fail_nodes"]


def fail_nodes(dht: DHTProtocol, node_ids: List[int], lazy: bool = False) -> None:
    """Crash an explicit set of nodes (their stored data is lost).

    ``lazy=True`` leaves the crashed nodes in everyone's routing state:
    lookups discover them on contact, pay a timeout hop, and repair —
    the paper's ``p_f`` failure model.
    """
    for node_id in node_ids:
        if lazy:
            dht.mark_failed(node_id)
        else:
            dht.fail_node(node_id)


def fail_fraction(
    dht: DHTProtocol, fraction: float, seed: int = 0, lazy: bool = False
) -> List[int]:
    """Crash a uniformly random ``fraction`` of live nodes.

    Returns the failed ids.  At least one node always survives so the
    overlay stays routable.
    """
    if not 0.0 <= fraction < 1.0:
        raise ConfigurationError(f"fraction must be in [0, 1), got {fraction}")
    rng = rng_for(seed, "failures")
    population = [node_id for node_id in dht.node_ids() if dht.is_alive(node_id)]
    count = min(int(len(population) * fraction), len(population) - 1)
    victims = rng.sample(population, count)
    fail_nodes(dht, victims, lazy=lazy)
    return victims
