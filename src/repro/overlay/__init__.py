"""DHT overlay substrate: id space, Chord, Kademlia, replication, failures."""

from repro.overlay.chord import ChordRing
from repro.overlay.dht import DHTProtocol, FaultHooks, LookupResult
from repro.overlay.failures import fail_fraction, fail_nodes
from repro.overlay.faults import FAULT_KINDS, FaultEvent, FaultInjector, FaultPlan
from repro.overlay.idspace import IdSpace
from repro.overlay.kademlia import KademliaOverlay
from repro.overlay.messages import DEFAULT_SIZE_MODEL, SizeModel
from repro.overlay.node import Node
from repro.overlay.pastry import PastryOverlay
from repro.overlay.replication import replica_chain, replicate_to_successors
from repro.overlay.stats import LoadTracker, OpCost

__all__ = [
    "ChordRing",
    "DHTProtocol",
    "FaultHooks",
    "LookupResult",
    "fail_fraction",
    "fail_nodes",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "IdSpace",
    "KademliaOverlay",
    "DEFAULT_SIZE_MODEL",
    "SizeModel",
    "Node",
    "PastryOverlay",
    "replica_chain",
    "replicate_to_successors",
    "LoadTracker",
    "OpCost",
]
