"""Command-line interface: regenerate any paper table/figure directly.

Usage::

    python -m repro list
    python -m repro table2 [--seed 1] [--scale 0.02] [--nodes 128]
    python -m repro accuracy --seed 2
    python -m repro all --seed 1          # everything, in order

Each command prints the same text table its benchmark archives under
``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments.accuracy import format_accuracy, run_accuracy_sweep
from repro.experiments.ablations import (
    format_ablation,
    run_bitshift_ablation,
    run_lim_ablation,
    run_overlay_comparison,
    run_replication_ablation,
)
from repro.experiments.baselines import format_baselines, run_baseline_comparison
from repro.experiments.churn import format_churn, run_churn_experiment
from repro.experiments.histogram_accuracy import (
    format_histogram_accuracy,
    run_histogram_accuracy,
)
from repro.experiments.histogram_types import (
    format_histogram_types,
    run_histogram_types,
)
from repro.experiments.insertion import run_insertion_experiment
from repro.experiments.multidim import format_multidim, run_multidim
from repro.experiments.multitenant import format_multitenant, run_multitenant
from repro.experiments.query_opt import run_query_opt
from repro.experiments.faultmatrix import format_faultmatrix, run_faultmatrix
from repro.experiments.robustness import format_robustness, run_failure_robustness
from repro.experiments.scalability import (
    format_scalability,
    run_scalability,
    sweep_node_counts,
)
from repro.experiments.soak import format_soak, run_soak
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import format_table3, run_table3
from repro.experiments.tracing import TraceScenario, format_trace, run_traced_count

__all__ = ["main", "EXPERIMENTS"]


def _run_table2(args: argparse.Namespace) -> str:
    kwargs = {"seed": args.seed}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.nodes is not None:
        kwargs["n_nodes"] = args.nodes
    kwargs["jobs"] = args.jobs
    rows = run_table2(**kwargs)
    return format_table2(rows, args.scale if args.scale is not None else 2e-2)


def _run_table3(args: argparse.Namespace) -> str:
    kwargs = {"seed": args.seed}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.nodes is not None:
        kwargs["n_nodes"] = args.nodes
    kwargs["jobs"] = args.jobs
    rows = run_table3(**kwargs)
    return format_table3(rows, args.scale if args.scale is not None else 1e-2)


def _run_insertion(args: argparse.Namespace) -> str:
    kwargs = {"seed": args.seed}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.nodes is not None:
        kwargs["n_nodes"] = args.nodes
    return run_insertion_experiment(**kwargs).format()


def _run_scalability(args: argparse.Namespace) -> str:
    kwargs = {"seed": args.seed}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.nodes is not None:
        # --nodes caps the geometric N=10^3 -> N sweep (e.g. 1000000
        # runs the full 1e3/1e4/1e5/1e6 ladder locally).
        kwargs["node_counts"] = sweep_node_counts(args.nodes)
    kwargs["jobs"] = args.jobs
    return format_scalability(run_scalability(**kwargs))


def _run_multitenant(args: argparse.Namespace) -> str:
    kwargs = {"seed": args.seed}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.nodes is not None:
        kwargs["node_counts"] = (args.nodes,)
    kwargs["jobs"] = args.jobs
    return format_multitenant(run_multitenant(**kwargs))


def _run_accuracy(args: argparse.Namespace) -> str:
    kwargs = {"seed": args.seed}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.nodes is not None:
        kwargs["n_nodes"] = args.nodes
    kwargs["jobs"] = args.jobs
    return format_accuracy(run_accuracy_sweep(**kwargs))


def _run_histogram_accuracy(args: argparse.Namespace) -> str:
    return format_histogram_accuracy(
        run_histogram_accuracy(seed=args.seed, jobs=args.jobs)
    )


def _run_histogram_types(args: argparse.Namespace) -> str:
    return format_histogram_types(run_histogram_types(seed=args.seed))


def _run_query_opt(args: argparse.Namespace) -> str:
    kwargs = {"seed": args.seed}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.nodes is not None:
        kwargs["n_nodes"] = args.nodes
    return run_query_opt(**kwargs).format()


def _run_baselines(args: argparse.Namespace) -> str:
    kwargs = {"seed": args.seed}
    if args.nodes is not None:
        kwargs["n_nodes"] = args.nodes
    kwargs["jobs"] = args.jobs
    return format_baselines(run_baseline_comparison(**kwargs))


def _run_multidim(args: argparse.Namespace) -> str:
    return format_multidim(run_multidim(seed=args.seed))


def _run_churn(args: argparse.Namespace) -> str:
    return format_churn(run_churn_experiment(seed=args.seed, jobs=args.jobs))


def _run_robustness(args: argparse.Namespace) -> str:
    return format_robustness(
        run_failure_robustness(seed=args.seed, jobs=args.jobs)
    )


def _run_faultmatrix(args: argparse.Namespace) -> str:
    kwargs = {"seed": args.seed, "jobs": args.jobs}
    if args.nodes is not None:
        kwargs["n_nodes"] = args.nodes
    return format_faultmatrix(run_faultmatrix(**kwargs))


def _run_soak(args: argparse.Namespace) -> str:
    kwargs = {"seed": args.seed, "jobs": args.jobs}
    if args.nodes is not None:
        kwargs["n_nodes"] = args.nodes
    return format_soak(run_soak(**kwargs))


def _run_trace(args: argparse.Namespace) -> str:
    scenario = TraceScenario(seed=args.seed)
    if args.nodes is not None:
        scenario = TraceScenario(seed=args.seed, n_nodes=args.nodes)
    run = run_traced_count(scenario)
    if args.trace_jsonl is not None:
        import pathlib

        path = pathlib.Path(args.trace_jsonl)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(run.jsonl())
    return format_trace(run)


def _run_ablations(args: argparse.Namespace) -> str:
    parts = [
        format_ablation("Retry budget ablation (section 4.1)", "nodes visited",
                        run_lim_ablation(seed=args.seed, jobs=args.jobs)),
        format_ablation("Replication under crashes (section 3.5)", "hops/insert",
                        run_replication_ablation(seed=args.seed, jobs=args.jobs)),
        format_ablation("Bit-shift mapping ablation (section 3.5)", "insert kB",
                        run_bitshift_ablation(seed=args.seed, jobs=args.jobs)),
        format_ablation("DHS over Chord vs Kademlia", "nodes visited",
                        run_overlay_comparison(seed=args.seed, jobs=args.jobs)),
    ]
    return "\n\n".join(parts)


#: Registered experiments: name -> (runner, description).
EXPERIMENTS: Dict[str, tuple[Callable[[argparse.Namespace], str], str]] = {
    "insertion": (_run_insertion, "§5.2 insertion & maintenance costs"),
    "table2": (_run_table2, "Table 2: counting costs and accuracy"),
    "table3": (_run_table3, "Table 3: histogram building costs"),
    "scalability": (_run_scalability, "§5.2 scalability (hops vs N)"),
    "accuracy": (_run_accuracy, "§5.2 accuracy vs m (collapse at large m)"),
    "histogram-accuracy": (_run_histogram_accuracy, "§5.2 per-cell histogram error"),
    "histogram-types": (_run_histogram_types, "footnote 5: v-optimal/maxdiff/compressed"),
    "query-opt": (_run_query_opt, "§5.2 join-ordering savings"),
    "baselines": (_run_baselines, "§1 related-work families comparison"),
    "multidim": (_run_multidim, "§4.2 multi-dimension counting"),
    "multitenant": (_run_multitenant, "multi-tenant Zipf workload: storage balance at scale"),
    "churn": (_run_churn, "§3.3 soft-state maintenance under churn"),
    "robustness": (_run_robustness, "§3.5 undetected failures vs replication"),
    "faultmatrix": (_run_faultmatrix, "fault kind x intensity x policy x R matrix"),
    "soak": (_run_soak, "continuous-churn soak: divergence & repair bandwidth"),
    "ablations": (_run_ablations, "lim / replication / bit-shift / overlay ablations"),
    "trace": (_run_trace, "traced count: span tree, metrics, Fig. 7 load table"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the DHS paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["list", "all"],
        help="experiment to run ('list' prints the catalogue)",
    )
    parser.add_argument("--seed", type=int, default=1, help="master seed (default 1)")
    parser.add_argument(
        "--scale", type=float, default=None,
        help="workload scale override (1.0 = paper size)",
    )
    parser.add_argument(
        "--nodes", type=int, default=None, help="overlay size override"
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for trial grids (default: $DHS_JOBS or 1); "
        "results are bit-identical at any width",
    )
    parser.add_argument(
        "--output", type=str, default=None,
        help="directory to also write each report into (<name>.txt)",
    )
    parser.add_argument(
        "--trace-jsonl", type=str, default=None,
        help="with 'trace': also dump the span trace as JSONL to this path",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.experiment == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            print(f"{name.ljust(width)}  {EXPERIMENTS[name][1]}")
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    output_dir = None
    if args.output is not None:
        import pathlib

        output_dir = pathlib.Path(args.output)
        output_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        runner, _ = EXPERIMENTS[name]
        report = runner(args)
        print(report)
        print()
        if output_dir is not None:
            (output_dir / f"{name}.txt").write_text(report + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
