"""Random-node sampling baseline (paper's fourth family).

Probe ``s`` uniformly random nodes, average their local item counts, and
scale by ``N``.  Cheap for small samples — but the variance shrinks only
as ``1/sqrt(s)`` (the accuracy violation of constraint 4, cf. Chaudhuri
et al.'s sampling bounds), and cross-node duplicates are invisible, so
the method estimates *occurrences*, never distinct counts
(constraint 6).
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import BaselineResult, Scenario
from repro.errors import ConfigurationError
from repro.overlay.dht import DHTProtocol
from repro.overlay.stats import OpCost
from repro.sim.seeds import rng_for

__all__ = ["SamplingEstimator"]

_COUNT_BYTES = 8


class SamplingEstimator:
    """Uniform node-sampling estimator of the network-wide item count."""

    def __init__(self, dht: DHTProtocol, seed: int = 0) -> None:
        self.dht = dht
        self._rng = rng_for(seed, "sampling")

    def query(
        self,
        scenario: Scenario,
        sample_size: int,
        origin: Optional[int] = None,
        local_dedup: bool = True,
    ) -> BaselineResult:
        """Sample ``sample_size`` distinct nodes and extrapolate."""
        node_ids = list(self.dht.node_ids())
        if not 1 <= sample_size <= len(node_ids):
            raise ConfigurationError(
                f"sample_size must be in [1, {len(node_ids)}], got {sample_size}"
            )
        sample = self._rng.sample(node_ids, sample_size)
        cost = OpCost()
        total = 0.0
        for node_id in sample:
            # Reaching a uniformly random node costs one routed lookup.
            lookup = self.dht.lookup(node_id, origin=origin)
            cost.add(lookup.cost)
            cost.bytes += lookup.cost.hops * _COUNT_BYTES + _COUNT_BYTES
            items = scenario.get(node_id, [])
            total += len(set(items)) if local_dedup else len(items)
            self.dht.load.record(node_id)
        estimate = total / sample_size * len(node_ids)
        return BaselineResult(
            estimate=estimate,
            cost=cost,
            rounds=1,
            duplicate_insensitive=False,
        )
