"""Related-work baselines: one representative per family the paper surveys."""

from repro.baselines.base import BaselineResult, Scenario, distinct_count, total_count
from repro.baselines.convergecast import ConvergecastAggregator
from repro.baselines.gossip import GossipTrace, PushSumGossip
from repro.baselines.sampling import SamplingEstimator
from repro.baselines.single_node import PartitionedCounter, SingleNodeCounter
from repro.baselines.sketch_gossip import SketchGossip

__all__ = [
    "BaselineResult",
    "Scenario",
    "distinct_count",
    "total_count",
    "ConvergecastAggregator",
    "GossipTrace",
    "PushSumGossip",
    "SamplingEstimator",
    "PartitionedCounter",
    "SingleNodeCounter",
    "SketchGossip",
]
