"""Shared types for the related-work baseline estimators.

The paper's introduction sorts prior distributed-counting work into four
families — one-node-per-counter, gossip, broadcast/convergecast, and
sampling — and argues each violates at least one of its six constraints.
This package implements a representative of each family against the same
scenario shape (items held per node) so the violations can be *measured*
rather than asserted: hotspot load, round counts, duplicate sensitivity,
sampling error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.overlay.stats import OpCost

__all__ = ["Scenario", "BaselineResult", "distinct_count", "total_count"]

#: Items held per node: the common input of every baseline.
Scenario = Dict[int, List]


def distinct_count(scenario: Scenario) -> int:
    """Ground-truth number of distinct items in a scenario."""
    seen = set()
    for items in scenario.values():
        seen.update(items)
    return len(seen)


def total_count(scenario: Scenario) -> int:
    """Ground-truth number of item *occurrences* (duplicates included)."""
    return sum(len(items) for items in scenario.values())


@dataclass
class BaselineResult:
    """Outcome of one baseline estimation run."""

    estimate: float
    cost: OpCost = field(default_factory=OpCost)
    #: Iterations for multi-round protocols (gossip), else 1.
    rounds: int = 1
    #: True when the estimator counts distinct items (constraint 6).
    duplicate_insensitive: bool = False

    def relative_error(self, truth: float) -> float:
        """|estimate - truth| / truth."""
        if truth == 0:
            return 0.0 if self.estimate == 0 else float("inf")
        return abs(self.estimate - truth) / truth
