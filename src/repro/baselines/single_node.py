"""One-node-per-counter baseline (paper section 1, first family).

The obvious DHT design: hash the counter's name to a node and let that
node keep the value.  Every update and every query hits the same node,
so the counter node's access load grows linearly with activity — the
scalability/load-balance violation (constraints 2 and 3) the paper calls
out.  Distinct counting additionally requires the counter node to store
the full item-id set (O(n) storage, constraint 3 again).

:class:`PartitionedCounter` is the family's other member the paper
names — "hash-partitioned counters, where the counting space is
partitioned into disjoint intervals, each mapped to a (set of) node(s)".
Spreading over ``P`` partitions divides the hotspot by ``P`` but
multiplies query cost by ``P`` (every partition must be read), which is
the paper's point: a fixed small node set "does not solve the problem".
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Set, cast

from repro.baselines.base import BaselineResult, Scenario
from repro.hashing.family import HashFamily, default_hash_family
from repro.overlay.dht import DHTProtocol
from repro.overlay.node import Node
from repro.overlay.stats import OpCost

__all__ = ["SingleNodeCounter", "PartitionedCounter"]


class SingleNodeCounter:
    """A counter (optionally duplicate-insensitive) on one DHT node."""

    def __init__(
        self,
        dht: DHTProtocol,
        counter_id: Hashable,
        distinct: bool = True,
        hash_family: Optional[HashFamily] = None,
    ) -> None:
        self.dht = dht
        self.counter_id = counter_id
        self.distinct = distinct
        self.hash_family = hash_family or default_hash_family(bits=dht.space.bits)
        self._key = self.hash_family(("counter", counter_id)) & (dht.space.size - 1)

    @property
    def counter_node(self) -> int:
        """The (current) node hosting the counter."""
        return self.dht.owner_of(self._key)

    # ------------------------------------------------------------------
    # Updates.
    # ------------------------------------------------------------------
    def add(self, item: Hashable, origin: Optional[int] = None) -> OpCost:
        """Record one item occurrence (routed to the counter node)."""

        def write(node: Node) -> None:
            slot = cast(
                Dict[str, Any],
                node.store.setdefault(
                    ("counter", self.counter_id), {"n": 0, "set": set()}
                ),
            )
            if self.distinct:
                slot["set"].add(item)
            else:
                slot["n"] += 1

        _, cost = self.dht.store(self._key, write, origin=origin, payload_bytes=8)
        return cost

    def populate(self, scenario: Scenario) -> OpCost:
        """Insert every item occurrence from its holding node."""
        total = OpCost()
        for node_id, items in scenario.items():
            for item in items:
                total.add(self.add(item, origin=node_id))
        return total

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def query(self, origin: Optional[int] = None) -> BaselineResult:
        """Read the counter value (one routed lookup)."""
        lookup = self.dht.lookup(self._key, origin=origin)
        slot = self.dht.probe(
            lookup.node_id,
            lambda node: node.store.get(("counter", self.counter_id)),
        )
        if slot is None:
            value = 0.0
        elif self.distinct:
            value = float(len(slot["set"]))
        else:
            value = float(slot["n"])
        cost = lookup.cost
        cost.bytes += cost.hops * 8 + 8  # request routed + direct response
        return BaselineResult(
            estimate=value, cost=cost, duplicate_insensitive=self.distinct
        )

    def counter_storage_entries(self) -> int:
        """Items stored at the counter node (O(n) for distinct mode)."""
        raw = self.dht.node(self.counter_node).store.get(("counter", self.counter_id))
        if raw is None:
            return 0
        slot = cast(Dict[str, Any], raw)
        return len(slot["set"]) if self.distinct else 1


class PartitionedCounter:
    """Hash-partitioned distinct counter over ``P`` fixed partitions.

    Updates hash the *item* to one of ``P`` counter keys; queries must
    contact all ``P`` partition owners and sum their distinct counts
    (partitioning by item hash makes the partial sets disjoint, so the
    sum is exact).
    """

    def __init__(
        self,
        dht: DHTProtocol,
        counter_id: Hashable,
        partitions: int = 8,
        hash_family: Optional[HashFamily] = None,
    ) -> None:
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        self.dht = dht
        self.counter_id = counter_id
        self.partitions = partitions
        self.hash_family = hash_family or default_hash_family(bits=dht.space.bits)
        self._keys = [
            self.hash_family(("partition", counter_id, i)) & (dht.space.size - 1)
            for i in range(partitions)
        ]

    def partition_nodes(self) -> list:
        """Current owner of every partition."""
        return [self.dht.owner_of(key) for key in self._keys]

    def add(self, item: Hashable, origin: Optional[int] = None) -> OpCost:
        """Record one item in its hash partition."""
        index = self.hash_family(item) % self.partitions

        def write(node: Node) -> None:
            slot = cast(
                Set[Hashable],
                node.store.setdefault(("partition", self.counter_id, index), set()),
            )
            slot.add(item)

        _, cost = self.dht.store(self._keys[index], write, origin=origin, payload_bytes=8)
        return cost

    def populate(self, scenario: Scenario) -> OpCost:
        """Insert every item occurrence from its holding node."""
        total = OpCost()
        for node_id, items in scenario.items():
            for item in items:
                total.add(self.add(item, origin=node_id))
        return total

    def query(self, origin: Optional[int] = None) -> BaselineResult:
        """Read every partition and sum (P routed lookups)."""
        cost = OpCost()
        total = 0.0
        for index, key in enumerate(self._keys):
            lookup = self.dht.lookup(key, origin=origin)
            slot = self.dht.probe(
                lookup.node_id,
                lambda node, i=index: node.store.get(
                    ("partition", self.counter_id, i)
                ),
            )
            total += len(slot) if slot else 0
            cost.add(lookup.cost)
            cost.bytes += lookup.cost.hops * 8 + 8
        return BaselineResult(
            estimate=total, cost=cost, duplicate_insensitive=True
        )
