"""Gossip with hash-sketch payloads — duplicate-insensitive gossip.

The paper observes that all duplicate-insensitive distributed counters
use hash sketches, and characterizes convergecast as "directed gossip".
This baseline completes the picture: plain push-style gossip where nodes
exchange *sketch unions* instead of (x, w) pairs (the Mosk-Aoyama &
Shah flavour).  Because sketch union is idempotent, the protocol is
duplicate-insensitive and needs no weight bookkeeping — every node's
sketch converges to the global union in ``O(log N)`` rounds.

What it still cannot fix (and why DHS wins): every round moves a full
``m``-register sketch per node, the answer is only available after the
multi-round protocol completes, and *every* node pays, query or not —
the efficiency constraint (1) violation of the gossip family, now with
the duplicate problem solved at a bandwidth premium.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.baselines.base import BaselineResult, Scenario
from repro.core.config import DHSConfig
from repro.errors import ConfigurationError
from repro.overlay.dht import DHTProtocol
from repro.overlay.stats import OpCost
from repro.sim.seeds import rng_for

__all__ = ["SketchGossip"]


class SketchGossip:
    """Push gossip of sketch unions; converges to the distinct count."""

    def __init__(
        self,
        dht: DHTProtocol,
        sketch_config: DHSConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.dht = dht
        self.sketch_config = sketch_config or DHSConfig(num_bitmaps=64)
        self._rng = rng_for(seed, "sketch-gossip")

    def run(
        self,
        scenario: Scenario,
        max_rounds: int = 64,
    ) -> Tuple[BaselineResult, int]:
        """Gossip until every node holds the global union.

        Returns the (converged) estimate at a random node and the number
        of rounds until global convergence.
        """
        node_ids = list(self.dht.node_ids())
        if not node_ids:
            raise ConfigurationError("sketch gossip needs a live overlay")
        hash_family = self.sketch_config.hash_family(self.dht.space.bits)
        sketches: Dict[int, object] = {}
        for node_id in node_ids:
            sketch = self.sketch_config.make_sketch(hash_family)
            sketch.add_all(scenario.get(node_id, []))
            sketches[node_id] = sketch
        global_union = self.sketch_config.make_sketch(hash_family)
        for sketch in sketches.values():
            global_union.merge(sketch)
        target = global_union.estimate()

        sketch_bytes = len(global_union.to_bytes())
        cost = OpCost()
        rounds = 0
        for rounds in range(1, max_rounds + 1):
            pushes = []
            for node_id in node_ids:
                peer = node_ids[self._rng.randrange(len(node_ids))]
                pushes.append((peer, sketches[node_id]))
                cost.hops += 1
                cost.messages += 1
                cost.bytes += sketch_bytes
                self.dht.load.record(peer)
            for peer, sketch in pushes:
                sketches[peer].merge(sketch)
            if all(s.estimate() == target for s in sketches.values()):
                break
        querier = node_ids[self._rng.randrange(len(node_ids))]
        return (
            BaselineResult(
                estimate=sketches[querier].estimate(),
                cost=cost,
                rounds=rounds,
                duplicate_insensitive=True,
            ),
            rounds,
        )
