"""Broadcast/convergecast tree aggregation (paper's third family).

A querying node floods the query down a spanning tree of the overlay and
aggregates answers back up.  Carrying raw counts up the tree is
duplicate-sensitive; carrying *hash sketches* (as Considine et al. and
Bawa et al. do) restores duplicate insensitivity — at the price both
variants share: every query touches all N nodes (constraint 1) and the
nodes near the root relay the whole network's traffic (constraint 3).

The tree is built from ring successor geometry: node ``i`` (in ring
order, rooted at the querier) has children ``2i+1`` / ``2i+2`` — a
balanced binary tree with ``O(log N)`` depth, the favourable case for
this family.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.baselines.base import BaselineResult, Scenario
from repro.core.config import DHSConfig
from repro.overlay.dht import DHTProtocol
from repro.overlay.stats import OpCost

__all__ = ["ConvergecastAggregator"]

_COUNT_BYTES = 8


class ConvergecastAggregator:
    """Tree aggregation with raw counts or hash-sketch payloads."""

    def __init__(
        self,
        dht: DHTProtocol,
        use_sketches: bool = True,
        sketch_config: Optional[DHSConfig] = None,
    ) -> None:
        self.dht = dht
        self.use_sketches = use_sketches
        self.sketch_config = sketch_config or DHSConfig(num_bitmaps=64)

    def _sketch_bytes(self) -> int:
        """Up-message payload when carrying a sketch."""
        sketch = self.sketch_config.make_sketch(
            self.sketch_config.hash_family(self.dht.space.bits)
        )
        return len(sketch.to_bytes())

    def query(
        self,
        scenario: Scenario,
        root: Optional[int] = None,
        metric_id: Hashable = "count",
    ) -> BaselineResult:
        """Run one broadcast + convergecast round from ``root``."""
        node_ids = list(self.dht.node_ids())
        if root is None:
            root = node_ids[0]
        # Ring order rotated so the root is index 0; children of index i
        # are 2i+1 and 2i+2.
        start = node_ids.index(root)
        order = node_ids[start:] + node_ids[:start]
        n = len(order)

        cost = OpCost()
        hash_family = self.sketch_config.hash_family(self.dht.space.bits)
        up_bytes = self._sketch_bytes() if self.use_sketches else _COUNT_BYTES

        # Broadcast: one query message per tree edge.
        cost.hops += n - 1
        cost.messages += n - 1
        cost.bytes += (n - 1) * _COUNT_BYTES
        for node_id in order:
            self.dht.load.record(node_id)
        # Root and inner nodes relay their whole subtree's answers; track
        # relay load explicitly (the family's hotspot).
        subtree_sizes = [1] * n
        for index in range(n - 1, 0, -1):
            parent = (index - 1) // 2
            subtree_sizes[parent] += subtree_sizes[index]
            self.dht.load.record(order[parent], amount=1)

        # Convergecast: leaves upward.
        if self.use_sketches:
            partial = []
            for node_id in order:
                sketch = self.sketch_config.make_sketch(hash_family)
                sketch.add_all(scenario.get(node_id, []))
                partial.append(sketch)
            for index in range(n - 1, 0, -1):
                parent = (index - 1) // 2
                partial[parent].merge(partial[index])
                cost.hops += 1
                cost.messages += 1
                cost.bytes += up_bytes
            estimate = partial[0].estimate()
        else:
            counts = [float(len(scenario.get(node_id, []))) for node_id in order]
            for index in range(n - 1, 0, -1):
                parent = (index - 1) // 2
                counts[parent] += counts[index]
                cost.hops += 1
                cost.messages += 1
                cost.bytes += up_bytes
            estimate = counts[0]

        return BaselineResult(
            estimate=estimate,
            cost=cost,
            rounds=1,
            duplicate_insensitive=self.use_sketches,
        )
