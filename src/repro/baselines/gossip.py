"""Push-sum gossip aggregation (Kempe, Dobra & Gehrke, FOCS 2003).

Every node holds a pair ``(x_i, w_i)``; each round it keeps half and
pushes half to a uniformly random peer.  The ratio ``x_i / w_i``
converges exponentially fast to ``sum(x) / sum(w)``; seeding ``w = 1``
at a single node makes the ratio converge to the global sum.

This is the paper's second family: per-round bandwidth is tiny, but the
protocol needs many *rounds* over the whole network (violating the
efficiency constraint 1), offers eventual-consistency semantics
(constraint 4), and counts occurrences, not distinct items
(constraint 6 — unless every node first locally dedups, which cannot fix
cross-node duplicates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.baselines.base import BaselineResult, Scenario
from repro.errors import ConfigurationError
from repro.overlay.dht import DHTProtocol
from repro.overlay.stats import OpCost
from repro.sim.seeds import rng_for

__all__ = ["PushSumGossip", "GossipTrace"]

_PAIR_BYTES = 16  # two 8-byte floats per message


@dataclass
class GossipTrace:
    """Convergence diagnostics: max relative deviation per round."""

    deviations: list[float]


class PushSumGossip:
    """Push-sum protocol estimating the network-wide sum of node values."""

    def __init__(self, dht: DHTProtocol, seed: int = 0) -> None:
        self.dht = dht
        self._rng = rng_for(seed, "gossip")

    def run(
        self,
        scenario: Scenario,
        epsilon: float = 0.01,
        max_rounds: int = 200,
        local_dedup: bool = True,
    ) -> tuple[BaselineResult, GossipTrace]:
        """Gossip until every node's estimate is within ``epsilon``.

        Returns the (converged) estimate at an arbitrary node plus a
        per-round convergence trace.  ``local_dedup`` lets nodes count
        their own items distinctly first; duplicates held by *different*
        nodes are still double-counted — the family's inherent limit.
        """
        if not 0 < epsilon < 1:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        node_ids = list(self.dht.node_ids())
        if not node_ids:
            raise ConfigurationError("gossip needs a live overlay")
        x: Dict[int, float] = {}
        w: Dict[int, float] = {}
        for node_id in node_ids:
            items = scenario.get(node_id, [])
            x[node_id] = float(len(set(items)) if local_dedup else len(items))
            w[node_id] = 0.0
        w[node_ids[0]] = 1.0  # single unit weight => ratio converges to sum
        truth = sum(x.values())

        cost = OpCost()
        trace = GossipTrace(deviations=[])
        rounds = 0
        for rounds in range(1, max_rounds + 1):
            inbox_x: Dict[int, float] = {n: 0.0 for n in node_ids}
            inbox_w: Dict[int, float] = {n: 0.0 for n in node_ids}
            for node_id in node_ids:
                peer = node_ids[self._rng.randrange(len(node_ids))]
                half_x, half_w = x[node_id] / 2, w[node_id] / 2
                x[node_id], w[node_id] = half_x, half_w
                inbox_x[peer] += half_x
                inbox_w[peer] += half_w
                cost.hops += 1
                cost.messages += 1
                cost.bytes += _PAIR_BYTES
                self.dht.load.record(peer)
            for node_id in node_ids:
                x[node_id] += inbox_x[node_id]
                w[node_id] += inbox_w[node_id]
            deviation = self._max_deviation(x, w, truth)
            trace.deviations.append(deviation)
            if deviation <= epsilon:
                break
        querier = node_ids[self._rng.randrange(len(node_ids))]
        estimate = x[querier] / w[querier] if w[querier] > 0 else 0.0
        return (
            BaselineResult(
                estimate=estimate,
                cost=cost,
                rounds=rounds,
                duplicate_insensitive=False,
            ),
            trace,
        )

    @staticmethod
    def _max_deviation(x: Dict[int, float], w: Dict[int, float], truth: float) -> float:
        if truth == 0:
            return 0.0
        worst = 0.0
        for node_id, weight in w.items():
            if weight > 1e-12:
                worst = max(worst, abs(x[node_id] / weight - truth) / truth)
            else:
                worst = 1.0  # node has no estimate yet
        return worst
