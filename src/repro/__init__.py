"""repro — Distributed Hash Sketches over simulated DHT overlays.

A full reproduction of "Counting at Large: Efficient Cardinality
Estimation in Internet-Scale Data Networks" (Ntarmos, Triantafillou &
Weikum, ICDE 2006): PCSA and super-LogLog hash sketches distributed over
Chord/Kademlia overlays, DHS-based histograms, a histogram-driven query
optimizer, and the related-work baselines the paper compares against.

Quickstart::

    from repro import ChordRing, DHSConfig, DistributedHashSketch

    ring = ChordRing.build(1024, seed=7)
    dhs = DistributedHashSketch(ring, DHSConfig(num_bitmaps=256))
    dhs.insert_bulk("documents", (f"doc-{i}" for i in range(100_000)))
    result = dhs.count("documents")
    print(f"~{result.estimate():.0f} documents, {result.cost.hops} hops")
"""

from repro.core.config import DHSConfig
from repro.core.count import CountResult
from repro.core.dhs import DistributedHashSketch
from repro.core.policy import DEFAULT_POLICY, RetryPolicy
from repro.overlay.chord import ChordRing
from repro.overlay.faults import FaultEvent, FaultInjector, FaultPlan
from repro.overlay.kademlia import KademliaOverlay
from repro.overlay.pastry import PastryOverlay
from repro.sketches import (
    HyperLogLogSketch,
    LinearCounter,
    LogLogSketch,
    PCSASketch,
    SuperLogLogSketch,
)

__version__ = "1.0.0"

__all__ = [
    "DHSConfig",
    "CountResult",
    "DistributedHashSketch",
    "DEFAULT_POLICY",
    "RetryPolicy",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "ChordRing",
    "KademliaOverlay",
    "PastryOverlay",
    "HyperLogLogSketch",
    "LinearCounter",
    "LogLogSketch",
    "PCSASketch",
    "SuperLogLogSketch",
    "__version__",
]
