"""Multiset workloads with controlled duplication.

Duplicate insensitivity is the paper's constraint (6); these generators
produce multisets whose distinct-count is known exactly, with duplicates
modelling replicated documents in a file-sharing network or the same
event reported by several sensors.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigurationError
from repro.sim.seeds import rng_for

__all__ = ["replicated_multiset", "zipf_duplicated_multiset"]


def replicated_multiset(n_distinct: int, copies: int, seed: int = 0) -> List[int]:
    """``n_distinct`` items, each appearing exactly ``copies`` times,
    shuffled deterministically."""
    if n_distinct < 0:
        raise ConfigurationError(f"n_distinct must be >= 0, got {n_distinct}")
    if copies < 1:
        raise ConfigurationError(f"copies must be >= 1, got {copies}")
    items = [item for item in range(n_distinct) for _ in range(copies)]
    rng_for(seed, "replicated").shuffle(items)
    return items


def zipf_duplicated_multiset(
    n_distinct: int,
    total: int,
    theta: float = 1.0,
    seed: int = 0,
) -> List[int]:
    """A ``total``-element multiset over ``n_distinct`` items with
    Zipf-skewed duplication (popular documents replicated more).

    Every distinct item appears at least once, so the exact distinct
    count is ``n_distinct``.
    """
    if n_distinct < 1:
        raise ConfigurationError(f"n_distinct must be >= 1, got {n_distinct}")
    if total < n_distinct:
        raise ConfigurationError(
            f"total ({total}) must be >= n_distinct ({n_distinct})"
        )
    from repro.workloads.zipf import ZipfGenerator

    items = list(range(n_distinct))
    extras = total - n_distinct
    if extras:
        generator = ZipfGenerator(n_distinct, theta=theta)
        items.extend(int(v) - 1 for v in generator.sample(extras, seed=seed))
    rng_for(seed, "zipf-dup").shuffle(items)
    return items
