"""The paper's evaluation relations Q, R, S, T.

Section 5.1: four relations of 10/20/40/80 million 1 kB tuples, each
with a single integer attribute drawn Zipf(θ = 0.7), tuples assigned
uniformly at random to the overlay nodes.  ``standard_relations`` builds
the same workload at a configurable ``scale`` (1.0 = paper size); the
error-versus-m shapes only depend on being deep in the ``n >> m``
regime, which far smaller scales already are (see EXPERIMENTS.md).

Tuples are identified by dense 64-bit ids ``(relation_tag << 40) | index``
so hashing stays on the fast integer path; attribute values live in a
numpy array alongside.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigurationError
from repro.workloads.zipf import ZipfGenerator

__all__ = ["Relation", "make_relation", "standard_relations", "PAPER_SIZES"]

#: Paper section 5.1 relation cardinalities (tuples).
PAPER_SIZES: Dict[str, int] = {
    "Q": 10_000_000,
    "R": 20_000_000,
    "S": 40_000_000,
    "T": 80_000_000,
}

#: Tuple size assumed by the paper (1 kB) — used by the join cost model.
TUPLE_BYTES = 1024


@dataclass
class Relation:
    """A relation materialized for the simulation.

    ``values`` is the join attribute (the paper's single integer
    attribute ``a``).  ``filter_values`` optionally materializes a
    second, non-join attribute ``b`` for selection predicates — the
    multi-attribute extension the paper's introduction motivates.
    """

    name: str
    tag: int
    values: npt.NDArray[np.int64]  # join-attribute value per tuple
    domain: Tuple[int, int]  # [amin, amax] inclusive
    tuple_bytes: int = TUPLE_BYTES
    filter_values: npt.NDArray[np.int64] | None = None
    filter_domain: Tuple[int, int] | None = None

    @property
    def size(self) -> int:
        """Number of tuples."""
        return int(self.values.shape[0])

    def item_id(self, index: int) -> int:
        """Globally unique 64-bit id of tuple ``index``."""
        return (self.tag << 40) | index

    def item_ids(self) -> npt.NDArray[np.int64]:
        """All tuple ids as an int64 array."""
        return (np.int64(self.tag) << np.int64(40)) | np.arange(
            self.size, dtype=np.int64
        )

    def iter_items(self) -> Iterator[int]:
        """Iterate tuple ids as Python ints."""
        base = self.tag << 40
        for index in range(self.size):
            yield base | index

    def value_of(self, index: int) -> int:
        """Attribute value of tuple ``index``."""
        return int(self.values[index])


def _tag_for(name: str) -> int:
    """A stable 23-bit integer tag derived from the relation name alone.

    Pure by construction: the tag depends only on ``name``, never on how
    many relations were built first or in which order — workers building
    relations in different orders must mint identical tuple ids.  23 bits
    keeps ``tag << 40`` within a signed int64; blake2b makes collisions
    between the handful of workload names (Q/R/S/T, fixtures) negligible.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=3).digest()
    return int.from_bytes(digest, "big") & 0x7FFFFF


def make_relation(
    name: str,
    n_tuples: int,
    domain: int = 10_000,
    theta: float = 0.7,
    seed: int = 0,
    filter_domain: int | None = None,
    filter_theta: float = 0.7,
) -> Relation:
    """Build a relation with Zipf(θ)-distributed attribute values.

    ``filter_domain`` adds a second (non-join) attribute ``b`` with its
    own Zipf distribution, independent of ``a``.
    """
    if n_tuples < 1:
        raise ConfigurationError(f"n_tuples must be >= 1, got {n_tuples}")
    if n_tuples >= 1 << 40:
        raise ConfigurationError("n_tuples must fit in 40 bits")
    generator = ZipfGenerator(domain, theta=theta)
    values = generator.sample(n_tuples, seed=seed)
    filter_values = None
    filter_bounds = None
    if filter_domain is not None:
        filter_generator = ZipfGenerator(filter_domain, theta=filter_theta)
        filter_values = filter_generator.sample(n_tuples, seed=seed + 7919)
        filter_bounds = (1, filter_domain)
    return Relation(
        name=name,
        tag=_tag_for(name),
        values=values,
        domain=(1, domain),
        filter_values=filter_values,
        filter_domain=filter_bounds,
    )


def standard_relations(
    scale: float = 1e-3,
    domain: int = 10_000,
    theta: float = 0.7,
    seed: int = 0,
) -> List[Relation]:
    """The paper's Q/R/S/T workload at the given scale factor."""
    if not 0 < scale <= 1:
        raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
    relations = []
    for i, (name, full_size) in enumerate(PAPER_SIZES.items()):
        n_tuples = max(1, int(full_size * scale))
        relations.append(
            make_relation(name, n_tuples, domain=domain, theta=theta, seed=seed + i)
        )
    return relations
