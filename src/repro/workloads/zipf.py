"""Zipf-distributed value generation.

The paper's relations hold a single integer attribute "receiving values
according to a Zipf distribution with θ = 0.7" (section 5.1): value of
rank ``i`` (1-indexed) has probability proportional to ``1 / i^θ``.
Sampling uses an inverse-CDF table, vectorized through numpy so that
multi-million-tuple relations generate in milliseconds.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigurationError

__all__ = ["ZipfGenerator"]


class ZipfGenerator:
    """Samples integers from ``[1, domain]`` with Zipf(θ) frequencies.

    Rank 1 (the most frequent value) is mapped to value 1, rank 2 to
    value 2, and so on — the standard arrangement, which concentrates
    mass at the low end of the domain and is what makes equi-width
    histogram buckets unequal in count.
    """

    def __init__(self, domain: int, theta: float = 0.7) -> None:
        if domain < 1:
            raise ConfigurationError(f"domain must be >= 1, got {domain}")
        if theta < 0:
            raise ConfigurationError(f"theta must be >= 0, got {theta}")
        self.domain = domain
        self.theta = theta
        weights = 1.0 / np.power(np.arange(1, domain + 1, dtype=np.float64), theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def probability(self, value: int) -> float:
        """P(X == value) for a value in ``[1, domain]``."""
        if not 1 <= value <= self.domain:
            raise ValueError(f"value {value} outside [1, {self.domain}]")
        lower = self._cdf[value - 2] if value >= 2 else 0.0
        return float(self._cdf[value - 1] - lower)

    def sample(self, count: int, seed: int = 0) -> npt.NDArray[np.int64]:
        """``count`` iid samples as an int64 array (deterministic)."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        rng = np.random.default_rng(seed)
        uniform = rng.random(count)
        return np.searchsorted(self._cdf, uniform, side="left").astype(np.int64) + 1
