"""Assigning workload items to overlay nodes.

The paper assigns tuples to nodes uniformly at random (section 5.1);
each node then acts as the *inserter* for its own items.  Having many
independent inserters matters: every inserter picks its own random
target key per interval, which is what spreads copies of each logical
DHS bit across an interval's nodes and makes the counting probe
succeed with few retries.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigurationError
from repro.sim.seeds import derive_seed

__all__ = ["assign_uniform", "assign_items"]


def assign_uniform(
    n_items: int,
    node_ids: Sequence[int],
    seed: int = 0,
) -> Dict[int, npt.NDArray[np.intp]]:
    """Uniformly map item indices ``[0, n_items)`` onto nodes.

    Returns ``{node_id: array of item indices}`` covering every index
    exactly once.
    """
    if n_items < 0:
        raise ConfigurationError(f"n_items must be >= 0, got {n_items}")
    if not node_ids:
        raise ConfigurationError("need at least one node")
    rng = np.random.default_rng(derive_seed(seed, "assignment") % (2**32))
    choices = rng.integers(0, len(node_ids), size=n_items)
    order = np.argsort(choices, kind="stable")
    sorted_choices = choices[order]
    boundaries = np.searchsorted(sorted_choices, np.arange(len(node_ids) + 1))
    assignment: Dict[int, npt.NDArray[np.intp]] = {}
    for i, node_id in enumerate(node_ids):
        chunk = order[boundaries[i] : boundaries[i + 1]]
        if chunk.size:
            assignment[node_id] = chunk
    return assignment


def assign_items(
    items: Sequence[Hashable],
    node_ids: Sequence[int],
    seed: int = 0,
) -> Dict[int, List[Hashable]]:
    """Uniformly map concrete items onto nodes (small workloads)."""
    index_map = assign_uniform(len(items), node_ids, seed=seed)
    return {
        node_id: [items[i] for i in indices] for node_id, indices in index_map.items()
    }
