"""Multi-tenant Zipf workload: many concurrent metrics, skewed traffic.

The paper evaluates one relation at a time; a production deployment of
the ROADMAP's shape serves 10^5–10^6 concurrent ``metric_id``s whose
traffic follows the usual heavy-tailed popularity law.  This module
generates that workload deterministically:

* :func:`tenant_op_counts` draws ``total_ops`` operations across
  ``n_tenants`` tenants from a :class:`~repro.workloads.zipf.ZipfGenerator`
  (theta-skewed, seeded) and returns the per-tenant operation counts;
* :func:`tenant_item_ids` gives tenant ``t`` a disjoint block of the
  item-id space (``t * 2^32 + k``), so distinct tenants never collide
  and each tenant's true cardinality equals its op count;
* :func:`load_balance` condenses a per-node storage (or access) vector
  into the two balance figures the paper's uniform-load claim is judged
  by: the max/mean ratio and the Gini coefficient.

Everything is pure numpy on explicit seeds — bit-identical at any
``DHS_JOBS`` width by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence, Union

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigurationError
from repro.workloads.zipf import ZipfGenerator

__all__ = [
    "LoadBalance",
    "TENANT_ID_STRIDE",
    "gini_coefficient",
    "load_balance",
    "tenant_item_ids",
    "tenant_metric",
    "tenant_op_counts",
]

#: Width of each tenant's private block of the item-id space.  Tenant
#: ``t`` owns item ids ``[t * stride, t * stride + count)``; with int64
#: item ids this supports 2^31 tenants of up to 2^32 items each.
TENANT_ID_STRIDE = 1 << 32


def tenant_metric(tenant: int) -> Hashable:
    """The DHS metric id under which tenant ``tenant`` counts."""
    return ("tenant", tenant)


def tenant_op_counts(
    n_tenants: int,
    total_ops: int,
    theta: float = 0.7,
    seed: int = 0,
) -> npt.NDArray[np.int64]:
    """Per-tenant operation counts for Zipf-distributed traffic.

    Draws ``total_ops`` tenant choices from a Zipf(theta) law over
    ``[1, n_tenants]`` (tenant 0 is the most popular) and histograms
    them, so ``result[t]`` is how many operations tenant ``t`` receives
    and ``result.sum() == total_ops``.
    """
    if n_tenants < 1:
        raise ConfigurationError(f"n_tenants must be >= 1, got {n_tenants}")
    if total_ops < 0:
        raise ConfigurationError(f"total_ops must be >= 0, got {total_ops}")
    if total_ops == 0:
        return np.zeros(n_tenants, dtype=np.int64)
    generator = ZipfGenerator(n_tenants, theta=theta)
    samples = generator.sample(total_ops, seed=seed)
    return np.bincount(samples - 1, minlength=n_tenants).astype(np.int64)


def tenant_item_ids(tenant: int, count: int) -> npt.NDArray[np.int64]:
    """The first ``count`` item ids of tenant ``tenant``'s private block.

    Blocks are disjoint across tenants, so inserting these under
    :func:`tenant_metric` gives the tenant an exact true cardinality of
    ``count``.
    """
    if tenant < 0:
        raise ConfigurationError(f"tenant must be >= 0, got {tenant}")
    if not 0 <= count < TENANT_ID_STRIDE:
        raise ConfigurationError(
            f"count must be in [0, {TENANT_ID_STRIDE}), got {count}"
        )
    base = np.int64(tenant) * np.int64(TENANT_ID_STRIDE)
    return base + np.arange(count, dtype=np.int64)


def gini_coefficient(values: Union[Sequence[float], npt.NDArray[np.float64]]) -> float:
    """Gini coefficient of a non-negative load vector (0 = uniform).

    Uses the sorted-cumulative-share formula; an all-zero or empty
    vector is perfectly balanced (0.0).
    """
    array = np.array(values, dtype=np.float64)
    array.sort()
    if array.size == 0:
        return 0.0
    if float(array[0]) < 0.0:
        raise ConfigurationError("load values must be non-negative")
    total = float(array.sum())
    if total == 0.0:
        return 0.0
    n = array.size
    cumulative_share = float(np.cumsum(array).sum()) / total
    return float((n + 1 - 2.0 * cumulative_share) / n)


@dataclass(frozen=True)
class LoadBalance:
    """Balance summary of one per-node load vector."""

    n: int
    mean: float
    max: float
    max_mean: float
    gini: float


def load_balance(
    values: Union[Sequence[float], npt.NDArray[np.float64]]
) -> LoadBalance:
    """Condense a per-node load vector into the paper's balance figures.

    ``max_mean`` is the max/mean entry ratio (1.0 = perfectly uniform;
    defined as 0.0 for an all-zero vector), ``gini`` the Gini
    coefficient of the same vector.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise ConfigurationError("load_balance needs at least one value")
    mean = float(array.mean())
    peak = float(array.max())
    return LoadBalance(
        n=int(array.size),
        mean=mean,
        max=peak,
        max_mean=peak / mean if mean > 0.0 else 0.0,
        gini=gini_coefficient(array),
    )
