"""Workload generators: Zipf values, relations Q/R/S/T, assignments,
multisets, multi-tenant traffic."""

from repro.workloads.assignment import assign_items, assign_uniform
from repro.workloads.multisets import replicated_multiset, zipf_duplicated_multiset
from repro.workloads.multitenant import (
    LoadBalance,
    gini_coefficient,
    load_balance,
    tenant_item_ids,
    tenant_metric,
    tenant_op_counts,
)
from repro.workloads.relations import (
    PAPER_SIZES,
    Relation,
    make_relation,
    standard_relations,
)
from repro.workloads.zipf import ZipfGenerator

__all__ = [
    "assign_items",
    "assign_uniform",
    "replicated_multiset",
    "zipf_duplicated_multiset",
    "LoadBalance",
    "gini_coefficient",
    "load_balance",
    "tenant_item_ids",
    "tenant_metric",
    "tenant_op_counts",
    "PAPER_SIZES",
    "Relation",
    "make_relation",
    "standard_relations",
    "ZipfGenerator",
]
