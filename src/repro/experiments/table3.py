"""Experiment: Table 3 — histogram building/reconstruction costs.

For each ``m``, the cost for a node to reconstruct a 100-bucket
equi-width histogram of a relation stored in the overlay: nodes visited,
hops, and bandwidth.  The paper's headline is structural: hop count
matches a single-metric count (the bit→interval map is shared across
buckets), while bandwidth scales with the bucket count — ~1.4/1.0 MB at
paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.experiments.common import (
    build_ring,
    env_scale,
    populate_histogram_metrics,
)
from repro.experiments.report import format_table
from repro.histograms.buckets import BucketSpec
from repro.histograms.builder import DHSHistogramBuilder
from repro.histograms.histogram import Histogram
from repro.sim.parallel import TrialSpec, run_trials
from repro.sim.seeds import derive_seed, rng_for
from repro.workloads.relations import make_relation

__all__ = ["Table3Row", "run_table3", "format_table3"]


@dataclass
class Table3Row:
    """One (m, estimator) row of Table 3 plus accuracy diagnostics."""

    m: int
    estimator: str
    nodes_visited: float
    hops: float
    bw_kbytes: float
    mean_cell_error_pct: float


def _table3_cell(
    seed: int,
    *,
    m: int,
    n_nodes: int,
    n_buckets: int,
    n_items: int,
    trials: int,
) -> List[Table3Row]:
    """One ``m``: rebuild the workload, reconstruct with both estimators."""
    relation = make_relation("R", n_items, seed=derive_seed(seed, "rel"))
    spec = BucketSpec.equi_width(relation.domain[0], relation.domain[1], n_buckets)
    truth = Histogram.exact(spec, relation.values)
    ring = build_ring(n_nodes, seed=derive_seed(seed, "ring", m))
    writer = DistributedHashSketch(
        ring,
        DHSConfig(num_bitmaps=m, hash_seed=seed),
        seed=derive_seed(seed, "writer", m),
    )
    populate_histogram_metrics(
        writer, relation, n_buckets, seed=derive_seed(seed, "load", m)
    )
    rows: List[Table3Row] = []
    for estimator in ("sll", "pcsa"):
        counter = DistributedHashSketch(
            ring,
            DHSConfig(num_bitmaps=m, hash_seed=seed, estimator=estimator),
            seed=derive_seed(seed, "counter", m, estimator),
        )
        builder = DHSHistogramBuilder(counter, spec, relation.name)
        rng = rng_for(seed, "hist-origins", m, estimator)
        hops, nodes, bw, errors = [], [], [], []
        for _ in range(trials):
            origin = ring.random_live_node(rng)
            reconstruction = builder.reconstruct(origin=origin)
            hops.append(reconstruction.cost.hops)
            nodes.append(reconstruction.count_result.unique_probed)
            bw.append(reconstruction.cost.bytes)
            errors.append(reconstruction.histogram.mean_cell_error(truth))
        rows.append(
            Table3Row(
                m=m,
                estimator=estimator,
                nodes_visited=sum(nodes) / len(nodes),
                hops=sum(hops) / len(hops),
                bw_kbytes=sum(bw) / len(bw) / 1024,
                mean_cell_error_pct=100 * sum(errors) / len(errors),
            )
        )
    return rows


def run_table3(
    n_nodes: int = 1024,
    ms: Sequence[int] = (128, 256, 512, 1024),
    n_buckets: int = 100,
    scale: float | None = None,
    trials: int = 2,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[Table3Row]:
    """Reconstruction cost/accuracy of a relation's histogram per ``m``."""
    scale = env_scale(1e-2) if scale is None else scale
    n_items = max(2000, int(20_000_000 * scale))
    specs = [
        TrialSpec(
            fn=_table3_cell,
            seed=seed,
            kwargs={
                "m": m,
                "n_nodes": n_nodes,
                "n_buckets": n_buckets,
                "n_items": n_items,
                "trials": trials,
            },
            label=f"table3/m{m}",
        )
        for m in ms
    ]
    rows: List[Table3Row] = []
    for cell in run_trials(specs, jobs=jobs):
        rows.extend(cell)
    return rows


def format_table3(rows: List[Table3Row], scale: float) -> str:
    """Render like the paper's Table 3 (sLL/PCSA pairs) + accuracy."""
    by_m: Dict[int, Dict[str, Table3Row]] = {}
    for row in rows:
        by_m.setdefault(row.m, {})[row.estimator] = row
    table_rows = []
    for m in sorted(by_m):
        sll, pcsa = by_m[m]["sll"], by_m[m]["pcsa"]
        table_rows.append(
            [
                m,
                f"{sll.nodes_visited:.0f} / {pcsa.nodes_visited:.0f}",
                f"{sll.hops:.0f} / {pcsa.hops:.0f}",
                f"{sll.bw_kbytes:.1f} / {pcsa.bw_kbytes:.1f}",
                f"{sll.mean_cell_error_pct:.1f} / {pcsa.mean_cell_error_pct:.1f}",
            ]
        )
    return format_table(
        f"Table 3: histogram reconstruction, sLL/PCSA (scale {scale:g})",
        ["m", "nodes visited", "hops", "BW (kBytes)", "cell err (%)"],
        table_rows,
    )
