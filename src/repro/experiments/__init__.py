"""Experiment drivers: one per table/figure of the paper's evaluation."""

from repro.experiments.accuracy import AccuracyRow, format_accuracy, run_accuracy_sweep
from repro.experiments.baselines import (
    BaselineRow,
    format_baselines,
    run_baseline_comparison,
)
from repro.experiments.common import (
    CountSample,
    build_ring,
    bucket_metric,
    env_scale,
    populate_histogram_metrics,
    populate_metric,
    populate_relation,
    sample_counts,
)
from repro.experiments.faultmatrix import (
    FaultMatrixRow,
    format_faultmatrix,
    run_faultmatrix,
)
from repro.experiments.histogram_accuracy import (
    HistogramAccuracyRow,
    format_histogram_accuracy,
    run_histogram_accuracy,
)
from repro.experiments.insertion import InsertionReport, run_insertion_experiment
from repro.experiments.multidim import MultiDimRow, format_multidim, run_multidim
from repro.experiments.query_opt import QueryOptReport, run_query_opt
from repro.experiments.scalability import (
    ScalabilityRow,
    format_scalability,
    run_scalability,
)
from repro.experiments.table2 import Table2Row, format_table2, run_table2
from repro.experiments.table3 import Table3Row, format_table3, run_table3

__all__ = [
    "AccuracyRow",
    "format_accuracy",
    "run_accuracy_sweep",
    "BaselineRow",
    "format_baselines",
    "run_baseline_comparison",
    "CountSample",
    "build_ring",
    "bucket_metric",
    "env_scale",
    "populate_histogram_metrics",
    "populate_metric",
    "populate_relation",
    "sample_counts",
    "FaultMatrixRow",
    "format_faultmatrix",
    "run_faultmatrix",
    "HistogramAccuracyRow",
    "format_histogram_accuracy",
    "run_histogram_accuracy",
    "InsertionReport",
    "run_insertion_experiment",
    "MultiDimRow",
    "format_multidim",
    "run_multidim",
    "QueryOptReport",
    "run_query_opt",
    "ScalabilityRow",
    "format_scalability",
    "run_scalability",
    "Table2Row",
    "format_table2",
    "run_table2",
    "Table3Row",
    "format_table3",
    "run_table3",
]
