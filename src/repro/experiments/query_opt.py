"""Experiment: DHS-histogram-driven query optimization (section 5.2).

The paper's closing argument, modelled on the PIER/FREddies comparison:
for a multi-way join, the optimal join tree (picked from histograms)
transfers far fewer bytes than a naive order, and the one-off cost of
reconstructing the histograms over DHS (~1 MB at paper scale) is orders
of magnitude below the savings.

``run_query_opt`` measures, for a join over Q/R/S/T:

* actual bytes shipped by the plan the optimizer picks from
  DHS-reconstructed histograms;
* actual bytes shipped by the naive largest-first left-deep plan;
* actual bytes of the true optimum (optimizer fed exact histograms);
* the DHS histogram reconstruction cost that bought the choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.experiments.common import build_ring, env_scale, populate_histogram_metrics
from repro.experiments.report import format_kv
from repro.histograms.buckets import BucketSpec
from repro.query.catalog import Catalog
from repro.query.engine import execute_plan
from repro.query.optimizer import optimize
from repro.query.plans import left_deep_plan
from repro.sim.seeds import derive_seed
from repro.workloads.relations import standard_relations

__all__ = ["QueryOptReport", "run_query_opt"]


@dataclass
class QueryOptReport:
    """Actual transfer volumes of the competing strategies."""

    relation_names: List[str]
    chosen_plan: str
    chosen_shipped_mb: float
    naive_plan: str
    naive_shipped_mb: float
    oracle_plan: str
    oracle_shipped_mb: float
    histogram_cost_mb: float
    histogram_cost_hops: int

    def format(self) -> str:
        return format_kv(
            "Query optimization with DHS histograms",
            [
                ("join", " ⋈ ".join(self.relation_names)),
                ("DHS-histogram plan", self.chosen_plan),
                ("  actual transfer (MB)", self.chosen_shipped_mb),
                ("naive plan", self.naive_plan),
                ("  actual transfer (MB)", self.naive_shipped_mb),
                ("oracle plan", self.oracle_plan),
                ("  actual transfer (MB)", self.oracle_shipped_mb),
                ("histogram reconstruction (MB)", self.histogram_cost_mb),
                ("histogram reconstruction (hops)", self.histogram_cost_hops),
                (
                    "savings vs naive (MB)",
                    self.naive_shipped_mb - self.chosen_shipped_mb,
                ),
            ],
        )


def run_query_opt(
    n_nodes: int = 128,
    num_bitmaps: int = 128,
    n_buckets: int = 20,
    scale: float | None = None,
    seed: int = 0,
) -> QueryOptReport:
    """Compare DHS-informed, naive, and oracle join orders."""
    scale = env_scale(2e-3) if scale is None else scale
    relations = standard_relations(scale=scale, seed=derive_seed(seed, "relations"))
    by_name = {relation.name: relation for relation in relations}
    names = [relation.name for relation in relations]
    spec = BucketSpec.equi_width(
        relations[0].domain[0], relations[0].domain[1], n_buckets
    )

    # Store every relation's histogram metrics in one DHS deployment.
    ring = build_ring(n_nodes, seed=derive_seed(seed, "ring"))
    dhs = DistributedHashSketch(
        ring,
        DHSConfig(num_bitmaps=num_bitmaps, hash_seed=seed),
        seed=derive_seed(seed, "dhs"),
    )
    for relation in relations:
        populate_histogram_metrics(
            dhs, relation, n_buckets, seed=derive_seed(seed, "load", relation.name)
        )

    # A querying node reconstructs the catalog over the network.
    dhs_catalog = Catalog.from_dhs(dhs, relations, spec, origin=ring.node_ids()[0])
    chosen = optimize(dhs_catalog, names)

    # Competitors: naive largest-first order, and the oracle fed truth.
    naive_order = sorted(names, key=lambda name: -by_name[name].size)
    naive = left_deep_plan(naive_order)
    oracle = optimize(Catalog.exact(relations, spec), names)

    chosen_result = execute_plan(chosen.root, by_name)
    naive_result = execute_plan(naive, by_name)
    oracle_result = execute_plan(oracle.root, by_name)

    return QueryOptReport(
        relation_names=names,
        chosen_plan=chosen.describe(),
        chosen_shipped_mb=chosen_result.shipped_mb,
        naive_plan=" ⋈ ".join(naive_order),
        naive_shipped_mb=naive_result.shipped_mb,
        oracle_plan=oracle.describe(),
        oracle_shipped_mb=oracle_result.shipped_mb,
        histogram_cost_mb=dhs_catalog.acquisition_cost.bytes / (1024 * 1024),
        histogram_cost_hops=dhs_catalog.acquisition_cost.hops,
    )
