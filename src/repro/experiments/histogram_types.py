"""Experiment: advanced histogram types over DHS (footnote 5).

Maintain a fine micro-bucket equi-width histogram in the DHS, reconstruct
it once, and derive equi-width / v-optimal / maxdiff / compressed
bucketings at an equal (much smaller) bucket budget.  Quality metric:
mean relative error of narrow range-selectivity queries against ground
truth — the quantity a query optimizer actually consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.experiments.common import build_ring, populate_histogram_metrics
from repro.experiments.report import format_table
from repro.histograms.advanced import derive_histogram
from repro.histograms.buckets import BucketSpec
from repro.histograms.builder import DHSHistogramBuilder
from repro.histograms.histogram import Histogram
from repro.sim.seeds import derive_seed
from repro.workloads.relations import make_relation

__all__ = ["HistogramTypeRow", "run_histogram_types", "format_histogram_types"]


@dataclass
class HistogramTypeRow:
    """Range-estimation quality of one histogram kind."""

    kind: str
    buckets: int
    mean_range_error_pct: float
    #: Same construction from the exact micro-histogram (DHS-noise-free).
    oracle_error_pct: float


def run_histogram_types(
    kinds: Sequence[str] = ("equi_width", "equi_depth", "compressed", "maxdiff", "v_optimal"),
    n_nodes: int = 64,
    n_micro: int = 100,
    budget: int = 10,
    n_items: int = 1_000_000,
    num_bitmaps: int = 64,
    theta: float = 1.0,
    n_queries: int = 300,
    seed: int = 0,
) -> List[HistogramTypeRow]:
    """Compare derived histogram kinds at an equal bucket budget."""
    relation = make_relation(
        "R", n_items, domain=1000, theta=theta, seed=derive_seed(seed, "rel")
    )
    micro_spec = BucketSpec.equi_width(relation.domain[0], relation.domain[1], n_micro)
    exact_micro = Histogram.exact(micro_spec, relation.values)

    ring = build_ring(n_nodes, seed=derive_seed(seed, "ring"))
    dhs = DistributedHashSketch(
        ring,
        DHSConfig(num_bitmaps=num_bitmaps, hash_seed=seed),
        seed=derive_seed(seed, "dhs"),
    )
    populate_histogram_metrics(dhs, relation, n_micro, seed=derive_seed(seed, "load"))
    builder = DHSHistogramBuilder(dhs, micro_spec, relation.name)
    dhs_micro = builder.reconstruct().histogram

    rng = np.random.default_rng(derive_seed(seed, "queries") % 2**32)
    domain_hi = relation.domain[1]
    queries = []
    while len(queries) < n_queries:
        lo = int(rng.integers(1, domain_hi - 20))
        hi = lo + int(rng.integers(2, 40))
        truth = float(((relation.values >= lo) & (relation.values < hi)).sum())
        if truth >= n_items / 2000:
            queries.append((lo, hi, truth))

    def mean_error(histogram: Histogram) -> float:
        errors = [
            abs(histogram.estimate_range(lo, hi) - truth) / truth
            for lo, hi, truth in queries
        ]
        return 100 * sum(errors) / len(errors)

    rows: List[HistogramTypeRow] = []
    for kind in kinds:
        derived = derive_histogram(dhs_micro, kind, budget)
        oracle = derive_histogram(exact_micro, kind, budget)
        rows.append(
            HistogramTypeRow(
                kind=kind,
                buckets=budget,
                mean_range_error_pct=mean_error(derived),
                oracle_error_pct=mean_error(oracle),
            )
        )
    return rows


def format_histogram_types(rows: List[HistogramTypeRow]) -> str:
    """Render the histogram-kind comparison."""
    return format_table(
        "Histogram types derived from DHS micro-buckets (footnote 5)",
        ["kind", "buckets", "range err % (DHS)", "range err % (exact micro)"],
        [
            [row.kind, row.buckets, f"{row.mean_range_error_pct:.1f}", f"{row.oracle_error_pct:.1f}"]
            for row in rows
        ],
    )
