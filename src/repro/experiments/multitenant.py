"""Experiment: multi-tenant Zipf workload at deployment scale.

The paper's uniform-load claim (section 5.1) is evaluated with one
relation at a time; a production deployment serves 10^5–10^6 concurrent
``metric_id``s with heavy-tailed popularity.  This driver loads that
workload — Zipf(theta) traffic split across ``n_tenants`` tenant
metrics, every operation inserted from a uniformly random node — and
measures what the 2006 authors could only extrapolate: per-node storage
balance (max/mean entry ratio and Gini coefficient) and counting
accuracy/cost for the hottest tenants, as the overlay grows to the
scale tier's N=10^5–10^6 deployments.

Deterministic and ``DHS_JOBS``-parallel per the repo contract: every
random choice flows through explicit seeds, rows contain no wall-clock
values, and the per-cell gauge (membership bytes per node) is a pure
function of the deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.experiments.common import build_ring, env_scale, sample_counts
from repro.experiments.report import format_table
from repro.hashing.vectorized import observations_np
from repro.obs import runtime as obs
from repro.obs.metrics import GAUGE_RING_MEMBERSHIP_BYTES_PER_NODE
from repro.overlay.stats import OpCost
from repro.sim.parallel import TrialSpec, run_trials
from repro.sim.seeds import derive_seed
from repro.workloads.multitenant import (
    TENANT_ID_STRIDE,
    load_balance,
    tenant_metric,
    tenant_op_counts,
)

__all__ = [
    "MultitenantRow",
    "format_multitenant",
    "populate_tenants",
    "run_multitenant",
]


@dataclass
class MultitenantRow:
    """Storage balance and counting cost for one overlay size."""

    n_nodes: int
    n_tenants: int
    active_tenants: int
    total_ops: int
    theta: float
    storage_max_mean: float
    storage_gini: float
    hops: float
    error: float
    membership_bytes_per_node: float


def populate_tenants(
    dhs: DistributedHashSketch,
    ops: np.ndarray,
    seed: int = 0,
    now: int = 0,
) -> OpCost:
    """Insert every tenant's items, each op from a random inserter node.

    ``ops[t]`` distinct items from tenant ``t``'s private id block go in
    under :func:`~repro.workloads.multitenant.tenant_metric`.  All
    tenants are hashed in one vectorized pass and the per-(tenant,
    inserter) groups are bulk-inserted, so cost stays O(total_ops) even
    with 10^5 tenants on a 10^5-node ring — the per-tenant
    ``populate_metric`` path would pay O(tenants x nodes) in assignment
    work alone.
    """
    config = dhs.config
    active = np.nonzero(ops)[0]
    counts = ops[active]
    total = int(counts.sum())
    if total == 0:
        return OpCost()
    # Item ids: each active tenant's private block, concatenated.
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    offsets = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    tenant_of = np.repeat(active, counts)
    item_ids = tenant_of.astype(np.int64) * np.int64(TENANT_ID_STRIDE) + offsets
    if config.hash_family_name == "mixer":
        vectors, positions = observations_np(
            item_ids, config.num_bitmaps, config.key_bits, seed=config.hash_seed
        )
    else:
        # Non-mixer families (MD4) have no vectorized twin: scalar path.
        pairs = [dhs._inserter.observation(int(item)) for item in item_ids]
        vectors = np.array([v for v, _ in pairs], dtype=np.int64)
        positions = np.array([p for _, p in pairs], dtype=np.int64)
    node_list = list(dhs.dht.node_ids())
    rng = np.random.default_rng(derive_seed(seed, "owners") % (2**32))
    inserter = rng.integers(0, len(node_list), size=total)
    # One bulk insert per (tenant, inserting node) group.
    order = np.lexsort((inserter, tenant_of))
    sorted_tenant = tenant_of[order]
    sorted_node = inserter[order]
    boundaries = (
        np.nonzero(
            (sorted_tenant[1:] != sorted_tenant[:-1])
            | (sorted_node[1:] != sorted_node[:-1])
        )[0]
        + 1
    )
    group_starts = np.concatenate(([0], boundaries, [total]))
    total_cost = OpCost()
    for group in range(len(group_starts) - 1):
        lo, hi = int(group_starts[group]), int(group_starts[group + 1])
        indices = order[lo:hi]
        total_cost.add(
            dhs._inserter.insert_observation_arrays(
                tenant_metric(int(sorted_tenant[lo])),
                vectors[indices],
                positions[indices],
                origin=node_list[int(sorted_node[lo])],
                now=now,
            )
        )
    return total_cost


def _multitenant_cell(
    seed: int,
    *,
    n_nodes: int,
    n_tenants: int,
    total_ops: int,
    theta: float,
    num_bitmaps: int,
    count_tenants: int,
    trials: int,
) -> MultitenantRow:
    """One overlay size: load the tenant mix, snapshot balance, count."""
    ring = build_ring(n_nodes, seed=derive_seed(seed, "ring", n_nodes))
    dhs = DistributedHashSketch(
        ring,
        DHSConfig(num_bitmaps=num_bitmaps, hash_seed=seed),
        seed=derive_seed(seed, "dhs", n_nodes),
    )
    ops = tenant_op_counts(
        n_tenants, total_ops, theta=theta, seed=derive_seed(seed, "zipf", n_nodes)
    )
    populate_tenants(dhs, ops, seed=derive_seed(seed, "load", n_nodes))
    storage = np.fromiter(
        dhs.storage_per_node().values(), dtype=np.float64, count=ring.size
    )
    balance = load_balance(storage)
    # Count the hottest tenants (deterministic tie-break on tenant id).
    active = np.nonzero(ops)[0]
    ranked = active[np.lexsort((active, -ops[active]))]
    chosen = [int(tenant) for tenant in ranked[:count_tenants]]
    truths = {tenant_metric(tenant): float(ops[tenant]) for tenant in chosen}
    sample = sample_counts(
        dhs, truths, trials=trials, seed=derive_seed(seed, "origins", n_nodes)
    )
    bytes_per_node = ring.membership_nbytes() / ring.size
    if obs.METERING:
        # Pure function of the deployment: safe inside a trial cell.
        obs.METRICS.set_gauge(GAUGE_RING_MEMBERSHIP_BYTES_PER_NODE, bytes_per_node)
    return MultitenantRow(
        n_nodes=n_nodes,
        n_tenants=n_tenants,
        active_tenants=int(active.size),
        total_ops=total_ops,
        theta=theta,
        storage_max_mean=balance.max_mean,
        storage_gini=balance.gini,
        hops=sample.mean_hops(),
        error=sample.mean_abs_rel_error(),
        membership_bytes_per_node=bytes_per_node,
    )


def run_multitenant(
    node_counts: Sequence[int] = (256, 1024),
    n_tenants: Optional[int] = None,
    total_ops: Optional[int] = None,
    theta: float = 0.7,
    num_bitmaps: int = 64,
    count_tenants: int = 4,
    trials: int = 2,
    scale: float | None = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[MultitenantRow]:
    """Storage balance and counting cost versus overlay size.

    At ``scale=1.0`` the workload is the ROADMAP target — 10^6 tenants,
    2x10^7 operations; the default CI scale (``DHS_SCALE`` or 1e-2)
    shrinks both proportionally with a floor that keeps the Zipf shape
    measurable.
    """
    scale = env_scale(1e-2) if scale is None else scale
    if n_tenants is None:
        n_tenants = max(64, int(1_000_000 * scale))
    if total_ops is None:
        total_ops = max(8 * n_tenants, int(20_000_000 * scale))
    specs = [
        TrialSpec(
            fn=_multitenant_cell,
            seed=seed,
            kwargs={
                "n_nodes": n_nodes,
                "n_tenants": n_tenants,
                "total_ops": total_ops,
                "theta": theta,
                "num_bitmaps": num_bitmaps,
                "count_tenants": count_tenants,
                "trials": trials,
            },
            label=f"multitenant/n{n_nodes}",
        )
        for n_nodes in node_counts
    ]
    return list(run_trials(specs, jobs=jobs))


def format_multitenant(rows: List[MultitenantRow]) -> str:
    """Render the multi-tenant balance sweep."""
    table_rows = []
    for row in sorted(rows, key=lambda r: r.n_nodes):
        table_rows.append(
            [
                row.n_nodes,
                f"{row.active_tenants}/{row.n_tenants}",
                row.total_ops,
                f"{row.storage_max_mean:.2f}",
                f"{row.storage_gini:.3f}",
                f"{row.hops:.0f}",
                f"{100.0 * row.error:.1f}%",
                f"{row.membership_bytes_per_node:.1f}",
            ]
        )
    return format_table(
        f"Multi-tenant Zipf workload (theta={rows[0].theta:g})" if rows else
        "Multi-tenant Zipf workload",
        [
            "nodes",
            "tenants",
            "ops",
            "storage max/mean",
            "gini",
            "hops",
            "err",
            "B/node",
        ],
        table_rows,
    )
