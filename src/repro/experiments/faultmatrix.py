"""Experiment: the fault matrix — fault kind x intensity x policy x R.

The paper analyses robustness with one knob (the undetected-failure
fraction ``p_f``, §3.5) and one countermeasure (replication degree
``R``).  This driver sweeps the richer fault model of
:mod:`repro.overlay.faults` — ambient message drops, lazy crashes,
crash-with-amnesia rejoins, transient outages — against the recovery
machinery stacked on top of replication:

``none``
    The paper's baseline: no retries, no repair.  Default policy,
    byte-identical to every other experiment when the plan is empty.
``retry``
    :class:`~repro.core.policy.RetryPolicy` with a budget of 3 attempts
    and exponential backoff charged in logical hops.
``retry+repair``
    The retry policy plus self-healing: counting read-repairs stale
    replicas in passing and one :func:`~repro.core.maintenance.stabilize`
    sweep runs before the measured counts (both cost-accounted; the
    repair parts are inert at ``R = 0`` where there are no replicas).
``retry+readrepair``
    Retries plus query-driven read-repair *only* — no background sweep.
    The honest baseline for proactive reconciliation: replicas heal only
    where a count happens to walk.
``retry+antientropy``
    ``retry+readrepair`` plus proactive digest-tree reconciliation:
    :meth:`~repro.core.dhs.DistributedHashSketch.antientropy` rounds run
    before the measured counts until the round writes nothing (bounded).
    The under-read gap between this column and ``retry+readrepair`` on
    amnesia/partition cells is the tentpole's acceptance gate.

Faults bias the sketch one way only: lost or unreachable registers can
*hide* bits, never invent them, so the fault signature is an estimate
below what a lossless count of the same deployment would return.  Raw
error against the true cardinality conflates that with the sketch's own
(sign-varying) estimation error, so each cell also reports
``underread_pct`` — the clamped shortfall of each count against the
cell's :meth:`~repro.core.dhs.DistributedHashSketch.local_sketch`
reference, i.e. exactly the bits the fault cost us.

Besides accuracy and hop cost, the matrix reports what the degraded-mode
machinery says about each run: the fraction of counts flagged
``degraded`` and the mean per-metric ``confidence`` (eq. 5 applied to
budget-exhausted intervals).  A lossy run should *know* it is lossy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.core.policy import DEFAULT_POLICY, RetryPolicy
from repro.errors import ConfigurationError
from repro.experiments.common import populate_metric
from repro.experiments.report import format_table
from repro.overlay.chord import ChordRing
from repro.overlay.faults import FaultEvent, FaultInjector, FaultPlan
from repro.sim.parallel import TrialSpec, run_trials
from repro.sim.seeds import derive_seed, rng_for

__all__ = [
    "FAULT_MATRIX_KINDS",
    "POLICIES",
    "FaultMatrixRow",
    "PolicySpec",
    "run_faultmatrix",
    "format_faultmatrix",
]


class PolicySpec(NamedTuple):
    """One recovery-policy column: retries plus which healers run."""

    policy: RetryPolicy
    read_repair: bool
    stabilize: bool
    antientropy: bool


_RETRY = RetryPolicy(max_attempts=3, backoff_hops=1)

#: The policy columns (all healers are inert at ``R = 0``).
POLICIES: Dict[str, PolicySpec] = {
    "none": PolicySpec(DEFAULT_POLICY, False, False, False),
    "retry": PolicySpec(_RETRY, False, False, False),
    "retry+repair": PolicySpec(_RETRY, True, True, False),
    "retry+readrepair": PolicySpec(_RETRY, True, False, False),
    "retry+antientropy": PolicySpec(_RETRY, True, False, True),
}

#: Fault kinds the matrix can sweep (drop = ambient message loss).
FAULT_MATRIX_KINDS = (
    "drop",
    "lazy_crash",
    "crash",
    "amnesia",
    "transient",
    "partition",
)

#: When the measured counts happen, per kind: mid-outage for transient
#: faults and partitions, after the rejoin for amnesia, right after
#: onset otherwise.
_COUNT_TICK = {
    "drop": 1,
    "lazy_crash": 1,
    "crash": 1,
    "amnesia": 3,
    "transient": 2,
    "partition": 2,
}

#: Cap on pre-count anti-entropy rounds (each round is a full sweep;
#: convergence is typically reached in one or two).
_ANTIENTROPY_ROUNDS = 3


def _plan_for(kind: str, intensity: float) -> FaultPlan:
    """The fault script for one matrix cell.

    Every kind strikes at tick 1 so the tick-0 population is always
    clean; ``intensity`` is the drop probability or the victim fraction.
    """
    if kind not in FAULT_MATRIX_KINDS:
        raise ConfigurationError(
            f"unknown fault kind {kind!r}; expected one of {FAULT_MATRIX_KINDS}"
        )
    if intensity == 0.0:
        return FaultPlan.empty()
    if kind == "drop":
        return FaultPlan(drop_probability=intensity, drop_from=1)
    if kind == "amnesia":
        event = FaultEvent("amnesia", at=1, fraction=intensity, duration=2)
    elif kind in ("transient", "partition"):
        event = FaultEvent(kind, at=1, fraction=intensity, duration=3)
    else:
        event = FaultEvent(kind, at=1, fraction=intensity, duration=0)
    return FaultPlan(events=(event,))


@dataclass
class FaultMatrixRow:
    """Mean outcome at one (fault, intensity, policy, R) point."""

    fault: str
    intensity: float
    policy: str
    replication: int
    error_pct: float
    underread_pct: float
    hops: float
    degraded_pct: float
    confidence: float
    repair_writes: float


def _faultmatrix_cell(
    seed: int,
    *,
    fault_kind: str,
    intensity: float,
    policy_name: str,
    replication: int,
    draw: int,
    n_nodes: int,
    n_items: int,
    num_bitmaps: int,
    estimator: str,
    trials: int,
) -> Tuple[float, float, float, float, float, float]:
    """One matrix cell: inject, recover, count.

    Returns mean ``(error, underread, hops, degraded, confidence,
    repair_writes)`` over ``trials`` counts from random origins.
    Deployment, fault and origin seeds deliberately exclude the policy
    name: every policy faces the *identical* ring, victims, drop stream
    and querying nodes, so policy columns are paired comparisons rather
    than fresh draws.  ``underread`` is each count's clamped shortfall
    against the lossless ``local_sketch`` reference of the same
    deployment — the fault-attributable part of the error.
    """
    cell = (fault_kind, str(intensity), replication, draw)
    items = np.arange(n_items, dtype=np.int64)
    ring = ChordRing.build(n_nodes, seed=derive_seed(seed, "ring", *cell))
    injector = FaultInjector(
        ring, _plan_for(fault_kind, intensity), seed=derive_seed(seed, "faults", *cell)
    )
    spec = POLICIES[policy_name]
    dhs = DistributedHashSketch(
        injector,
        DHSConfig(
            num_bitmaps=num_bitmaps,
            replication=replication,
            estimator=estimator,
            hash_seed=seed + draw,
            read_repair=spec.read_repair and replication > 0,
        ),
        seed=derive_seed(seed, "dhs", *cell),
        policy=spec.policy,
    )
    populate_metric(dhs, "docs", items, seed=derive_seed(seed, "load", *cell))
    lossless = dhs.local_sketch(items.tolist()).estimate()
    now = _COUNT_TICK[fault_kind]
    injector.advance_to(now)
    repair_writes = 0.0
    if spec.stabilize and replication > 0:
        repair_writes += dhs.stabilize(now=now).repair_writes
    if spec.antientropy and replication > 0:
        for _ in range(_ANTIENTROPY_ROUNDS):
            stats = dhs.antientropy(now)
            repair_writes += stats.entries_written
            if stats.entries_written == 0:
                break
    rng = rng_for(seed, "origins", *cell)
    errors: List[float] = []
    underreads: List[float] = []
    hops: List[float] = []
    degraded: List[float] = []
    confidences: List[float] = []
    for _ in range(trials):
        origin = injector.random_live_node(rng)
        result = dhs.count("docs", origin=origin, now=now)
        estimate = result.estimate()
        errors.append(abs(estimate / n_items - 1.0))
        underreads.append(max(0.0, 1.0 - estimate / lossless))
        hops.append(float(result.cost.hops))
        degraded.append(1.0 if result.degraded else 0.0)
        confidences.append(min(result.confidence.values(), default=1.0))
        repair_writes += result.cost.repair_writes
    return (
        sum(errors) / trials,
        sum(underreads) / trials,
        sum(hops) / trials,
        sum(degraded) / trials,
        sum(confidences) / trials,
        repair_writes / trials,
    )


def run_faultmatrix(
    fault_kinds: Sequence[str] = ("drop", "lazy_crash", "amnesia"),
    intensities: Sequence[float] = (0.1, 0.3),
    policies: Sequence[str] = ("none", "retry+repair"),
    replications: Sequence[int] = (0, 2),
    n_nodes: int = 64,
    n_items: int = 10_000,
    num_bitmaps: int = 32,
    estimator: str = "sll",
    trials: int = 2,
    draws: int = 2,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[FaultMatrixRow]:
    """Sweep the fault matrix; every cell is an independent deployment.

    Cells are fanned out through :func:`~repro.sim.parallel.run_trials`
    and every random choice flows through ``derive_seed`` label paths,
    so the grid is bit-identical at any ``DHS_JOBS`` width.
    """
    for name in policies:
        if name not in POLICIES:
            raise ConfigurationError(
                f"unknown policy {name!r}; expected one of {sorted(POLICIES)}"
            )
    specs = [
        TrialSpec(
            fn=_faultmatrix_cell,
            seed=seed,
            kwargs={
                "fault_kind": kind,
                "intensity": intensity,
                "policy_name": policy,
                "replication": replication,
                "draw": draw,
                "n_nodes": n_nodes,
                "n_items": n_items,
                "num_bitmaps": num_bitmaps,
                "estimator": estimator,
                "trials": trials,
            },
            label=f"faultmatrix/{kind}/i{intensity}/{policy}/R{replication}/d{draw}",
        )
        for kind in fault_kinds
        for intensity in intensities
        for policy in policies
        for replication in replications
        for draw in range(draws)
    ]
    results = run_trials(specs, jobs=jobs)
    accum: Dict[Tuple[str, float, str, int], List[Tuple[float, ...]]] = {}
    for spec, point in zip(specs, results):
        key = (
            spec.kwargs["fault_kind"],
            spec.kwargs["intensity"],
            spec.kwargs["policy_name"],
            spec.kwargs["replication"],
        )
        accum.setdefault(key, []).append(point)
    rows: List[FaultMatrixRow] = []
    for kind in fault_kinds:
        for intensity in intensities:
            for policy in policies:
                for replication in replications:
                    points = accum[(kind, intensity, policy, replication)]
                    mean = [sum(column) / len(points) for column in zip(*points)]
                    rows.append(
                        FaultMatrixRow(
                            fault=kind,
                            intensity=intensity,
                            policy=policy,
                            replication=replication,
                            error_pct=100 * mean[0],
                            underread_pct=100 * mean[1],
                            hops=mean[2],
                            degraded_pct=100 * mean[3],
                            confidence=mean[4],
                            repair_writes=mean[5],
                        )
                    )
    return rows


def format_faultmatrix(rows: List[FaultMatrixRow]) -> str:
    """Render the fault matrix grid."""
    return format_table(
        "Fault matrix: fault x intensity x policy x replication",
        ["fault", "p", "policy", "R", "error %", "under %", "hops", "degr %", "conf", "repairs"],
        [
            [
                row.fault,
                f"{row.intensity:.2f}",
                row.policy,
                row.replication,
                f"{row.error_pct:.1f}",
                f"{row.underread_pct:.1f}",
                f"{row.hops:.0f}",
                f"{row.degraded_pct:.0f}",
                f"{row.confidence:.3f}",
                f"{row.repair_writes:.1f}",
            ]
            for row in rows
        ],
    )
