"""Shared experiment machinery.

Every experiment driver in this package follows the same recipe as the
paper's evaluation (section 5.1): build a Chord-like overlay, scatter
the workload's tuples uniformly over the nodes, let every node
bulk-insert its own items into the DHS, then measure insertion /
counting / histogram costs and accuracy from randomly chosen querying
nodes.

``populate_metric`` is the fast path: observations are computed with the
vectorized hasher and inserted per owning node, so multi-million-tuple
runs stay tractable in pure Python.

Scaling: ``env_scale()`` reads ``DHS_SCALE`` (default 1e-3) so the whole
benchmark suite can be re-run closer to paper scale with one knob.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np
import numpy.typing as npt

from repro.core.dhs import DistributedHashSketch
from repro.hashing.vectorized import observations_np
from repro.overlay.chord import ChordRing
from repro.overlay.stats import OpCost
from repro.sim.seeds import derive_seed, rng_for
from repro.workloads.assignment import assign_uniform
from repro.workloads.relations import Relation

__all__ = [
    "env_scale",
    "env_int",
    "build_ring",
    "populate_metric",
    "populate_relation",
    "populate_histogram_metrics",
    "filter_bucket_metric",
    "populate_filter_histogram_metrics",
    "bucket_metric",
    "CountSample",
    "sample_counts",
]

#: Default workload scale relative to the paper (10/20/40/80 M tuples).
DEFAULT_SCALE = 1e-3


def env_scale(default: float = DEFAULT_SCALE) -> float:
    """Workload scale factor from ``DHS_SCALE`` (1.0 = paper size)."""
    return float(os.environ.get("DHS_SCALE", default))


def env_int(name: str, default: int) -> int:
    """An integer experiment knob from the environment."""
    return int(os.environ.get(name, default))


def build_ring(n_nodes: int = 1024, bits: int = 64, seed: int = 0) -> ChordRing:
    """The paper's overlay: a Chord-like ring (1024 nodes by default)."""
    return ChordRing.build(n_nodes, bits=bits, seed=derive_seed(seed, "ring"))


def populate_metric(
    dhs: DistributedHashSketch,
    metric_id: Hashable,
    item_ids: npt.NDArray[np.int64],
    seed: int = 0,
    now: int = 0,
) -> OpCost:
    """Insert items into a DHS metric, each from its owning node.

    Items are spread uniformly over the live nodes and every node
    bulk-inserts its share — the deployment the paper evaluates, and the
    reason each logical bit ends up replicated across its interval.
    """
    config = dhs.config
    if config.hash_family_name == "mixer":
        vectors, positions = observations_np(
            item_ids, config.num_bitmaps, config.key_bits, seed=config.hash_seed
        )
    else:
        # Non-mixer families (MD4) have no vectorized twin: scalar path.
        pairs = [dhs._inserter.observation(int(item)) for item in item_ids]
        vectors = np.array([v for v, _ in pairs], dtype=np.int64)
        positions = np.array([p for _, p in pairs], dtype=np.int64)
    node_ids = list(dhs.dht.node_ids())
    assignment = assign_uniform(len(item_ids), node_ids, seed=derive_seed(seed, "owners"))
    total = OpCost()
    for node_id, indices in assignment.items():
        total.add(
            dhs._inserter.insert_observation_arrays(
                metric_id, vectors[indices], positions[indices],
                origin=node_id, now=now,
            )
        )
    return total


def populate_relation(
    dhs: DistributedHashSketch,
    relation: Relation,
    seed: int = 0,
    now: int = 0,
) -> OpCost:
    """Insert every tuple of a relation under the metric ``relation.name``."""
    return populate_metric(dhs, relation.name, relation.item_ids(), seed=seed, now=now)


def bucket_metric(relation_name: str, bucket: int) -> Hashable:
    """The DHS metric id of one histogram bucket."""
    return (relation_name, "hist", bucket)


def populate_histogram_metrics(
    dhs: DistributedHashSketch,
    relation: Relation,
    n_buckets: int,
    seed: int = 0,
    now: int = 0,
) -> OpCost:
    """Insert a relation's tuples under per-bucket metrics (section 4.3)."""
    from repro.histograms.buckets import BucketSpec

    spec = BucketSpec.equi_width(relation.domain[0], relation.domain[1], n_buckets)
    bucket_of = spec.bucket_indices(relation.values)
    item_ids = relation.item_ids()
    total = OpCost()
    for bucket in range(n_buckets):
        mask = bucket_of == bucket
        if not mask.any():
            continue
        total.add(
            populate_metric(
                dhs,
                bucket_metric(relation.name, bucket),
                item_ids[mask],
                seed=derive_seed(seed, "bucket", bucket),
                now=now,
            )
        )
    return total


def filter_bucket_metric(relation_name: str, bucket: int) -> Hashable:
    """The DHS metric id of one filter-attribute histogram bucket."""
    return (relation_name, "hist_b", bucket)


def populate_filter_histogram_metrics(
    dhs: DistributedHashSketch,
    relation: Relation,
    n_buckets: int,
    seed: int = 0,
    now: int = 0,
) -> OpCost:
    """Insert tuples under per-bucket metrics of the filter attribute."""
    from repro.histograms.buckets import BucketSpec

    if relation.filter_values is None:
        raise ValueError(f"relation {relation.name!r} has no filter attribute")
    spec = BucketSpec.equi_width(
        relation.filter_domain[0], relation.filter_domain[1], n_buckets
    )
    bucket_of = spec.bucket_indices(relation.filter_values)
    item_ids = relation.item_ids()
    total = OpCost()
    for bucket in range(n_buckets):
        mask = bucket_of == bucket
        if not mask.any():
            continue
        total.add(
            populate_metric(
                dhs,
                filter_bucket_metric(relation.name, bucket),
                item_ids[mask],
                seed=derive_seed(seed, "filter-bucket", bucket),
                now=now,
            )
        )
    return total


@dataclass
class CountSample:
    """Aggregated counting statistics over repeated trials."""

    estimates: List[float] = field(default_factory=list)
    truths: List[float] = field(default_factory=list)
    hops: List[int] = field(default_factory=list)
    nodes_visited: List[int] = field(default_factory=list)
    bytes: List[float] = field(default_factory=list)
    lookups: List[int] = field(default_factory=list)

    def mean_hops(self) -> float:
        return sum(self.hops) / len(self.hops)

    def mean_nodes(self) -> float:
        return sum(self.nodes_visited) / len(self.nodes_visited)

    def mean_bytes(self) -> float:
        return sum(self.bytes) / len(self.bytes)

    def mean_abs_rel_error(self) -> float:
        return sum(
            abs(e / t - 1.0) for e, t in zip(self.estimates, self.truths)
        ) / len(self.estimates)

    def mean_rel_bias(self) -> float:
        return sum(e / t - 1.0 for e, t in zip(self.estimates, self.truths)) / len(
            self.estimates
        )


def sample_counts(
    dhs: DistributedHashSketch,
    metric_truths: Dict[Hashable, float],
    trials: int = 8,
    seed: int = 0,
    now: int = 0,
    metrics_per_count: Optional[Sequence[Hashable]] = None,
) -> CountSample:
    """Run repeated counts from random querying nodes and aggregate.

    Each trial picks a random origin node (as the paper does), counts
    every metric in ``metric_truths`` one at a time — or all at once
    when ``metrics_per_count`` is given — and records cost and accuracy.
    """
    rng = rng_for(seed, "count-origins")
    sample = CountSample()
    for _ in range(trials):
        origin = dhs.dht.random_live_node(rng)
        if metrics_per_count is not None:
            result = dhs.count_many(list(metrics_per_count), origin=origin, now=now)
            sample.hops.append(result.cost.hops)
            sample.nodes_visited.append(result.unique_probed)
            sample.bytes.append(result.cost.bytes)
            sample.lookups.append(result.cost.lookups)
            for metric, truth in metric_truths.items():
                if metric in result.estimates and truth > 0:
                    sample.estimates.append(result.estimates[metric])
                    sample.truths.append(truth)
        else:
            for metric, truth in metric_truths.items():
                result = dhs.count(metric, origin=origin, now=now)
                sample.hops.append(result.cost.hops)
                sample.nodes_visited.append(result.unique_probed)
                sample.bytes.append(result.cost.bytes)
                sample.lookups.append(result.cost.lookups)
                if truth > 0:
                    sample.estimates.append(result.estimate())
                    sample.truths.append(truth)
    return sample
