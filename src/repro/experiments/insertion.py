"""Experiment: insertion and maintenance costs (paper section 5.2, text).

The paper reports, for the 1024-node / 512-bitmap setup:

* ~3.4 routing hops and ~27 bytes per single-item insertion/update;
* per-node storage of ~384 kB per relation when maintaining 100
  histogram buckets with 512 bitmaps each (theoretical worst case
  ~400 kB = 100 buckets x 512 vectors x 8 B).

``run_insertion_experiment`` measures the same three quantities: mean
hops and bytes over per-item insertions, and the per-node storage
distribution after loading a relation's histogram metrics.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.experiments.common import (
    build_ring,
    env_scale,
    populate_histogram_metrics,
)
from repro.experiments.report import format_kv
from repro.sim.seeds import rng_for
from repro.workloads.relations import make_relation

__all__ = ["InsertionReport", "run_insertion_experiment"]


@dataclass
class InsertionReport:
    """Measured insertion/storage statistics."""

    n_nodes: int
    num_bitmaps: int
    n_buckets: int
    relation_size: int
    mean_hops_per_insert: float
    mean_bytes_per_insert: float
    mean_storage_bytes_per_node: float
    max_storage_bytes_per_node: float
    theoretical_worst_case_bytes: float

    def format(self) -> str:
        return format_kv(
            "Insertion & maintenance costs (section 5.2)",
            [
                ("nodes", self.n_nodes),
                ("bitmaps (m)", self.num_bitmaps),
                ("histogram buckets", self.n_buckets),
                ("relation tuples", self.relation_size),
                ("mean hops / insertion", self.mean_hops_per_insert),
                ("mean bytes / insertion", self.mean_bytes_per_insert),
                ("mean storage / node (kB)", self.mean_storage_bytes_per_node / 1024),
                ("max storage / node (kB)", self.max_storage_bytes_per_node / 1024),
                (
                    "theoretical worst case (kB)",
                    self.theoretical_worst_case_bytes / 1024,
                ),
            ],
        )


def run_insertion_experiment(
    n_nodes: int = 1024,
    num_bitmaps: int = 512,
    n_buckets: int = 100,
    scale: float | None = None,
    probe_inserts: int = 2000,
    seed: int = 0,
) -> InsertionReport:
    """Measure per-insertion cost and per-node storage for one relation."""
    scale = env_scale(1e-2) if scale is None else scale
    ring = build_ring(n_nodes, seed=seed)
    config = DHSConfig(num_bitmaps=num_bitmaps)
    dhs = DistributedHashSketch(ring, config, seed=seed)
    relation = make_relation("R", max(1000, int(20_000_000 * scale)), seed=seed)

    # Per-item insertion cost, sampled over random items/origins.
    rng = rng_for(seed, "insert-probe")
    hops: List[int] = []
    bytes_per: List[float] = []
    for _ in range(probe_inserts):
        index = rng.randrange(relation.size)
        origin = ring.random_live_node(rng)
        cost = dhs.insert("probe-metric", relation.item_id(index), origin=origin)
        hops.append(cost.hops)
        bytes_per.append(cost.bytes)

    # Storage after maintaining the full histogram for the relation.
    populate_histogram_metrics(dhs, relation, n_buckets, seed=seed)
    storage = list(dhs.storage_bytes_per_node().values())

    return InsertionReport(
        n_nodes=n_nodes,
        num_bitmaps=num_bitmaps,
        n_buckets=n_buckets,
        relation_size=relation.size,
        mean_hops_per_insert=statistics.mean(hops),
        mean_bytes_per_insert=statistics.mean(bytes_per),
        mean_storage_bytes_per_node=statistics.mean(storage),
        max_storage_bytes_per_node=max(storage),
        theoretical_worst_case_bytes=(
            n_buckets * num_bitmaps * config.size_model.tuple_bytes
        ),
    )
