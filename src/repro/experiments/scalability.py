"""Experiment: scalability of counting with network size (section 5.2).

The paper's (omitted) figure: average counting hop-count grows only
logarithmically, from ~109/97 hops (sLL/PCSA) at 1024 nodes to ~112/103
at 10240 nodes — and then *extrapolates*.  ``run_scalability`` sweeps
the node count with the workload held fixed and reports mean counting
hops, accuracy, and per-node storage balance per estimator; with the
memory-lean overlay the sweep extends to the N=10^5–10^6 deployments
the authors could only predict (``sweep_node_counts`` builds the
N=10^3→10^6 ladder the CLI's ``--nodes`` flag caps).

:func:`fit_log2_coefficient` fits ``hops ~ c * log2 N`` to the cells at
or below the paper's evaluated sizes (N<=10^4); the report prints the
fit's prediction next to each measured cell so deviations from the
O(log N) claim are visible at a glance.  Everything in a row is
deterministic — no wall-clock values — so cells stay bit-identical at
any ``DHS_JOBS`` width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.errors import ConfigurationError
from repro.experiments.common import build_ring, env_scale, populate_relation, sample_counts
from repro.experiments.report import format_table
from repro.sim.parallel import TrialSpec, run_trials
from repro.sim.seeds import derive_seed
from repro.workloads.multitenant import load_balance
from repro.workloads.relations import make_relation

__all__ = [
    "ScalabilityRow",
    "fit_log2_coefficient",
    "format_scalability",
    "run_scalability",
    "sweep_node_counts",
]

#: Largest overlay the paper actually evaluated (everything above is
#: extrapolation); the O(log N) fit is anchored to cells at or below it.
PAPER_MAX_NODES = 10_240


@dataclass
class ScalabilityRow:
    """Mean counting cost at one network size."""

    n_nodes: int
    estimator: str
    hops: float
    nodes_visited: float
    lookups: float
    error: float = 0.0
    load_max_mean: float = 0.0
    load_gini: float = 0.0


def sweep_node_counts(
    max_nodes: int, base: int = 1000, factor: int = 10
) -> Tuple[int, ...]:
    """The geometric N=10^3 -> ``max_nodes`` ladder (always ends at max).

    ``sweep_node_counts(1_000_000)`` is the full scale sweep
    (1e3, 1e4, 1e5, 1e6); capping at 1e5 yields the CI-sized one.
    """
    if max_nodes < 1:
        raise ConfigurationError(f"max_nodes must be >= 1, got {max_nodes}")
    counts: List[int] = []
    n = base
    while n < max_nodes:
        counts.append(n)
        n *= factor
    counts.append(max_nodes)
    return tuple(counts)


def _scalability_cell(
    seed: int,
    *,
    n_nodes: int,
    num_bitmaps: int,
    n_items: int,
    trials: int,
) -> List[ScalabilityRow]:
    """One network size: same workload (same ``rel`` sub-seed) every cell."""
    relation = make_relation("R", n_items, seed=derive_seed(seed, "rel"))
    ring = build_ring(n_nodes, seed=derive_seed(seed, "ring", n_nodes))
    writer = DistributedHashSketch(
        ring,
        DHSConfig(num_bitmaps=num_bitmaps, hash_seed=seed),
        seed=derive_seed(seed, "writer", n_nodes),
    )
    populate_relation(writer, relation, seed=derive_seed(seed, "load", n_nodes))
    balance = load_balance(
        np.fromiter(
            writer.storage_per_node().values(), dtype=np.float64, count=ring.size
        )
    )
    rows: List[ScalabilityRow] = []
    for estimator in ("sll", "pcsa"):
        counter = DistributedHashSketch(
            ring,
            DHSConfig(num_bitmaps=num_bitmaps, hash_seed=seed, estimator=estimator),
            seed=derive_seed(seed, "counter", n_nodes, estimator),
        )
        sample = sample_counts(
            counter,
            {relation.name: float(relation.size)},
            trials=trials,
            seed=derive_seed(seed, "origins", n_nodes),
        )
        rows.append(
            ScalabilityRow(
                n_nodes=n_nodes,
                estimator=estimator,
                hops=sample.mean_hops(),
                nodes_visited=sample.mean_nodes(),
                lookups=sum(sample.lookups) / len(sample.lookups),
                error=sample.mean_abs_rel_error(),
                load_max_mean=balance.max_mean,
                load_gini=balance.gini,
            )
        )
    return rows


def run_scalability(
    node_counts: Sequence[int] = (256, 1024, 4096),
    num_bitmaps: int = 512,
    scale: float | None = None,
    trials: int = 3,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[ScalabilityRow]:
    """Counting hops versus overlay size, workload held fixed."""
    scale = env_scale(1e-2) if scale is None else scale
    n_items = max(1000, int(20_000_000 * scale))
    specs = [
        TrialSpec(
            fn=_scalability_cell,
            seed=seed,
            kwargs={
                "n_nodes": n_nodes,
                "num_bitmaps": num_bitmaps,
                "n_items": n_items,
                "trials": trials,
            },
            label=f"scalability/n{n_nodes}",
        )
        for n_nodes in node_counts
    ]
    rows: List[ScalabilityRow] = []
    for cell in run_trials(specs, jobs=jobs):
        rows.extend(cell)
    return rows


def fit_log2_coefficient(
    rows: Sequence[ScalabilityRow], max_fit_nodes: int = PAPER_MAX_NODES
) -> float:
    """Through-origin least-squares ``c`` in ``hops ~ c * log2 N``.

    Fitted only on cells at paper-evaluated sizes (``N <= max_fit_nodes``),
    so large-N cells are judged against a prediction they did not shape.
    Returns 0.0 when no cell qualifies.
    """
    numerator = 0.0
    denominator = 0.0
    for row in rows:
        if row.n_nodes > max_fit_nodes:
            continue
        x = math.log2(row.n_nodes)
        numerator += x * row.hops
        denominator += x * x
    return numerator / denominator if denominator else 0.0


def format_scalability(rows: List[ScalabilityRow]) -> str:
    """Render the scalability sweep against the O(log N) fit."""
    coefficient = fit_log2_coefficient(rows)
    by_n: dict[int, dict[str, ScalabilityRow]] = {}
    for row in rows:
        by_n.setdefault(row.n_nodes, {})[row.estimator] = row
    table_rows = []
    for n_nodes in sorted(by_n):
        sll, pcsa = by_n[n_nodes]["sll"], by_n[n_nodes]["pcsa"]
        predicted = coefficient * math.log2(n_nodes)
        table_rows.append(
            [
                n_nodes,
                f"{sll.hops:.0f} / {pcsa.hops:.0f}",
                f"{predicted:.0f}",
                f"{sll.nodes_visited:.0f} / {pcsa.nodes_visited:.0f}",
                f"{sll.lookups:.0f} / {pcsa.lookups:.0f}",
                f"{100.0 * sll.error:.1f} / {100.0 * pcsa.error:.1f}%",
                f"{sll.load_max_mean:.2f}",
                f"{sll.load_gini:.3f}",
            ]
        )
    return format_table(
        "Scalability: counting cost vs network size (sLL/PCSA)",
        [
            "nodes",
            "hops",
            "c*log2N",
            "nodes visited",
            "DHT lookups",
            "err",
            "load max/mean",
            "gini",
        ],
        table_rows,
    )
