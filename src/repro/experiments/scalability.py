"""Experiment: scalability of counting with network size (section 5.2).

The paper's (omitted) figure: average counting hop-count grows only
logarithmically, from ~109/97 hops (sLL/PCSA) at 1024 nodes to ~112/103
at 10240 nodes.  ``run_scalability`` sweeps the node count with the
workload held fixed and reports mean counting hops per estimator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.experiments.common import build_ring, env_scale, populate_relation, sample_counts
from repro.experiments.report import format_table
from repro.sim.parallel import TrialSpec, run_trials
from repro.sim.seeds import derive_seed
from repro.workloads.relations import make_relation

__all__ = ["ScalabilityRow", "run_scalability", "format_scalability"]


@dataclass
class ScalabilityRow:
    """Mean counting cost at one network size."""

    n_nodes: int
    estimator: str
    hops: float
    nodes_visited: float
    lookups: float


def _scalability_cell(
    seed: int,
    *,
    n_nodes: int,
    num_bitmaps: int,
    n_items: int,
    trials: int,
) -> List[ScalabilityRow]:
    """One network size: same workload (same ``rel`` sub-seed) every cell."""
    relation = make_relation("R", n_items, seed=derive_seed(seed, "rel"))
    ring = build_ring(n_nodes, seed=derive_seed(seed, "ring", n_nodes))
    writer = DistributedHashSketch(
        ring,
        DHSConfig(num_bitmaps=num_bitmaps, hash_seed=seed),
        seed=derive_seed(seed, "writer", n_nodes),
    )
    populate_relation(writer, relation, seed=derive_seed(seed, "load", n_nodes))
    rows: List[ScalabilityRow] = []
    for estimator in ("sll", "pcsa"):
        counter = DistributedHashSketch(
            ring,
            DHSConfig(num_bitmaps=num_bitmaps, hash_seed=seed, estimator=estimator),
            seed=derive_seed(seed, "counter", n_nodes, estimator),
        )
        sample = sample_counts(
            counter,
            {relation.name: float(relation.size)},
            trials=trials,
            seed=derive_seed(seed, "origins", n_nodes),
        )
        rows.append(
            ScalabilityRow(
                n_nodes=n_nodes,
                estimator=estimator,
                hops=sample.mean_hops(),
                nodes_visited=sample.mean_nodes(),
                lookups=sum(sample.lookups) / len(sample.lookups),
            )
        )
    return rows


def run_scalability(
    node_counts: Sequence[int] = (256, 1024, 4096),
    num_bitmaps: int = 512,
    scale: float | None = None,
    trials: int = 3,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[ScalabilityRow]:
    """Counting hops versus overlay size, workload held fixed."""
    scale = env_scale(1e-2) if scale is None else scale
    n_items = max(1000, int(20_000_000 * scale))
    specs = [
        TrialSpec(
            fn=_scalability_cell,
            seed=seed,
            kwargs={
                "n_nodes": n_nodes,
                "num_bitmaps": num_bitmaps,
                "n_items": n_items,
                "trials": trials,
            },
            label=f"scalability/n{n_nodes}",
        )
        for n_nodes in node_counts
    ]
    rows: List[ScalabilityRow] = []
    for cell in run_trials(specs, jobs=jobs):
        rows.extend(cell)
    return rows


def format_scalability(rows: List[ScalabilityRow]) -> str:
    """Render the scalability sweep."""
    by_n: dict[int, dict[str, ScalabilityRow]] = {}
    for row in rows:
        by_n.setdefault(row.n_nodes, {})[row.estimator] = row
    table_rows = []
    for n_nodes in sorted(by_n):
        sll, pcsa = by_n[n_nodes]["sll"], by_n[n_nodes]["pcsa"]
        table_rows.append(
            [
                n_nodes,
                f"{sll.hops:.0f} / {pcsa.hops:.0f}",
                f"{sll.nodes_visited:.0f} / {pcsa.nodes_visited:.0f}",
                f"{sll.lookups:.0f} / {pcsa.lookups:.0f}",
            ]
        )
    return format_table(
        "Scalability: counting cost vs network size (sLL/PCSA)",
        ["nodes", "hops", "nodes visited", "DHT lookups"],
        table_rows,
    )
