"""Experiment: multi-dimension counting cost (section 4.2).

The claim: the hop cost of counting is independent of the number of
bitmaps *and* of the number of metrics counted at once, because the
bit→interval mapping is shared — only response bytes grow.  The driver
sweeps the number of metrics counted in one operation and reports hops
and bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.experiments.common import build_ring, populate_metric
from repro.experiments.report import format_table
from repro.sim.seeds import derive_seed, rng_for

import numpy as np

__all__ = ["MultiDimRow", "run_multidim", "format_multidim"]


@dataclass
class MultiDimRow:
    """Cost of counting ``metrics`` dimensions in one operation."""

    metrics: int
    hops: float
    bytes_kb: float
    lookups: float


def run_multidim(
    metric_counts: Sequence[int] = (1, 4, 16, 64),
    n_nodes: int = 128,
    items_per_metric: int = 20_000,
    num_bitmaps: int = 64,
    trials: int = 3,
    seed: int = 0,
) -> List[MultiDimRow]:
    """Hop/byte cost versus number of metrics per counting operation."""
    ring = build_ring(n_nodes, seed=derive_seed(seed, "ring"))
    dhs = DistributedHashSketch(
        ring,
        DHSConfig(num_bitmaps=num_bitmaps, hash_seed=seed),
        seed=derive_seed(seed, "dhs"),
    )
    max_metrics = max(metric_counts)
    metrics = [("dim", i) for i in range(max_metrics)]
    for i, metric in enumerate(metrics):
        item_base = i * items_per_metric
        populate_metric(
            dhs,
            metric,
            np.arange(item_base, item_base + items_per_metric, dtype=np.int64),
            seed=derive_seed(seed, "load", i),
        )
    rng = rng_for(seed, "origins")
    rows: List[MultiDimRow] = []
    for count in metric_counts:
        hops, bytes_, lookups = [], [], []
        for _ in range(trials):
            result = dhs.count_many(
                metrics[:count], origin=ring.random_live_node(rng)
            )
            hops.append(result.cost.hops)
            bytes_.append(result.cost.bytes)
            lookups.append(result.cost.lookups)
        rows.append(
            MultiDimRow(
                metrics=count,
                hops=sum(hops) / trials,
                bytes_kb=sum(bytes_) / trials / 1024,
                lookups=sum(lookups) / trials,
            )
        )
    return rows


def format_multidim(rows: List[MultiDimRow]) -> str:
    """Render the metric-count sweep."""
    return format_table(
        "Multi-dimension counting: cost vs metrics per operation",
        ["metrics", "hops", "BW (kB)", "DHT lookups"],
        [[r.metrics, f"{r.hops:.0f}", f"{r.bytes_kb:.1f}", f"{r.lookups:.0f}"] for r in rows],
    )
