"""Experiment: accuracy versus number of bitmaps (section 5.2, "Accuracy").

The paper: errors around 2.9% (PCSA) / 5% (sLL) for moderate ``m``, then
a collapse once ``m`` is so large that ``lim = 5`` probes stop finding
the sparse per-bitmap bits — at m = 4096 PCSA degrades to ~44% while sLL
only reaches ~15%, because sLL probes the higher-order (better
replicated, relative to what it needs) bits first.

``run_accuracy_sweep`` reproduces the sweep; the crossover point depends
on the items-per-node ratio, so at reduced workload scale the collapse
arrives at proportionally smaller ``m`` — the *shape* (PCSA degrading
much faster than sLL past the collapse) is the reproduced claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.experiments.common import (
    CountSample,
    build_ring,
    env_scale,
    populate_relation,
    sample_counts,
)
from repro.experiments.report import format_table
from repro.sim.parallel import TrialSpec, run_trials
from repro.sim.seeds import derive_seed
from repro.workloads.relations import make_relation

__all__ = ["AccuracyRow", "run_accuracy_sweep", "format_accuracy"]


@dataclass
class AccuracyRow:
    """Mean |relative error| for one (m, estimator) configuration."""

    m: int
    estimator: str
    error_pct: float
    bias_pct: float


def _accuracy_cell(
    seed: int,
    *,
    m: int,
    hash_seed: int,
    n_nodes: int,
    n_items: int,
    trials: int,
    lim: int,
) -> Dict[str, CountSample]:
    """One independent ``(m, hash_seed)`` cell: populate, count both ways."""
    relation = make_relation("R", n_items, seed=derive_seed(seed, "rel", hash_seed))
    ring = build_ring(n_nodes, seed=derive_seed(seed, "ring", m, hash_seed))
    writer = DistributedHashSketch(
        ring,
        DHSConfig(num_bitmaps=m, lim=lim, hash_seed=hash_seed),
        seed=derive_seed(seed, "writer", m, hash_seed),
    )
    populate_relation(writer, relation, seed=derive_seed(seed, "load", m, hash_seed))
    samples: Dict[str, CountSample] = {}
    for estimator in ("sll", "pcsa"):
        counter = DistributedHashSketch(
            ring,
            DHSConfig(num_bitmaps=m, lim=lim, hash_seed=hash_seed, estimator=estimator),
            seed=derive_seed(seed, "counter", m, hash_seed, estimator),
        )
        samples[estimator] = sample_counts(
            counter,
            {relation.name: float(relation.size)},
            trials=trials,
            seed=derive_seed(seed, "origins", m, hash_seed),
        )
    return samples


def run_accuracy_sweep(
    ms: Sequence[int] = (64, 128, 256, 512, 1024, 2048, 4096),
    n_nodes: int = 128,
    scale: float | None = None,
    trials: int = 2,
    hash_seeds: Sequence[int] = (0, 1),
    lim: int = 5,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[AccuracyRow]:
    """Error versus ``m`` for both estimators with the default lim."""
    scale = env_scale(1e-2) if scale is None else scale
    n_items = max(2000, int(20_000_000 * scale))
    specs = [
        TrialSpec(
            fn=_accuracy_cell,
            seed=seed,
            kwargs={
                "m": m,
                "hash_seed": hash_seed,
                "n_nodes": n_nodes,
                "n_items": n_items,
                "trials": trials,
                "lim": lim,
            },
            label=f"accuracy/m{m}/h{hash_seed}",
        )
        for m in ms
        for hash_seed in hash_seeds
    ]
    results = run_trials(specs, jobs=jobs)
    rows: List[AccuracyRow] = []
    cursor = 0
    for m in ms:
        samples: Dict[str, List[CountSample]] = {"sll": [], "pcsa": []}
        for _ in hash_seeds:
            cell = results[cursor]
            cursor += 1
            for estimator in ("sll", "pcsa"):
                samples[estimator].append(cell[estimator])
        for estimator, collected in samples.items():
            errors = [s.mean_abs_rel_error() for s in collected]
            biases = [s.mean_rel_bias() for s in collected]
            rows.append(
                AccuracyRow(
                    m=m,
                    estimator=estimator,
                    error_pct=100 * sum(errors) / len(errors),
                    bias_pct=100 * sum(biases) / len(biases),
                )
            )
    return rows


def format_accuracy(rows: List[AccuracyRow]) -> str:
    """Render the sweep with sLL/PCSA columns side by side."""
    by_m: dict[int, dict[str, AccuracyRow]] = {}
    for row in rows:
        by_m.setdefault(row.m, {})[row.estimator] = row
    table_rows = []
    for m in sorted(by_m):
        sll, pcsa = by_m[m]["sll"], by_m[m]["pcsa"]
        table_rows.append(
            [
                m,
                f"{sll.error_pct:.1f}",
                f"{pcsa.error_pct:.1f}",
                f"{sll.bias_pct:+.1f}",
                f"{pcsa.bias_pct:+.1f}",
            ]
        )
    return format_table(
        "Accuracy vs number of bitmaps (lim = 5)",
        ["m", "sLL err %", "PCSA err %", "sLL bias %", "PCSA bias %"],
        table_rows,
    )
