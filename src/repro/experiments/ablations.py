"""Ablation experiments for the design choices DESIGN.md calls out.

* ``run_lim_ablation`` — the retry budget ``lim`` (section 4.1): more
  probes per interval buy accuracy with a linear hop surcharge.
* ``run_replication_ablation`` — replication degree ``R`` under node
  failures (section 3.5): replicas restore accuracy lost to crashes.
* ``run_bitshift_ablation`` — the bit-shift mapping ``b`` (section 3.5):
  skipping the first ``b`` positions cuts write traffic while keeping
  estimates usable for cardinalities above ``2^b``.
* ``run_overlay_comparison`` — DHS over Chord versus Kademlia: the
  DHT-agnosticism claim, measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.experiments.common import populate_metric, sample_counts
from repro.experiments.report import format_table
from repro.overlay.chord import ChordRing
from repro.overlay.dht import DHTProtocol
from repro.overlay.failures import fail_fraction
from repro.overlay.kademlia import KademliaOverlay
from repro.overlay.pastry import PastryOverlay
from repro.sim.parallel import TrialSpec, run_trials
from repro.sim.seeds import derive_seed

__all__ = [
    "AblationRow",
    "run_lim_ablation",
    "run_replication_ablation",
    "run_bitshift_ablation",
    "run_overlay_comparison",
    "format_ablation",
]


@dataclass
class AblationRow:
    """One configuration's measured error and cost."""

    label: str
    error_pct: float
    hops: float
    bytes_kb: float
    extra: float = 0.0  # experiment-specific column


def format_ablation(title: str, extra_header: str, rows: List[AblationRow]) -> str:
    """Render an ablation sweep."""
    return format_table(
        title,
        ["config", "error %", "hops", "BW (kB)", extra_header],
        [
            [row.label, f"{row.error_pct:.1f}", f"{row.hops:.0f}", f"{row.bytes_kb:.1f}", f"{row.extra:.1f}"]
            for row in rows
        ],
    )


def _lim_cell(
    seed: int,
    *,
    lim: int,
    n_nodes: int,
    n_items: int,
    num_bitmaps: int,
    estimator: str,
    trials: int,
) -> AblationRow:
    """One probe budget; the rebuilt deployment is seed-identical."""
    ring = ChordRing.build(n_nodes, seed=derive_seed(seed, "ring"))
    writer = DistributedHashSketch(
        ring, DHSConfig(num_bitmaps=num_bitmaps, hash_seed=seed), seed=seed
    )
    items = np.arange(n_items, dtype=np.int64)
    populate_metric(writer, "docs", items, seed=derive_seed(seed, "load"))
    counter = DistributedHashSketch(
        ring,
        DHSConfig(
            num_bitmaps=num_bitmaps, lim=lim, hash_seed=seed, estimator=estimator
        ),
        seed=derive_seed(seed, "counter", lim),
    )
    sample = sample_counts(
        counter,
        {"docs": float(n_items)},
        trials=trials,
        seed=derive_seed(seed, "origins", lim),
    )
    return AblationRow(
        label=f"lim={lim}",
        error_pct=100 * sample.mean_abs_rel_error(),
        hops=sample.mean_hops(),
        bytes_kb=sample.mean_bytes() / 1024,
        extra=sample.mean_nodes(),
    )


def run_lim_ablation(
    lims: Sequence[int] = (1, 2, 5, 10),
    n_nodes: int = 256,
    n_items: int = 200_000,
    num_bitmaps: int = 512,
    estimator: str = "pcsa",
    trials: int = 3,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[AblationRow]:
    """Accuracy/cost versus the per-interval probe budget.

    Only the counting configuration varies across cells (every cell
    rebuilds the same populated overlay from the same sub-seeds),
    isolating the retry budget's effect.  Defaults put the deployment in
    the sensitive regime (``alpha = n/(2mN) < 1``) with the PCSA scan
    order, where the budget visibly buys accuracy — exactly the
    trade-off eq. 6 models.
    """
    specs = [
        TrialSpec(
            fn=_lim_cell,
            seed=seed,
            kwargs={
                "lim": lim,
                "n_nodes": n_nodes,
                "n_items": n_items,
                "num_bitmaps": num_bitmaps,
                "estimator": estimator,
                "trials": trials,
            },
            label=f"ablation/lim{lim}",
        )
        for lim in lims
    ]
    return list(run_trials(specs, jobs=jobs))


def _replication_cell(
    seed: int,
    *,
    degree: int,
    failure_fraction: float,
    n_nodes: int,
    n_items: int,
    num_bitmaps: int,
    estimator: str,
    trials: int,
) -> AblationRow:
    """One replication degree: populate, crash a fraction, count."""
    items = np.arange(n_items, dtype=np.int64)
    ring = ChordRing.build(n_nodes, seed=derive_seed(seed, "ring", degree))
    dhs = DistributedHashSketch(
        ring,
        DHSConfig(
            num_bitmaps=num_bitmaps,
            replication=degree,
            hash_seed=seed,
            estimator=estimator,
        ),
        seed=derive_seed(seed, "dhs", degree),
    )
    insert_cost = populate_metric(
        dhs, "docs", items, seed=derive_seed(seed, "load", degree)
    )
    fail_fraction(ring, failure_fraction, seed=derive_seed(seed, "fail", degree))
    sample = sample_counts(
        dhs,
        {"docs": float(n_items)},
        trials=trials,
        seed=derive_seed(seed, "origins", degree),
    )
    return AblationRow(
        label=f"R={degree}",
        error_pct=100 * sample.mean_abs_rel_error(),
        hops=sample.mean_hops(),
        bytes_kb=sample.mean_bytes() / 1024,
        extra=insert_cost.hops / max(1, insert_cost.lookups),
    )


def run_replication_ablation(
    degrees: Sequence[int] = (0, 2, 4),
    failure_fraction: float = 0.25,
    n_nodes: int = 256,
    n_items: int = 50_000,
    num_bitmaps: int = 512,
    estimator: str = "pcsa",
    trials: int = 3,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[AblationRow]:
    """Accuracy under crashes versus the replication degree ``R``.

    Defaults use the PCSA scan in a sparse-copy regime, where each
    logical bit has few copies and crashes genuinely erase information —
    the scenario eq. 6's ``R * alpha`` term is about.  (super-LogLog's
    truncation rule discards the largest registers, which makes it
    naturally insensitive to losing rare high-bit copies.)
    """
    specs = [
        TrialSpec(
            fn=_replication_cell,
            seed=seed,
            kwargs={
                "degree": degree,
                "failure_fraction": failure_fraction,
                "n_nodes": n_nodes,
                "n_items": n_items,
                "num_bitmaps": num_bitmaps,
                "estimator": estimator,
                "trials": trials,
            },
            label=f"ablation/R{degree}",
        )
        for degree in degrees
    ]
    return list(run_trials(specs, jobs=jobs))


def _bitshift_cell(
    seed: int,
    *,
    shift: int,
    n_nodes: int,
    n_items: int,
    num_bitmaps: int,
    trials: int,
) -> AblationRow:
    """One bit-shift value on its own deployment."""
    items = np.arange(n_items, dtype=np.int64)
    ring = ChordRing.build(n_nodes, seed=derive_seed(seed, "ring", shift))
    dhs = DistributedHashSketch(
        ring,
        DHSConfig(num_bitmaps=num_bitmaps, bit_shift=shift, hash_seed=seed),
        seed=derive_seed(seed, "dhs", shift),
    )
    insert_cost = populate_metric(
        dhs, "docs", items, seed=derive_seed(seed, "load", shift)
    )
    sample = sample_counts(
        dhs,
        {"docs": float(n_items)},
        trials=trials,
        seed=derive_seed(seed, "origins", shift),
    )
    return AblationRow(
        label=f"b={shift}",
        error_pct=100 * sample.mean_abs_rel_error(),
        hops=sample.mean_hops(),
        bytes_kb=sample.mean_bytes() / 1024,
        extra=insert_cost.bytes / 1024,
    )


def run_bitshift_ablation(
    shifts: Sequence[int] = (0, 2, 4),
    n_nodes: int = 128,
    n_items: int = 200_000,
    num_bitmaps: int = 64,
    trials: int = 3,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[AblationRow]:
    """Accuracy/write-cost versus the bit-shift mapping ``b``."""
    specs = [
        TrialSpec(
            fn=_bitshift_cell,
            seed=seed,
            kwargs={
                "shift": shift,
                "n_nodes": n_nodes,
                "n_items": n_items,
                "num_bitmaps": num_bitmaps,
                "trials": trials,
            },
            label=f"ablation/b{shift}",
        )
        for shift in shifts
    ]
    return list(run_trials(specs, jobs=jobs))


def _overlay_cell(
    seed: int,
    *,
    overlay_label: str,
    n_nodes: int,
    n_items: int,
    num_bitmaps: int,
    trials: int,
) -> AblationRow:
    """One overlay family hosting the same DHS deployment."""
    items = np.arange(n_items, dtype=np.int64)
    overlay: DHTProtocol
    if overlay_label == "chord":
        overlay = ChordRing.build(n_nodes, seed=derive_seed(seed, "chord"))
    elif overlay_label == "kademlia":
        overlay = KademliaOverlay.build(n_nodes, seed=derive_seed(seed, "kad"))
    elif overlay_label == "pastry":
        overlay = PastryOverlay.build(n_nodes, seed=derive_seed(seed, "pastry"))
    else:
        raise ValueError(f"unknown overlay {overlay_label!r}")
    dhs = DistributedHashSketch(
        overlay,
        DHSConfig(num_bitmaps=num_bitmaps, hash_seed=seed),
        seed=derive_seed(seed, "dhs", overlay_label),
    )
    populate_metric(dhs, "docs", items, seed=derive_seed(seed, "load", overlay_label))
    sample = sample_counts(
        dhs,
        {"docs": float(n_items)},
        trials=trials,
        seed=derive_seed(seed, "origins", overlay_label),
    )
    return AblationRow(
        label=overlay_label,
        error_pct=100 * sample.mean_abs_rel_error(),
        hops=sample.mean_hops(),
        bytes_kb=sample.mean_bytes() / 1024,
        extra=sample.mean_nodes(),
    )


def run_overlay_comparison(
    n_nodes: int = 128,
    n_items: int = 200_000,
    num_bitmaps: int = 256,
    trials: int = 3,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[AblationRow]:
    """The same DHS deployment over Chord, Kademlia and Pastry."""
    specs = [
        TrialSpec(
            fn=_overlay_cell,
            seed=seed,
            kwargs={
                "overlay_label": overlay_label,
                "n_nodes": n_nodes,
                "n_items": n_items,
                "num_bitmaps": num_bitmaps,
                "trials": trials,
            },
            label=f"ablation/overlay-{overlay_label}",
        )
        for overlay_label in ("chord", "kademlia", "pastry")
    ]
    return list(run_trials(specs, jobs=jobs))
