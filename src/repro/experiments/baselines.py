"""Experiment: DHS versus the four related-work families.

The paper argues (section 1) that each prior family violates at least
one of its six constraints.  This driver measures the claims head to
head on one scenario — items with cross-node duplicates — reporting per
method: estimation error on the *distinct* count, query cost, rounds,
access-load imbalance, and duplicate (in)sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.base import distinct_count
from repro.baselines.convergecast import ConvergecastAggregator
from repro.baselines.gossip import PushSumGossip
from repro.baselines.sampling import SamplingEstimator
from repro.baselines.single_node import PartitionedCounter, SingleNodeCounter
from repro.baselines.sketch_gossip import SketchGossip
from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.experiments.common import build_ring
from repro.overlay.chord import ChordRing
from repro.overlay.stats import OpCost
from repro.experiments.report import format_table
from repro.sim.parallel import TrialSpec, run_trials
from repro.sim.seeds import derive_seed, rng_for
from repro.workloads.assignment import assign_items
from repro.workloads.multisets import zipf_duplicated_multiset

__all__ = ["BaselineRow", "run_baseline_comparison", "format_baselines"]


@dataclass
class BaselineRow:
    """One method's measured behaviour on the shared scenario."""

    method: str
    estimate: float
    error_pct: float
    query_hops: int
    query_bytes: float
    rounds: int
    load_imbalance: float
    duplicate_insensitive: bool


def _baseline_scenario(
    seed: int, n_nodes: int, n_distinct: int, total_items: int
) -> Tuple[ChordRing, Dict[int, List[int]], float]:
    """The shared scenario, rebuilt identically from the same sub-seeds."""
    ring = build_ring(n_nodes, seed=derive_seed(seed, "ring"))
    items = zipf_duplicated_multiset(
        n_distinct, total=total_items, seed=derive_seed(seed, "items")
    )
    scenario = assign_items(items, list(ring.node_ids()), seed=derive_seed(seed, "assign"))
    truth = float(distinct_count(scenario))
    return ring, scenario, truth


def _baseline_cell(
    seed: int,
    *,
    method: str,
    n_nodes: int,
    n_distinct: int,
    total_items: int,
    num_bitmaps: int,
    origin: Optional[int] = None,
) -> BaselineRow:
    """Measure one method on the (rebuilt) shared scenario.

    ``origin`` carries the querying node pre-drawn by the driver, so the
    sequential ``query-origin`` rng stream stays identical to the serial
    run no matter how the cells are scheduled.
    """
    ring, scenario, truth = _baseline_scenario(seed, n_nodes, n_distinct, total_items)

    def measure(
        label: str, estimate: float, cost: OpCost, rounds: int, insensitive: bool
    ) -> BaselineRow:
        return BaselineRow(
            method=label,
            estimate=estimate,
            error_pct=100 * abs(estimate - truth) / truth,
            query_hops=cost.hops,
            query_bytes=cost.bytes,
            rounds=rounds,
            load_imbalance=ring.load.imbalance(ring.node_ids()),
            duplicate_insensitive=insensitive,
        )

    if method == "dhs":
        # DHS (ours): populate from every holding node, count once.
        dhs = DistributedHashSketch(
            ring,
            DHSConfig(num_bitmaps=num_bitmaps, hash_seed=seed),
            seed=derive_seed(seed, "dhs"),
        )
        # Per-item insertion: one routed update per occurrence, matching
        # the single-node counter's accounting so load imbalance is
        # comparable.
        for node_id, node_items in scenario.items():
            dhs.insert_many("docs", node_items, origin=node_id)
        assert origin is not None
        result = dhs.count("docs", origin=origin)
        return measure("DHS (sLL)", result.estimate(), result.cost, 1, True)

    if method == "single":
        counter = SingleNodeCounter(ring, "docs", distinct=True)
        counter.populate(scenario)
        assert origin is not None
        single = counter.query(origin=origin)
        return measure("single-node counter", single.estimate, single.cost, 1, True)

    if method == "gossip":
        gossip_result, _ = PushSumGossip(ring, seed=derive_seed(seed, "gossip")).run(
            scenario, epsilon=0.02
        )
        return measure(
            "push-sum gossip",
            gossip_result.estimate,
            gossip_result.cost,
            gossip_result.rounds,
            False,
        )

    if method == "partitioned":
        # Hash-partitioned counter (P nodes "merely mitigate" the hotspot).
        partitioned = PartitionedCounter(ring, "docs", partitions=8)
        partitioned.populate(scenario)
        assert origin is not None
        part_result = partitioned.query(origin=origin)
        return measure(
            "partitioned counter (P=8)", part_result.estimate, part_result.cost, 1, True
        )

    if method == "sketch-gossip":
        # Gossip with sketch payloads (duplicate-insensitive, pricey rounds).
        sketch_gossip_result, _ = SketchGossip(
            ring,
            DHSConfig(num_bitmaps=num_bitmaps),
            seed=derive_seed(seed, "sketch-gossip"),
        ).run(scenario)
        return measure(
            "sketch gossip",
            sketch_gossip_result.estimate,
            sketch_gossip_result.cost,
            sketch_gossip_result.rounds,
            True,
        )

    if method == "convergecast":
        convergecast = ConvergecastAggregator(
            ring, use_sketches=True, sketch_config=DHSConfig(num_bitmaps=num_bitmaps)
        ).query(scenario, root=ring.node_ids()[0])
        return measure(
            "convergecast (sketch)",
            convergecast.estimate,
            convergecast.cost,
            1,
            True,
        )

    if method == "sampling":
        rng = rng_for(seed, "sample-origin")
        sampled = SamplingEstimator(ring, seed=derive_seed(seed, "sampling")).query(
            scenario,
            sample_size=max(2, n_nodes // 8),
            origin=ring.random_live_node(rng),
        )
        return measure("node sampling", sampled.estimate, sampled.cost, 1, False)

    raise ValueError(f"unknown baseline method {method!r}")


def run_baseline_comparison(
    n_nodes: int = 128,
    n_distinct: int = 20_000,
    total_items: int = 60_000,
    num_bitmaps: int = 128,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[BaselineRow]:
    """Run every family (plus DHS) on one duplicated-items scenario."""
    # The serial driver drew three origins from one sequential rng (DHS,
    # then single-node, then partitioned).  Draw them up front in that
    # exact order so per-method cells are scheduling-independent.
    ring, _, _ = _baseline_scenario(seed, n_nodes, n_distinct, total_items)
    query_rng = rng_for(seed, "query-origin")
    origins = {
        method: ring.random_live_node(query_rng)
        for method in ("dhs", "single", "partitioned")
    }
    methods = (
        "dhs",
        "single",
        "gossip",
        "partitioned",
        "sketch-gossip",
        "convergecast",
        "sampling",
    )
    specs = [
        TrialSpec(
            fn=_baseline_cell,
            seed=seed,
            kwargs={
                "method": method,
                "n_nodes": n_nodes,
                "n_distinct": n_distinct,
                "total_items": total_items,
                "num_bitmaps": num_bitmaps,
                "origin": origins.get(method),
            },
            label=f"baselines/{method}",
        )
        for method in methods
    ]
    return list(run_trials(specs, jobs=jobs))


def format_baselines(rows: List[BaselineRow], truth_hint: str = "") -> str:
    """Render the cross-family comparison."""
    table_rows = [
        [
            row.method,
            f"{row.estimate:,.0f}",
            f"{row.error_pct:.1f}",
            row.query_hops,
            f"{row.query_bytes / 1024:.1f}",
            row.rounds,
            f"{row.load_imbalance:.1f}",
            "yes" if row.duplicate_insensitive else "NO",
        ]
        for row in rows
    ]
    return format_table(
        f"DHS vs related-work families {truth_hint}".rstrip(),
        [
            "method",
            "estimate",
            "err %",
            "hops",
            "kB",
            "rounds",
            "load max/mean",
            "dup-insens.",
        ],
        table_rows,
    )
