"""Plain-text table rendering for experiment results.

The benchmark harness regenerates the paper's tables as monospace text;
these helpers keep the formatting in one place so every bench prints
rows the same way the paper lays them out.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_table", "format_kv"]


def format_table(title: str, headers: Sequence[str], rows: List[Sequence[object]]) -> str:
    """Render a titled monospace table."""
    rendered_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in rendered_rows)) if rendered_rows else len(header)
        for i, header in enumerate(headers)
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_kv(title: str, pairs: Sequence[tuple[str, object]]) -> str:
    """Render titled key/value lines."""
    width = max(len(k) for k, _ in pairs) if pairs else 0
    lines = [title, "-" * len(title)]
    for key, value in pairs:
        lines.append(f"{key.ljust(width)}  {_fmt(value)}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
