"""The traced counting scenario: one fixed-seed run, fully observed.

This is the shared driver behind ``python -m repro trace`` and the
golden-trace test (tests/obs/test_golden_trace.py).  It builds a small
Chord ring, populates one metric the way every experiment does
(:func:`~repro.experiments.common.populate_metric`, untraced so the
trace stays readable), then runs a handful of counts from seeded random
origins with span tracing and metering enabled.

Everything downstream is a pure function of ``TraceScenario``: the span
list, the JSONL dump, the metrics snapshot, and the Figure-7-style
per-interval access-load table are byte-identical for a fixed seed —
which is exactly what the committed golden fixture pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.experiments.common import build_ring, populate_metric
from repro.obs import runtime as obs
from repro.obs.export import LoadRow, dumps_jsonl, format_load_table, format_snapshot, render_span_tree
from repro.obs.metrics import MetricsRegistry, Snapshot
from repro.obs.span import Span, Tracer
from repro.sim.seeds import derive_seed, rng_for

__all__ = ["TraceScenario", "TraceRun", "run_traced_count", "build_load_rows", "format_trace"]


@dataclass(frozen=True)
class TraceScenario:
    """Knobs of the traced run (defaults = the golden-fixture scenario)."""

    seed: int = 1
    n_nodes: int = 64
    n_items: int = 2000
    trials: int = 4
    estimator: str = "sll"
    num_bitmaps: int = 64
    #: Few enough positions (``key_bits - log2(m)``) that most intervals
    #: hold nodes at ``n_nodes`` — empty intervals all resolve to one
    #: successor-owner, which would dominate the load table with a
    #: small-N artefact.
    key_bits: int = 16


@dataclass
class TraceRun:
    """Everything one traced scenario run produced."""

    scenario: TraceScenario
    spans: List[Span]
    snapshot: Snapshot
    load_rows: List[LoadRow]
    #: Per-trial cardinality estimates, in trial order.
    estimates: List[float] = field(default_factory=list)
    truth: float = 0.0

    def jsonl(self) -> str:
        """The byte-stable JSONL trace dump."""
        return dumps_jsonl(self.spans)


def build_load_rows(dhs: DistributedHashSketch) -> List[LoadRow]:
    """Figure-7-style per-interval access load from the overlay tracker.

    Each row aggregates the load tracker's per-node access counts over
    the live nodes of one id-space interval.  The paper's uniform-load
    claim is that per-node load is flat across intervals even though the
    interval populations shrink geometrically.
    """
    counts = dhs.dht.load.counts()
    rows: List[LoadRow] = []
    node_ids = list(dhs.dht.node_ids())
    for index in range(dhs.mapping.num_intervals):
        members = [nid for nid in node_ids if dhs.mapping.contains(index, nid)]
        rows.append(
            LoadRow(
                interval=index,
                position=dhs.mapping.position_for_index(index),
                nodes=len(members),
                accesses=sum(counts.get(nid, 0) for nid in members),
            )
        )
    return rows


def run_traced_count(scenario: TraceScenario = TraceScenario()) -> TraceRun:
    """Run the traced counting scenario and collect every artefact.

    Population runs untraced (its spans would dwarf the counting story);
    the load tracker is reset after it, so the load table shows *query*
    load only — the quantity Figure 7 plots.
    """
    ring = build_ring(scenario.n_nodes, seed=scenario.seed)
    config = DHSConfig(
        estimator=scenario.estimator,
        num_bitmaps=scenario.num_bitmaps,
        key_bits=scenario.key_bits,
        hash_seed=derive_seed(scenario.seed, "hash"),
    )
    dhs = DistributedHashSketch(ring, config, seed=scenario.seed)
    # Dense distinct ids: the true cardinality is exactly ``n_items``.
    items = np.arange(scenario.n_items, dtype=np.int64)
    populate_metric(dhs, "trace-metric", items, seed=derive_seed(scenario.seed, "owners"))
    dhs.dht.load.reset()

    tracer = Tracer()
    registry = MetricsRegistry()
    origin_rng = rng_for(scenario.seed, "trace-origins")
    estimates: List[float] = []
    with obs.observed(tracer, registry):
        for _ in range(scenario.trials):
            origin = dhs.dht.random_live_node(origin_rng)
            result = dhs.count("trace-metric", origin=origin)
            estimates.append(result.estimate())
    return TraceRun(
        scenario=scenario,
        spans=tracer.spans,
        snapshot=registry.snapshot(),
        load_rows=build_load_rows(dhs),
        estimates=estimates,
        truth=float(scenario.n_items),
    )


def format_trace(run: TraceRun, max_spans: int = 120) -> str:
    """The ``repro trace`` report: span tree, metrics, load table."""
    shown = run.spans[:max_spans]
    parts: List[str] = []
    header: Dict[str, str] = {
        "seed": str(run.scenario.seed),
        "nodes": str(run.scenario.n_nodes),
        "items": str(run.scenario.n_items),
        "estimator": run.scenario.estimator,
        "trials": str(run.scenario.trials),
    }
    parts.append("Traced DHS count — " + ", ".join(f"{k}={v}" for k, v in header.items()))
    parts.append(
        "truth %.0f, estimates: %s"
        % (run.truth, ", ".join(f"{e:.1f}" for e in run.estimates))
    )
    parts.append("")
    tree_title = f"Span tree ({len(shown)} of {len(run.spans)} spans)"
    parts.append(tree_title)
    parts.append("=" * len(tree_title))
    parts.append(render_span_tree(shown))
    parts.append("")
    snap_title = "Metrics snapshot"
    parts.append(snap_title)
    parts.append("=" * len(snap_title))
    parts.append(format_snapshot(run.snapshot))
    parts.append("")
    parts.append(
        format_load_table(
            run.load_rows, title="Per-interval query access load (paper Fig. 7)"
        )
    )
    return "\n".join(parts)
