"""Experiment: Table 2 — counting costs and accuracy (sLL / PCSA).

For each number of bitmaps ``m`` the paper reports, per estimator: nodes
visited, routing hops, bandwidth, and relative estimation error when
counting the cardinalities of the four relations Q/R/S/T from randomly
chosen querying nodes.

Insertion is estimator-independent, so each ``m`` populates one overlay
and both estimators count the *same* stored bits — exactly the paper's
setup of evaluating DHS-sLL and DHS-PCSA "within DHS".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.experiments.common import (
    CountSample,
    build_ring,
    env_scale,
    populate_relation,
    sample_counts,
)
from repro.experiments.report import format_table
from repro.sim.parallel import TrialSpec, run_trials
from repro.sim.seeds import derive_seed
from repro.workloads.relations import standard_relations

__all__ = ["Table2Row", "run_table2", "format_table2"]

ESTIMATORS = ("sll", "pcsa")


@dataclass
class Table2Row:
    """One (m, estimator) cell row of Table 2."""

    m: int
    estimator: str
    nodes_visited: float
    hops: float
    bw_kbytes: float
    error_pct: float


def _table2_cell(
    seed: int,
    *,
    m: int,
    n_nodes: int,
    scale: float,
    trials: int,
    lim: int,
    key_bits: int,
) -> List[Table2Row]:
    """One ``m``: populate once, count with both estimators."""
    relations = standard_relations(scale=scale, seed=derive_seed(seed, "relations"))
    ring = build_ring(n_nodes, seed=derive_seed(seed, "ring", m))
    config = DHSConfig(key_bits=key_bits, num_bitmaps=m, lim=lim, hash_seed=seed)
    writer = DistributedHashSketch(ring, config, seed=derive_seed(seed, "writer", m))
    truths: Dict[str, float] = {}
    for relation in relations:
        populate_relation(writer, relation, seed=derive_seed(seed, "load", m))
        truths[relation.name] = float(relation.size)
    rows: List[Table2Row] = []
    for estimator in ESTIMATORS:
        counter = DistributedHashSketch(
            ring,
            DHSConfig(
                key_bits=key_bits, num_bitmaps=m, lim=lim,
                hash_seed=seed, estimator=estimator,
            ),
            seed=derive_seed(seed, "counter", m, estimator),
        )
        sample: CountSample = sample_counts(
            counter, truths, trials=trials, seed=derive_seed(seed, "origins", m)
        )
        rows.append(
            Table2Row(
                m=m,
                estimator=estimator,
                nodes_visited=sample.mean_nodes(),
                hops=sample.mean_hops(),
                bw_kbytes=sample.mean_bytes() / 1024,
                error_pct=sample.mean_abs_rel_error() * 100,
            )
        )
    return rows


def run_table2(
    n_nodes: int = 128,
    ms: Sequence[int] = (128, 256, 512, 1024),
    scale: float | None = None,
    trials: int = 2,
    lim: int = 5,
    key_bits: int = 24,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[Table2Row]:
    """Reproduce Table 2 at the configured workload scale.

    Default network size is scaled down alongside the workload: retry
    success is governed by the items-per-(bitmap x node) ratio
    ``alpha ~ n / (2 m N)``, so shrinking ``n`` by 1000x while keeping
    ``N = 1024`` would push every configuration past the paper's m=4096
    collapse point.  ``N = 128`` with a 1/50 workload preserves the
    regime Table 2 was measured in (see EXPERIMENTS.md).
    """
    scale = env_scale(2e-2) if scale is None else scale
    specs = [
        TrialSpec(
            fn=_table2_cell,
            seed=seed,
            kwargs={
                "m": m,
                "n_nodes": n_nodes,
                "scale": scale,
                "trials": trials,
                "lim": lim,
                "key_bits": key_bits,
            },
            label=f"table2/m{m}",
        )
        for m in ms
    ]
    rows: List[Table2Row] = []
    for cell in run_trials(specs, jobs=jobs):
        rows.extend(cell)
    return rows


def format_table2(rows: List[Table2Row], scale: float) -> str:
    """Render the rows like the paper's Table 2 (sLL/PCSA pairs)."""
    by_m: Dict[int, Dict[str, Table2Row]] = {}
    for row in rows:
        by_m.setdefault(row.m, {})[row.estimator] = row
    table_rows = []
    for m in sorted(by_m):
        sll, pcsa = by_m[m].get("sll"), by_m[m].get("pcsa")
        table_rows.append(
            [
                m,
                f"{sll.nodes_visited:.0f} / {pcsa.nodes_visited:.0f}",
                f"{sll.hops:.0f} / {pcsa.hops:.0f}",
                f"{sll.bw_kbytes:.1f} / {pcsa.bw_kbytes:.1f}",
                f"{sll.error_pct:.1f} / {pcsa.error_pct:.1f}",
            ]
        )
    return format_table(
        f"Table 2: counting costs, sLL/PCSA (workload scale {scale:g})",
        ["m", "nodes visited", "hops", "BW (kBytes)", "error (%)"],
        table_rows,
    )
