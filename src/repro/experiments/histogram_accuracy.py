"""Experiment: per-cell histogram accuracy (section 5.2, text).

The paper: mean per-cell estimation error of ~8.6% with 64 bitmap
vectors, dropping to ~7.7% at 128 and ~6.8% at 256 — i.e. cell error
tracks the sketch's ``O(1/sqrt(m))`` noise because probe misses are
negligible in their regime.

Per-bucket cardinalities are ~1/buckets of the relation, so staying in
the miss-free regime needs ``n_bucket >> 2 m N``; the defaults use a
small overlay and a moderately large relation to reproduce the paper's
declining-error-with-m shape at laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.experiments.common import build_ring, populate_histogram_metrics
from repro.experiments.report import format_table
from repro.histograms.buckets import BucketSpec
from repro.histograms.builder import DHSHistogramBuilder
from repro.histograms.histogram import Histogram
from repro.sim.parallel import TrialSpec, run_trials
from repro.sim.seeds import derive_seed, rng_for
from repro.workloads.relations import make_relation

__all__ = ["HistogramAccuracyRow", "run_histogram_accuracy", "format_histogram_accuracy"]


@dataclass
class HistogramAccuracyRow:
    """Mean per-cell error for one (m, estimator)."""

    m: int
    estimator: str
    cell_error_pct: float
    sketch_sigma_pct: float


def _histogram_accuracy_cell(
    seed: int,
    *,
    m: int,
    n_nodes: int,
    n_buckets: int,
    n_items: int,
    trials: int,
) -> List[HistogramAccuracyRow]:
    """One ``m``: rebuild the (seed-identical) workload, measure both estimators."""
    relation = make_relation("R", n_items, seed=derive_seed(seed, "rel"))
    spec = BucketSpec.equi_width(relation.domain[0], relation.domain[1], n_buckets)
    truth = Histogram.exact(spec, relation.values)
    ring = build_ring(n_nodes, seed=derive_seed(seed, "ring", m))
    writer = DistributedHashSketch(
        ring,
        DHSConfig(num_bitmaps=m, hash_seed=seed),
        seed=derive_seed(seed, "writer", m),
    )
    populate_histogram_metrics(
        writer, relation, n_buckets, seed=derive_seed(seed, "load", m)
    )
    rows: List[HistogramAccuracyRow] = []
    for estimator in ("sll", "pcsa"):
        counter = DistributedHashSketch(
            ring,
            DHSConfig(num_bitmaps=m, hash_seed=seed, estimator=estimator),
            seed=derive_seed(seed, "counter", m, estimator),
        )
        builder = DHSHistogramBuilder(counter, spec, relation.name)
        rng = rng_for(seed, "origins", m, estimator)
        errors = []
        for _ in range(trials):
            reconstruction = builder.reconstruct(origin=ring.random_live_node(rng))
            errors.append(reconstruction.histogram.mean_cell_error(truth))
        sketch_cls = counter.config.sketch_class()
        rows.append(
            HistogramAccuracyRow(
                m=m,
                estimator=estimator,
                cell_error_pct=100 * sum(errors) / len(errors),
                sketch_sigma_pct=100 * sketch_cls.expected_std_error(m),
            )
        )
    return rows


def run_histogram_accuracy(
    ms: Sequence[int] = (64, 128, 256),
    n_nodes: int = 64,
    n_buckets: int = 20,
    n_items: int = 2_400_000,
    trials: int = 2,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[HistogramAccuracyRow]:
    """Cell error versus ``m`` in the miss-free regime."""
    specs = [
        TrialSpec(
            fn=_histogram_accuracy_cell,
            seed=seed,
            kwargs={
                "m": m,
                "n_nodes": n_nodes,
                "n_buckets": n_buckets,
                "n_items": n_items,
                "trials": trials,
            },
            label=f"histogram_accuracy/m{m}",
        )
        for m in ms
    ]
    rows: List[HistogramAccuracyRow] = []
    for cell in run_trials(specs, jobs=jobs):
        rows.extend(cell)
    return rows


def format_histogram_accuracy(rows: List[HistogramAccuracyRow]) -> str:
    """Render the per-cell error sweep."""
    by_m: dict[int, dict[str, HistogramAccuracyRow]] = {}
    for row in rows:
        by_m.setdefault(row.m, {})[row.estimator] = row
    table_rows = []
    for m in sorted(by_m):
        sll, pcsa = by_m[m]["sll"], by_m[m]["pcsa"]
        table_rows.append(
            [
                m,
                f"{sll.cell_error_pct:.1f}",
                f"{pcsa.cell_error_pct:.1f}",
                f"{sll.sketch_sigma_pct:.1f} / {pcsa.sketch_sigma_pct:.1f}",
            ]
        )
    return format_table(
        "Histogram per-cell error vs m",
        ["m", "sLL cell err %", "PCSA cell err %", "theory sigma % (sLL/PCSA)"],
        table_rows,
    )
