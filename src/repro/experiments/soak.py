"""Experiment: continuous-churn soak — does the system *stay* healed?

The fault matrix measures recovery from a single scripted fault.  A
long-lived deployment never gets that luxury: nodes leave, crash, lose
their disks and partition away *while* writes and counts keep flowing.
This driver runs a sustained insert+count workload over many logical
ticks against a periodic fault schedule and watches the health signals
the robustness machinery exposes:

* **replica divergence** — :func:`repro.core.maintenance.replica_divergence`
  after every tick: how many primary bits are missing from their
  responsive replica chain right now.  A healthy steady state is 0.
* **ticks to convergence** — after each fault's recovery point (the
  amnesia rejoin, the partition healing, the post-crash join), how many
  ticks until divergence returns to 0.
* **repair bandwidth** — every anti-entropy byte is charged through the
  :class:`~repro.overlay.messages.SizeModel` (digest floor + shipped
  segment summaries), reported per round.
* **under-read** — each count's clamped shortfall against an
  incrementally-maintained lossless reference sketch, plus the
  degraded-mode confidence the count reports about itself.

Two maintenance policies face the *identical* ring, fault schedule and
traffic (policy-independent seed paths): ``readrepair`` heals only where
a count happens to walk; ``antientropy`` additionally runs digest-tree
reconciliation through the :class:`~repro.core.maintenance.MaintenanceScheduler`
every ``antientropy_every`` ticks.

Churn model: leavers are FaultPlan ``crash`` events (membership loss,
data gone); the driver tops the membership back up with fresh empty
joiners the tick after, so the ring size is stationary while its
composition churns.  Amnesia, partition and transient events cycle in
between.  With ``fault_every=None`` the plan is empty, no join RNG is
ever drawn, and the run is a pure function of the seed — the trace
digest pins that byte-identity (the CI soak-smoke job and
tests/experiments/test_soak.py compare digests across runs and worker
counts).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.core.maintenance import MaintenanceConfig
from repro.core.policy import RetryPolicy
from repro.errors import ConfigurationError
from repro.experiments.report import format_table
from repro.overlay.chord import ChordRing
from repro.overlay.faults import FaultEvent, FaultInjector, FaultPlan
from repro.sim.parallel import TrialSpec, run_trials
from repro.sim.seeds import derive_seed, rng_for

__all__ = [
    "SOAK_FAULT_CYCLE",
    "SOAK_POLICIES",
    "SoakRow",
    "run_soak",
    "format_soak",
    "soak_plan",
]

#: Fault kinds injected in rotation, one every ``fault_every`` ticks.
SOAK_FAULT_CYCLE: Tuple[str, ...] = ("amnesia", "partition", "crash", "transient")

#: policy name -> anti-entropy cadence (None = read-repair only).
SOAK_POLICIES: Dict[str, Optional[int]] = {
    "readrepair": None,
    "antientropy": 1,
}

_RETRY = RetryPolicy(max_attempts=3, backoff_hops=1)


@dataclass
class SoakRow:
    """One policy's health trajectory over the whole soak run."""

    policy: str
    ticks: int
    faults: int
    mean_divergence: float
    peak_divergence: int
    final_divergence: int
    mean_convergence_ticks: float
    repair_kb: float
    repair_writes: int
    mean_underread_pct: float
    final_underread_pct: float
    degraded_pct: float
    min_confidence: float
    trace_digest: str


def soak_plan(
    ticks: int,
    fault_every: Optional[int],
    fraction: float,
    duration: int,
    kinds: Sequence[str] = SOAK_FAULT_CYCLE,
) -> FaultPlan:
    """Periodic fault schedule: one event of the cycling kind per period.

    ``fault_every=None`` (or 0) yields the empty plan — the bit-identical
    no-fault baseline.  Events stop early enough (``at + duration <
    ticks``) that every fault's recovery point lands inside the run, so
    end-of-run divergence is a meaningful convergence check.
    """
    if not fault_every:
        return FaultPlan.empty()
    events: List[FaultEvent] = []
    index = 0
    for at in range(fault_every, ticks, fault_every):
        kind = kinds[index % len(kinds)]
        timed = kind in ("amnesia", "transient", "partition")
        if at + (duration if timed else 1) >= ticks:
            break
        events.append(
            FaultEvent(
                kind,
                at=at,
                fraction=fraction,
                duration=duration if timed else 0,
            )
        )
        index += 1
    return FaultPlan(events=tuple(events))


def _recovery_points(plan: FaultPlan) -> List[int]:
    """The tick at which each event's healing can begin.

    Timed faults heal once the victims answer again (``at + duration``);
    permanent crashes heal once the replacement joiner is in
    (``at + 1``, the driver's top-up tick).
    """
    points = []
    for event in plan.events:
        points.append(event.at + (event.duration if event.duration else 1))
    return points


def _soak_cell(
    seed: int,
    *,
    policy_name: str,
    ticks: int,
    fault_every: Optional[int],
    fraction: float,
    duration: int,
    n_nodes: int,
    items_per_tick: int,
    num_bitmaps: int,
    estimator: str,
    replication: int,
    count_every: int,
) -> SoakRow:
    """One policy soaked over the full schedule.

    Every seed path deliberately excludes ``policy_name``: both policies
    see the identical ring, victims, joiner ids and traffic, so their
    rows are a paired comparison.  The per-tick trace (divergence,
    repair cost, estimates) is digested so byte-identity across runs and
    worker counts is a single string comparison.
    """
    antientropy_every = SOAK_POLICIES[policy_name]
    plan = soak_plan(ticks, fault_every, fraction, duration)
    ring = ChordRing.build(n_nodes, seed=derive_seed(seed, "ring"))
    injector = FaultInjector(ring, plan, seed=derive_seed(seed, "faults"))
    dhs = DistributedHashSketch(
        injector,
        DHSConfig(
            num_bitmaps=num_bitmaps,
            replication=replication,
            estimator=estimator,
            hash_seed=seed,
            read_repair=replication > 0,
        ),
        seed=derive_seed(seed, "dhs"),
        policy=_RETRY,
    )
    scheduler = dhs.make_scheduler(
        MaintenanceConfig(sweep_every=4, antientropy_every=antientropy_every)
    )
    reference = dhs.local_sketch([])
    # Joiner ids are only drawn when a crash actually shrank the ring, so
    # the no-fault run never touches this stream (bit-identity).
    join_rng = rng_for(seed, "soak", "joins")
    traffic_rng = rng_for(seed, "soak", "traffic")

    trace: List[Tuple[float, ...]] = []
    divergences: List[int] = []
    underreads: List[float] = []
    degraded: List[float] = []
    confidences: List[float] = []
    repair_bytes = 0.0
    repair_writes = 0
    next_item = 0
    for now in range(1, ticks + 1):
        injector.advance_to(now)
        joins = 0
        while len(injector.node_ids()) < n_nodes:
            new_id = join_rng.randrange(injector.space.size)
            while injector.has_node(new_id):
                new_id = join_rng.randrange(injector.space.size)
            injector.inner.add_node(new_id)
            joins += 1
        batch = range(next_item, next_item + items_per_tick)
        next_item += items_per_tick
        origin = injector.random_live_node(traffic_rng)
        insert_cost = dhs.insert_bulk("events", batch, origin=origin, now=now)
        reference.add_all(batch)
        report = scheduler.tick(now)
        if report.antientropy is not None:
            repair_bytes += report.antientropy.cost.bytes
            repair_writes += report.antientropy.entries_written
        divergence = dhs.replica_divergence(now)
        divergences.append(divergence)
        estimate = 0.0
        if now % count_every == 0:
            result = dhs.count(
                "events", origin=injector.random_live_node(traffic_rng), now=now
            )
            estimate = result.estimate()
            underreads.append(max(0.0, 1.0 - estimate / reference.estimate()))
            degraded.append(1.0 if result.degraded else 0.0)
            confidences.append(min(result.confidence.values(), default=1.0))
        trace.append(
            (
                now,
                joins,
                divergence,
                report.cost.bytes,
                float(report.antientropy.entries_written)
                if report.antientropy is not None
                else 0.0,
                insert_cost.bytes,
                estimate,
            )
        )

    points = _recovery_points(plan)
    convergence: List[int] = []
    for i, start in enumerate(points):
        horizon = plan.events[i + 1].at if i + 1 < len(plan.events) else ticks + 1
        healed = next(
            (
                t
                for t in range(start, min(horizon, ticks + 1))
                if divergences[t - 1] == 0
            ),
            None,
        )
        # Never healed before the next fault (or run end): charge the
        # whole window — an honest penalty, not a silent drop.
        convergence.append((healed if healed is not None else horizon) - start)
    digest = hashlib.blake2b(repr(trace).encode(), digest_size=16).hexdigest()
    n_counts = max(1, len(underreads))
    return SoakRow(
        policy=policy_name,
        ticks=ticks,
        faults=len(plan.events),
        mean_divergence=sum(divergences) / ticks,
        peak_divergence=max(divergences),
        final_divergence=divergences[-1],
        mean_convergence_ticks=(
            sum(convergence) / len(convergence) if convergence else 0.0
        ),
        repair_kb=repair_bytes / 1024,
        repair_writes=repair_writes,
        mean_underread_pct=100 * sum(underreads) / n_counts,
        final_underread_pct=100 * (underreads[-1] if underreads else 0.0),
        degraded_pct=100 * sum(degraded) / max(1, len(degraded)),
        min_confidence=min(confidences, default=1.0),
        trace_digest=digest,
    )


def run_soak(
    policies: Sequence[str] = ("readrepair", "antientropy"),
    ticks: int = 60,
    fault_every: Optional[int] = 12,
    fraction: float = 0.15,
    duration: int = 4,
    n_nodes: int = 64,
    items_per_tick: int = 50,
    num_bitmaps: int = 32,
    estimator: str = "sll",
    replication: int = 2,
    count_every: int = 2,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[SoakRow]:
    """Soak every policy against the identical churn schedule."""
    for name in policies:
        if name not in SOAK_POLICIES:
            raise ConfigurationError(
                f"unknown soak policy {name!r}; expected one of {sorted(SOAK_POLICIES)}"
            )
    specs = [
        TrialSpec(
            fn=_soak_cell,
            seed=seed,
            kwargs={
                "policy_name": name,
                "ticks": ticks,
                "fault_every": fault_every,
                "fraction": fraction,
                "duration": duration,
                "n_nodes": n_nodes,
                "items_per_tick": items_per_tick,
                "num_bitmaps": num_bitmaps,
                "estimator": estimator,
                "replication": replication,
                "count_every": count_every,
            },
            label=f"soak/{name}/t{ticks}",
        )
        for name in policies
    ]
    return list(run_trials(specs, jobs=jobs))


def format_soak(rows: List[SoakRow]) -> str:
    """Render the soak comparison."""
    return format_table(
        "Continuous-churn soak: divergence, convergence and repair cost",
        [
            "policy",
            "ticks",
            "faults",
            "div mean",
            "div peak",
            "div end",
            "conv ticks",
            "repair kB",
            "writes",
            "under %",
            "end under %",
            "degr %",
            "min conf",
        ],
        [
            [
                row.policy,
                row.ticks,
                row.faults,
                f"{row.mean_divergence:.1f}",
                row.peak_divergence,
                row.final_divergence,
                f"{row.mean_convergence_ticks:.1f}",
                f"{row.repair_kb:.1f}",
                row.repair_writes,
                f"{row.mean_underread_pct:.1f}",
                f"{row.final_underread_pct:.1f}",
                f"{row.degraded_pct:.0f}",
                f"{row.min_confidence:.3f}",
            ]
            for row in rows
        ],
    )
