"""Experiment: counting robustness under undetected failures (§3.5).

The paper's fault model: each node fails with probability ``p_f``,
failures are discovered on contact, and with ``R`` replicas the chance
of losing a DHS bit is ``p_f^R`` — "for any practical purpose adequately
small".  The driver crashes a ``p_f`` fraction of nodes *lazily* (the
overlay has not noticed), then measures the counting error and the hop
overhead of routing around the corpses, for several replication degrees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.experiments.common import populate_metric, sample_counts
from repro.experiments.report import format_table
from repro.overlay.chord import ChordRing
from repro.sim.parallel import TrialSpec, run_trials
from repro.sim.seeds import derive_seed, rng_for

__all__ = ["RobustnessRow", "run_failure_robustness", "format_robustness"]


@dataclass
class RobustnessRow:
    """Error and cost at one (p_f, R) point."""

    p_f: float
    replication: int
    error_pct: float
    hops: float


def _robustness_cell(
    seed: int,
    *,
    replication: int,
    draw: int,
    failure_fractions: Tuple[float, ...],
    n_nodes: int,
    n_items: int,
    num_bitmaps: int,
    estimator: str,
    trials: int,
) -> List[Tuple[float, float, float]]:
    """One (replication, draw): degrade one deployment through every p_f.

    Returns ``(p_f, error, hops)`` per fraction, in ascending order.
    """
    items = np.arange(n_items, dtype=np.int64)
    ring = ChordRing.build(n_nodes, seed=derive_seed(seed, "ring", replication, draw))
    dhs = DistributedHashSketch(
        ring,
        DHSConfig(
            num_bitmaps=num_bitmaps,
            replication=replication,
            estimator=estimator,
            hash_seed=seed + draw,
        ),
        seed=derive_seed(seed, "dhs", replication, draw),
    )
    populate_metric(
        dhs, "docs", items, seed=derive_seed(seed, "load", replication, draw)
    )
    failed = 0
    points: List[Tuple[float, float, float]] = []
    for p_f in failure_fractions:
        target = int(n_nodes * p_f)
        if target > failed:
            extra = target - failed
            alive = [n for n in ring.node_ids() if ring.is_alive(n)]
            rng = rng_for(seed, "fail", replication, draw, target)
            for victim in rng.sample(alive, min(extra, len(alive) - 1)):
                ring.mark_failed(victim)
            failed = target
        sample = sample_counts(
            dhs,
            {"docs": float(n_items)},
            trials=trials,
            seed=derive_seed(seed, "origins", replication, draw, target),
        )
        points.append((p_f, sample.mean_abs_rel_error(), sample.mean_hops()))
    return points


def run_failure_robustness(
    failure_fractions: Sequence[float] = (0.0, 0.15, 0.3),
    replications: Sequence[int] = (0, 3),
    n_nodes: int = 256,
    n_items: int = 300_000,
    num_bitmaps: int = 512,
    estimator: str = "pcsa",
    trials: int = 2,
    draws: int = 3,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[RobustnessRow]:
    """Counting error/hops versus the undetected-failure fraction.

    Failure fractions must be ascending: each deployment is populated
    once per random draw and failures accumulate, which both matches how
    a network degrades and keeps the experiment affordable.  Results are
    averaged over ``draws`` independent failure patterns (the PCSA
    collapse is bimodal, so single draws are noisy).
    """
    if list(failure_fractions) != sorted(failure_fractions):
        raise ValueError("failure_fractions must be ascending")
    specs = [
        TrialSpec(
            fn=_robustness_cell,
            seed=seed,
            kwargs={
                "replication": replication,
                "draw": draw,
                "failure_fractions": tuple(failure_fractions),
                "n_nodes": n_nodes,
                "n_items": n_items,
                "num_bitmaps": num_bitmaps,
                "estimator": estimator,
                "trials": trials,
            },
            label=f"robustness/R{replication}/d{draw}",
        )
        for replication in replications
        for draw in range(draws)
    ]
    results = run_trials(specs, jobs=jobs)
    accum: dict[tuple[float, int], list[tuple[float, float]]] = {}
    for spec, points in zip(specs, results):
        replication = spec.kwargs["replication"]
        for p_f, error, hops in points:
            accum.setdefault((p_f, replication), []).append((error, hops))
    rows: List[RobustnessRow] = []
    for replication in replications:
        for p_f in failure_fractions:
            samples = accum[(p_f, replication)]
            rows.append(
                RobustnessRow(
                    p_f=p_f,
                    replication=replication,
                    error_pct=100 * sum(e for e, _ in samples) / len(samples),
                    hops=sum(h for _, h in samples) / len(samples),
                )
            )
    return rows


def format_robustness(rows: List[RobustnessRow]) -> str:
    """Render the (p_f x R) grid."""
    return format_table(
        "Counting under undetected failures (section 3.5, lazy p_f model)",
        ["p_f", "R", "error %", "hops"],
        [
            [f"{row.p_f:.2f}", row.replication, f"{row.error_pct:.1f}", f"{row.hops:.0f}"]
            for row in rows
        ],
    )
