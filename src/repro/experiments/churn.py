"""Experiment: soft-state maintenance under churn (section 3.3).

The paper's time-out trade-off: long TTLs need fewer refreshes but track
a fluctuating metric sluggishly (stale entries over-count departed
items); short TTLs adapt fast but cost refresh bandwidth — and without
refreshing at all, the counter silently decays to zero.

The driver simulates rounds of node churn where a departing peer's items
leave the system and each joining peer brings fresh items (so the true
cardinality drifts), under different (ttl, refresh period) policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.experiments.report import format_table
from repro.overlay.chord import ChordRing
from repro.sim.parallel import TrialSpec, run_trials
from repro.sim.seeds import derive_seed, rng_for

__all__ = ["ChurnRow", "run_churn_experiment", "format_churn"]


@dataclass
class ChurnRow:
    """One maintenance policy's behaviour under churn."""

    label: str
    mean_error_pct: float  # |estimate/truth - 1|, averaged over rounds
    final_error_pct: float
    refresh_kb: float  # total refresh bandwidth spent


def _policy_label(ttl: Optional[int], refresh_every: Optional[int]) -> str:
    ttl_text = "inf" if ttl is None else str(ttl)
    refresh_text = "never" if refresh_every is None else f"every {refresh_every}"
    return f"ttl={ttl_text}, refresh {refresh_text}"


def _churn_cell(
    seed: int,
    *,
    ttl: Optional[int],
    refresh_every: Optional[int],
    rounds: int,
    churn_fraction: float,
    n_nodes: int,
    items_per_node: int,
    num_bitmaps: int,
) -> ChurnRow:
    """One maintenance policy simulated over every churn round."""
    rng = rng_for(seed, "churn", str(ttl), str(refresh_every))
    ring = ChordRing.build(n_nodes, seed=derive_seed(seed, "ring"))
    dhs = DistributedHashSketch(
        ring,
        DHSConfig(num_bitmaps=num_bitmaps, ttl=ttl, hash_seed=seed),
        seed=derive_seed(seed, "dhs"),
    )
    next_item = 0
    holdings: Dict[int, Set[int]] = {}
    for node_id in ring.node_ids():
        holdings[node_id] = set(range(next_item, next_item + items_per_node))
        next_item += items_per_node
    for node_id, items in holdings.items():
        dhs.insert_bulk("files", items, origin=node_id, now=0)

    refresh_bytes = 0.0
    errors: List[float] = []
    for now in range(1, rounds + 1):
        # Churn: leavers take their items; joiners bring new ones.
        victims = rng.sample(list(ring.node_ids()), int(n_nodes * churn_fraction))
        for victim in victims:
            ring.fail_node(victim)
            holdings.pop(victim, None)
        for _ in victims:
            new_id = rng.randrange(ring.space.size)
            while ring.has_node(new_id):
                new_id = rng.randrange(ring.space.size)
            ring.add_node(new_id)
            items = set(range(next_item, next_item + items_per_node))
            next_item += items_per_node
            holdings[new_id] = items
            dhs.insert_bulk("files", items, origin=new_id, now=now)
        # Periodic refresh by every live owner.
        if refresh_every is not None and now % refresh_every == 0:
            for node_id, items in holdings.items():
                refresh_bytes += dhs.refresh(
                    "files", items, origin=node_id, now=now
                ).bytes
        truth = sum(len(items) for items in holdings.values())
        estimate = dhs.count(
            "files", origin=ring.random_live_node(rng), now=now
        ).estimate()
        errors.append(abs(estimate / truth - 1.0))
    return ChurnRow(
        label=_policy_label(ttl, refresh_every),
        mean_error_pct=100 * sum(errors) / len(errors),
        final_error_pct=100 * errors[-1],
        refresh_kb=refresh_bytes / 1024,
    )


def run_churn_experiment(
    policies: Sequence[Tuple[Optional[int], Optional[int]]] = (
        (4, 2),      # short TTL, frequent refresh: tracks closely
        (16, 8),     # longer TTL, lazy refresh: cheaper, staler
        (4, None),   # TTL without refresh: decays to zero
        (None, None) # immortal entries: over-counts departed items
    ),
    rounds: int = 24,
    churn_fraction: float = 0.06,
    n_nodes: int = 128,
    items_per_node: int = 150,
    num_bitmaps: int = 64,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[ChurnRow]:
    """Estimate-tracking quality of maintenance policies under churn."""
    specs = [
        TrialSpec(
            fn=_churn_cell,
            seed=seed,
            kwargs={
                "ttl": ttl,
                "refresh_every": refresh_every,
                "rounds": rounds,
                "churn_fraction": churn_fraction,
                "n_nodes": n_nodes,
                "items_per_node": items_per_node,
                "num_bitmaps": num_bitmaps,
            },
            label=f"churn/{_policy_label(ttl, refresh_every)}",
        )
        for ttl, refresh_every in policies
    ]
    return list(run_trials(specs, jobs=jobs))


def format_churn(rows: List[ChurnRow]) -> str:
    """Render the churn-policy comparison."""
    return format_table(
        "Soft-state maintenance under churn (section 3.3)",
        ["policy", "mean err %", "final err %", "refresh kB"],
        [
            [row.label, f"{row.mean_error_pct:.1f}", f"{row.final_error_pct:.1f}", f"{row.refresh_kb:.0f}"]
            for row in rows
        ],
    )
