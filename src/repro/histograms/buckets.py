"""Histogram bucket specifications (paper section 4.3).

The paper builds equi-width histograms: the attribute domain
``[amin, amax]`` is split into ``I`` equal intervals
``B_i = [amin + i*S, amin + (i+1)*S)`` with ``S = (amax - amin + 1) / I``.
It also notes that any bucketing with *constant, known-in-advance*
boundaries works; :meth:`BucketSpec.from_boundaries` provides that
generalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np
import numpy.typing as npt

from repro.errors import HistogramError

__all__ = ["BucketSpec"]


@dataclass(frozen=True)
class BucketSpec:
    """A fixed partitioning of an integer attribute domain.

    ``boundaries`` has ``n_buckets + 1`` ascending entries; bucket ``i``
    covers ``[boundaries[i], boundaries[i+1])``, except the last bucket,
    which is closed on the right so ``amax`` belongs to it.
    """

    boundaries: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.boundaries) < 2:
            raise HistogramError("need at least two boundaries (one bucket)")
        if any(a >= b for a, b in zip(self.boundaries, self.boundaries[1:])):
            raise HistogramError("boundaries must be strictly ascending")

    # ------------------------------------------------------------------
    # Constructors.
    # ------------------------------------------------------------------
    @classmethod
    def equi_width(cls, amin: int, amax: int, n_buckets: int) -> "BucketSpec":
        """The paper's equi-width partitioning of ``[amin, amax]``."""
        if n_buckets < 1:
            raise HistogramError(f"n_buckets must be >= 1, got {n_buckets}")
        if amax < amin:
            raise HistogramError(f"empty domain [{amin}, {amax}]")
        width = (amax - amin + 1) / n_buckets
        edges = tuple(amin + i * width for i in range(n_buckets)) + (amax + 1.0,)
        return cls(boundaries=edges)

    @classmethod
    def from_boundaries(cls, boundaries: Sequence[float]) -> "BucketSpec":
        """Arbitrary constant-boundary buckets (non-equi-width)."""
        return cls(boundaries=tuple(float(b) for b in boundaries))

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    @property
    def n_buckets(self) -> int:
        """Number of buckets."""
        return len(self.boundaries) - 1

    @property
    def amin(self) -> float:
        """Inclusive lower end of the covered domain."""
        return self.boundaries[0]

    @property
    def amax(self) -> float:
        """Exclusive upper end of the covered domain."""
        return self.boundaries[-1]

    def bucket_range(self, index: int) -> Tuple[float, float]:
        """Half-open value range of bucket ``index``."""
        if not 0 <= index < self.n_buckets:
            raise HistogramError(f"bucket {index} out of range [0, {self.n_buckets})")
        return self.boundaries[index], self.boundaries[index + 1]

    def bucket_width(self, index: int) -> float:
        """Width of bucket ``index``."""
        lo, hi = self.bucket_range(index)
        return hi - lo

    def bucket_index(self, value: float) -> int:
        """Bucket containing ``value``; raises when outside the domain."""
        if not self.amin <= value < self.amax:
            raise HistogramError(
                f"value {value} outside domain [{self.amin}, {self.amax})"
            )
        return int(np.searchsorted(self.boundaries, value, side="right")) - 1

    def bucket_indices(self, values: npt.ArrayLike) -> npt.NDArray[np.intp]:
        """Vectorized :meth:`bucket_index` (values must be in-domain)."""
        values = np.asarray(values)
        if values.size and (values.min() < self.amin or values.max() >= self.amax):
            raise HistogramError("some values fall outside the bucketed domain")
        return np.searchsorted(self.boundaries, values, side="right") - 1

    def all_ranges(self) -> List[Tuple[float, float]]:
        """Every bucket's half-open range, in order."""
        return [self.bucket_range(i) for i in range(self.n_buckets)]
