"""Histograms and selectivity estimation.

A :class:`Histogram` pairs a :class:`~repro.histograms.buckets.BucketSpec`
with per-bucket tuple counts (exact or DHS-estimated) and answers the
estimates a query optimizer needs: range and equality selectivities under
the classic uniform-within-bucket assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
import numpy.typing as npt

from repro.errors import HistogramError
from repro.histograms.buckets import BucketSpec

__all__ = ["Histogram"]


@dataclass
class Histogram:
    """Per-bucket counts over a fixed bucket spec."""

    spec: BucketSpec
    counts: List[float]

    def __post_init__(self) -> None:
        if len(self.counts) != self.spec.n_buckets:
            raise HistogramError(
                f"{len(self.counts)} counts for {self.spec.n_buckets} buckets"
            )
        if any(c < 0 for c in self.counts):
            raise HistogramError("bucket counts must be non-negative")

    # ------------------------------------------------------------------
    # Constructors.
    # ------------------------------------------------------------------
    @classmethod
    def exact(cls, spec: BucketSpec, values: npt.ArrayLike) -> "Histogram":
        """Ground-truth histogram from materialized values."""
        indices = spec.bucket_indices(np.asarray(values))
        counts = np.bincount(indices, minlength=spec.n_buckets).astype(float)
        return cls(spec=spec, counts=counts.tolist())

    # ------------------------------------------------------------------
    # Aggregates.
    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        """Total tuple count represented by the histogram."""
        return float(sum(self.counts))

    def count_in_bucket(self, index: int) -> float:
        """Estimated tuples in bucket ``index``."""
        if not 0 <= index < self.spec.n_buckets:
            raise HistogramError(f"bucket {index} out of range")
        return self.counts[index]

    # ------------------------------------------------------------------
    # Selectivity estimation (uniform-within-bucket assumption).
    # ------------------------------------------------------------------
    def estimate_range(self, lo: float, hi: float) -> float:
        """Estimated tuples with value in ``[lo, hi)``."""
        if hi <= lo:
            return 0.0
        lo = max(lo, self.spec.amin)
        hi = min(hi, self.spec.amax)
        if hi <= lo:
            return 0.0
        total = 0.0
        for index in range(self.spec.n_buckets):
            b_lo, b_hi = self.spec.bucket_range(index)
            overlap = min(hi, b_hi) - max(lo, b_lo)
            if overlap > 0:
                total += self.counts[index] * overlap / (b_hi - b_lo)
        return total

    def estimate_equal(self, value: float) -> float:
        """Estimated tuples with the exact ``value``."""
        if not self.spec.amin <= value < self.spec.amax:
            return 0.0
        index = self.spec.bucket_index(value)
        return self.counts[index] / self.spec.bucket_width(index)

    def selectivity_range(self, lo: float, hi: float) -> float:
        """Fraction of tuples in ``[lo, hi)`` (0 when histogram empty)."""
        if self.total == 0:
            return 0.0
        return self.estimate_range(lo, hi) / self.total

    def scale(self, factor: float) -> "Histogram":
        """Uniformly scale every bucket (attribute-value independence)."""
        if factor < 0:
            raise HistogramError(f"scale factor must be >= 0, got {factor}")
        return Histogram.from_counts(self.spec, [c * factor for c in self.counts])

    def restrict(self, lo: float, hi: float) -> "Histogram":
        """The histogram of tuples with value in ``[lo, hi)``.

        Bucket counts are scaled by their overlap with the range
        (uniform-within-bucket); the spec is unchanged so restricted
        histograms stay join-compatible with unrestricted ones.
        """
        counts = []
        for index in range(self.spec.n_buckets):
            b_lo, b_hi = self.spec.bucket_range(index)
            overlap = min(hi, b_hi) - max(lo, b_lo)
            if overlap <= 0:
                counts.append(0.0)
            else:
                counts.append(self.counts[index] * overlap / (b_hi - b_lo))
        return Histogram.from_counts(self.spec, counts)

    # ------------------------------------------------------------------
    # Comparison helpers (accuracy experiments).
    # ------------------------------------------------------------------
    def per_bucket_errors(self, reference: "Histogram") -> List[float]:
        """Relative per-cell error against a reference histogram.

        Buckets empty in the reference are skipped (relative error is
        undefined there), matching the paper's per-cell error metric.
        """
        if reference.spec != self.spec:
            raise HistogramError("histograms use different bucket specs")
        errors = []
        for mine, truth in zip(self.counts, reference.counts):
            if truth > 0:
                errors.append(abs(mine - truth) / truth)
        return errors

    def mean_cell_error(self, reference: "Histogram") -> float:
        """Mean relative per-cell error against the reference."""
        errors = self.per_bucket_errors(reference)
        if not errors:
            return 0.0
        return sum(errors) / len(errors)

    @classmethod
    def from_counts(cls, spec: BucketSpec, counts: Sequence[float]) -> "Histogram":
        """Histogram from externally produced counts (e.g. DHS estimates)."""
        return cls(spec=spec, counts=[float(c) for c in counts])
