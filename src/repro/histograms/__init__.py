"""DHS-backed histograms: bucket specs, histograms, builders, and the
advanced (v-optimal / maxdiff / compressed) constructions of footnote 5."""

from repro.histograms.advanced import (
    aggregate_micro,
    compressed_boundaries,
    derive_histogram,
    equi_depth_boundaries,
    maxdiff_boundaries,
    v_optimal_boundaries,
)
from repro.histograms.buckets import BucketSpec
from repro.histograms.builder import DHSHistogramBuilder, HistogramReconstruction
from repro.histograms.histogram import Histogram

__all__ = [
    "aggregate_micro",
    "compressed_boundaries",
    "derive_histogram",
    "equi_depth_boundaries",
    "maxdiff_boundaries",
    "v_optimal_boundaries",
    "BucketSpec",
    "DHSHistogramBuilder",
    "HistogramReconstruction",
    "Histogram",
]
