"""Advanced histogram constructions (the paper's footnote 5).

The paper: "We are currently investigating methods to construct other,
more complicated types of histograms (e.g. compressed, v-optimal,
maxdiff)" — with the constraint (section 4.3) that bucket boundaries be
*constant and known in advance*.

The natural DHS recipe honours that constraint with two levels: maintain
a fine **micro-bucket** equi-width histogram in the DHS (its boundaries
are fixed), and derive the sophisticated bucketings *client-side* from
the reconstructed micro-counts:

* **v-optimal** — partition the micro-buckets into ``B`` buckets
  minimizing the total within-bucket variance of counts (exact DP,
  Jagadish et al. 1998 flavour).
* **maxdiff** — split at the ``B - 1`` largest adjacent count
  differences (Poosala et al. 1996).
* **compressed** — the ``s`` heaviest micro-buckets become singleton
  buckets; the remainder is grouped into approximately equi-depth runs.

All three return a :class:`~repro.histograms.buckets.BucketSpec` whose
boundaries are a subset of the micro-boundaries, plus helpers to
aggregate micro-counts into any derived spec.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import HistogramError
from repro.histograms.buckets import BucketSpec
from repro.histograms.histogram import Histogram

__all__ = [
    "v_optimal_boundaries",
    "maxdiff_boundaries",
    "compressed_boundaries",
    "equi_depth_boundaries",
    "aggregate_micro",
    "derive_histogram",
]


def _check_inputs(micro: Histogram, n_buckets: int) -> None:
    if n_buckets < 1:
        raise HistogramError(f"n_buckets must be >= 1, got {n_buckets}")
    if n_buckets > micro.spec.n_buckets:
        raise HistogramError(
            f"cannot derive {n_buckets} buckets from "
            f"{micro.spec.n_buckets} micro-buckets"
        )


def _spec_from_cuts(micro_spec: BucketSpec, cuts: Sequence[int]) -> BucketSpec:
    """Bucket spec whose edges are micro-boundaries at ``cuts``.

    ``cuts`` are micro-bucket indices where new buckets *start*
    (excluding 0); the first bucket always starts at the domain minimum.
    """
    edges = [micro_spec.boundaries[0]]
    for cut in sorted(set(cuts)):
        if not 0 < cut < micro_spec.n_buckets:
            raise HistogramError(f"cut {cut} out of range")
        edges.append(micro_spec.boundaries[cut])
    edges.append(micro_spec.boundaries[-1])
    return BucketSpec.from_boundaries(edges)


# ----------------------------------------------------------------------
# V-optimal: exact interval DP minimizing sum of within-bucket variances.
# ----------------------------------------------------------------------
def v_optimal_boundaries(micro: Histogram, n_buckets: int) -> BucketSpec:
    """Exact v-optimal partition of the micro-buckets into ``n_buckets``.

    Cost of a bucket spanning micro-buckets ``[i, j)`` is the variance of
    their counts times the span — the classic SSE objective.  ``O(M^2 B)``
    over ``M`` micro-buckets.
    """
    _check_inputs(micro, n_buckets)
    counts = np.asarray(micro.counts, dtype=np.float64)
    m = counts.shape[0]
    prefix = np.concatenate([[0.0], np.cumsum(counts)])
    prefix_sq = np.concatenate([[0.0], np.cumsum(counts**2)])

    def sse(i: int, j: int) -> float:
        """Sum of squared errors of micro-buckets [i, j) around their mean."""
        total = prefix[j] - prefix[i]
        total_sq = prefix_sq[j] - prefix_sq[i]
        return total_sq - total * total / (j - i)

    inf = float("inf")
    # cost[b][j]: best SSE splitting the first j micro-buckets into b buckets.
    cost = np.full((n_buckets + 1, m + 1), inf)
    split = np.zeros((n_buckets + 1, m + 1), dtype=np.int64)
    cost[0][0] = 0.0
    for b in range(1, n_buckets + 1):
        for j in range(b, m - (n_buckets - b) + 1):
            best, best_i = inf, b - 1
            for i in range(b - 1, j):
                if cost[b - 1][i] == inf:
                    continue
                candidate = cost[b - 1][i] + sse(i, j)
                if candidate < best:
                    best, best_i = candidate, i
            cost[b][j] = best
            split[b][j] = best_i

    cuts: List[int] = []
    j = m
    for b in range(n_buckets, 1, -1):
        j = int(split[b][j])
        cuts.append(j)
    return _spec_from_cuts(micro.spec, cuts)


# ----------------------------------------------------------------------
# MaxDiff: cut at the largest adjacent count differences.
# ----------------------------------------------------------------------
def maxdiff_boundaries(micro: Histogram, n_buckets: int) -> BucketSpec:
    """Split where adjacent micro-bucket counts differ the most."""
    _check_inputs(micro, n_buckets)
    counts = np.asarray(micro.counts, dtype=np.float64)
    diffs = np.abs(np.diff(counts))
    # Cut *after* micro-bucket i when diffs[i] ranks among the largest.
    order = np.argsort(diffs)[::-1][: n_buckets - 1]
    cuts = [int(i) + 1 for i in order]
    return _spec_from_cuts(micro.spec, cuts)


# ----------------------------------------------------------------------
# Compressed: heavy singletons + approximately equi-depth remainder.
# ----------------------------------------------------------------------
def compressed_boundaries(
    micro: Histogram,
    n_buckets: int,
    n_singletons: int | None = None,
) -> BucketSpec:
    """Isolate the heaviest micro-buckets; group the rest equi-depth."""
    _check_inputs(micro, n_buckets)
    if n_singletons is None:
        n_singletons = max(1, n_buckets // 3)
    if n_singletons >= n_buckets:
        raise HistogramError("n_singletons must leave room for grouped buckets")
    counts = np.asarray(micro.counts, dtype=np.float64)
    m = counts.shape[0]
    heavy = set(int(i) for i in np.argsort(counts)[::-1][:n_singletons])
    cuts: set[int] = set()
    for index in heavy:
        if index > 0:
            cuts.add(index)
        if index + 1 < m:
            cuts.add(index + 1)
    # Remaining budget: equi-depth cuts over the non-heavy mass.
    remaining = n_buckets - 1 - len(cuts)
    if remaining > 0:
        light_total = counts.sum() - sum(counts[i] for i in heavy)
        if light_total > 0:
            target = light_total / (remaining + 1)
            running = 0.0
            placed = 0
            for index in range(m):
                if index in heavy:
                    continue
                running += counts[index]
                if running >= target and placed < remaining and 0 < index + 1 < m:
                    cuts.add(index + 1)
                    running = 0.0
                    placed += 1
    # Trim to budget (keep the earliest cuts deterministic).
    trimmed = sorted(cuts)[: n_buckets - 1]
    return _spec_from_cuts(micro.spec, trimmed)


# ----------------------------------------------------------------------
# Equi-depth: every bucket holds about the same tuple mass.
# ----------------------------------------------------------------------
def equi_depth_boundaries(micro: Histogram, n_buckets: int) -> BucketSpec:
    """Cut so each bucket carries ~``total / n_buckets`` tuples.

    Classic equi-depth needs data-dependent boundaries; the two-level
    scheme supplies them from the micro-counts while the stored
    (micro) boundaries stay constant, honouring section 4.3's rule.
    """
    _check_inputs(micro, n_buckets)
    counts = np.asarray(micro.counts, dtype=np.float64)
    total = counts.sum()
    cuts: List[int] = []
    if total > 0:
        target = total / n_buckets
        running = 0.0
        for index in range(micro.spec.n_buckets - 1):
            running += counts[index]
            if running >= target * (len(cuts) + 1) and len(cuts) < n_buckets - 1:
                cuts.append(index + 1)
    return _spec_from_cuts(micro.spec, cuts)


# ----------------------------------------------------------------------
# Aggregation from micro-counts into a derived spec.
# ----------------------------------------------------------------------
def aggregate_micro(micro: Histogram, spec: BucketSpec) -> Histogram:
    """Aggregate micro-bucket counts into a coarser derived spec.

    Every derived boundary must coincide with a micro-boundary (which is
    what the constructors above guarantee).
    """
    micro_edges = micro.spec.boundaries
    counts = [0.0] * spec.n_buckets
    for index in range(micro.spec.n_buckets):
        lo = micro_edges[index]
        if not spec.amin <= lo < spec.amax:
            raise HistogramError("derived spec does not cover the micro domain")
        counts[spec.bucket_index(lo)] += micro.counts[index]
    return Histogram.from_counts(spec, counts)


def derive_histogram(micro: Histogram, kind: str, n_buckets: int) -> Histogram:
    """One-stop construction: ``kind`` in {equi_width, v_optimal,
    maxdiff, compressed}, from the same micro-histogram."""
    if kind == "equi_width":
        spec = BucketSpec.from_boundaries(
            [micro.spec.boundaries[i] for i in
             np.linspace(0, micro.spec.n_buckets, n_buckets + 1).astype(int)]
        )
    elif kind == "v_optimal":
        spec = v_optimal_boundaries(micro, n_buckets)
    elif kind == "maxdiff":
        spec = maxdiff_boundaries(micro, n_buckets)
    elif kind == "compressed":
        spec = compressed_boundaries(micro, n_buckets)
    elif kind == "equi_depth":
        spec = equi_depth_boundaries(micro, n_buckets)
    else:
        raise HistogramError(f"unknown histogram kind {kind!r}")
    return aggregate_micro(micro, spec)
