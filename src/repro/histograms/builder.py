"""Building and reconstructing histograms over DHS (paper section 4.3).

Each bucket becomes its own DHS metric (``(relation, "hist", i)``); nodes
record every tuple they store under the metric of the bucket its
attribute value falls in.  Reconstructing the whole histogram is then a
single multi-metric DHS count: hop cost equal to counting *one* metric,
bytes scaling with the bucket count — the property Table 3 demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Optional, Tuple

from repro.core.count import CountResult
from repro.core.dhs import DistributedHashSketch
from repro.histograms.buckets import BucketSpec
from repro.histograms.histogram import Histogram
from repro.overlay.stats import OpCost

__all__ = ["DHSHistogramBuilder", "HistogramReconstruction"]


@dataclass
class HistogramReconstruction:
    """A reconstructed histogram together with its retrieval cost."""

    histogram: Histogram
    count_result: CountResult

    @property
    def cost(self) -> OpCost:
        """Hops/bytes spent reconstructing."""
        return self.count_result.cost


class DHSHistogramBuilder:
    """Maintains one relation's histogram inside a DHS deployment."""

    def __init__(
        self,
        dhs: DistributedHashSketch,
        spec: BucketSpec,
        relation_name: str,
    ) -> None:
        self.dhs = dhs
        self.spec = spec
        self.relation_name = relation_name

    # ------------------------------------------------------------------
    # Metric naming.
    # ------------------------------------------------------------------
    def metric_for_bucket(self, index: int) -> Hashable:
        """DHS metric id of bucket ``index``."""
        return (self.relation_name, "hist", index)

    def all_metrics(self) -> list[Hashable]:
        """Metric ids of every bucket, in bucket order."""
        return [self.metric_for_bucket(i) for i in range(self.spec.n_buckets)]

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------
    def record(
        self,
        item: Any,
        value: float,
        origin: Optional[int] = None,
        now: int = 0,
    ) -> OpCost:
        """Record one tuple (id + attribute value) into its bucket."""
        index = self.spec.bucket_index(value)
        return self.dhs.insert(self.metric_for_bucket(index), item, origin=origin, now=now)

    def record_bulk(
        self,
        pairs: Iterable[Tuple[Any, float]],
        origin: Optional[int] = None,
        now: int = 0,
    ) -> OpCost:
        """Record many (item, value) pairs, bulk-inserted per bucket."""
        by_bucket: dict[int, list] = {}
        for item, value in pairs:
            by_bucket.setdefault(self.spec.bucket_index(value), []).append(item)
        total = OpCost()
        for index, items in sorted(by_bucket.items()):
            total.add(
                self.dhs.insert_bulk(
                    self.metric_for_bucket(index), items, origin=origin, now=now
                )
            )
        return total

    # ------------------------------------------------------------------
    # Reconstruction.
    # ------------------------------------------------------------------
    def reconstruct(
        self,
        origin: Optional[int] = None,
        now: int = 0,
    ) -> HistogramReconstruction:
        """Rebuild the full histogram with one multi-metric count."""
        result = self.dhs.count_many(self.all_metrics(), origin=origin, now=now)
        counts = [result.estimates[metric] for metric in self.all_metrics()]
        return HistogramReconstruction(
            histogram=Histogram.from_counts(self.spec, counts),
            count_result=result,
        )

    def reconstruct_buckets(
        self,
        indices: Iterable[int],
        origin: Optional[int] = None,
        now: int = 0,
    ) -> HistogramReconstruction:
        """Estimate only the buckets a query predicate needs.

        Unqueried buckets are reported as zero; the histogram returned is
        only meaningful over the requested indices (the paper highlights
        this partial-reconstruction saving in section 5.2).
        """
        wanted = sorted(set(indices))
        metrics = [self.metric_for_bucket(i) for i in wanted]
        result = self.dhs.count_many(metrics, origin=origin, now=now)
        counts = [0.0] * self.spec.n_buckets
        for index, metric in zip(wanted, metrics):
            counts[index] = result.estimates[metric]
        return HistogramReconstruction(
            histogram=Histogram.from_counts(self.spec, counts),
            count_result=result,
        )
