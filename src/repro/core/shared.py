"""Zero-copy shared-memory parallel counting and insertion (``DHS_JOBS``).

The ``store="array"`` backend keeps every node's immortal bitmap in one
contiguous :class:`~repro.core.regstore.RegArena` — which makes whole-
deployment parallelism a memory-layout question instead of a
serialization one:

* **Counting** (:func:`count_parallel`): the parent migrates the arena
  into ``multiprocessing.shared_memory`` (:meth:`RegArena
  .migrate_to_shared` — existing slots keep working, they index the
  arena, not the buffer) and forks workers via
  :func:`repro.sim.parallel.fork_map`.  Each worker counts a slice of
  the requested metrics against the *same physical register pages* —
  nothing is pickled or copied — using a fresh
  :class:`~repro.core.count.Counter` whose RNG is derived per metric
  (``derive_seed(seed, "parallel-count", i)``), so every metric's probe
  walk is a pure function of ``(deployment, metric index)`` and the
  results are bit-identical to the inline ``jobs=1`` loop at any worker
  count.
* **Insertion** (:func:`insert_array_parallel`): workers hash contiguous
  item chunks and OR their deduplicated ``(position, vector)`` presence
  bits into per-worker shared *delta* arenas (sketchnu's
  ``parallel_add`` pattern); the parent folds the deltas with
  :func:`~repro.core.regstore.tree_merge` — bitwise OR is commutative
  and associative, so the union is independent of the chunking — and
  then performs the per-interval DHT stores serially with the main
  inserter's RNG.  Same random key draws, same payload accounting, same
  stored state as :meth:`~repro.core.dhs.DistributedHashSketch
  .insert_array`, byte for byte.

Side-effect caveat: a *parallel* count's load-tracker increments and
lazy-failure evictions happen in forked copies of the overlay and are
discarded with the workers, whereas the inline path mutates the caller's
overlay.  On fault-free rings (no lazily-failed members) the returned
:class:`~repro.core.count.CountResult`s are identical either way — the
golden-identity and ``DHS_JOBS=4`` equivalence tests pin exactly that.

Worker context travels by **fork inheritance**: module-level globals set
immediately before :func:`fork_map` (closures cannot pickle; globals
ride the fork for free).  This module deliberately imports neither
``multiprocessing`` (DHS501 — pools live in :mod:`repro.sim.parallel`)
nor ``shared_memory`` (DHS901 — segments live in
:mod:`repro.core.regstore`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, List, Optional, Sequence, Tuple

import numpy as np
import numpy.typing as npt

from repro.core.count import Counter, CountResult
from repro.core.regstore import RegArena, tree_merge
from repro.hashing.vectorized import observations_np
from repro.obs import runtime as obs
from repro.obs.metrics import MetricsRegistry, Snapshot
from repro.overlay.stats import OpCost
from repro.sim.parallel import env_jobs, fork_map
from repro.sim.seeds import derive_seed

if TYPE_CHECKING:
    from repro.core.dhs import DistributedHashSketch

__all__ = ["count_parallel", "insert_array_parallel"]

#: Below this many items the fork + segment setup costs more than the
#: hashing it parallelizes; the serial path runs instead.
_MIN_PARALLEL_ITEMS = 4096

# ----------------------------------------------------------------------
# Parallel counting.
# ----------------------------------------------------------------------

#: Fork-inherited context of the in-flight count (set just before the
#: fork, cleared in the caller's ``finally``).
_COUNT_CTX: Optional["_CountCtx"] = None


@dataclass
class _CountCtx:
    dhs: "DistributedHashSketch"
    metric_ids: Sequence[Hashable]
    now: int
    metered: bool


def _count_one(index: int) -> Tuple[CountResult, Optional[Snapshot]]:
    """Count metric ``index`` with a per-metric derived-seed Counter.

    Module-level so it pickles by reference into pool workers; the heavy
    context arrives via fork inheritance of ``_COUNT_CTX``.
    """
    ctx = _COUNT_CTX
    assert ctx is not None, "_count_one outside count_parallel"
    dhs = ctx.dhs
    counter = Counter(
        dhs.dht,
        dhs.config,
        dhs.mapping,
        dhs.hash_family,
        seed=derive_seed(dhs.seed, "parallel-count", index),
        policy=dhs.policy,
        arena=dhs.arena,
    )
    if not ctx.metered:
        return counter.count(ctx.metric_ids[index], now=ctx.now), None
    # Fresh per-metric registry, merged caller-side in metric order on
    # serial and parallel paths alike — the run_trials capture pattern
    # that keeps float counters identical at any worker count.
    registry = MetricsRegistry()
    with obs.observed(registry=registry, tracing=False):
        result = counter.count(ctx.metric_ids[index], now=ctx.now)
    return result, registry.snapshot()


def count_parallel(
    dhs: "DistributedHashSketch",
    metric_ids: Sequence[Hashable],
    now: int = 0,
    jobs: Optional[int] = None,
) -> List[CountResult]:
    """Count every metric concurrently against the shared arena.

    Returns one :class:`CountResult` per metric, in metric order.
    ``jobs=None`` reads ``DHS_JOBS``; ``jobs <= 1`` (or a single metric)
    runs the identical loop inline.
    """
    global _COUNT_CTX
    if jobs is None:
        jobs = env_jobs()
    parallel = jobs > 1 and len(metric_ids) > 1
    if parallel:
        # Zero-copy precondition: workers must see the register pages,
        # not copy-on-write duplicates of a private matrix.
        dhs.share_arena()
    _COUNT_CTX = _CountCtx(
        dhs=dhs, metric_ids=list(metric_ids), now=now, metered=obs.METERING
    )
    try:
        outputs = fork_map(_count_one, range(len(metric_ids)), jobs=jobs)
    finally:
        _COUNT_CTX = None
    results: List[CountResult] = []
    for result, snapshot in outputs:
        if snapshot is not None:
            obs.METRICS.merge_snapshot(snapshot)
        results.append(result)
    return results


# ----------------------------------------------------------------------
# Parallel insertion.
# ----------------------------------------------------------------------

#: Fork-inherited context of the in-flight bulk insert.
_INSERT_CTX: Optional["_InsertCtx"] = None

#: Fault-injection hook for the shm leak test: a worker whose chunk
#: index matches dies mid-trial (hard ``os._exit``, no cleanup) so tests
#: can assert the parent still reclaims every shared segment.
_CRASH_WORKER: Optional[int] = None


@dataclass
class _InsertCtx:
    ids: npt.NDArray[np.int64]
    m: int
    key_bits: int
    hash_seed: int
    position_bits: int
    bit_shift: int


def _insert_delta_worker(task: Tuple[int, int, int, str]) -> bool:
    """Hash one item chunk and OR its presence bits into a delta arena."""
    index, lo, hi, segment = task
    if _CRASH_WORKER is not None and _CRASH_WORKER == index:
        os._exit(17)  # simulated mid-trial crash (leak test)
    ctx = _INSERT_CTX
    assert ctx is not None, "_insert_delta_worker outside insert_array_parallel"
    arena = RegArena.attach(segment)
    try:
        vectors, positions = observations_np(
            ctx.ids[lo:hi], ctx.m, ctx.key_bits, seed=ctx.hash_seed
        )
        positions = np.minimum(positions, ctx.position_bits - 1)
        if ctx.bit_shift > 0:
            stored = positions >= ctx.bit_shift
            positions = positions[stored]
            vectors = vectors[stored]
        if positions.size:
            grid = np.zeros(ctx.position_bits * ctx.m, dtype=bool)
            grid[positions * ctx.m + vectors] = True
            packed = np.packbits(
                grid.reshape(ctx.position_bits, ctx.m), axis=1, bitorder="little"
            )
            words = (ctx.m + 63) // 64
            rows8 = np.zeros((ctx.position_bits, words * 8), dtype=np.uint8)
            rows8[:, : packed.shape[1]] = packed
            np.bitwise_or(arena.data, rows8.view(np.uint64), out=arena.data)
    finally:
        arena.close()
    return True


def insert_array_parallel(
    dhs: "DistributedHashSketch",
    metric_id: Hashable,
    item_ids: npt.NDArray[np.int64],
    origin: Optional[int] = None,
    now: int = 0,
    jobs: Optional[int] = None,
) -> OpCost:
    """Parallel :meth:`~repro.core.dhs.DistributedHashSketch.insert_array`.

    Falls back to the serial path whenever the parallel plan cannot be
    bit-identical or cannot win: ``jobs <= 1``, small inputs, the packed
    backend, a TTL'd deployment (expiries take the per-vector path), or
    a hash family without a vectorized twin.
    """
    global _INSERT_CTX
    if jobs is None:
        jobs = env_jobs()
    ids = np.ascontiguousarray(item_ids, dtype=np.int64)
    config = dhs.config
    if (
        jobs <= 1
        or ids.size < _MIN_PARALLEL_ITEMS
        or dhs.arena is None
        or config.hash_family_name != "mixer"
        or config.expiry(now) is not None
    ):
        return dhs.insert_array(metric_id, ids, origin=origin, now=now)
    chunks = min(jobs, ids.size)
    bounds = [round(i * ids.size / chunks) for i in range(chunks + 1)]
    n_pos = config.position_bits
    deltas = [
        RegArena(config.num_bitmaps, capacity=n_pos, shared=True)
        for _ in range(chunks)
    ]
    _INSERT_CTX = _InsertCtx(
        ids=ids,
        m=config.num_bitmaps,
        key_bits=config.key_bits,
        hash_seed=config.hash_seed,
        position_bits=n_pos,
        bit_shift=config.bit_shift,
    )
    try:
        tasks = [
            (index, bounds[index], bounds[index + 1], deltas[index].shared_name or "")
            for index in range(chunks)
        ]
        fork_map(_insert_delta_worker, tasks, jobs=jobs)
        merged = tree_merge([delta.data for delta in deltas])
        # Phase 2 — serial stores with the main inserter's RNG: one key
        # draw per non-empty interval in ascending order, exactly the
        # serial path's sequence, so the deployment RNG state and the
        # returned OpCost match the serial call byte for byte.
        inserter = dhs._inserter
        total = OpCost()
        for position in np.flatnonzero(merged.any(axis=1)).tolist():
            delta = merged[position]
            mask = int.from_bytes(delta.tobytes(), "little")
            total.add(
                inserter._store_mask(
                    dhs.mapping.interval_index(position),
                    metric_id,
                    position,
                    mask,
                    delta,
                    origin,
                    now,
                )
            )
        return total
    finally:
        _INSERT_CTX = None
        # Always reclaim the delta segments — including when a worker
        # crashed mid-trial and the pool raised: nothing may survive in
        # /dev/shm past this call (the leak test kills a worker and
        # checks).
        for delta in deltas:
            delta.unlink()
