"""Retry/backoff policies for DHS operations under message loss.

The closed-form retry analysis in :mod:`repro.core.retries` (paper
eqs. 5/6) sizes probe budgets ahead of time; this module is the runtime
counterpart: when the fault layer drops a message
(:class:`~repro.errors.MessageDropped`), a :class:`RetryPolicy` decides
how many times to resend and what the waiting costs in *logical hops* —
the repo's only clock.  Backoff is exponential with optional seeded
jitter; there is no wall-clock anywhere (dhslint rule DHS601 enforces
this repo-wide).

The default policy (``max_attempts=1``) performs no retries and — by
construction — draws nothing from any RNG, so wiring it through the
insert/count paths leaves fault-free runs bit-identical to the code
before policies existed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.errors import ConfigurationError, MessageDropped
from repro.obs import runtime as obs
from repro.overlay.stats import OpCost

__all__ = ["RetryPolicy", "DEFAULT_POLICY"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How often to resend a dropped message, and what waiting costs.

    Attributes
    ----------
    max_attempts:
        Total tries per operation (1 = no retries, the default).
    backoff_hops:
        Logical-hop cost charged for the wait before retry ``k`` is
        ``backoff_hops * backoff_factor**k`` (truncated to int).
    backoff_factor:
        Exponential backoff base.
    jitter_hops:
        When positive, a seeded ``randrange(jitter_hops + 1)`` is added
        to each backoff wait.  Zero (the default) draws nothing, which
        is what keeps the default policy byte-identical.
    """

    max_attempts: int = 1
    backoff_hops: int = 0
    backoff_factor: float = 2.0
    jitter_hops: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_hops < 0:
            raise ConfigurationError(
                f"backoff_hops must be >= 0, got {self.backoff_hops}"
            )
        if self.backoff_factor <= 0:
            raise ConfigurationError(
                f"backoff_factor must be > 0, got {self.backoff_factor}"
            )
        if self.jitter_hops < 0:
            raise ConfigurationError(
                f"jitter_hops must be >= 0, got {self.jitter_hops}"
            )

    @property
    def is_default(self) -> bool:
        """Whether this policy never retries (current-behaviour mode)."""
        return self.max_attempts == 1

    def backoff_cost(self, attempt: int, rng: random.Random) -> int:
        """Logical hops charged for the wait after failed ``attempt``."""
        delay = int(self.backoff_hops * self.backoff_factor**attempt)
        if self.jitter_hops > 0:
            delay += rng.randrange(self.jitter_hops + 1)
        return delay

    def call(
        self,
        op: Callable[[], T],
        rng: random.Random,
        cost: OpCost,
    ) -> T:
        """Run ``op`` under this policy, charging losses into ``cost``.

        Each dropped message costs one timeout hop (the send that never
        came back); each retry additionally charges the backoff wait.
        When the budget is exhausted the final :class:`MessageDropped`
        is re-raised — after recording the permanent loss in
        ``cost.drops`` — so callers can degrade gracefully.
        """
        last: Optional[MessageDropped] = None
        for attempt in range(self.max_attempts):
            try:
                return op()
            except MessageDropped as exc:
                last = exc
                cost.hops += 1
                cost.messages += 1
                cost.timeouts += 1
                if obs.METERING:
                    obs.METRICS.inc("dhs.retry.timeouts")
                if attempt + 1 < self.max_attempts:
                    cost.retries += 1
                    backoff = self.backoff_cost(attempt, rng)
                    cost.hops += backoff
                    if obs.METERING:
                        obs.METRICS.inc("dhs.retry.retries")
                        obs.METRICS.inc("dhs.retry.backoff_hops", backoff)
                    if obs.TRACING:
                        obs.TRACER.event(
                            "msg.retry", attempt=attempt + 1, backoff_hops=backoff
                        )
        assert last is not None
        cost.drops += 1
        if obs.METERING:
            obs.METRICS.inc("dhs.retry.drops")
        if obs.TRACING:
            obs.TRACER.event("msg.dropped", attempts=self.max_attempts)
        raise last


#: Byte-identical-to-before policy: one attempt, no retries, no draws.
DEFAULT_POLICY = RetryPolicy()
