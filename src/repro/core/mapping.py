"""Bit-position ↦ id-space-interval mapping (paper section 3.1).

The node-id space ``[0, 2^L)`` is partitioned into consecutive,
exponentially shrinking intervals ``I_r = [thr(r), thr(r-1))`` with
``thr(r) = 2^(L-r-1)``; bit ``r`` of every bitmap of every metric lives
at uniformly random keys inside ``I_r``.  The last usable position
absorbs the remainder ``[0, thr(last-1))`` so the ring is fully covered.

Because both the items hitting bit ``r`` (``n * 2^(-r-1)`` of them) and
the interval size (``2^(L-r-1)`` ids, hence ``~N * 2^(-r-1)`` nodes)
shrink at the same rate, the expected per-node load is uniform — the
property that lets DHS claim total access/storage balance.

With the fault-tolerance shift ``b`` (section 3.5), stored position
``r`` is mapped to the interval of position ``r - b``; positions below
``b`` are never stored and assumed set.
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.core.config import DHSConfig
from repro.errors import ConfigurationError
from repro.overlay.idspace import IdSpace

__all__ = ["BitIntervalMap"]


class BitIntervalMap:
    """Maps bitmap positions to id-space intervals for one deployment."""

    def __init__(self, space: IdSpace, config: DHSConfig) -> None:
        if config.key_bits > space.bits:
            raise ConfigurationError(
                f"DHS key_bits ({config.key_bits}) cannot exceed the "
                f"overlay id width ({space.bits})"
            )
        self.space = space
        self.config = config
        #: Number of intervals: one per *stored* position.
        self.num_intervals = config.position_bits - config.bit_shift
        #: Precomputed ``[lo, hi)`` bounds per interval — the counting
        #: walk tests interval membership per probed node, so the bounds
        #: are materialized once instead of re-deriving thresholds.
        bits = space.bits
        self._bounds: Tuple[Tuple[int, int], ...] = tuple(
            (
                0 if index == self.num_intervals - 1 else 1 << (bits - index - 1),
                1 << (bits - index),
            )
            for index in range(self.num_intervals)
        )

    def threshold(self, r: int) -> int:
        """``thr(r) = 2^(L-r-1)``; ``thr(-1)`` is the ring size."""
        if r < -1:
            raise ValueError(f"r must be >= -1, got {r}")
        return 1 << (self.space.bits - r - 1)

    def is_stored(self, position: int) -> bool:
        """Whether ``position`` is materialized (not shifted away)."""
        return position >= self.config.bit_shift

    def interval_index(self, position: int) -> int:
        """Interval index for a stored bitmap ``position``."""
        if not self.is_stored(position):
            raise ValueError(
                f"position {position} is below the bit shift "
                f"({self.config.bit_shift}) and is never stored"
            )
        index = position - self.config.bit_shift
        if index >= self.num_intervals:
            raise ValueError(
                f"position {position} out of range (max stored position is "
                f"{self.config.position_bits - 1})"
            )
        return index

    def interval_for_index(self, index: int) -> Tuple[int, int]:
        """Half-open id range ``[lo, hi)`` of interval ``index``.

        The last interval absorbs ``[0, thr(last - 1))``.
        """
        if not 0 <= index < self.num_intervals:
            raise ValueError(
                f"interval index {index} out of range [0, {self.num_intervals})"
            )
        return self._bounds[index]

    def interval_for_position(self, position: int) -> Tuple[int, int]:
        """Id range storing bitmap ``position`` (after the shift)."""
        return self.interval_for_index(self.interval_index(position))

    def position_for_index(self, index: int) -> int:
        """Inverse of :meth:`interval_index`."""
        if not 0 <= index < self.num_intervals:
            raise ValueError(
                f"interval index {index} out of range [0, {self.num_intervals})"
            )
        return index + self.config.bit_shift

    def random_key_in_interval(self, index: int, rng: random.Random) -> int:
        """A uniformly random id inside interval ``index``."""
        lo, hi = self.interval_for_index(index)
        return rng.randrange(lo, hi)

    def contains(self, index: int, node_id: int) -> bool:
        """Whether ``node_id`` falls inside interval ``index``."""
        lo, hi = self._bounds[index]
        return lo <= node_id < hi

    def expected_nodes(self, index: int, n_nodes: int) -> float:
        """Expected live nodes inside interval ``index`` (uniform ids)."""
        lo, hi = self.interval_for_index(index)
        return n_nodes * (hi - lo) / self.space.size
