"""The errors-and-retries model of paper section 4.1.

When ``n'`` items have been spread uniformly over the ``N'`` nodes of an
id-space interval, probing ``t`` distinct nodes misses all of them with
probability ``P(X = t) = ((N' - t) / N')^n'`` (paper eq. 5).  Solving for
``t`` yields the per-interval probe budget ``lim`` (eq. 6); DHS uses the
constant default 5, which guarantees >= 0.99 success whenever the items
mapped to an interval outnumber its nodes.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = [
    "prob_all_probes_empty",
    "lim_for_interval",
    "lim_with_bitmaps",
    "lim_with_replication",
    "success_probability",
]


def _check_bins(n_items: float, n_bins: float) -> None:
    if n_bins < 1:
        raise ConfigurationError(f"n_bins must be >= 1, got {n_bins}")
    if n_items < 0:
        raise ConfigurationError(f"n_items must be >= 0, got {n_items}")


def prob_all_probes_empty(n_items: float, n_bins: float, t: int) -> float:
    """Paper eq. 5: probability the first ``t`` probed bins are empty."""
    _check_bins(n_items, n_bins)
    if t < 0:
        raise ConfigurationError(f"t must be >= 0, got {t}")
    if t >= n_bins:
        return 0.0
    return ((n_bins - t) / n_bins) ** n_items


def lim_for_interval(p: float, n_items: float, n_bins: float) -> int:
    """Paper's ``lim``: probes needed to hit a non-empty bin w.p. >= p.

    ``lim = ceil(N' * (1 - (1-p)^(1/n')))``; at least 1, at most ``N'``.
    """
    _check_bins(n_items, n_bins)
    if not 0 < p < 1:
        raise ConfigurationError(f"p must be in (0, 1), got {p}")
    if n_items == 0:
        return math.ceil(n_bins)  # nothing stored: only exhaustion is certain
    lim = math.ceil(n_bins * (1.0 - (1.0 - p) ** (1.0 / n_items)))
    return max(1, min(lim, math.ceil(n_bins)))


def lim_with_bitmaps(p: float, n_items: float, n_bins: float, m: int) -> int:
    """``lim_m``: eq. 6 without replication — items split over m bitmaps.

    Only ``n'/m`` items of an interval belong to any one bitmap, so the
    probe budget must grow with ``m``.
    """
    if m < 1:
        raise ConfigurationError(f"m must be >= 1, got {m}")
    return lim_for_interval(p, n_items / m, n_bins)


def lim_with_replication(p: float, n_items: float, n_bins: float, m: int, replication: int) -> int:
    """``lim^R_m``: eq. 6 — replication multiplies the stored copies."""
    if replication < 1:
        raise ConfigurationError(f"replication must be >= 1, got {replication}")
    return lim_for_interval(p, replication * n_items / m, n_bins)


def success_probability(n_items: float, n_bins: float, lim: int) -> float:
    """Probability that ``lim`` probes find a non-empty bin (inverse view).

    ``lim >= n_bins`` means exhaustion: every bin is probed, so success is
    certain.  ``prob_all_probes_empty`` handles that branch — flooring the
    budget to ``int(n_bins)`` here would miss it for fractional ``n_bins``
    (expected node counts are real-valued) and understate the probability.
    """
    return 1.0 - prob_all_probes_empty(n_items, n_bins, lim)
