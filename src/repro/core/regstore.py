"""Contiguous register-array arenas backing the DHS node stores.

The classic layout (``store="packed"``) keeps one
:class:`~repro.core.tuples.PackedSlot` per ``(metric, bit)`` key — a
Python-int bitmap per slot, allocated wherever the heap put it.  This
module provides the ``store="array"`` backend: every slot's immortal
bitmap lives in one contiguous numpy ``uint64`` matrix (the *arena*),
``words = ceil(m / 64)`` words per row, with a free-list allocator
handing rows to slots.  The per-node ``(metric, bit) -> row`` index is
the existing node-store dict, whose values become :class:`RegSlot`
objects — thin row handles that still duck-type ``PackedSlot`` (they
*are* ``PackedSlot`` subclasses), so every slow path (maintenance,
stabilization, graceful-leave merges, read repair) works unchanged on
either backend.

Why contiguous rows matter:

* bulk insertion scatters a whole interval's vector bitmap into a slot
  with one vectorized word-OR instead of up to ``m`` dict writes;
* whole-store operations (stabilize's replica union, equivalence
  checks) reduce row slices with ``np.bitwise_or`` instead of walking
  Python ints (:meth:`RegArena.or_rows`);
* the matrix can be migrated into ``multiprocessing.shared_memory`` so
  forked ``DHS_JOBS`` workers read (and parallel inserts accumulate
  deltas against) the *same physical pages* — the sketchnu
  ``attach_shared_memory`` / ``parallel_add`` pattern — with
  :func:`tree_merge` folding per-worker deltas in deterministic
  pairwise rounds.

This is the **only** module allowed to touch
``multiprocessing.shared_memory`` (dhslint rule DHS901): segment
lifecycle bugs (leaked ``/dev/shm`` files, double unlinks, child
trackers reaping a parent's segment) are subtle enough that they must
live behind one audited wrapper.

Determinism contract: the arena is storage layout only.  Given the same
operation sequence, the ``array`` and ``packed`` backends hold
bit-identical slot state and produce identical
:class:`~repro.core.count.CountResult`s — a hypothesis suite
(tests/core/test_regstore.py) drives random insert/expire/merge/leave
sequences through both and asserts exactly that, step for step.
"""

from __future__ import annotations

import weakref
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence

import numpy as np
import numpy.typing as npt

from repro.core.tuples import PackedSlot
from repro.errors import ConfigurationError

__all__ = ["RegArena", "RegSlot", "tree_merge"]

#: Arena header: 8 words (64 bytes) — magic, m, capacity, words, rest 0.
_HEADER_WORDS = 8
_HEADER_BYTES = _HEADER_WORDS * 8
#: "DHSR" — guards :meth:`RegArena.attach` against foreign segments.
_MAGIC = 0x52534844
#: Default row capacity of a fresh arena (grows by doubling).
_DEFAULT_CAPACITY = 256

_U64 = np.uint64


# Note on the resource tracker: ``SharedMemory(name, create=False)``
# registers the segment with the attaching process's tracker (Python
# gains ``track=False`` only in 3.13).  Under our one sanctioned fan-out
# (``fork`` via repro.sim.parallel) workers *share the creator's tracker
# process*, so that extra register is a harmless set-add — and
# unregistering here would corrupt the owner's bookkeeping (its later
# ``unlink`` would hit a tracker KeyError).  Attach therefore leaves the
# tracker alone; ``spawn`` platforms never reach attach (fork_map runs
# inline there).


class RegArena:
    """A contiguous pool of ``uint64`` register rows.

    Parameters
    ----------
    m:
        Bitmap width in bits (the deployment's ``num_bitmaps``); each
        row spans ``ceil(m / 64)`` words.
    capacity:
        Initial number of rows; private arenas double on exhaustion,
        shared arenas reallocate into a fresh segment.
    shared:
        When true the matrix is created inside a
        ``multiprocessing.shared_memory`` segment immediately (the
        usual path is a private arena later migrated via
        :meth:`migrate_to_shared`).
    """

    __slots__ = (
        "m",
        "words",
        "_data",
        "_capacity",
        "_next",
        "_free",
        "_shm",
        "_owner",
        "_finalizer",
        "__weakref__",
    )

    def __init__(
        self, m: int, capacity: int = _DEFAULT_CAPACITY, shared: bool = False
    ) -> None:
        if m < 1:
            raise ConfigurationError(f"m must be >= 1, got {m}")
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.m = m
        self.words = (m + 63) // 64
        self._capacity = capacity
        self._next = 0
        self._free: List[int] = []
        self._shm: Optional[shared_memory.SharedMemory] = None
        self._owner = True
        self._finalizer: Optional[weakref.finalize] = None
        if shared:
            self._data = self._new_segment(capacity)
        else:
            self._data = np.zeros((capacity, self.words), dtype=_U64)

    # ------------------------------------------------------------------
    # Segment plumbing.
    # ------------------------------------------------------------------
    def _new_segment(self, capacity: int) -> npt.NDArray[np.uint64]:
        """Allocate a fresh shared segment and return its row matrix."""
        size = _HEADER_BYTES + capacity * self.words * 8
        shm = shared_memory.SharedMemory(create=True, size=size)
        header: npt.NDArray[np.uint64] = np.ndarray(
            (_HEADER_WORDS,), dtype=_U64, buffer=shm.buf
        )
        header[:] = 0
        header[0] = _MAGIC
        header[1] = self.m
        header[2] = capacity
        header[3] = self.words
        data: npt.NDArray[np.uint64] = np.ndarray(
            (capacity, self.words), dtype=_U64, buffer=shm.buf, offset=_HEADER_BYTES
        )
        data[:] = 0
        self._shm = shm
        self._owner = True
        # Safety net: if the arena is dropped without close()/unlink(),
        # the finalizer still removes the segment at GC/interpreter exit
        # so no /dev/shm file outlives the owning process.
        self._finalizer = weakref.finalize(self, _cleanup_segment, shm, True)
        return data

    @classmethod
    def attach(cls, name: str) -> "RegArena":
        """Map an existing shared arena by segment name (read/write).

        The attached arena does **not** own the segment: :meth:`close`
        only unmaps it and :meth:`unlink` is forbidden — the creator
        controls the segment's lifetime (sketchnu's
        ``attach_shared_memory`` contract).
        """
        shm = shared_memory.SharedMemory(name=name, create=False)
        header: npt.NDArray[np.uint64] = np.ndarray(
            (_HEADER_WORDS,), dtype=_U64, buffer=shm.buf
        )
        if int(header[0]) != _MAGIC:
            shm.close()
            raise ConfigurationError(f"segment {name!r} is not a DHS register arena")
        arena = cls.__new__(cls)
        arena.m = int(header[1])
        arena.words = int(header[3])
        arena._capacity = int(header[2])
        arena._next = arena._capacity  # attached arenas never allocate
        arena._free = []
        arena._shm = shm
        arena._owner = False
        arena._finalizer = weakref.finalize(arena, _cleanup_segment, shm, False)
        arena._data = np.ndarray(
            (arena._capacity, arena.words),
            dtype=_U64,
            buffer=shm.buf,
            offset=_HEADER_BYTES,
        )
        return arena

    @property
    def shared_name(self) -> Optional[str]:
        """The shared segment's name, or ``None`` for private arenas."""
        return self._shm.name if self._shm is not None else None

    @property
    def capacity(self) -> int:
        """Allocated row capacity (rows grow by doubling)."""
        return self._capacity

    @property
    def rows_in_use(self) -> int:
        """Currently-allocated (not freed) rows."""
        return self._next - len(self._free)

    @property
    def nbytes(self) -> int:
        """Size of the register matrix in bytes."""
        return self._capacity * self.words * 8

    @property
    def data(self) -> npt.NDArray[np.uint64]:
        """The raw ``(capacity, words)`` row matrix (advanced callers)."""
        return self._data

    def migrate_to_shared(self) -> str:
        """Move the matrix into a shared segment in place; returns its name.

        Existing :class:`RegSlot` handles stay valid — they index the
        arena, not the old buffer.  Idempotent for already-shared arenas.
        """
        if self._shm is not None:
            return self._shm.name
        old = self._data
        data = self._new_segment(self._capacity)
        data[:] = old
        self._data = data
        return self.shared_name or ""  # pragma: no cover - name always set

    def close(self) -> None:
        """Unmap the shared segment (and unlink it if this arena owns it).

        Private arenas are untouched; freeing their memory is the
        garbage collector's job.
        """
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
            self._shm = None
            # The buffer is gone: drop to a zero-row private matrix so
            # stray reads fail loudly (IndexError) instead of touching
            # unmapped memory.
            self._data = np.zeros((0, self.words), dtype=_U64)

    def unlink(self) -> None:
        """Remove the owned shared segment from the system (idempotent)."""
        if not self._owner:
            raise ConfigurationError("attached arenas must not unlink the segment")
        self.close()

    def __enter__(self) -> "RegArena":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Row allocation.
    # ------------------------------------------------------------------
    def alloc(self) -> int:
        """Allocate one zeroed row and return its index."""
        free = self._free
        if free:
            row = free.pop()
        else:
            if self._next >= self._capacity:
                self._grow()
            row = self._next
            self._next += 1
        self._data[row] = 0
        return row

    def free(self, row: int) -> None:
        """Return ``row`` to the free list.

        The row is *not* zeroed here: freeing happens in ``__del__``
        paths that forked workers also run against their copy-on-write
        arena object, and a worker must never mutate rows of a shared
        segment it does not own.  :meth:`alloc` zeroes on reuse instead.
        """
        if 0 <= row < self._next:
            self._free.append(row)

    def _grow(self) -> None:
        """Double the row capacity, preserving contents."""
        new_capacity = self._capacity * 2
        if self._shm is None:
            grown = np.zeros((new_capacity, self.words), dtype=_U64)
            grown[: self._capacity] = self._data
            self._data = grown
        else:
            old = self._data.copy()
            finalizer = self._finalizer
            data = self._new_segment(new_capacity)
            data[: self._capacity] = old
            self._data = data
            if finalizer is not None:
                finalizer()  # close + unlink the outgrown segment
        self._capacity = new_capacity

    def new_slot(self) -> "RegSlot":
        """Allocate an empty slot backed by this arena.

        This is the factory :func:`repro.core.tuples.write_entry` calls,
        which keeps ``tuples`` free of any import of this module.
        """
        return RegSlot(self)

    # ------------------------------------------------------------------
    # Row access.
    # ------------------------------------------------------------------
    def read_row(self, row: int) -> int:
        """The row's bitmap as a Python int."""
        return int.from_bytes(self._data[row].tobytes(), "little")

    def write_row(self, row: int, mask: int) -> None:
        """Overwrite the row with an integer bitmap."""
        self._data[row] = np.frombuffer(
            mask.to_bytes(self.words * 8, "little"), dtype=_U64
        )

    def or_row_words(self, row: int, delta: npt.NDArray[np.uint64]) -> None:
        """OR a ``(words,)`` delta into one row (vectorized scatter)."""
        np.bitwise_or(self._data[row], delta, out=self._data[row])

    def or_rows(self, rows: Sequence[int]) -> int:
        """Union of several rows via one ``np.bitwise_or.reduce``."""
        if not rows:
            return 0
        union = np.bitwise_or.reduce(self._data[list(rows)], axis=0)
        return int.from_bytes(union.tobytes(), "little")

    def rows_canonical(self, rows: Sequence[int]) -> List[bytes]:
        """Canonical bytes of each row: little-endian, trailing zeros stripped.

        One fancy-index gather copies all requested rows out of the
        matrix at once; the per-row strip makes the encoding identical
        to ``mask.to_bytes((mask.bit_length() + 7) // 8, "little")`` of
        the equivalent ``PackedSlot`` bitmap, so digests computed over
        either backend agree bit for bit.  Hashing the bytes is the
        anti-entropy module's job (dhslint rule DHS1001) — this is pure
        layout canonicalization.
        """
        if not rows:
            return []
        block = self._data[list(rows)]
        raw = block.tobytes()
        stride = self.words * 8
        return [
            raw[i * stride : (i + 1) * stride].rstrip(b"\x00")
            for i in range(len(rows))
        ]


def _cleanup_segment(shm: shared_memory.SharedMemory, owner: bool) -> None:
    """Finalizer body: unmap (and for owners, unlink) a segment."""
    try:
        shm.close()
    except OSError:  # pragma: no cover - already unmapped
        pass
    if owner:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


class RegSlot(PackedSlot):
    """One ``(metric, bit)`` slot whose immortal bitmap is an arena row.

    Byte-compatible with :class:`~repro.core.tuples.PackedSlot`: the
    ``mask`` attribute becomes a property mirroring every update into
    the backing row, so all existing slot consumers (``live_mask``,
    merges, maintenance) work untouched, while vectorized paths operate
    on the row directly.  TTL'd vectors stay in the inherited
    ``expiring`` side map — the rare path the paper's soft-state model
    makes cheap.
    """

    __slots__ = ("arena", "row", "_mask")

    def __init__(
        self,
        arena: RegArena,
        mask: int = 0,
        expiring: Optional[Dict[int, float]] = None,
    ) -> None:
        self.arena = arena
        self.row = arena.alloc()
        self._mask = 0
        PackedSlot.__init__(self, mask, expiring)

    @property  # type: ignore[override]
    def mask(self) -> int:
        return self._mask

    @mask.setter
    def mask(self, value: int) -> None:
        self._mask = value
        self.arena.write_row(self.row, value)

    def or_mask(
        self, add_mask: int, delta: Optional[npt.NDArray[np.uint64]] = None
    ) -> None:
        """Fold ``add_mask`` in, reusing pre-packed ``delta`` words."""
        self._mask |= add_mask
        if delta is not None:
            self.arena.or_row_words(self.row, delta)
        else:
            self.arena.write_row(self.row, self._mask)

    def __del__(self) -> None:
        # Recycle the row.  ``free`` only touches the (per-process,
        # copy-on-write) free list and never writes row data, so forked
        # workers dropping their slot copies cannot corrupt the shared
        # matrix.  Guard every attribute: ``__del__`` may run on a
        # partially-initialized instance.
        arena = getattr(self, "arena", None)
        row = getattr(self, "row", None)
        if arena is not None and row is not None:
            arena.free(row)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegSlot(row={self.row}, mask={self._mask:#x}, expiring={self.expiring!r})"


def tree_merge(layers: List[npt.NDArray[np.uint64]]) -> npt.NDArray[np.uint64]:
    """Fold word matrices pairwise (sketchnu's parallel register merge).

    Each round ORs neighbour pairs left-into-left — ``log2(n)`` rounds
    of whole-matrix ``np.bitwise_or`` — and the union is independent of
    both the pairing and the original partitioning (bitwise OR is
    commutative and associative), which is what keeps parallel insert
    deltas bit-identical to the serial pass.  The leftmost matrix is
    mutated in place and returned.
    """
    if not layers:
        raise ConfigurationError("tree_merge needs at least one layer")
    while len(layers) > 1:
        merged: List[npt.NDArray[np.uint64]] = []
        for i in range(0, len(layers) - 1, 2):
            np.bitwise_or(layers[i], layers[i + 1], out=layers[i])
            merged.append(layers[i])
        if len(layers) % 2:
            merged.append(layers[-1])
        layers = merged
    return layers[0]
