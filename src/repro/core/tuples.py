"""DHS wire tuples and node-store layout.

A DHS entry is the paper's ``<metric_id, vector_id, bit, time_out>``
tuple (section 3.2/3.4).  On a node we index entries by ``(metric, bit)``
and keep one :class:`PackedSlot` per key: a packed integer bitmap whose
bit ``v`` says "vector ``v`` has bit ``bit`` set", plus a small
``{vector_id: expiry}`` side map for the (rare) TTL'd entries.  A
counting probe — "which vectors have bit ``r`` set for these metrics?" —
is then a single mask read (:func:`vectors_mask`) in the common
never-expiring case, instead of a per-vector dict walk.  A node stores at
most one entry per (metric, vector, bit): re-insertions only refresh the
expiry, and an immortal entry dominates any TTL.

Two storage backends share this slot interface
(``DHSConfig(store=...)``):

* ``"packed"`` — plain :class:`PackedSlot` objects, the reference
  implementation;
* ``"array"`` — :class:`~repro.core.regstore.RegSlot` subclasses whose
  immortal bitmap lives in a contiguous
  :class:`~repro.core.regstore.RegArena` row, enabling vectorized bulk
  writes and zero-copy shared-memory parallelism.

Every function here accepts either slot type; passing an ``arena``
selects which one a fresh slot becomes.  Node stores also carry an
incrementally-maintained entry count (``Node.app_entries``) so
:func:`storage_entries` — hit once per node per load-balance snapshot —
is O(1) instead of a full store scan; bulk merges mark the count stale
and the next query rescans once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, List, NamedTuple, Optional

import numpy as np
import numpy.typing as npt

from repro.overlay.node import Node, StoreValue

if TYPE_CHECKING:  # imported for annotations only — no runtime cycle
    from repro.core.regstore import RegArena

__all__ = [
    "DHSTuple",
    "PackedSlot",
    "bits_of",
    "write_entry",
    "write_entry_mask",
    "vectors_mask",
    "vectors_at",
    "merge_store_values",
    "purge_expired",
    "storage_entries",
]

#: Expiry sentinel for entries that never age out.
_NEVER = float("inf")


class DHSTuple(NamedTuple):
    """One DHS record as it travels on the wire."""

    metric_id: Hashable
    vector_id: int
    bit: int
    time_out: Optional[int] = None


class PackedSlot:
    """Packed storage for one ``(metric, bit)`` slot.

    ``mask`` holds the never-expiring vectors as an integer bitmap (bit
    ``v`` set ⇔ vector ``v`` stored forever); ``expiring`` holds only the
    TTL'd vectors as ``{vector_id: expiry}`` and is ``None`` until the
    first TTL write.  A vector lives in exactly one of the two — an
    immortal entry absorbs and dominates any finite expiry.

    Two cached summaries of ``expiring`` keep :meth:`live_mask` off the
    dict walk in the common case: ``_ttl_or`` (bitmap of TTL'd vectors,
    possibly a stale superset whose extra bits are always in ``mask``)
    and ``_ttl_min`` (a lower bound on the earliest expiry).  While
    ``now <= _ttl_min`` every TTL'd entry is provably live, so the
    result is just ``mask | _ttl_or``.
    """

    __slots__ = ("mask", "expiring", "_ttl_or", "_ttl_min")

    def __init__(
        self, mask: int = 0, expiring: Optional[Dict[int, float]] = None
    ) -> None:
        self.mask = mask
        self.expiring = expiring
        self._recompute_ttl_cache()

    def _recompute_ttl_cache(self) -> None:
        """Rebuild the exact TTL summaries from ``expiring``."""
        expiring = self.expiring
        if expiring:
            ttl_or = 0
            for vector in expiring:
                ttl_or |= 1 << vector
            self._ttl_or = ttl_or
            self._ttl_min = min(expiring.values())
        else:
            self._ttl_or = 0
            self._ttl_min = _NEVER

    def reset(self, mask: int, expiring: Optional[Dict[int, float]]) -> None:
        """Replace the slot's contents wholesale (merge paths)."""
        self.mask = mask
        self.expiring = expiring if expiring else None
        self._recompute_ttl_cache()

    def or_mask(
        self, add_mask: int, delta: Optional["npt.NDArray[np.uint64]"] = None
    ) -> None:
        """Fold a whole immortal bitmap in (``delta`` ignored here;
        :class:`~repro.core.regstore.RegSlot` uses it for the row OR)."""
        self.mask |= add_mask

    def live_mask(self, now: int) -> int:
        """Bitmap of vectors alive at time ``now`` (immortal + unexpired)."""
        expiring = self.expiring
        if not expiring:
            return self.mask
        if now <= self._ttl_min:
            # Short-circuit: the earliest expiry is still in the future,
            # so every TTL'd vector is live — no dict walk.
            return self.mask | self._ttl_or
        mask = self.mask
        for vector, expiry in expiring.items():
            if expiry >= now:
                mask |= 1 << vector
        return mask

    def entries(self) -> int:
        """Stored entry count (live or stale)."""
        return self.mask.bit_count() + (len(self.expiring) if self.expiring else 0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedSlot):
            return NotImplemented
        return self.mask == other.mask and (self.expiring or {}) == (
            other.expiring or {}
        )

    def __hash__(self) -> int:  # pragma: no cover - slots are not dict keys
        return hash((self.mask, tuple(sorted((self.expiring or {}).items()))))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedSlot(mask={self.mask:#x}, expiring={self.expiring!r})"


def bits_of(mask: int) -> List[int]:
    """Set-bit positions of ``mask``, ascending."""
    out: List[int] = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


def _live(expiry: float, now: int) -> bool:
    return expiry >= now


def _slot_for(
    node: Node, metric_id: Hashable, bit: int, arena: Optional["RegArena"]
) -> PackedSlot:
    """The slot for ``(metric_id, bit)``, created on the chosen backend."""
    key = (metric_id, bit)
    raw = node.store.get(key)
    if isinstance(raw, PackedSlot):
        return raw
    slot = PackedSlot() if arena is None else arena.new_slot()
    node.store[key] = slot
    return slot


def write_entry(
    node: Node,
    metric_id: Hashable,
    vector_id: int,
    bit: int,
    expiry: Optional[int],
    arena: Optional["RegArena"] = None,
) -> None:
    """Record (or refresh) one DHS entry at ``node``.

    ``arena`` selects the storage backend for freshly-created slots
    (``None`` = plain :class:`PackedSlot`); existing slots keep their
    backend either way.
    """
    slot = _slot_for(node, metric_id, bit, arena)
    vector_bit = 1 << vector_id
    if expiry is None:
        # Immortal: fold into the mask; it dominates any pending TTL.
        if slot.mask & vector_bit:
            return  # already immortal — nothing to change
        slot.mask |= vector_bit
        expiring = slot.expiring
        if expiring and expiring.pop(vector_id, None) is not None:
            return  # TTL'd entry promoted: net entry count unchanged
        node.app_entries += 1
        return
    if slot.mask & vector_bit:
        return  # already stored forever; a TTL refresh cannot shorten it
    expiring = slot.expiring
    if expiring is None:
        expiring = slot.expiring = {}
    new_expiry = float(expiry)
    current = expiring.get(vector_id)
    if current is None:
        expiring[vector_id] = new_expiry
        slot._ttl_or |= vector_bit
        if new_expiry < slot._ttl_min:
            slot._ttl_min = new_expiry
        node.app_entries += 1
    elif new_expiry > current:
        # Refresh (max-wins): ``_ttl_min`` may now be a stale lower
        # bound, which only makes the live_mask short-circuit fire less
        # often — never incorrectly.
        expiring[vector_id] = new_expiry


def write_entry_mask(
    node: Node,
    metric_id: Hashable,
    bit: int,
    add_mask: int,
    delta: Optional["npt.NDArray[np.uint64]"] = None,
    arena: Optional["RegArena"] = None,
) -> None:
    """Fold a whole immortal vector bitmap into one ``(metric, bit)`` slot.

    Equivalent to ``write_entry(node, metric_id, v, bit, None)`` for
    every set bit ``v`` of ``add_mask``, in one operation: the bulk
    insertion path writes an interval's deduplicated vector set with a
    single mask OR (and, on the array backend, a single vectorized word
    OR of the pre-packed ``delta`` row) instead of up to ``m`` per-vector
    store writes.
    """
    slot = _slot_for(node, metric_id, bit, arena)
    new_bits = add_mask & ~slot.mask
    if not new_bits:
        return
    promoted = 0
    expiring = slot.expiring
    if expiring:
        for vector in bits_of(new_bits & slot._ttl_or):
            if expiring.pop(vector, None) is not None:
                promoted += 1
    slot.or_mask(add_mask, delta)
    node.app_entries += new_bits.bit_count() - promoted


def vectors_mask(node: Node, metric_id: Hashable, bit: int, now: int = 0) -> int:
    """Bitmap of vector ids with a live bit ``bit`` for ``metric_id``."""
    slot = node.store.get((metric_id, bit))
    if not isinstance(slot, PackedSlot):
        return 0
    return slot.live_mask(now)


def vectors_at(node: Node, metric_id: Hashable, bit: int, now: int = 0) -> List[int]:
    """Vector ids with a live bit ``bit`` for ``metric_id`` at ``node``."""
    return bits_of(vectors_mask(node, metric_id, bit, now))


def merge_store_values(
    existing: Optional[StoreValue], incoming: StoreValue
) -> StoreValue:
    """Merge two slots for the same key (used on graceful leave).

    Packed slots merge mask-wise (union of immortal vectors, max-wins on
    TTL'd expiries, immortality dominating) and the merge is folded into
    ``incoming`` in place — for an array-backed
    :class:`~repro.core.regstore.RegSlot` that moves the leaver's arena
    row to the heir zero-copy.  Plain ``{vector: expiry}`` dicts — the
    pre-packed layout — still merge max-wins so mixed-era stores and the
    reference implementation keep working.
    """
    if isinstance(incoming, PackedSlot):
        mask = incoming.mask
        expiring: Dict[int, float] = dict(incoming.expiring or {})
        if isinstance(existing, PackedSlot):
            mask |= existing.mask
            for vector, expiry in (existing.expiring or {}).items():
                current = expiring.get(vector)
                if current is None or expiry > current:
                    expiring[vector] = expiry
        for vector in bits_of(mask):
            expiring.pop(vector, None)
        incoming.reset(mask, expiring or None)
        return incoming
    if isinstance(incoming, dict):
        if not isinstance(existing, dict):
            return dict(incoming)
        merged = dict(existing)
        for vector, expiry in incoming.items():
            current = merged.get(vector)
            if current is None or expiry > current:
                merged[vector] = expiry
        return merged
    return incoming


def purge_expired(node: Node, now: int) -> int:
    """Drop expired entries from ``node``; returns how many were removed.

    The sweep already visits every slot, so it also recomputes the
    incremental ``app_entries`` count from what actually survives
    (rather than decrementing a possibly-stale value): any divergence
    introduced outside ``write_entry`` — an amnesia rejoin wiping the
    store, a bulk merge — is resynchronized here for free.
    """
    removed = 0
    surviving = 0
    dead_slots = []
    for slot_key, slot in node.store.items():
        if not isinstance(slot, PackedSlot):
            continue
        expiring = slot.expiring
        if expiring and now > slot._ttl_min:
            stale = [
                vector for vector, expiry in expiring.items() if not _live(expiry, now)
            ]
            for vector in stale:
                del expiring[vector]
            removed += len(stale)
            if not expiring:
                slot.expiring = None
            slot._recompute_ttl_cache()
        if slot.mask == 0 and not slot.expiring:
            dead_slots.append(slot_key)
        else:
            surviving += slot.entries()
    for slot_key in dead_slots:
        del node.store[slot_key]
    node.app_entries = surviving
    node.app_entries_stale = False
    return removed


def storage_entries(node: Node) -> int:
    """Number of live-or-stale DHS entries stored at ``node``.

    O(1): reads the count ``write_entry``/``purge_expired`` maintain
    incrementally.  Bulk store merges (graceful leaves) set
    ``node.app_entries_stale``, and the next query rescans once to
    resynchronize.
    """
    if node.app_entries_stale:
        node.app_entries = sum(
            slot.entries()
            for slot in node.store.values()
            if isinstance(slot, PackedSlot)
        )
        node.app_entries_stale = False
    return node.app_entries
