"""DHS wire tuples and node-store layout.

A DHS entry is the paper's ``<metric_id, vector_id, bit, time_out>``
tuple (section 3.2/3.4).  On a node we index entries by ``(metric, bit)``
and keep one :class:`PackedSlot` per key: a packed integer bitmap whose
bit ``v`` says "vector ``v`` has bit ``bit`` set", plus a small
``{vector_id: expiry}`` side map for the (rare) TTL'd entries.  A
counting probe — "which vectors have bit ``r`` set for these metrics?" —
is then a single mask read (:func:`vectors_mask`) in the common
never-expiring case, instead of a per-vector dict walk.  A node stores at
most one entry per (metric, vector, bit): re-insertions only refresh the
expiry, and an immortal entry dominates any TTL.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, NamedTuple, Optional

from repro.overlay.node import Node, StoreValue

__all__ = [
    "DHSTuple",
    "PackedSlot",
    "bits_of",
    "write_entry",
    "vectors_mask",
    "vectors_at",
    "merge_store_values",
    "purge_expired",
    "storage_entries",
]

#: Expiry sentinel for entries that never age out.
_NEVER = float("inf")


class DHSTuple(NamedTuple):
    """One DHS record as it travels on the wire."""

    metric_id: Hashable
    vector_id: int
    bit: int
    time_out: Optional[int] = None


class PackedSlot:
    """Packed storage for one ``(metric, bit)`` slot.

    ``mask`` holds the never-expiring vectors as an integer bitmap (bit
    ``v`` set ⇔ vector ``v`` stored forever); ``expiring`` holds only the
    TTL'd vectors as ``{vector_id: expiry}`` and is ``None`` until the
    first TTL write.  A vector lives in exactly one of the two — an
    immortal entry absorbs and dominates any finite expiry.
    """

    __slots__ = ("mask", "expiring")

    def __init__(
        self, mask: int = 0, expiring: Optional[Dict[int, float]] = None
    ) -> None:
        self.mask = mask
        self.expiring = expiring

    def live_mask(self, now: int) -> int:
        """Bitmap of vectors alive at time ``now`` (immortal + unexpired)."""
        mask = self.mask
        if self.expiring:
            for vector, expiry in self.expiring.items():
                if expiry >= now:
                    mask |= 1 << vector
        return mask

    def entries(self) -> int:
        """Stored entry count (live or stale)."""
        return self.mask.bit_count() + (len(self.expiring) if self.expiring else 0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedSlot):
            return NotImplemented
        return self.mask == other.mask and (self.expiring or {}) == (
            other.expiring or {}
        )

    def __hash__(self) -> int:  # pragma: no cover - slots are not dict keys
        return hash((self.mask, tuple(sorted((self.expiring or {}).items()))))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedSlot(mask={self.mask:#x}, expiring={self.expiring!r})"


def bits_of(mask: int) -> List[int]:
    """Set-bit positions of ``mask``, ascending."""
    out: List[int] = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


def _live(expiry: float, now: int) -> bool:
    return expiry >= now


def write_entry(
    node: Node,
    metric_id: Hashable,
    vector_id: int,
    bit: int,
    expiry: Optional[int],
) -> None:
    """Record (or refresh) one DHS entry at ``node``."""
    key = (metric_id, bit)
    raw = node.store.get(key)
    if isinstance(raw, PackedSlot):
        slot = raw
    else:
        slot = PackedSlot()
        node.store[key] = slot
    vector_bit = 1 << vector_id
    if expiry is None:
        # Immortal: fold into the mask; it dominates any pending TTL.
        slot.mask |= vector_bit
        if slot.expiring:
            slot.expiring.pop(vector_id, None)
        return
    if slot.mask & vector_bit:
        return  # already stored forever; a TTL refresh cannot shorten it
    expiring = slot.expiring
    if expiring is None:
        expiring = slot.expiring = {}
    new_expiry = float(expiry)
    current = expiring.get(vector_id)
    if current is None or new_expiry > current:
        expiring[vector_id] = new_expiry


def vectors_mask(node: Node, metric_id: Hashable, bit: int, now: int = 0) -> int:
    """Bitmap of vector ids with a live bit ``bit`` for ``metric_id``."""
    slot = node.store.get((metric_id, bit))
    if not isinstance(slot, PackedSlot):
        return 0
    return slot.live_mask(now)


def vectors_at(node: Node, metric_id: Hashable, bit: int, now: int = 0) -> List[int]:
    """Vector ids with a live bit ``bit`` for ``metric_id`` at ``node``."""
    return bits_of(vectors_mask(node, metric_id, bit, now))


def merge_store_values(
    existing: Optional[StoreValue], incoming: StoreValue
) -> StoreValue:
    """Merge two slots for the same key (used on graceful leave).

    Packed slots merge mask-wise (union of immortal vectors, max-wins on
    TTL'd expiries, immortality dominating); plain ``{vector: expiry}``
    dicts — the pre-packed layout — still merge max-wins so mixed-era
    stores and the reference implementation keep working.
    """
    if isinstance(incoming, PackedSlot):
        mask = incoming.mask
        expiring: Dict[int, float] = dict(incoming.expiring or {})
        if isinstance(existing, PackedSlot):
            mask |= existing.mask
            for vector, expiry in (existing.expiring or {}).items():
                current = expiring.get(vector)
                if current is None or expiry > current:
                    expiring[vector] = expiry
        for vector in bits_of(mask):
            expiring.pop(vector, None)
        return PackedSlot(mask, expiring or None)
    if isinstance(incoming, dict):
        if not isinstance(existing, dict):
            return dict(incoming)
        merged = dict(existing)
        for vector, expiry in incoming.items():
            current = merged.get(vector)
            if current is None or expiry > current:
                merged[vector] = expiry
        return merged
    return incoming


def purge_expired(node: Node, now: int) -> int:
    """Drop expired entries from ``node``; returns how many were removed."""
    removed = 0
    dead_slots = []
    for slot_key, slot in node.store.items():
        if not isinstance(slot, PackedSlot):
            continue
        expiring = slot.expiring
        if expiring:
            stale = [
                vector for vector, expiry in expiring.items() if not _live(expiry, now)
            ]
            for vector in stale:
                del expiring[vector]
            removed += len(stale)
            if not expiring:
                slot.expiring = None
        if slot.mask == 0 and not slot.expiring:
            dead_slots.append(slot_key)
    for slot_key in dead_slots:
        del node.store[slot_key]
    return removed


def storage_entries(node: Node) -> int:
    """Number of live-or-stale DHS entries stored at ``node``."""
    return sum(
        slot.entries()
        for slot in node.store.values()
        if isinstance(slot, PackedSlot)
    )
