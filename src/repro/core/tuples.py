"""DHS wire tuples and node-store layout.

A DHS entry is the paper's ``<metric_id, vector_id, bit, time_out>``
tuple (section 3.2/3.4).  On a node we index entries by ``(metric, bit)``
and keep a ``{vector_id: expiry}`` sub-map so a counting probe — "which
vectors have bit ``r`` set for these metrics?" — is answered without
scanning the node's whole store.  A node stores at most one entry per
(metric, vector, bit): re-insertions only refresh the expiry.
"""

from __future__ import annotations

from typing import Dict, Hashable, NamedTuple, Optional

from repro.overlay.node import Node

__all__ = [
    "DHSTuple",
    "write_entry",
    "vectors_at",
    "merge_store_values",
    "purge_expired",
    "storage_entries",
]

#: Expiry sentinel for entries that never age out.
_NEVER = float("inf")


class DHSTuple(NamedTuple):
    """One DHS record as it travels on the wire."""

    metric_id: Hashable
    vector_id: int
    bit: int
    time_out: Optional[int] = None


def _live(expiry: float, now: int) -> bool:
    return expiry >= now


def write_entry(
    node: Node,
    metric_id: Hashable,
    vector_id: int,
    bit: int,
    expiry: Optional[int],
) -> None:
    """Record (or refresh) one DHS entry at ``node``."""
    slot: Dict[int, float] = node.store.setdefault((metric_id, bit), {})
    new_expiry = _NEVER if expiry is None else float(expiry)
    current = slot.get(vector_id)
    if current is None or new_expiry > current:
        slot[vector_id] = new_expiry


def vectors_at(node: Node, metric_id: Hashable, bit: int, now: int = 0) -> list[int]:
    """Vector ids with a live bit ``bit`` for ``metric_id`` at ``node``."""
    slot = node.store.get((metric_id, bit))
    if not slot:
        return []
    return [vector for vector, expiry in slot.items() if _live(expiry, now)]


def merge_store_values(existing: Optional[dict], incoming: dict) -> dict:
    """Merge two ``{vector: expiry}`` slots (used on graceful leave)."""
    if existing is None:
        return dict(incoming)
    merged = dict(existing)
    for vector, expiry in incoming.items():
        current = merged.get(vector)
        if current is None or expiry > current:
            merged[vector] = expiry
    return merged


def purge_expired(node: Node, now: int) -> int:
    """Drop expired entries from ``node``; returns how many were removed."""
    removed = 0
    dead_slots = []
    for slot_key, slot in node.store.items():
        stale = [vector for vector, expiry in slot.items() if not _live(expiry, now)]
        for vector in stale:
            del slot[vector]
        removed += len(stale)
        if not slot:
            dead_slots.append(slot_key)
    for slot_key in dead_slots:
        del node.store[slot_key]
    return removed


def storage_entries(node: Node) -> int:
    """Number of live-or-stale DHS entries stored at ``node``."""
    return sum(len(slot) for slot in node.store.values())
