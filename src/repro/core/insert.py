"""DHS insertion (paper sections 3.2 and 3.4).

To record an item, compute its ``(vector, position)`` observation from
the k low-order bits of its hashed key, pick a *uniformly random* key
inside the id-space interval of that position, and store the DHS tuple
at the DHT node owning that key.  Choosing a fresh random key per write
is what spreads copies of the same logical bit over all the interval's
nodes — the redundancy the counting algorithm's probe phase relies on.

``insert_bulk`` implements the paper's batching observation: a node with
many items groups them by interval and contacts at most ``k`` nodes per
round, one per interval, instead of one per item.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np
import numpy.typing as npt

from repro.core.config import DHSConfig
from repro.core.mapping import BitIntervalMap
from repro.core.policy import DEFAULT_POLICY, RetryPolicy
from repro.core.tuples import write_entry, write_entry_mask
from repro.errors import MessageDropped
from repro.hashing.family import HashFamily
from repro.hashing.vectorized import observations_np
from repro.obs import runtime as obs
from repro.overlay.dht import DHTProtocol
from repro.overlay.node import Node
from repro.overlay.replication import replicate_to_successors
from repro.overlay.stats import OpCost
from repro.sim.seeds import rng_for
from repro.sketches.base import split_key

if TYPE_CHECKING:  # annotation only — the facade constructs the arena
    from repro.core.regstore import RegArena

__all__ = ["Inserter"]


class Inserter:
    """Stateless-per-call insertion engine for one DHS deployment."""

    def __init__(
        self,
        dht: DHTProtocol,
        config: DHSConfig,
        mapping: BitIntervalMap,
        hash_family: HashFamily,
        seed: int = 0,
        policy: RetryPolicy = DEFAULT_POLICY,
        arena: Optional["RegArena"] = None,
    ) -> None:
        self.dht = dht
        self.config = config
        self.mapping = mapping
        self.hash_family = hash_family
        self.policy = policy
        #: Register arena backing fresh slots (``None`` = packed backend).
        self.arena = arena
        self._rng = rng_for(seed, "dhs-insert")

    # ------------------------------------------------------------------
    # Observations.
    # ------------------------------------------------------------------
    def observation(self, item: Any) -> Tuple[int, int]:
        """``(vector, position)`` of ``item``, clamped like the sketches."""
        vector, position = split_key(
            self.hash_family(item), self.config.num_bitmaps, self.config.key_bits
        )
        return vector, min(position, self.config.position_bits - 1)

    # ------------------------------------------------------------------
    # Single-item insertion.
    # ------------------------------------------------------------------
    def insert(
        self,
        metric_id: Hashable,
        item: Any,
        origin: Optional[int] = None,
        now: int = 0,
    ) -> OpCost:
        """Record one item under ``metric_id``; returns the cost.

        Items whose position falls below the configured ``bit_shift``
        are assumed set and cost nothing (section 3.5).
        """
        vector, position = self.observation(item)
        if not self.mapping.is_stored(position):
            return OpCost()
        return self._write_tuples(
            self.mapping.interval_index(position),
            [(metric_id, vector, position)],
            origin=origin,
            now=now,
        )

    def insert_many(
        self,
        metric_id: Hashable,
        items: Iterable[Any],
        origin: Optional[int] = None,
        now: int = 0,
    ) -> OpCost:
        """Insert items one at a time (at most one DHT store each).

        Items whose position falls below the configured ``bit_shift``
        are assumed set (section 3.5): they store nothing and contribute
        zero cost, so the per-item store count is *at most* one.
        """
        total = OpCost()
        for item in items:
            total.add(self.insert(metric_id, item, origin=origin, now=now))
        return total

    # ------------------------------------------------------------------
    # Bulk insertion: group by interval, one store per interval.
    # ------------------------------------------------------------------
    def insert_bulk(
        self,
        metric_id: Hashable,
        items: Iterable[Any],
        origin: Optional[int] = None,
        now: int = 0,
    ) -> OpCost:
        """Record many items with at most one DHT store per interval.

        All of an interval's tuples ride a single routed message, so the
        hop cost is ``O(k log N)`` per caller regardless of item count
        (the byte cost still scales with the distinct tuples sent).
        """
        by_interval: Dict[int, Dict[Tuple[Hashable, int, int], None]] = {}
        for item in items:
            vector, position = self.observation(item)
            if not self.mapping.is_stored(position):
                continue
            index = self.mapping.interval_index(position)
            # dict-as-ordered-set: one tuple per distinct (vector, bit).
            by_interval.setdefault(index, {})[(metric_id, vector, position)] = None
        total = OpCost()
        for index, tuple_set in sorted(by_interval.items()):
            total.add(
                self._write_tuples(index, list(tuple_set), origin=origin, now=now)
            )
        return total

    def insert_array(
        self,
        metric_id: Hashable,
        item_ids: npt.NDArray[np.int64],
        origin: Optional[int] = None,
        now: int = 0,
    ) -> OpCost:
        """Vectorized :meth:`insert_bulk` over an array of item ids.

        Hashes the whole array once with
        :func:`repro.hashing.vectorized.observations_np` (bit-for-bit
        identical to the scalar :meth:`observation` path — tests assert
        exact agreement), groups the distinct ``(vector, position)``
        observations by id-space interval with ``np.unique``, and sends
        each interval's tuples through the same :meth:`_write_tuples`
        path as the scalar bulk inserter.  Given the same items, seed
        and overlay state it performs the same stores, draws the same
        random target keys, and returns an equal
        :class:`~repro.overlay.stats.OpCost`.

        ``item_ids`` must be non-negative integers (the library's
        workload convention).  Non-``mixer`` hash families have no
        vectorized twin and fall back to the scalar path.
        """
        ids = np.ascontiguousarray(item_ids, dtype=np.int64)
        if self.config.hash_family_name != "mixer":
            return self.insert_bulk(
                metric_id, (int(item) for item in ids), origin=origin, now=now
            )
        vectors, positions = observations_np(
            ids, self.config.num_bitmaps, self.config.key_bits,
            seed=self.config.hash_seed,
        )
        return self.insert_observation_arrays(
            metric_id, vectors, positions, origin=origin, now=now
        )

    def insert_observation_arrays(
        self,
        metric_id: Hashable,
        vectors: npt.NDArray[np.int64],
        positions: npt.NDArray[np.int64],
        origin: Optional[int] = None,
        now: int = 0,
    ) -> OpCost:
        """Bulk-insert pre-computed observation *arrays* (numpy twin of
        :meth:`insert_observations`; same clamping, grouping and store
        order, so the two paths are byte- and cost-identical)."""
        config = self.config
        positions = np.minimum(
            np.asarray(positions, dtype=np.int64), config.position_bits - 1
        )
        vectors = np.asarray(vectors, dtype=np.int64)
        if config.bit_shift > 0:
            stored = positions >= config.bit_shift
            positions = positions[stored]
            vectors = vectors[stored]
        if positions.size == 0:
            return OpCost()
        if config.expiry(now) is None:
            return self._insert_mask_arrays(metric_id, vectors, positions, origin, now)
        m = config.num_bitmaps
        # One integer per (position, vector) pair; np.unique both dedups
        # and sorts, and ascending position is ascending interval index —
        # the same store order as the scalar path's sorted() grouping.
        combined = np.unique(positions * m + vectors)
        unique_positions = combined // m
        unique_vectors = combined - unique_positions * m
        segment_positions, starts = np.unique(unique_positions, return_index=True)
        bounds = np.concatenate((starts, np.asarray([combined.size])))
        total = OpCost()
        for segment, position in enumerate(segment_positions.tolist()):
            index = self.mapping.interval_index(position)
            lo, hi = int(bounds[segment]), int(bounds[segment + 1])
            tuples: List[Tuple[Hashable, int, int]] = [
                (metric_id, vector, position)
                for vector in unique_vectors[lo:hi].tolist()
            ]
            total.add(self._write_tuples(index, tuples, origin=origin, now=now))
        return total

    def _insert_mask_arrays(
        self,
        metric_id: Hashable,
        vectors: npt.NDArray[np.int64],
        positions: npt.NDArray[np.int64],
        origin: Optional[int],
        now: int,
    ) -> OpCost:
        """Immortal-write twin of :meth:`insert_observation_arrays`.

        Dedups the observations with one boolean scatter (no sort),
        packs each position's distinct vectors into register words with
        ``np.packbits``, and stores one *bitmap* per non-empty interval
        via :func:`repro.core.tuples.write_entry_mask` — on the array
        backend the node-side fold is a single vectorized word-OR.
        Same ascending-interval order, same per-interval random key
        draws, and the payload still counts one tuple per distinct
        ``(vector, position)`` pair, so costs and stored state are
        identical to the per-tuple path.
        """
        m = self.config.num_bitmaps
        n_pos = self.config.position_bits
        # Boolean presence grid over (position, vector): duplicate
        # observations collapse for free, no O(n log n) sort needed.
        grid = np.zeros(n_pos * m, dtype=bool)
        grid[positions * m + vectors] = True
        grid = grid.reshape(n_pos, m)
        packed = np.packbits(grid, axis=1, bitorder="little")
        words = (m + 63) // 64
        rows8 = np.zeros((n_pos, words * 8), dtype=np.uint8)
        rows8[:, : packed.shape[1]] = packed
        rows = rows8.view(np.uint64)
        pos_seen = np.zeros(n_pos, dtype=bool)
        pos_seen[positions] = True
        total = OpCost()
        for position in np.flatnonzero(pos_seen).tolist():
            index = self.mapping.interval_index(position)
            delta = rows[position]
            mask = int.from_bytes(delta.tobytes(), "little")
            total.add(
                self._store_mask(index, metric_id, position, mask, delta, origin, now)
            )
        return total

    def _store_mask(
        self,
        index: int,
        metric_id: Hashable,
        position: int,
        mask: int,
        delta: npt.NDArray[np.uint64],
        origin: Optional[int],
        now: int,
    ) -> OpCost:
        """Store one interval's deduplicated vector bitmap."""
        arena = self.arena

        def write(node: Node) -> None:
            write_entry_mask(node, metric_id, position, mask, delta=delta, arena=arena)

        return self._store_write(index, write, mask.bit_count(), origin, now)

    def insert_observations(
        self,
        metric_id: Hashable,
        observations: Iterable[Tuple[int, int]],
        origin: Optional[int] = None,
        now: int = 0,
    ) -> OpCost:
        """Bulk-insert pre-computed ``(vector, position)`` observations."""
        by_interval: Dict[int, Dict[Tuple[Hashable, int, int], None]] = {}
        for vector, position in observations:
            position = min(position, self.config.position_bits - 1)
            if not self.mapping.is_stored(position):
                continue
            index = self.mapping.interval_index(position)
            by_interval.setdefault(index, {})[(metric_id, vector, position)] = None
        total = OpCost()
        for index, tuple_set in sorted(by_interval.items()):
            total.add(
                self._write_tuples(index, list(tuple_set), origin=origin, now=now)
            )
        return total

    # ------------------------------------------------------------------
    # Shared write path.
    # ------------------------------------------------------------------
    def _write_tuples(
        self,
        index: int,
        tuples: List[Tuple[Hashable, int, int]],
        origin: Optional[int],
        now: int,
    ) -> OpCost:
        expiry = self.config.expiry(now)
        arena = self.arena

        def write(node: Node) -> None:
            for metric_id, vector, position in tuples:
                write_entry(node, metric_id, vector, position, expiry, arena=arena)

        return self._store_write(index, write, len(tuples), origin, now)

    def _store_write(
        self,
        index: int,
        write: Callable[[Node], None],
        count: int,
        origin: Optional[int],
        now: int,
    ) -> OpCost:
        if not obs.TRACING and not obs.METERING:
            return self._store_write_impl(index, write, count, origin, now)
        if not obs.TRACING:
            cost = self._store_write_impl(index, write, count, origin, now)
            self._meter_store(count, cost)
            return cost
        with obs.TRACER.span(
            "insert.store", tick=now, interval=index, tuples=count
        ) as span:
            cost = self._store_write_impl(index, write, count, origin, now)
            span.set(
                hops=cost.hops,
                messages=cost.messages,
                drops=cost.drops,
                timeouts=cost.timeouts,
            )
        if obs.METERING:
            self._meter_store(count, cost)
        return cost

    def _meter_store(self, count: int, cost: OpCost) -> None:
        obs.METRICS.inc("dhs.insert.stores")
        obs.METRICS.inc("dhs.insert.tuples", count)
        obs.METRICS.observe("dhs.insert.store_hops", cost.hops)

    def _store_write_impl(
        self,
        index: int,
        write: Callable[[Node], None],
        count: int,
        origin: Optional[int],
        now: int,
    ) -> OpCost:
        key = self.mapping.random_key_in_interval(index, self._rng)
        loss_cost = OpCost()
        try:
            storing_node, cost = self.policy.call(
                lambda: self.dht.store(
                    key,
                    write,
                    origin=origin,
                    payload_bytes=count * self.config.size_model.tuple_bytes,
                ),
                self._rng,
                loss_cost,
            )
        except MessageDropped:
            # The write is lost for good: the tuples were never stored.
            # Soft-state refresh (or read-repair) re-creates them later;
            # the timeout/backoff accounting survives in the cost.
            if obs.TRACING:
                obs.TRACER.event("insert.lost", tick=now, interval=index)
            return loss_cost
        cost.add(loss_cost)
        if obs.TRACING:
            obs.TRACER.event(
                "dht.store", tick=now, key=key, node=storing_node, hops=cost.hops
            )
        if self.config.replication > 0:
            extra = replicate_to_successors(
                self.dht,
                storing_node,
                write,
                degree=self.config.replication,
                payload_bytes=count * self.config.size_model.tuple_bytes,
            )
            if extra is not None:
                cost.add(extra)
                if obs.TRACING:
                    obs.TRACER.event(
                        "replicate", tick=now, node=storing_node, hops=extra.hops
                    )
        return cost
