"""DHS core: the paper's contribution — distributed hash sketches."""

from repro.core.config import DEFAULT_LIM, DHSConfig
from repro.core.count import Counter, CountResult
from repro.core.dhs import DistributedHashSketch
from repro.core.insert import Inserter
from repro.core.maintenance import refresh, stabilize, sweep_expired
from repro.core.mapping import BitIntervalMap
from repro.core.policy import DEFAULT_POLICY, RetryPolicy
from repro.core.regstore import RegArena, RegSlot, tree_merge
from repro.core.retries import (
    lim_for_interval,
    lim_with_bitmaps,
    lim_with_replication,
    prob_all_probes_empty,
    success_probability,
)
from repro.core.tuples import (
    DHSTuple,
    PackedSlot,
    bits_of,
    merge_store_values,
    purge_expired,
    storage_entries,
    vectors_at,
    vectors_mask,
    write_entry,
    write_entry_mask,
)

__all__ = [
    "DEFAULT_LIM",
    "DHSConfig",
    "Counter",
    "CountResult",
    "DistributedHashSketch",
    "Inserter",
    "refresh",
    "stabilize",
    "sweep_expired",
    "BitIntervalMap",
    "DEFAULT_POLICY",
    "RetryPolicy",
    "RegArena",
    "RegSlot",
    "tree_merge",
    "lim_for_interval",
    "lim_with_bitmaps",
    "lim_with_replication",
    "prob_all_probes_empty",
    "success_probability",
    "DHSTuple",
    "PackedSlot",
    "bits_of",
    "merge_store_values",
    "purge_expired",
    "storage_entries",
    "vectors_at",
    "vectors_mask",
    "write_entry",
    "write_entry_mask",
]
