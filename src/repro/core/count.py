"""DHS counting — the paper's Algorithm 1, for both estimator families.

Counting walks the id-space intervals and, per interval, probes up to
``lim`` nodes (one DHT lookup, then 1-hop successor/predecessor walks
confined to the interval) asking "which vectors have bit ``r`` set for
these metrics?".

* super-LogLog / LogLog / HLL scan **high → low** and record, per
  bitmap, the *first* set bit seen — its maximum (Alg. 1).
* PCSA scans **low → high**; a bitmap stays *active* while every probed
  position was found set, and resolves to its leftmost zero at the first
  position that ``lim`` probes could not confirm.

Observed bits are fed into an ordinary local sketch from
:mod:`repro.sketches`, so the distributed estimate uses byte-identical
math to the centralized estimators.  Probing any node yields the bit's
status for *all* bitmaps of *all* requested metrics at once, which is why
hop counts are independent of ``m`` and of the number of metrics
(sections 4.2/4.3) while byte counts are not.

Hot path: the per-metric bookkeeping (pending / active / found vectors)
is kept as packed integer bitmaps throughout, so a probe answers "which
of these pending vectors are set here?" with one ``int &`` per metric
against the node's :class:`~repro.core.tuples.PackedSlot` mask.  The
per-interval random probe keys are drawn up front (one pass over the
counting RNG per scan), and per-probe node-id recording is gated behind
``dht.trace`` — the ``probes``/``unique_probed`` counters stay exact.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
)

from repro.core.config import DHSConfig
from repro.core.mapping import BitIntervalMap
from repro.core.policy import DEFAULT_POLICY, RetryPolicy
from repro.core.retries import lim_with_replication, success_probability
from repro.core.tuples import PackedSlot, bits_of, vectors_mask, write_entry
from repro.errors import MessageDropped
from repro.hashing.family import HashFamily
from repro.obs import runtime as obs
from repro.obs.metrics import BUCKETS_BITS, BUCKETS_PROBES, Histogram
from repro.overlay.dht import DHTProtocol, LookupResult
from repro.overlay.node import Node
from repro.overlay.replication import replica_chain
from repro.overlay.stats import OpCost
from repro.sim.seeds import rng_for
from repro.sketches.base import HashSketch

if TYPE_CHECKING:  # annotation only — the facade constructs the arena
    from repro.core.regstore import RegArena

__all__ = ["Counter", "CountResult"]

#: Estimators that scan from the most significant position downwards.
_DOWNWARD_ESTIMATORS = {"sll", "loglog", "hll"}


@dataclass
class CountResult:
    """Outcome of one counting operation (possibly many metrics)."""

    estimates: Dict[Hashable, float]
    sketches: Dict[Hashable, HashSketch]
    cost: OpCost
    #: Total node probes performed (the paper's "nodes visited" is
    #: ``unique_probed``: distinct probed nodes).
    probes: int = 0
    #: Distinct probed node ids, maintained incrementally on every probe.
    probed_ids: Set[int] = field(default_factory=set)
    #: Full probe sequence — only recorded when ``dht.trace`` is on
    #: (mirrors ``OpCost.nodes_visited``); empty otherwise.
    probed_nodes: List[int] = field(default_factory=list)
    intervals_scanned: int = 0
    #: True when any probe budget was exhausted with unresolved bitmaps
    #: or any message was lost/timed out — the estimate may be biased.
    degraded: bool = False
    #: Intervals whose probe walk ended by budget exhaustion (rather
    #: than resolving every pending bitmap or sweeping the interval).
    exhausted_intervals: int = 0
    #: Messages permanently lost during the count (retry budget spent).
    dropped_messages: int = 0
    #: Per-metric probability that no live data was missed: the product
    #: of eq. 5 success probabilities over every exhausted interval
    #: (1.0 = every interval resolved or was swept exhaustively).
    confidence: Dict[Hashable, float] = field(default_factory=dict)

    @property
    def unique_probed(self) -> int:
        """Distinct nodes probed (the paper's "nodes visited" column)."""
        return len(self.probed_ids)

    def estimate(self) -> float:
        """The single estimate (raises unless exactly one metric)."""
        if len(self.estimates) != 1:
            raise ValueError("estimate() is only defined for single-metric counts")
        return next(iter(self.estimates.values()))


class Counter:
    """Counting engine for one DHS deployment."""

    def __init__(
        self,
        dht: DHTProtocol,
        config: DHSConfig,
        mapping: BitIntervalMap,
        hash_family: HashFamily,
        seed: int = 0,
        policy: RetryPolicy = DEFAULT_POLICY,
        arena: Optional["RegArena"] = None,
    ) -> None:
        self.dht = dht
        self.config = config
        self.mapping = mapping
        self.hash_family = hash_family
        self.policy = policy
        #: Register arena of the array store backend (``None`` = packed).
        self.arena = arena
        #: Per-scan flag: the current scan may use the inlined
        #: direct-store probe walk (see :meth:`_run_scan`).
        self._fast = False
        self._rng = rng_for(seed, "dhs-count")
        # Per-count cached histogram objects (refreshed from the active
        # registry at each metered count; see _count_many_impl) so the
        # interval loop skips the registry's name lookup.
        self._hist_probes = Histogram(BUCKETS_PROBES)
        self._hist_bits = Histogram(BUCKETS_BITS)

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def count(
        self,
        metric_id: Hashable,
        origin: Optional[int] = None,
        now: int = 0,
        expected_items: Optional[float] = None,
    ) -> CountResult:
        """Estimate the cardinality of one metric.

        ``expected_items`` is a prior cardinality estimate consumed by
        the ``eq6`` lim policy; with the policy active and no prior, a
        bootstrap fixed-``lim`` pass supplies one (its cost is included
        in the returned result).
        """
        return self.count_many(
            [metric_id], origin=origin, now=now, expected_items=expected_items
        )

    def count_many(
        self,
        metric_ids: Sequence[Hashable],
        origin: Optional[int] = None,
        now: int = 0,
        expected_items: Optional[float] = None,
    ) -> CountResult:
        """Estimate several metrics in one interval scan (section 4.2).

        The scan order is shared, so hop cost matches a single-metric
        count; only the response bytes grow with the metric count.
        """
        if not metric_ids:
            raise ValueError("count_many needs at least one metric id")
        if len(set(metric_ids)) != len(metric_ids):
            raise ValueError("metric ids must be unique")
        if origin is None:
            origin = self.dht.random_live_node(self._rng)
        if not obs.TRACING:
            return self._count_many_impl(metric_ids, origin, now, expected_items)
        with obs.TRACER.span(
            "dhs.count", tick=now, metrics=len(metric_ids), origin=origin
        ) as span:
            result = self._count_many_impl(metric_ids, origin, now, expected_items)
            span.set(
                hops=result.cost.hops,
                messages=result.cost.messages,
                probes=result.probes,
                unique_probed=result.unique_probed,
                intervals=result.intervals_scanned,
                exhausted_intervals=result.exhausted_intervals,
                drops=result.cost.drops,
                timeouts=result.cost.timeouts,
                degraded=result.degraded,
            )
        return result

    def _count_many_impl(
        self,
        metric_ids: Sequence[Hashable],
        origin: int,
        now: int,
        expected_items: Optional[float],
    ) -> CountResult:
        """The untraced body of :meth:`count_many`."""
        if obs.METERING:
            registry = obs.METRICS
            self._hist_probes = registry.histogram("dhs.count.probes_per_interval")
            self._hist_bits = registry.histogram("dhs.count.bits_touched")
        bootstrap_cost: Optional[OpCost] = None
        if self.config.lim_policy == "eq6" and expected_items is None:
            bootstrap = self._run_scan(metric_ids, origin, now, expected_items=None,
                                       force_fixed=True)
            estimates = [est for est in bootstrap.estimates.values() if est > 0]
            # The sparsest metric binds the probe budget.
            expected_items = min(estimates) if estimates else 0.0
            bootstrap_cost = bootstrap.cost
        result = self._run_scan(metric_ids, origin, now, expected_items=expected_items)
        if bootstrap_cost is not None:
            result.cost.add(bootstrap_cost)
        result.dropped_messages = result.cost.drops
        result.degraded = (
            result.exhausted_intervals > 0
            or result.cost.drops > 0
            or result.cost.timeouts > 0
        )
        if obs.METERING:
            obs.METRICS.inc("dhs.count.ops")
            if result.degraded:
                obs.METRICS.inc("dhs.count.degraded")
        return result

    def _run_scan(
        self,
        metric_ids: Sequence[Hashable],
        origin: int,
        now: int,
        expected_items: Optional[float],
        force_fixed: bool = False,
    ) -> CountResult:
        sketches = {
            metric: self.config.make_sketch(self.hash_family) for metric in metric_ids
        }
        # The array backend's inlined probe walk: sound only when every
        # wrapper it skips is provably a no-op — a no-retry policy means
        # ``policy.call`` is a plain call, no fault layer means lookups
        # cannot drop messages and ``node_responsive`` is ``is_alive``,
        # read repair off means probes never write, and tracing/metering
        # off means no spans or counters would be emitted.  Costs,
        # RNG draws and results are identical either way (the
        # equivalence suite pins this against the reference walk).
        self._fast = (
            self.arena is not None
            and self.policy.is_default
            and self.dht.fault_layer is None
            and not (self.config.read_repair and self.config.replication > 0)
            and not obs.TRACING
            and not obs.METERING
        )
        adaptive = self.config.lim_policy == "eq6" and not force_fixed
        prior = expected_items if adaptive else None
        # One probe key per interval, drawn up front: a single pass over
        # the counting RNG per scan, independent of which intervals the
        # scan actually reaches before resolving.
        keys = self._interval_keys()
        if self.config.estimator in _DOWNWARD_ESTIMATORS:
            result = self._scan_downward(sketches, origin, now, keys, prior)
        else:
            result = self._scan_upward(sketches, origin, now, keys, prior)
        result.estimates = {
            metric: sketch.estimate() for metric, sketch in sketches.items()
        }
        return result

    def _interval_keys(self) -> List[int]:
        """Random probe key for every interval (ascending interval order)."""
        mapping = self.mapping
        rng = self._rng
        return [
            mapping.random_key_in_interval(index, rng)
            for index in range(mapping.num_intervals)
        ]

    # ------------------------------------------------------------------
    # Per-interval probe budget (fixed lim, or eq. 6 from a prior).
    # ------------------------------------------------------------------
    def _interval_budget(self, index: int, expected_items: Optional[float]) -> int:
        """Probe budget for one interval under the active lim policy."""
        config = self.config
        if expected_items is None:
            return config.lim
        position = self.mapping.position_for_index(index)
        items_here = expected_items * 2.0 ** -(position + 1)
        nodes_here = max(1.0, self.mapping.expected_nodes(index, self.dht.size))
        budget = lim_with_replication(
            config.lim_target_p,
            items_here,
            nodes_here,
            m=config.num_bitmaps,
            replication=config.replication + 1,
        )
        # Bound the adaptive budget: never below 1, never runaway.
        return max(1, min(budget, 8 * config.lim))

    # ------------------------------------------------------------------
    # Downward scan (LogLog family): first set bit seen is the maximum.
    # ------------------------------------------------------------------
    def _scan_downward(
        self,
        sketches: Dict[Hashable, HashSketch],
        origin: int,
        now: int,
        keys: Sequence[int],
        expected_items: Optional[float] = None,
    ) -> CountResult:
        config = self.config
        full = (1 << config.num_bitmaps) - 1
        pending: Dict[Hashable, int] = {metric: full for metric in sketches}
        result = CountResult(
            estimates={}, sketches=sketches, cost=OpCost(),
            confidence={metric: 1.0 for metric in sketches},
        )
        for index in reversed(range(self.mapping.num_intervals)):
            if not any(pending.values()):
                break
            position = self.mapping.position_for_index(index)
            found = self._probe_interval(
                index, position, pending, origin, now, result, expected_items,
                key=keys[index],
            )
            for metric, mask in found.items():
                newly = mask & pending[metric]
                if newly:
                    pending[metric] &= ~newly
                    sketches[metric].record_mask(newly, position)
        if config.bit_shift > 0:
            # Unresolved bitmaps are assumed set below the shift.
            for metric, mask in pending.items():
                sketches[metric].record_mask(mask, config.bit_shift - 1)
        return result

    # ------------------------------------------------------------------
    # Upward scan (PCSA): advance while every probed bit is confirmed.
    # ------------------------------------------------------------------
    def _scan_upward(
        self,
        sketches: Dict[Hashable, HashSketch],
        origin: int,
        now: int,
        keys: Sequence[int],
        expected_items: Optional[float] = None,
    ) -> CountResult:
        config = self.config
        full = (1 << config.num_bitmaps) - 1
        active: Dict[Hashable, int] = {metric: full for metric in sketches}
        if config.bit_shift > 0:
            # Positions below the shift are assumed set (section 3.5).
            for sketch in sketches.values():
                for position in range(config.bit_shift):
                    sketch.record_mask(full, position)
        result = CountResult(
            estimates={}, sketches=sketches, cost=OpCost(),
            confidence={metric: 1.0 for metric in sketches},
        )
        for index in range(self.mapping.num_intervals):
            if not any(active.values()):
                break
            position = self.mapping.position_for_index(index)
            found = self._probe_interval(
                index, position, active, origin, now, result, expected_items,
                key=keys[index],
            )
            for metric, mask in active.items():
                confirmed = mask & found.get(metric, 0)
                if confirmed:
                    sketches[metric].record_mask(confirmed, position)
                # Bitmaps whose bit could not be confirmed resolve here:
                # their leftmost zero is this position (already implicit
                # in the sketch state — bits above stay unset).
                active[metric] = confirmed
        return result

    # ------------------------------------------------------------------
    # Interval probe: one lookup plus <= lim-1 neighbour walks (Alg. 1).
    # ------------------------------------------------------------------
    def _probe_interval(
        self,
        index: int,
        position: int,
        needed: Dict[Hashable, int],
        origin: int,
        now: int,
        result: CountResult,
        expected_items: Optional[float] = None,
        key: Optional[int] = None,
    ) -> Dict[Hashable, int]:
        """Probe one interval; ``needed`` maps metric → pending bitmap.

        Returns metric → bitmap of vectors found set at ``position``.
        """
        if not obs.TRACING:
            # Metering (when on) happens inside the impl, where the
            # probe count and found masks are already locals — the
            # delta bookkeeping below is only needed for span attrs.
            return self._probe_interval_impl(
                index, position, needed, origin, now, result, expected_items, key
            )
        cost = result.cost
        probes_before = result.probes
        hops_before = cost.hops
        drops_before = cost.drops
        timeouts_before = cost.timeouts
        exhausted_before = result.exhausted_intervals
        span = obs.TRACER.start(
            "count.interval", tick=now, index=index, position=position
        )
        try:
            found = self._probe_interval_impl(
                index, position, needed, origin, now, result, expected_items, key
            )
        finally:
            attrs = span.attrs
            attrs["probes"] = result.probes - probes_before
            attrs["hops"] = cost.hops - hops_before
            attrs["drops"] = cost.drops - drops_before
            attrs["timeouts"] = cost.timeouts - timeouts_before
            attrs["exhausted"] = result.exhausted_intervals > exhausted_before
            obs.TRACER.end(span)
        return found

    def _probe_interval_impl(
        self,
        index: int,
        position: int,
        needed: Dict[Hashable, int],
        origin: int,
        now: int,
        result: CountResult,
        expected_items: Optional[float],
        key: Optional[int],
    ) -> Dict[Hashable, int]:
        """The untraced body of :meth:`_probe_interval` (Alg. 1 inner loop)."""
        event = obs.TRACER.event if obs.TRACING else None
        config = self.config
        budget = self._interval_budget(index, expected_items)
        metrics = [metric for metric, mask in needed.items() if mask]
        found: Dict[Hashable, int] = {metric: 0 for metric in metrics}
        if not metrics:
            if obs.METERING:
                self._record_interval_metrics(probes_done=0, bits=0)
            return found
        result.intervals_scanned += 1
        if key is None:
            key = self.mapping.random_key_in_interval(index, self._rng)
        cost = result.cost
        fast = self._fast
        if fast:
            # No fault layer and a no-retry policy: the lookup cannot
            # drop, and ``policy.call`` would be a plain call.
            lookup = self.dht.lookup(key, origin=origin)
        else:
            lookup = self._lookup_interval(
                key, origin, index, position, metrics, needed, found, result,
                expected_items, now, event,
            )
            if lookup is None:
                return found
        size_model = config.size_model
        num_metrics = len(metrics)
        cost.add(lookup.cost)
        if event is not None:
            event(
                "dht.lookup",
                tick=now,
                key=key,
                node=lookup.node_id,
                hops=lookup.cost.hops,
            )
        cost.bytes += size_model.probe_bytes(
            request_hops=lookup.cost.hops, tuples_returned=0, metrics=num_metrics
        )

        repair = config.read_repair and config.replication > 0
        trace = self.dht.trace
        visited: Set[int] = set()
        target = lookup.node_id
        succ_cursor = pred_cursor = target
        go_to_succ = True
        budget_exhausted = False
        probes_done = 0
        for attempt in range(budget):
            if attempt > 0:
                cost.bytes += size_model.probe_bytes(
                    request_hops=1, tuples_returned=0, metrics=num_metrics
                )
            visited.add(target)
            result.probes += 1
            probes_done += 1
            result.probed_ids.add(target)
            if trace:
                result.probed_nodes.append(target)
            if fast:
                # Inlined probe: same semantics as the reference branch
                # below with every provably-no-op wrapper peeled away —
                # ``policy.call`` (no-retry policy), ``dht.probe``'s
                # callback indirection, and the per-metric dict build.
                node = self.dht.live_node(target)
                if node is not None:
                    self.dht.load.record(target)
                    store = node.store
                    returned = 0
                    for metric in metrics:
                        slot = store.get((metric, position))
                        if isinstance(slot, PackedSlot):
                            mask = slot.live_mask(now)
                            if mask:
                                returned += mask.bit_count()
                                found[metric] |= mask
                    cost.bytes += returned * size_model.tuple_bytes
                else:
                    cost.timeouts += 1
                    self.dht.timeout_repair(target)
            elif self.dht.node_responsive(target):
                masks = self._probe_node(target, metrics, position, now, cost)
                if masks is not None:
                    returned = 0
                    for metric, mask in masks.items():
                        returned += mask.bit_count()
                        found[metric] |= mask
                    cost.bytes += returned * size_model.tuple_bytes
                    if repair and returned:
                        self._read_repair(target, metrics, masks, position, now, cost)
                    if event is not None:
                        event(
                            "probe", tick=now, node=target, ok=True, bits=returned
                        )
                elif event is not None:
                    event(
                        "probe", tick=now, node=target, ok=False, lost=True
                    )
            else:
                # Timed-out probe of a crashed (or transiently down)
                # node — Alg. 1's failure case.  The walk hop was already
                # paid; record the timeout and walk on.  Transient nodes
                # are not evicted (the fault layer vetoes it).
                cost.timeouts += 1
                self.dht.timeout_repair(target)
                if event is not None:
                    event(
                        "probe", tick=now, node=target, ok=False, timeout=True
                    )
            if all(not (needed[metric] & ~found[metric]) for metric in metrics):
                break
            if attempt + 1 == budget:
                # Budget exhausted: the walk ends here, so don't pay a
                # hop for a neighbour that is never contacted.
                budget_exhausted = True
                break
            # Pick the next probe target: successors first, then switch
            # to predecessors once the interval's upper end is reached.
            # The successor walk is allowed one node beyond the interval:
            # keys above the last in-interval node are owned by the next
            # node on the ring, so that "overflow" node can hold tuples
            # of this interval too.
            next_target = None
            if go_to_succ and not self.mapping.contains(index, succ_cursor):
                # The walk already sits on the overflow owner (or the
                # lookup landed there directly): nothing further up.
                go_to_succ = False
            if go_to_succ:
                candidate = self.dht.successor_id(succ_cursor)
                if candidate in visited:
                    go_to_succ = False
                elif self.mapping.contains(index, candidate):
                    succ_cursor = next_target = candidate
                else:
                    next_target = candidate  # the one overflow owner
                    succ_cursor = candidate
                    go_to_succ = False
            if next_target is None:
                candidate = self.dht.predecessor_id(pred_cursor)
                if self.mapping.contains(index, candidate) and candidate not in visited:
                    pred_cursor = next_target = candidate
                else:
                    break  # interval exhausted in both directions
            target = next_target
            cost.hops += 1
            cost.messages += 1
            if trace:
                cost.nodes_visited.append(target)
        if budget_exhausted:
            self._charge_exhaustion(
                index, position, metrics, needed, found, result,
                expected_items, probes_done=probes_done,
            )
        if obs.METERING:
            # Inlined histogram records against the per-count cached
            # objects (refreshed in _count_many_impl) — this runs once
            # per interval on the count hot path.
            hist = self._hist_probes
            hist.counts[bisect_left(hist.bounds, probes_done)] += 1
            hist.total += probes_done
            hist.count += 1
            bits = sum(map(int.bit_count, found.values()))
            hist = self._hist_bits
            hist.counts[bisect_left(hist.bounds, bits)] += 1
            hist.total += bits
            hist.count += 1
        return found

    def _lookup_interval(
        self,
        key: int,
        origin: int,
        index: int,
        position: int,
        metrics: List[Hashable],
        needed: Dict[Hashable, int],
        found: Dict[Hashable, int],
        result: CountResult,
        expected_items: Optional[float],
        now: int,
        event: Optional[Callable[..., Any]],
    ) -> Optional[LookupResult]:
        """Route to the interval under the retry policy.

        Returns ``None`` when every lookup attempt was dropped — the
        interval is unreachable this scan: zero probes happened, so
        confidence in every still-pending metric takes the full
        zero-probe eq. 5 hit (already charged here).
        """
        try:
            return self.policy.call(
                lambda: self.dht.lookup(key, origin=origin), self._rng, result.cost
            )
        except MessageDropped:
            if event is not None:
                event("count.unreachable", tick=now, index=index)
            self._charge_exhaustion(
                index, position, metrics, needed, found, result,
                expected_items, probes_done=0,
            )
            if obs.METERING:
                self._record_interval_metrics(probes_done=0, bits=0)
            return None

    def _record_interval_metrics(self, probes_done: int, bits: int) -> None:
        """Record one interval's probe/bit observations (cold paths only;
        the normal exit of :meth:`_probe_interval_impl` inlines this)."""
        hist = self._hist_probes
        hist.counts[bisect_left(hist.bounds, probes_done)] += 1
        hist.total += probes_done
        hist.count += 1
        hist = self._hist_bits
        hist.counts[bisect_left(hist.bounds, bits)] += 1
        hist.total += bits
        hist.count += 1

    def _probe_node(
        self,
        target: int,
        metrics: List[Hashable],
        position: int,
        now: int,
        cost: OpCost,
    ) -> Optional[Dict[Hashable, int]]:
        """Probe one node under the retry policy.

        Returns metric → bitmap of vectors set at ``position``, or
        ``None`` when the probe message was permanently lost (the loss
        is already charged into ``cost`` by the policy).
        """

        def read(node: Node) -> Dict[Hashable, int]:
            return {
                metric: vectors_mask(node, metric, position, now)
                for metric in metrics
            }

        try:
            masks: Dict[Hashable, int] = self.policy.call(
                lambda: self.dht.probe(target, read), self._rng, cost
            )
        except MessageDropped:
            return None
        return masks

    def _read_repair(
        self,
        target: int,
        metrics: List[Hashable],
        masks: Dict[Hashable, int],
        position: int,
        now: int,
        cost: OpCost,
    ) -> None:
        """Re-write bits found at ``target`` onto replicas missing them.

        A crashed-and-rejoined (or amnesiac) successor silently degrades
        ``p_f^R`` bit survival; the counting walk is the natural place to
        notice, because it already read the authoritative bits.  Each
        repaired replica costs one hop plus the copied tuple bytes.
        """
        source = self.dht.node(target)
        tuple_bytes = self.config.size_model.tuple_bytes
        for replica_id in replica_chain(self.dht, target, self.config.replication):
            if not self.dht.node_responsive(replica_id):
                continue
            replica = self.dht.node(replica_id)
            wrote = 0
            for metric in metrics:
                src_mask = masks.get(metric, 0)
                if not src_mask:
                    continue
                missing = src_mask & ~vectors_mask(replica, metric, position, now)
                if not missing:
                    continue
                slot = source.store.get((metric, position))
                for vector in bits_of(missing):
                    expiry: Optional[int] = None
                    if isinstance(slot, PackedSlot) and not (slot.mask >> vector) & 1:
                        raw = (slot.expiring or {}).get(vector)
                        expiry = int(raw) if raw is not None else None
                    write_entry(
                        replica, metric, vector, position, expiry, arena=self.arena
                    )
                    wrote += 1
            if wrote:
                cost.hops += 1
                cost.messages += 1
                cost.bytes += wrote * tuple_bytes
                cost.repair_writes += wrote
                self.dht.load.record(replica_id)
                if obs.METERING:
                    obs.METRICS.inc("dhs.repair.writes", wrote)
                if obs.TRACING:
                    obs.TRACER.event(
                        "read_repair", tick=now, node=replica_id, tuples=wrote
                    )

    def _charge_exhaustion(
        self,
        index: int,
        position: int,
        metrics: List[Hashable],
        needed: Dict[Hashable, int],
        found: Dict[Hashable, int],
        result: CountResult,
        expected_items: Optional[float],
        probes_done: int,
    ) -> None:
        """Record a budget-exhausted interval and discount confidence.

        ``probes_done`` nodes of the interval were probed without
        resolving every pending bitmap; eq. 5 gives the probability that
        those probes would have found live data had there been any, so
        each unresolved metric's confidence is multiplied by it.
        """
        unresolved = [
            metric for metric in metrics if needed[metric] & ~found[metric]
        ]
        if not unresolved:
            return
        result.exhausted_intervals += 1
        nodes_here = max(1.0, self.mapping.expected_nodes(index, self.dht.size))
        if expected_items is not None:
            items_here = expected_items * 2.0 ** -(position + 1)
        else:
            # No prior: assume the paper's lim=5 boundary case — as many
            # interval items as interval nodes (section 4.1).
            items_here = nodes_here
        if items_here <= 0:
            return
        p = success_probability(
            (self.config.replication + 1) * items_here, nodes_here, probes_done
        )
        for metric in unresolved:
            result.confidence[metric] = result.confidence.get(metric, 1.0) * p
