"""Soft-state maintenance (paper section 3.3).

DHS deletion is implicit: every stored bit carries a time-out, and a bit
that is not refreshed within its TTL ages out — so deleting items costs
nothing.  Data owners periodically re-insert (refresh) their live items;
the TTL choice trades maintenance bandwidth against adaptation speed to
fluctuations, exactly the trade-off the paper discusses.

Time is a logical integer clock owned by the caller (the simulation
kit); nothing here reads wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Hashable,
    Iterable,
    Optional,
    Tuple,
    cast,
)

import numpy as np

from repro.core.insert import Inserter
from repro.core.mapping import BitIntervalMap
from repro.core.tuples import PackedSlot, bits_of, purge_expired, write_entry
from repro.overlay.antientropy import AntiEntropyStats, antientropy_round
from repro.overlay.dht import DHTProtocol
from repro.overlay.messages import DEFAULT_SIZE_MODEL, SizeModel
from repro.overlay.node import Node
from repro.overlay.replication import live_predecessors, replica_chain
from repro.overlay.stats import OpCost
from repro.sim.seeds import rng_for

if TYPE_CHECKING:  # annotation only — the facade imports this module
    from repro.core.regstore import RegArena
    import random

    from repro.core.dhs import DistributedHashSketch

__all__ = [
    "MaintenanceConfig",
    "MaintenanceReport",
    "MaintenanceScheduler",
    "antientropy_sweep",
    "refresh",
    "replica_divergence",
    "stabilize",
    "sweep_expired",
]


def refresh(
    inserter: Inserter,
    metric_id: Hashable,
    items: Iterable[Any],
    origin: Optional[int] = None,
    now: int = 0,
) -> OpCost:
    """Re-insert (refresh) live items, resetting their time-outs.

    Refreshing is literally re-insertion: matching entries get their
    expiry bumped, missing ones are re-created (e.g. after a crash).
    An ndarray of item ids takes the vectorized
    :meth:`~repro.core.insert.Inserter.insert_array` lane — bit- and
    cost-identical to the scalar bulk path (both draw target keys from
    the same per-interval RNG stream and store the same deduplicated
    tuples), just hashed in one numpy pass.
    """
    if isinstance(items, np.ndarray):
        return inserter.insert_array(metric_id, items, origin=origin, now=now)
    return inserter.insert_bulk(metric_id, items, origin=origin, now=now)


def sweep_expired(dht: DHTProtocol, now: int) -> int:
    """Purge expired entries from every live node; returns entries freed.

    In a real deployment each node sweeps its own store locally; the
    simulation does it in one pass.  Counting already ignores expired
    entries, so sweeping only reclaims storage.
    """
    removed = 0
    for node_id in list(dht.node_ids()):
        removed += purge_expired(dht.node(node_id), now)
    return removed


# The predecessor walk now lives next to replica_chain in
# repro.overlay.replication; the private alias keeps this module's
# call sites unchanged.
_live_predecessors = live_predecessors


def _entry_expiry(slot: PackedSlot, vector: int) -> Optional[int]:
    """Source expiry of ``vector`` in ``slot`` (``None`` = immortal)."""
    if (slot.mask >> vector) & 1:
        return None
    raw = (slot.expiring or {}).get(vector)
    return int(raw) if raw is not None else None


def _handoff_to_interval(
    dht: DHTProtocol,
    mapping: BitIntervalMap,
    now: int,
    model: SizeModel,
    cost: OpCost,
) -> None:
    """Return replica bits that spilled past their home interval.

    Insert-time replicas live on the primary's ring successors, which
    for keys near an interval's upper end sit *outside* the interval —
    where the counting walk never looks.  The walk's reach for interval
    ``[lo, hi)`` is exactly the in-interval nodes plus the one overflow
    owner (the node owning key ``hi - 1``, which owns every in-interval
    key when the interval is empty of nodes).  While the primary is
    alive a spilled replica is harmless — the walk reads the primary —
    but a crashed-and-rejoined primary comes back empty and masks its
    replicas: the bits survive globally yet the count confidently
    under-reads.  Mirroring Chord's key handoff to a rejoined owner,
    each holder the walk cannot see offers such bits to its first live
    predecessor when that predecessor *is* visible.  The migration is
    bounded: once a visible node holds the bits, ``missing`` is empty
    and later sweeps are free.
    """

    def visible(index: int, node_id: int) -> bool:
        if mapping.contains(index, node_id):
            return True
        lo, hi = mapping.interval_for_index(index)
        return node_id == dht.owner_of(hi - 1)

    for node_id in list(dht.node_ids()):
        if not dht.node_responsive(node_id):
            continue
        node = dht.node(node_id)
        slots = [
            (key, slot)
            for key, slot in node.store.items()
            if isinstance(slot, PackedSlot)
        ]
        if not slots:
            continue
        predecessors = _live_predecessors(dht, node_id, 1)
        if not predecessors:
            continue
        pred_id = predecessors[0]
        if not dht.node_responsive(pred_id):
            continue
        pred_node = dht.node(pred_id)
        wrote = 0
        for slot_key, slot in slots:
            metric, bit = cast(Tuple[Hashable, int], slot_key)
            if not mapping.is_stored(bit):
                continue
            index = mapping.interval_index(bit)
            if visible(index, node_id):
                continue  # the walk already reaches this holder
            if not visible(index, pred_id):
                continue  # predecessor is no closer to the walk's reach
            live = slot.live_mask(now)
            if not live:
                continue
            pred_slot = pred_node.store.get(slot_key)
            have = (
                pred_slot.live_mask(now)
                if isinstance(pred_slot, PackedSlot)
                else 0
            )
            missing = live & ~have
            for vector in bits_of(missing):
                # Copies inherit the source slot's backend: a RegSlot
                # source hands its arena along, a PackedSlot passes None.
                write_entry(
                    pred_node, metric, vector, bit, _entry_expiry(slot, vector),
                    arena=getattr(slot, "arena", None),
                )
                wrote += 1
        if wrote:
            cost.hops += 1
            cost.messages += 1
            cost.bytes += wrote * model.tuple_bytes
            cost.repair_writes += wrote
            dht.load.record(pred_id)


def stabilize(
    dht: DHTProtocol,
    replication: int,
    now: int = 0,
    size_model: Optional[SizeModel] = None,
    mapping: Optional[BitIntervalMap] = None,
) -> OpCost:
    """Rebuild successor replica chains after failures (one sweep).

    Every live node offers its live DHS entries to its first
    ``replication`` live successors, exactly like Chord's periodic
    stabilization hands off key ranges.  A node is treated as a chain's
    *primary* for the bits none of its ``replication`` live predecessors
    hold — copying only those keeps the chain length bounded at
    ``replication + 1`` across repeated sweeps instead of flooding the
    ring.  Each replica that receives writes costs one hop plus the
    copied tuple bytes; copies preserve the source expiry (immortal
    stays immortal, TTL'd bits age out on schedule).

    When the bit→interval ``mapping`` is supplied (the
    :meth:`~repro.core.dhs.DistributedHashSketch.stabilize` facade always
    passes it), the sweep first hands bits that spilled past their home
    interval back to it, so replicas masked by a crashed-and-rejoined
    primary become visible to the counting walk again (see
    :func:`_handoff_to_interval`).
    """
    cost = OpCost()
    if replication <= 0:
        return cost
    model = size_model if size_model is not None else DEFAULT_SIZE_MODEL
    if mapping is not None:
        _handoff_to_interval(dht, mapping, now, model, cost)
    for node_id in list(dht.node_ids()):
        if not dht.node_responsive(node_id):
            continue
        node = dht.node(node_id)
        slots = [
            (key, slot)
            for key, slot in node.store.items()
            if isinstance(slot, PackedSlot)
        ]
        if not slots:
            continue
        predecessors = _live_predecessors(dht, node_id, replication)
        successors = replica_chain(dht, node_id, replication)
        for replica_id in successors:
            if not dht.node_responsive(replica_id):
                continue
            replica = dht.node(replica_id)
            wrote = 0
            for slot_key, slot in slots:
                # DHS stores one PackedSlot per (metric, bit) key.
                metric, bit = cast(Tuple[Hashable, int], slot_key)
                live = slot.live_mask(now)
                if not live:
                    continue
                pred_mask = 0
                for pred_id in predecessors:
                    pred_slot = dht.node(pred_id).store.get(slot_key)
                    if isinstance(pred_slot, PackedSlot):
                        pred_mask |= pred_slot.live_mask(now)
                primary = live & ~pred_mask
                if not primary:
                    continue
                replica_slot = replica.store.get(slot_key)
                have = (
                    replica_slot.live_mask(now)
                    if isinstance(replica_slot, PackedSlot)
                    else 0
                )
                missing = primary & ~have
                for vector in bits_of(missing):
                    write_entry(
                        replica, metric, vector, bit, _entry_expiry(slot, vector),
                        arena=getattr(slot, "arena", None),
                    )
                    wrote += 1
            if wrote:
                cost.hops += 1
                cost.messages += 1
                cost.bytes += wrote * model.tuple_bytes
                cost.repair_writes += wrote
                dht.load.record(replica_id)
    return cost


def antientropy_sweep(
    dht: DHTProtocol,
    replication: int,
    now: int = 0,
    *,
    mapping: BitIntervalMap,
    size_model: Optional[SizeModel] = None,
    arena: Optional["RegArena"] = None,
    sample: Optional[int] = None,
    rng: Optional["random.Random"] = None,
) -> AntiEntropyStats:
    """One proactive anti-entropy round (digest exchange + OR-merge).

    This is the core-side glue for
    :func:`repro.overlay.antientropy.antientropy_round`: the overlay
    module cannot import the interval geometry or the store writer
    (layering), so both are injected here as closures — walk visibility
    uses the same in-interval-or-overflow-owner rule as
    :func:`_handoff_to_interval`, segments are the bit→interval mapping,
    and writes land on the deployment's storage backend via ``arena``.
    A no-op (empty stats) when replication is disabled: with no chains
    there is nothing to reconcile, and pushing copies would manufacture
    replication the configuration never asked for.
    """
    if replication <= 0:
        return AntiEntropyStats()
    model = size_model if size_model is not None else DEFAULT_SIZE_MODEL

    def visible(bit: int, node_id: int) -> bool:
        if not mapping.is_stored(bit):
            return True
        index = mapping.interval_index(bit)
        if mapping.contains(index, node_id):
            return True
        lo, hi = mapping.interval_for_index(index)
        return node_id == dht.owner_of(hi - 1)

    def segment_of(bit: int) -> int:
        return mapping.interval_index(bit) if mapping.is_stored(bit) else -1

    def write_fn(
        node: Node, metric: Hashable, vector: int, bit: int, expiry: Optional[int]
    ) -> None:
        write_entry(node, metric, vector, bit, expiry, arena=arena)

    return antientropy_round(
        dht,
        replication,
        now,
        model=model,
        visible=visible,
        segment_of=segment_of,
        write_fn=write_fn,
        rng=rng,
        sample=sample,
    )


def replica_divergence(dht: DHTProtocol, replication: int, now: int = 0) -> int:
    """Total replica-chain divergence, in missing (node, entry) copies.

    For every responsive node, the live bits it is primary for (none of
    its ``replication`` responsive predecessors hold them) should be
    present on each of its ``replication`` responsive chain successors;
    every absence counts one.  Zero in a converged network — insert-time
    replication covers chains, so no-fault runs sit at zero — and the
    soak experiment's central gauge: after a fault it spikes, and
    bounded anti-entropy rounds must drive it back to zero.
    """
    if replication <= 0:
        return 0
    total = 0
    for node_id in dht.responsive_node_ids():
        node = dht.node(node_id)
        slots = [
            (key, slot)
            for key, slot in node.store.items()
            if isinstance(slot, PackedSlot)
        ]
        if not slots:
            continue
        predecessors = live_predecessors(
            dht, node_id, replication, responsive_only=True
        )
        chain = replica_chain(dht, node_id, replication, responsive_only=True)
        if not chain:
            continue
        for slot_key, slot in slots:
            live = slot.live_mask(now)
            if not live:
                continue
            pred_mask = 0
            for pred_id in predecessors:
                pred_slot = dht.node(pred_id).store.get(slot_key)
                if isinstance(pred_slot, PackedSlot):
                    pred_mask |= pred_slot.live_mask(now)
            primary = live & ~pred_mask
            if not primary:
                continue
            for replica_id in chain:
                replica_slot = dht.node(replica_id).store.get(slot_key)
                have = (
                    replica_slot.live_mask(now)
                    if isinstance(replica_slot, PackedSlot)
                    else 0
                )
                total += (primary & ~have).bit_count()
    return total


@dataclass(frozen=True)
class MaintenanceConfig:
    """Cadences for the background maintenance plane (logical ticks).

    ``None`` (or 0) disables a duty; an ``every`` of ``k`` fires on
    every tick divisible by ``k`` (including tick 0 — drivers that want
    a quiet warm-up start their clock at 1).  ``antientropy_sample``
    caps the number of initiator nodes per anti-entropy round; peer
    selection is then seeded per tick by the scheduler, keeping runs
    replayable.
    """

    refresh_every: Optional[int] = None
    sweep_every: Optional[int] = None
    stabilize_every: Optional[int] = None
    antientropy_every: Optional[int] = None
    antientropy_sample: Optional[int] = None


@dataclass
class MaintenanceReport:
    """What one scheduler tick did."""

    tick: int
    cost: OpCost = field(default_factory=OpCost)
    refreshed: bool = False
    swept: int = 0
    antientropy: Optional[AntiEntropyStats] = None


class MaintenanceScheduler:
    """Deterministic maintenance driver on the logical clock.

    Interleaves the four background duties in a fixed order each tick —
    refresh, sweep, stabilize, anti-entropy — so a run is a pure
    function of (initial state, fault plan, seed).  The refresh duty is
    a caller-supplied callback (only the data owners know which items
    are still live); the other three go through the
    :class:`~repro.core.dhs.DistributedHashSketch` facade.
    """

    def __init__(
        self,
        dhs: "DistributedHashSketch",
        config: MaintenanceConfig,
        seed: int = 0,
        refresh_fn: Optional[Callable[[int], OpCost]] = None,
    ) -> None:
        self.dhs = dhs
        self.config = config
        self.seed = seed
        self.refresh_fn = refresh_fn

    @staticmethod
    def _due(every: Optional[int], now: int) -> bool:
        return every is not None and every > 0 and now % every == 0

    def tick(self, now: int) -> MaintenanceReport:
        """Run every duty due at ``now``; returns what happened."""
        config = self.config
        report = MaintenanceReport(tick=now)
        if self.refresh_fn is not None and self._due(config.refresh_every, now):
            report.cost.add(self.refresh_fn(now))
            report.refreshed = True
        if self._due(config.sweep_every, now):
            report.swept = self.dhs.sweep_expired(now)
        if self._due(config.stabilize_every, now):
            report.cost.add(self.dhs.stabilize(now))
        if self._due(config.antientropy_every, now):
            rng = (
                rng_for(self.seed, "antientropy", now)
                if config.antientropy_sample
                else None
            )
            stats = self.dhs.antientropy(
                now, sample=config.antientropy_sample, rng=rng
            )
            report.antientropy = stats
            report.cost.add(stats.cost)
        return report
