"""Soft-state maintenance (paper section 3.3).

DHS deletion is implicit: every stored bit carries a time-out, and a bit
that is not refreshed within its TTL ages out — so deleting items costs
nothing.  Data owners periodically re-insert (refresh) their live items;
the TTL choice trades maintenance bandwidth against adaptation speed to
fluctuations, exactly the trade-off the paper discusses.

Time is a logical integer clock owned by the caller (the simulation
kit); nothing here reads wall-clock time.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Optional, Tuple, cast

from repro.core.insert import Inserter
from repro.core.mapping import BitIntervalMap
from repro.core.tuples import PackedSlot, bits_of, purge_expired, write_entry
from repro.overlay.dht import DHTProtocol
from repro.overlay.messages import DEFAULT_SIZE_MODEL, SizeModel
from repro.overlay.replication import replica_chain
from repro.overlay.stats import OpCost

__all__ = ["refresh", "stabilize", "sweep_expired"]


def refresh(
    inserter: Inserter,
    metric_id: Hashable,
    items: Iterable[Any],
    origin: Optional[int] = None,
    now: int = 0,
) -> OpCost:
    """Re-insert (refresh) live items, resetting their time-outs.

    Refreshing is literally re-insertion: matching entries get their
    expiry bumped, missing ones are re-created (e.g. after a crash).
    """
    return inserter.insert_bulk(metric_id, items, origin=origin, now=now)


def sweep_expired(dht: DHTProtocol, now: int) -> int:
    """Purge expired entries from every live node; returns entries freed.

    In a real deployment each node sweeps its own store locally; the
    simulation does it in one pass.  Counting already ignores expired
    entries, so sweeping only reclaims storage.
    """
    removed = 0
    for node_id in list(dht.node_ids()):
        removed += purge_expired(dht.node(node_id), now)
    return removed


def _live_predecessors(dht: DHTProtocol, node_id: int, degree: int) -> list[int]:
    """The first ``degree`` live predecessors (mirror of replica_chain)."""
    preds: list[int] = []
    current = node_id
    for _ in range(dht.size):
        if len(preds) >= degree:
            break
        current = dht.predecessor_id(current)
        if current == node_id:
            break
        if dht.is_alive(current):
            preds.append(current)
    return preds


def _entry_expiry(slot: PackedSlot, vector: int) -> Optional[int]:
    """Source expiry of ``vector`` in ``slot`` (``None`` = immortal)."""
    if (slot.mask >> vector) & 1:
        return None
    raw = (slot.expiring or {}).get(vector)
    return int(raw) if raw is not None else None


def _handoff_to_interval(
    dht: DHTProtocol,
    mapping: BitIntervalMap,
    now: int,
    model: SizeModel,
    cost: OpCost,
) -> None:
    """Return replica bits that spilled past their home interval.

    Insert-time replicas live on the primary's ring successors, which
    for keys near an interval's upper end sit *outside* the interval —
    where the counting walk never looks.  The walk's reach for interval
    ``[lo, hi)`` is exactly the in-interval nodes plus the one overflow
    owner (the node owning key ``hi - 1``, which owns every in-interval
    key when the interval is empty of nodes).  While the primary is
    alive a spilled replica is harmless — the walk reads the primary —
    but a crashed-and-rejoined primary comes back empty and masks its
    replicas: the bits survive globally yet the count confidently
    under-reads.  Mirroring Chord's key handoff to a rejoined owner,
    each holder the walk cannot see offers such bits to its first live
    predecessor when that predecessor *is* visible.  The migration is
    bounded: once a visible node holds the bits, ``missing`` is empty
    and later sweeps are free.
    """

    def visible(index: int, node_id: int) -> bool:
        if mapping.contains(index, node_id):
            return True
        lo, hi = mapping.interval_for_index(index)
        return node_id == dht.owner_of(hi - 1)

    for node_id in list(dht.node_ids()):
        if not dht.node_responsive(node_id):
            continue
        node = dht.node(node_id)
        slots = [
            (key, slot)
            for key, slot in node.store.items()
            if isinstance(slot, PackedSlot)
        ]
        if not slots:
            continue
        predecessors = _live_predecessors(dht, node_id, 1)
        if not predecessors:
            continue
        pred_id = predecessors[0]
        if not dht.node_responsive(pred_id):
            continue
        pred_node = dht.node(pred_id)
        wrote = 0
        for slot_key, slot in slots:
            metric, bit = cast(Tuple[Hashable, int], slot_key)
            if not mapping.is_stored(bit):
                continue
            index = mapping.interval_index(bit)
            if visible(index, node_id):
                continue  # the walk already reaches this holder
            if not visible(index, pred_id):
                continue  # predecessor is no closer to the walk's reach
            live = slot.live_mask(now)
            if not live:
                continue
            pred_slot = pred_node.store.get(slot_key)
            have = (
                pred_slot.live_mask(now)
                if isinstance(pred_slot, PackedSlot)
                else 0
            )
            missing = live & ~have
            for vector in bits_of(missing):
                # Copies inherit the source slot's backend: a RegSlot
                # source hands its arena along, a PackedSlot passes None.
                write_entry(
                    pred_node, metric, vector, bit, _entry_expiry(slot, vector),
                    arena=getattr(slot, "arena", None),
                )
                wrote += 1
        if wrote:
            cost.hops += 1
            cost.messages += 1
            cost.bytes += wrote * model.tuple_bytes
            cost.repair_writes += wrote
            dht.load.record(pred_id)


def stabilize(
    dht: DHTProtocol,
    replication: int,
    now: int = 0,
    size_model: Optional[SizeModel] = None,
    mapping: Optional[BitIntervalMap] = None,
) -> OpCost:
    """Rebuild successor replica chains after failures (one sweep).

    Every live node offers its live DHS entries to its first
    ``replication`` live successors, exactly like Chord's periodic
    stabilization hands off key ranges.  A node is treated as a chain's
    *primary* for the bits none of its ``replication`` live predecessors
    hold — copying only those keeps the chain length bounded at
    ``replication + 1`` across repeated sweeps instead of flooding the
    ring.  Each replica that receives writes costs one hop plus the
    copied tuple bytes; copies preserve the source expiry (immortal
    stays immortal, TTL'd bits age out on schedule).

    When the bit→interval ``mapping`` is supplied (the
    :meth:`~repro.core.dhs.DistributedHashSketch.stabilize` facade always
    passes it), the sweep first hands bits that spilled past their home
    interval back to it, so replicas masked by a crashed-and-rejoined
    primary become visible to the counting walk again (see
    :func:`_handoff_to_interval`).
    """
    cost = OpCost()
    if replication <= 0:
        return cost
    model = size_model if size_model is not None else DEFAULT_SIZE_MODEL
    if mapping is not None:
        _handoff_to_interval(dht, mapping, now, model, cost)
    for node_id in list(dht.node_ids()):
        if not dht.node_responsive(node_id):
            continue
        node = dht.node(node_id)
        slots = [
            (key, slot)
            for key, slot in node.store.items()
            if isinstance(slot, PackedSlot)
        ]
        if not slots:
            continue
        predecessors = _live_predecessors(dht, node_id, replication)
        successors = replica_chain(dht, node_id, replication)
        for replica_id in successors:
            if not dht.node_responsive(replica_id):
                continue
            replica = dht.node(replica_id)
            wrote = 0
            for slot_key, slot in slots:
                # DHS stores one PackedSlot per (metric, bit) key.
                metric, bit = cast(Tuple[Hashable, int], slot_key)
                live = slot.live_mask(now)
                if not live:
                    continue
                pred_mask = 0
                for pred_id in predecessors:
                    pred_slot = dht.node(pred_id).store.get(slot_key)
                    if isinstance(pred_slot, PackedSlot):
                        pred_mask |= pred_slot.live_mask(now)
                primary = live & ~pred_mask
                if not primary:
                    continue
                replica_slot = replica.store.get(slot_key)
                have = (
                    replica_slot.live_mask(now)
                    if isinstance(replica_slot, PackedSlot)
                    else 0
                )
                missing = primary & ~have
                for vector in bits_of(missing):
                    write_entry(
                        replica, metric, vector, bit, _entry_expiry(slot, vector),
                        arena=getattr(slot, "arena", None),
                    )
                    wrote += 1
            if wrote:
                cost.hops += 1
                cost.messages += 1
                cost.bytes += wrote * model.tuple_bytes
                cost.repair_writes += wrote
                dht.load.record(replica_id)
    return cost
