"""Soft-state maintenance (paper section 3.3).

DHS deletion is implicit: every stored bit carries a time-out, and a bit
that is not refreshed within its TTL ages out — so deleting items costs
nothing.  Data owners periodically re-insert (refresh) their live items;
the TTL choice trades maintenance bandwidth against adaptation speed to
fluctuations, exactly the trade-off the paper discusses.

Time is a logical integer clock owned by the caller (the simulation
kit); nothing here reads wall-clock time.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Optional

from repro.core.insert import Inserter
from repro.core.tuples import purge_expired
from repro.overlay.dht import DHTProtocol
from repro.overlay.stats import OpCost

__all__ = ["refresh", "sweep_expired"]


def refresh(
    inserter: Inserter,
    metric_id: Hashable,
    items: Iterable[Any],
    origin: Optional[int] = None,
    now: int = 0,
) -> OpCost:
    """Re-insert (refresh) live items, resetting their time-outs.

    Refreshing is literally re-insertion: matching entries get their
    expiry bumped, missing ones are re-created (e.g. after a crash).
    """
    return inserter.insert_bulk(metric_id, items, origin=origin, now=now)


def sweep_expired(dht: DHTProtocol, now: int) -> int:
    """Purge expired entries from every live node; returns entries freed.

    In a real deployment each node sweeps its own store locally; the
    simulation does it in one pass.  Counting already ignores expired
    entries, so sweeping only reclaims storage.
    """
    removed = 0
    for node_id in list(dht.node_ids()):
        removed += purge_expired(dht.node(node_id), now)
    return removed
