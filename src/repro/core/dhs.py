"""The Distributed Hash Sketch facade — the library's main entry point.

Composes an overlay, a :class:`~repro.core.config.DHSConfig`, the
bit↦interval mapping, and the insertion/counting engines into the
public API a downstream user works with::

    from repro import ChordRing, DHSConfig, DistributedHashSketch

    ring = ChordRing.build(1024, seed=7)
    dhs = DistributedHashSketch(ring, DHSConfig(num_bitmaps=512))
    dhs.insert_bulk("documents", doc_ids)
    result = dhs.count("documents")
    print(result.estimate(), result.cost.hops)
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Any, Callable, Dict, Hashable, Iterable, List, Optional, Sequence

if TYPE_CHECKING:  # annotation only
    import random

    from repro.overlay.antientropy import AntiEntropyStats

import numpy as np
import numpy.typing as npt

from repro.core.config import DHSConfig
from repro.core.count import Counter, CountResult
from repro.core.insert import Inserter
from repro.core.mapping import BitIntervalMap
from repro.core.maintenance import (
    MaintenanceConfig,
    MaintenanceScheduler,
    antientropy_sweep,
    refresh,
    replica_divergence,
    stabilize,
    sweep_expired,
)
from repro.core.policy import DEFAULT_POLICY, RetryPolicy
from repro.core.regstore import RegArena
from repro.core.tuples import merge_store_values, storage_entries
from repro.overlay.dht import DHTProtocol
from repro.overlay.stats import OpCost
from repro.sketches.base import HashSketch
from repro.sketches.merge import union_all
from repro.sketches.setops import estimate_intersection

__all__ = ["DistributedHashSketch"]


class DistributedHashSketch:
    """A DHS deployment over an arbitrary DHT overlay.

    Parameters
    ----------
    dht:
        Any :class:`~repro.overlay.dht.DHTProtocol` (Chord, Kademlia...).
        The overlay's graceful-leave merge hook is installed so DHS
        entries survive node departures correctly.
    config:
        The deployment parameters; defaults reproduce the paper's setup.
    seed:
        Master seed for the random target-key choices of insertion and
        counting.
    policy:
        The :class:`~repro.core.policy.RetryPolicy` applied to every
        insert store and counting lookup/probe.  The default performs no
        retries and leaves fault-free runs byte-identical.
    """

    def __init__(
        self,
        dht: DHTProtocol,
        config: Optional[DHSConfig] = None,
        seed: int = 0,
        policy: RetryPolicy = DEFAULT_POLICY,
    ) -> None:
        self.dht = dht
        self.config = config or DHSConfig()
        self.policy = policy
        self.seed = seed
        self.mapping = BitIntervalMap(dht.space, self.config)
        self.hash_family = self.config.hash_family(dht.space.bits)
        #: Register arena of the ``store="array"`` backend; ``None``
        #: selects the per-object ``PackedSlot`` reference backend.
        self.arena: Optional[RegArena] = (
            RegArena(self.config.num_bitmaps) if self.config.store == "array" else None
        )
        self._inserter = Inserter(
            dht, self.config, self.mapping, self.hash_family, seed,
            policy=policy, arena=self.arena,
        )
        self._counter = Counter(
            dht, self.config, self.mapping, self.hash_family, seed,
            policy=policy, arena=self.arena,
        )
        dht.store_merge = merge_store_values

    # ------------------------------------------------------------------
    # Writing.
    # ------------------------------------------------------------------
    def insert(
        self,
        metric_id: Hashable,
        item: Any,
        origin: Optional[int] = None,
        now: int = 0,
    ) -> OpCost:
        """Record one item under a metric; returns the op cost."""
        return self._inserter.insert(metric_id, item, origin=origin, now=now)

    def insert_many(
        self,
        metric_id: Hashable,
        items: Iterable[Any],
        origin: Optional[int] = None,
        now: int = 0,
    ) -> OpCost:
        """Record items one DHT store at a time (cost-faithful path)."""
        return self._inserter.insert_many(metric_id, items, origin=origin, now=now)

    def insert_bulk(
        self,
        metric_id: Hashable,
        items: Iterable[Any],
        origin: Optional[int] = None,
        now: int = 0,
    ) -> OpCost:
        """Record items grouped by interval (<= k stores total)."""
        return self._inserter.insert_bulk(metric_id, items, origin=origin, now=now)

    def insert_array(
        self,
        metric_id: Hashable,
        item_ids: "npt.NDArray[np.int64]",
        origin: Optional[int] = None,
        now: int = 0,
    ) -> OpCost:
        """Vectorized :meth:`insert_bulk` over an array of item ids.

        Hashes the whole array in one numpy pass and performs the same
        per-interval stores (same costs, same stored tuples) as the
        scalar bulk path — the fast lane for multi-million-item
        workloads (see docs/PERFORMANCE.md).
        """
        return self._inserter.insert_array(metric_id, item_ids, origin=origin, now=now)

    def refresh(
        self,
        metric_id: Hashable,
        items: Iterable[Any],
        origin: Optional[int] = None,
        now: int = 0,
    ) -> OpCost:
        """Refresh the soft state of live items (section 3.3)."""
        return refresh(self._inserter, metric_id, items, origin=origin, now=now)

    # ------------------------------------------------------------------
    # Counting.
    # ------------------------------------------------------------------
    def count(
        self,
        metric_id: Hashable,
        origin: Optional[int] = None,
        now: int = 0,
        expected_items: Optional[float] = None,
    ) -> CountResult:
        """Estimate the distinct-item count of one metric.

        ``expected_items`` feeds the ``eq6`` adaptive probe-budget policy
        (ignored under the default fixed policy).
        """
        return self._counter.count(
            metric_id, origin=origin, now=now, expected_items=expected_items
        )

    def count_many(
        self,
        metric_ids: Sequence[Hashable],
        origin: Optional[int] = None,
        now: int = 0,
        expected_items: Optional[float] = None,
    ) -> CountResult:
        """Estimate several metrics in one scan (multi-dimension count)."""
        return self._counter.count_many(
            metric_ids, origin=origin, now=now, expected_items=expected_items
        )

    # ------------------------------------------------------------------
    # Set expressions over metrics (union is exact sketch merge;
    # intersection via inclusion-exclusion — see repro.sketches.setops).
    # ------------------------------------------------------------------
    def count_union(
        self,
        metric_ids: Sequence[Hashable],
        origin: Optional[int] = None,
        now: int = 0,
    ) -> float:
        """Estimate ``|M1 ∪ M2 ∪ ...|`` with a single scan.

        The per-metric sketches are reconstructed once and merged
        locally — union costs nothing extra on the network.
        """
        result = self.count_many(metric_ids, origin=origin, now=now)
        return union_all(list(result.sketches.values())).estimate()

    def count_intersection(
        self,
        metric_a: Hashable,
        metric_b: Hashable,
        origin: Optional[int] = None,
        now: int = 0,
    ) -> float:
        """Estimate ``|A ∩ B|`` via inclusion-exclusion (one scan).

        Subject to the usual sketch caveat: absolute error scales with
        the sizes of the operands, not of the intersection.
        """
        result = self.count_many([metric_a, metric_b], origin=origin, now=now)
        return estimate_intersection(
            result.sketches[metric_a], result.sketches[metric_b]
        )

    # ------------------------------------------------------------------
    # Zero-copy shared-memory parallelism (DHS_JOBS).
    # ------------------------------------------------------------------
    def share_arena(self) -> Optional[str]:
        """Migrate the register arena into shared memory; returns its name.

        Idempotent; ``None`` on the packed backend (nothing to share).
        Forked workers attach the segment by name and read the same
        physical pages — see :mod:`repro.core.shared`.
        """
        if self.arena is None:
            return None
        return self.arena.migrate_to_shared()

    def count_parallel(
        self,
        metric_ids: Sequence[Hashable],
        now: int = 0,
        jobs: Optional[int] = None,
    ) -> List[CountResult]:
        """Count several metrics concurrently (one worker per chunk).

        Results are bit-identical to counting the metrics one
        :meth:`count` call at a time with per-metric derived seeds — at
        any worker count, including the inline ``jobs=1`` path.  See
        :func:`repro.core.shared.count_parallel`.
        """
        from repro.core.shared import count_parallel

        return count_parallel(self, metric_ids, now=now, jobs=jobs)

    def insert_array_parallel(
        self,
        metric_id: Hashable,
        item_ids: "npt.NDArray[np.int64]",
        origin: Optional[int] = None,
        now: int = 0,
        jobs: Optional[int] = None,
    ) -> OpCost:
        """Parallel :meth:`insert_array`: workers hash and pack chunk
        deltas into shared-memory arenas, the parent tree-merges them
        and performs the stores — bit-identical to the serial path.
        See :func:`repro.core.shared.insert_array_parallel`."""
        from repro.core.shared import insert_array_parallel

        return insert_array_parallel(
            self, metric_id, item_ids, origin=origin, now=now, jobs=jobs
        )

    # ------------------------------------------------------------------
    # Network-property metrics (section 3.2: "basic network parameters
    # such as the cardinality of the node population").
    # ------------------------------------------------------------------
    #: Reserved metric id under which nodes register themselves.
    NODE_POPULATION_METRIC = ("__dhs__", "nodes")

    def register_nodes(self, now: int = 0) -> OpCost:
        """Have every live node record itself (for population counting).

        In a real deployment each node does this on join and on every
        refresh round; the simulation performs one sweep.
        """
        total = OpCost()
        for node_id in list(self.dht.node_ids()):
            total.add(
                self.insert(self.NODE_POPULATION_METRIC, node_id, origin=node_id, now=now)
            )
        return total

    def count_nodes(self, origin: Optional[int] = None, now: int = 0) -> CountResult:
        """Estimate the live-node population (after :meth:`register_nodes`)."""
        return self.count(self.NODE_POPULATION_METRIC, origin=origin, now=now)

    # ------------------------------------------------------------------
    # Maintenance and introspection.
    # ------------------------------------------------------------------
    def sweep_expired(self, now: int) -> int:
        """Purge aged-out entries network-wide; returns entries freed."""
        return sweep_expired(self.dht, now)

    def stabilize(self, now: int = 0) -> OpCost:
        """Rebuild successor replica chains after failures (one sweep).

        A no-op (zero cost) when replication is disabled; see
        :func:`repro.core.maintenance.stabilize`.
        """
        return stabilize(
            self.dht,
            self.config.replication,
            now=now,
            size_model=self.config.size_model,
            mapping=self.mapping,
        )

    def antientropy(
        self,
        now: int = 0,
        *,
        sample: Optional[int] = None,
        rng: Optional["random.Random"] = None,
    ) -> "AntiEntropyStats":
        """One proactive anti-entropy round over the replica chains.

        Digest-tree exchange plus OR-merge between every responsive node
        and its chain successors; a no-op (empty stats) when replication
        is disabled.  ``sample`` with a seeded ``rng`` limits the round
        to a subset of initiators.  See
        :func:`repro.core.maintenance.antientropy_sweep`.
        """
        return antientropy_sweep(
            self.dht,
            self.config.replication,
            now,
            mapping=self.mapping,
            size_model=self.config.size_model,
            arena=self.arena,
            sample=sample,
            rng=rng,
        )

    def replica_divergence(self, now: int = 0) -> int:
        """Missing replica copies across all chains (0 when converged)."""
        return replica_divergence(self.dht, self.config.replication, now)

    def make_scheduler(
        self,
        config: MaintenanceConfig,
        seed: Optional[int] = None,
        refresh_fn: Optional[Callable[[int], OpCost]] = None,
    ) -> MaintenanceScheduler:
        """A deterministic maintenance driver bound to this deployment."""
        return MaintenanceScheduler(
            self,
            config,
            seed=self.seed if seed is None else seed,
            refresh_fn=refresh_fn,
        )

    def storage_per_node(self) -> Dict[int, int]:
        """DHS entries stored at each live node.

        Unmaterialized members (lazy membership at N=10^5–10^6) have by
        construction never been written to, so they count as 0 entries
        without being materialized — the full map stays O(N) ints, not
        O(N) node objects.
        """
        result: Dict[int, int] = {}
        for node_id in self.dht.node_ids():
            node = self.dht.node_if_materialized(node_id)
            result[node_id] = 0 if node is None else storage_entries(node)
        return result

    def storage_bytes_per_node(self) -> Dict[int, float]:
        """Approximate stored bytes per node (entries × tuple size)."""
        tuple_bytes = self.config.size_model.tuple_bytes
        return {
            node_id: entries * tuple_bytes
            for node_id, entries in self.storage_per_node().items()
        }

    def local_sketch(self, items: Iterable[Any]) -> HashSketch:
        """A centralized reference sketch over ``items`` (ground truth).

        Uses the same hash family and parameters, so a lossless
        distributed count reconstructs exactly this sketch's state.
        """
        sketch = self.config.make_sketch(self.hash_family)
        sketch.add_all(items)
        return sketch

    def interval_node_counts(self) -> List[int]:
        """Live nodes per id-space interval (for load diagnostics)."""
        counts = []
        for index in range(self.mapping.num_intervals):
            lo, hi = self.mapping.interval_for_index(index)
            ids = self.dht.node_ids()
            counts.append(bisect.bisect_left(ids, hi) - bisect.bisect_left(ids, lo))
        return counts
