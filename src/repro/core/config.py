"""DHS configuration.

Bundles every knob section 3 and 5.1 of the paper expose: DHS key length
``k``, number of bitmap vectors ``m``, the estimator variant, the retry
limit ``lim``, the replication degree ``R``, the fault-tolerance bit
shift ``b``, and soft-state TTLs.  The defaults reproduce the paper's
evaluation setup (k = 24, m = 512, lim = 5, super-LogLog).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.hashing.family import HashFamily, MD4Hash, default_hash_family
from repro.overlay.messages import SizeModel
from repro.sketches import SKETCH_TYPES
from repro.sketches.base import HashSketch

__all__ = ["DHSConfig", "DEFAULT_LIM"]

#: The paper's default probe limit per id-space interval (section 4.1).
DEFAULT_LIM = 5


@dataclass
class DHSConfig:
    """Parameters of one Distributed Hash Sketch deployment.

    Attributes
    ----------
    key_bits:
        The paper's ``k``: DHS keys use the ``k`` low-order bits of the
        DHT keys (k <= L).  24 in the evaluation (counts up to ~16M).
    num_bitmaps:
        The paper's ``m``: number of bitmap vectors; power of two.
    estimator:
        ``"sll"`` (super-LogLog), ``"pcsa"``, or the extension estimators
        ``"loglog"`` / ``"hll"``.
    lim:
        Max nodes probed per id-space interval during counting (the
        constant-``lim`` policy; also the hard cap for the eq6 policy).
    lim_policy:
        ``"fixed"`` probes up to ``lim`` nodes everywhere (the paper's
        default).  ``"eq6"`` sizes the budget per interval from eq. 6,
        using a prior cardinality estimate (supplied per count, else a
        bootstrap fixed-``lim`` pass) — the adaptive variant section 4.1
        sketches for small-cardinality sets.
    lim_target_p:
        Per-interval success probability the eq6 policy aims for.
    replication:
        The paper's ``R``: number of successor replicas per set bit
        (0 disables replication).
    read_repair:
        When true (and ``replication > 0``), a counting probe that finds
        a set bit re-writes it onto successor replicas that lost their
        copy (crash, amnesia rejoin).  Each repaired replica costs one
        hop and the tuple bytes, charged to the count (see
        docs/ROBUSTNESS.md).
    bit_shift:
        The paper's ``b`` (section 3.5): the first ``b`` bit positions
        are assumed set and never stored, so position ``r`` maps to the
        (2^b-times larger) interval of position ``r - b``.  Only sound
        when measured cardinalities exceed ``2^b`` per bitmap.
    ttl:
        Soft-state lifetime of a stored bit in logical time units;
        ``None`` disables expiry.
    hash_seed:
        Seed of the item-hash family (pseudo-uniform hash ``h``).
    hash_family_name:
        ``"mixer"`` (splitmix64, default) or ``"md4"`` — the paper's own
        evaluation hash, byte-compatible with RFC 1320.
    store:
        Node-store backend.  ``"array"`` (default) keeps immortal bitmap
        masks in one contiguous :class:`~repro.core.regstore.RegArena`
        row per ``(metric, bit)`` slot — vectorized bulk writes, fast
        probe walks, and zero-copy shared-memory parallel counting.
        ``"packed"`` is the plain per-object :class:`PackedSlot`
        reference backend; both store bit-identical logical state (see
        tests/core/test_regstore.py).
    """

    key_bits: int = 24
    num_bitmaps: int = 512
    estimator: str = "sll"
    lim: int = DEFAULT_LIM
    lim_policy: str = "fixed"
    lim_target_p: float = 0.99
    replication: int = 0
    read_repair: bool = False
    bit_shift: int = 0
    ttl: Optional[int] = None
    hash_seed: int = 0
    hash_family_name: str = "mixer"
    store: str = "array"
    size_model: SizeModel = field(default_factory=SizeModel)

    def __post_init__(self) -> None:
        if self.num_bitmaps < 1 or self.num_bitmaps & (self.num_bitmaps - 1):
            raise ConfigurationError(
                f"num_bitmaps must be a positive power of two, got {self.num_bitmaps}"
            )
        if self.estimator not in SKETCH_TYPES:
            raise ConfigurationError(
                f"unknown estimator {self.estimator!r}; choose from {sorted(SKETCH_TYPES)}"
            )
        if self.key_bits <= self.selector_bits:
            raise ConfigurationError(
                f"key_bits ({self.key_bits}) must exceed log2(num_bitmaps) "
                f"({self.selector_bits})"
            )
        if self.lim < 1:
            raise ConfigurationError(f"lim must be >= 1, got {self.lim}")
        if self.lim_policy not in ("fixed", "eq6"):
            raise ConfigurationError(
                f"lim_policy must be 'fixed' or 'eq6', got {self.lim_policy!r}"
            )
        if not 0 < self.lim_target_p < 1:
            raise ConfigurationError(
                f"lim_target_p must be in (0, 1), got {self.lim_target_p}"
            )
        if self.replication < 0:
            raise ConfigurationError(f"replication must be >= 0, got {self.replication}")
        if self.read_repair and self.replication < 1:
            raise ConfigurationError(
                "read_repair needs replication >= 1 (there is nothing to repair)"
            )
        if not 0 <= self.bit_shift < self.position_bits:
            raise ConfigurationError(
                f"bit_shift must be in [0, position_bits={self.position_bits}), "
                f"got {self.bit_shift}"
            )
        if self.ttl is not None and self.ttl < 1:
            raise ConfigurationError(f"ttl must be >= 1 or None, got {self.ttl}")
        if self.hash_family_name not in ("mixer", "md4"):
            raise ConfigurationError(
                f"hash_family_name must be 'mixer' or 'md4', "
                f"got {self.hash_family_name!r}"
            )
        if self.store not in ("array", "packed"):
            raise ConfigurationError(
                f"store must be 'array' or 'packed', got {self.store!r}"
            )

    @property
    def selector_bits(self) -> int:
        """``c = log2(m)``: low-order key bits selecting the bitmap."""
        return self.num_bitmaps.bit_length() - 1

    @property
    def position_bits(self) -> int:
        """Usable bit positions per bitmap (``k - c``)."""
        return self.key_bits - self.selector_bits

    @property
    def max_supported_cardinality(self) -> int:
        """Largest cardinality eq. 3 sanctions for this (k, m).

        Inverting ``H0 = log m + ceil(log(n/m) + 3)``:
        ``n_max = m * 2^(position_bits - 3)``.  Counting beyond this
        saturates bitmaps and biases estimates low (the paper's own
        evaluation config exceeds it for relation T — see
        EXPERIMENTS.md).
        """
        return self.num_bitmaps * (1 << max(0, self.position_bits - 3))

    def supports_cardinality(self, n_max: int) -> bool:
        """Whether eq. 3 holds for cardinalities up to ``n_max``."""
        return n_max <= self.max_supported_cardinality

    def hash_family(self, bits: int) -> HashFamily:
        """The item-hash family for an overlay with ``bits``-bit ids."""
        if self.hash_family_name == "md4":
            return MD4Hash(bits=max(64, bits), seed=self.hash_seed)
        return default_hash_family(bits=max(64, bits), seed=self.hash_seed)

    def sketch_class(self) -> type[HashSketch]:
        """The estimator class backing this configuration."""
        return SKETCH_TYPES[self.estimator]

    def make_sketch(self, hash_family: HashFamily) -> HashSketch:
        """An empty local sketch with this configuration's parameters."""
        return self.sketch_class()(
            m=self.num_bitmaps, key_bits=self.key_bits, hash_family=hash_family
        )

    def expiry(self, now: int) -> Optional[int]:
        """Expiry timestamp of a bit written at ``now`` (None = never)."""
        if self.ttl is None:
            return None
        return now + self.ttl
