"""Simulation kit: deterministic seeds, cost metrics, experiment runners."""

from repro.sim.seeds import derive_seed, rng_for, spawn_seeds

__all__ = ["derive_seed", "rng_for", "spawn_seeds"]
