"""Simulation kit: deterministic seeds, cost metrics, experiment runners."""

from repro.sim.parallel import TrialSpec, env_jobs, run_trials
from repro.sim.seeds import derive_seed, rng_for, spawn_seeds

__all__ = [
    "TrialSpec",
    "derive_seed",
    "env_jobs",
    "rng_for",
    "run_trials",
    "spawn_seeds",
]
