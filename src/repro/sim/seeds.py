"""Deterministic randomness management.

Every stochastic component in the library draws from a ``random.Random``
obtained through :func:`rng_for`, so a single master seed reproduces an
entire experiment bit-for-bit.  Sub-streams are labelled with strings
(``rng_for(seed, "overlay", "join")``), which keeps independent components
statistically decoupled without manual seed bookkeeping.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.hashing.mixers import mix_with_seed

__all__ = ["derive_seed", "rng_for", "spawn_seeds"]

_LABEL_SALT = 0x5DEECE66D


def derive_seed(master: int, *labels: object) -> int:
    """Derive a 64-bit sub-seed from ``master`` and a label path.

    Labels may be strings or integers; the derivation is stable across
    processes and Python versions (no reliance on ``hash()``).
    """
    state = mix_with_seed(master, _LABEL_SALT)
    for label in labels:
        if isinstance(label, int):
            piece = label
        elif isinstance(label, str):
            piece = 0
            for ch in label:
                piece = (piece * 131 + ord(ch)) & 0xFFFFFFFFFFFFFFFF
        else:
            raise TypeError(f"seed labels must be str or int, got {type(label).__name__}")
        state = mix_with_seed(state ^ piece, _LABEL_SALT)
    return state


def rng_for(master: int, *labels: object) -> random.Random:
    """Return a ``random.Random`` seeded for the given label path."""
    return random.Random(derive_seed(master, *labels))


def spawn_seeds(master: int, count: int, *labels: object) -> Iterable[int]:
    """Yield ``count`` independent sub-seeds under the given label path."""
    for i in range(count):
        yield derive_seed(master, *labels, i)
