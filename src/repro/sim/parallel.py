"""Process-parallel trial runner for the experiment drivers.

Every experiment in :mod:`repro.experiments` evaluates a grid of
independent ``(config, trial)`` cells.  Instead of looping inline, a
driver declares one picklable :class:`TrialSpec` per cell and hands the
list to :func:`run_trials`, which either runs them in-process (the
default) or fans them across a ``ProcessPoolExecutor``.

Determinism contract
--------------------
Parallel results are **bit-identical to the serial run** regardless of
worker count or scheduling order.  This holds because:

* a trial is fully determined by ``(fn, seed, kwargs)`` — the worker
  receives everything it needs and shares no mutable state with other
  trials or with the parent process;
* every random stream inside a trial must be derived from ``spec.seed``
  via :func:`repro.sim.seeds.derive_seed` / ``rng_for`` label paths
  (never from global state, ``hash()``, or the process id) — dhslint
  rule DHS502 enforces this at the call sites;
* results are collected in **submission order**, not completion order.

Drivers whose trials share a sequential RNG stream across cells (e.g.
``multidim``, which advances one ``Counter`` over every metric batch)
cannot be split without changing their output and deliberately stay
serial.

``DHS_JOBS`` (default 1) selects the pool width when the caller does not
pass ``jobs`` explicitly; ``DHS_JOBS=1`` short-circuits to a plain
in-process loop, so the serial path is byte-for-byte the pre-harness
behaviour.

Metrics capture
---------------
When :mod:`repro.obs` metering is active, every trial runs against a
**fresh** :class:`~repro.obs.metrics.MetricsRegistry` and its snapshot
is merged into the caller's registry in spec order — in the serial path
and the parallel path alike.  Using the same capture-and-merge sequence
on both paths is what makes ``snapshot()`` bit-identical at any
``DHS_JOBS`` width even for float-valued counters, whose addition is
order-sensitive (tests/obs/test_parallel_metrics.py pins this).
Span tracing does not cross process boundaries: traced runs (the golden
trace, ``repro.cli trace``) run serially by convention.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, List, Mapping, Optional, Sequence, Tuple

from repro.obs import runtime as obs
from repro.obs.metrics import MetricsRegistry, Snapshot

__all__ = ["TrialSpec", "env_jobs", "fork_map", "run_trials"]


@dataclass(frozen=True)
class TrialSpec:
    """One independent experiment cell.

    ``fn`` must be a module-level callable (picklable by reference) and
    is invoked as ``fn(seed=seed, **kwargs)``.  All randomness inside the
    trial must flow from ``seed`` through ``derive_seed`` label paths so
    the cell's result is a pure function of this spec.
    """

    fn: Callable[..., Any]
    seed: int
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""


def env_jobs(default: int = 1) -> int:
    """Worker count from ``DHS_JOBS`` (default 1 = serial)."""
    return int(os.environ.get("DHS_JOBS", default))


def fork_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: Optional[int] = None,
) -> List[Any]:
    """Order-preserving ``fork``-pool map for module-level functions.

    The fan-out primitive behind :mod:`repro.core.shared`'s zero-copy
    workers: ``fn`` must be a module-level callable (picklable by
    reference), and because workers are **forked** they inherit any
    module-global context the caller installed immediately before the
    call (the shared-arena pattern — closures do not pickle, globals
    ride the fork for free).  ``jobs=None`` reads ``DHS_JOBS``;
    ``jobs <= 1``, a single item, or a platform without ``fork`` runs
    inline — the global-inheritance contract cannot be met by ``spawn``,
    and the serial path is always equivalent by construction.  Results
    come back in submission order, exactly as a serial loop would
    produce them.
    """
    if jobs is None:
        jobs = env_jobs()
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        return [fn(item) for item in items]
    context = multiprocessing.get_context("fork")
    workers = min(jobs, len(items))
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        return list(pool.map(fn, items, chunksize=1))


def _execute(spec: TrialSpec) -> Any:
    """Run one trial (top-level so it pickles into pool workers)."""
    return spec.fn(seed=spec.seed, **dict(spec.kwargs))


def _execute_metered(spec: TrialSpec) -> Tuple[Any, Snapshot]:
    """Run one trial against a fresh per-trial metrics registry.

    Used on both the serial and the parallel path whenever metering is
    on, so the caller-side merge sequence — and therefore the merged
    snapshot, floats included — is independent of the worker count.
    (Under ``fork`` the worker inherits the parent's registry; swapping
    in a fresh one here also keeps trial metrics out of it.)
    """
    registry = MetricsRegistry()
    with obs.observed(registry=registry, tracing=False):
        result = _execute(spec)
    return result, registry.snapshot()


def run_trials(specs: Sequence[TrialSpec], jobs: Optional[int] = None) -> List[Any]:
    """Run every spec and return results in spec order.

    ``jobs=None`` reads ``DHS_JOBS``; ``jobs <= 1`` (or a single spec)
    runs inline with no pool, which is the default serial path.
    """
    if jobs is None:
        jobs = env_jobs()
    metered = obs.METERING
    if jobs <= 1 or len(specs) <= 1:
        if not metered:
            return [_execute(spec) for spec in specs]
        outputs = [_execute_metered(spec) for spec in specs]
    else:
        # ``fork`` keeps worker start cheap and inherits the warm import
        # state; ``spawn`` platforms work too since specs pickle fully.
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        workers = min(jobs, len(specs))
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            # ``map`` preserves submission order, so the aggregation loop
            # in each driver sees results exactly as the serial loop would.
            if not metered:
                return list(pool.map(_execute, specs, chunksize=1))
            outputs = list(pool.map(_execute_metered, specs, chunksize=1))
    results: List[Any] = []
    for result, snapshot in outputs:
        obs.METRICS.merge_snapshot(snapshot)
        results.append(result)
    return results
