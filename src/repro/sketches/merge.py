"""Union helpers over collections of sketches.

Duplicate-insensitive distributed counting hinges on sketch union being
exactly the sketch of the set union; these helpers make the common
"combine per-node sketches" pattern a one-liner and are reused by the
convergecast baseline.
"""

from __future__ import annotations

from typing import Iterable, Sequence, TypeVar

from repro.errors import SketchError
from repro.sketches.base import HashSketch

__all__ = ["union_all", "estimate_union"]

S = TypeVar("S", bound=HashSketch)


def union_all(sketches: Iterable[S]) -> S:
    """Union an iterable of compatible sketches into a new sketch."""
    iterator = iter(sketches)
    try:
        first = next(iterator)
    except StopIteration:
        raise SketchError("union_all requires at least one sketch") from None
    result = first.copy()
    for sketch in iterator:
        result.merge(sketch)
    return result


def estimate_union(sketches: Sequence[S]) -> float:
    """Cardinality estimate of the union of all input sketches."""
    return union_all(sketches).estimate()
