"""HyperLogLog (Flajolet, Fusy, Gandouet & Meunier 2007).

Published the year after the paper, HyperLogLog replaces super-LogLog's
truncated arithmetic mean with a harmonic mean and is the natural
"future work" successor of the estimators DHS ships.  Included as an
extension: it shares the insertion path and register layout of
:class:`~repro.sketches.loglog.LogLogSketch`, so it can also be
reconstructed from DHS bits.
"""

from __future__ import annotations

from repro.errors import EstimationError
from repro.sketches.constants import hll_alpha
from repro.sketches.linear_counting import linear_counting_estimate
from repro.sketches.loglog import LogLogSketch

__all__ = ["HyperLogLogSketch"]


class HyperLogLogSketch(LogLogSketch):
    """Harmonic-mean LogLog with the standard small-range correction.

    Relative standard error ≈ ``1.04 / sqrt(m)``.  The large-range
    correction of the original paper is unnecessary with 64-bit hashes and
    is deliberately omitted.
    """

    name = "hll"

    def estimate(self) -> float:
        if self.is_empty():
            return 0.0
        indicator = sum(2.0**-r for r in self._registers)
        raw = hll_alpha(self.m) * self.m * self.m / indicator
        zero_buckets = self._registers.count(0)
        if raw <= 2.5 * self.m and zero_buckets:
            return linear_counting_estimate(self.m, zero_buckets)
        return raw

    @classmethod
    def expected_std_error(cls, m: int) -> float:
        """FFGM07: ``1.04 / sqrt(m)``."""
        if m < 1:
            raise EstimationError(f"m must be >= 1, got {m}")
        return 1.04 / m**0.5
