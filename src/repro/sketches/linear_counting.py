"""Linear (probabilistic) counting — Whang, Vander-Zanden & Taylor 1990.

A plain bitmap estimator: hash each item to one of ``size`` bit positions
and estimate ``n = -size * ln(V)`` where ``V`` is the fraction of bits
still zero.  It shines exactly where LogLog-family sketches are weak —
small cardinalities — and is used as HyperLogLog's small-range correction.
Shipped as an extension beyond the paper's two estimators.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.errors import ConfigurationError, EstimationError, IncompatibleSketchError
from repro.hashing.family import HashFamily, default_hash_family

__all__ = ["LinearCounter", "linear_counting_estimate"]


def linear_counting_estimate(size: int, zero_bits: int) -> float:
    """``-size * ln(zero_bits / size)``; infinite when no bit is zero."""
    if size < 1:
        raise EstimationError(f"size must be >= 1, got {size}")
    if not 0 <= zero_bits <= size:
        raise EstimationError(f"zero_bits {zero_bits} out of range [0, {size}]")
    if zero_bits == 0:
        return math.inf
    return -size * math.log(zero_bits / size)


class LinearCounter:
    """Bitmap cardinality estimator with load-factor-limited accuracy."""

    name = "linear"

    def __init__(
        self,
        size: int = 1 << 14,
        hash_family: HashFamily | None = None,
    ) -> None:
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        self.size = size
        self.hash_family = hash_family or default_hash_family()
        self._bits = bytearray((size + 7) // 8)
        self._set_count = 0

    def add(self, item: Any) -> None:
        """Record one item (duplicate-insensitively)."""
        index = self.hash_family(item) % self.size
        byte, offset = divmod(index, 8)
        if not self._bits[byte] & (1 << offset):
            self._bits[byte] |= 1 << offset
            self._set_count += 1

    def add_all(self, items: Iterable[Any]) -> None:
        """Record every item of an iterable."""
        for item in items:
            self.add(item)

    @property
    def set_bits(self) -> int:
        """Number of 1-bits in the bitmap."""
        return self._set_count

    def is_empty(self) -> bool:
        """True when no item has been recorded."""
        return self._set_count == 0

    def estimate(self) -> float:
        """Estimated distinct count; ``inf`` when the bitmap saturates."""
        return linear_counting_estimate(self.size, self.size - self._set_count)

    def merge(self, other: "LinearCounter") -> "LinearCounter":
        """In-place union with a compatible counter."""
        if self.size != other.size or self.hash_family != other.hash_family:
            raise IncompatibleSketchError("LinearCounter parameters differ")
        merged = bytearray(a | b for a, b in zip(self._bits, other._bits))
        self._bits = merged
        self._set_count = sum(bin(b).count("1") for b in merged)
        return self

    def copy(self) -> "LinearCounter":
        """Deep copy of this counter."""
        out = LinearCounter(size=self.size, hash_family=self.hash_family)
        out._bits = bytearray(self._bits)
        out._set_count = self._set_count
        return out

    def to_bytes(self) -> bytes:
        """Serialize the bitmap (config travels out of band)."""
        return bytes(self._bits)

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        size: int,
        hash_family: HashFamily | None = None,
    ) -> "LinearCounter":
        """Rebuild a counter serialized by :meth:`to_bytes`."""
        counter = cls(size=size, hash_family=hash_family)
        if len(data) != (size + 7) // 8:
            raise ValueError(
                f"expected {(size + 7) // 8} bytes for size={size}, got {len(data)}"
            )
        counter._bits = bytearray(data)
        counter._set_count = sum(bin(b).count("1") for b in counter._bits)
        return counter
