"""Set-expression estimates over sketches (union, intersection, difference).

Sketch union is exact-by-construction (register-wise merge); intersection
and difference come from inclusion–exclusion::

    |A ∩ B| = |A| + |B| - |A ∪ B|
    |A \\ B| = |A| - |A ∩ B|

The caveat every user must know: inclusion–exclusion subtracts large
noisy numbers, so the *absolute* error of an intersection estimate is on
the order of ``sigma * (|A| + |B|)`` — tiny intersections of big sets are
unrecoverable.  (This is inherent to LogLog-family sketches, not to the
distribution; it is why stream-processing works cited by the paper pair
sketches with other synopses for set expressions.)

These operate on reconstructed local sketches, so the same helpers serve
both centralized sketches and DHS count results.
"""

from __future__ import annotations

from repro.errors import IncompatibleSketchError
from repro.sketches.base import HashSketch
from repro.sketches.merge import union_all

__all__ = [
    "estimate_intersection",
    "estimate_difference",
    "jaccard_estimate",
    "intersection_error_bound",
]


def estimate_intersection(a: HashSketch, b: HashSketch) -> float:
    """Inclusion–exclusion estimate of ``|A ∩ B|`` (clamped at 0)."""
    a.check_compatible(b)
    union = union_all([a, b]).estimate()
    return max(0.0, a.estimate() + b.estimate() - union)


def estimate_difference(a: HashSketch, b: HashSketch) -> float:
    """Estimate of ``|A \\ B|`` (clamped at 0)."""
    return max(0.0, a.estimate() - estimate_intersection(a, b))


def jaccard_estimate(a: HashSketch, b: HashSketch) -> float:
    """Estimated Jaccard similarity ``|A ∩ B| / |A ∪ B|`` in [0, 1]."""
    a.check_compatible(b)
    union = union_all([a, b]).estimate()
    if union <= 0:
        return 0.0
    intersection = max(0.0, a.estimate() + b.estimate() - union)
    return min(1.0, intersection / union)


def intersection_error_bound(a: HashSketch, b: HashSketch) -> float:
    """One-sigma absolute error of :func:`estimate_intersection`.

    Conservative sum of the three constituent sigmas; use it to decide
    whether an intersection estimate is meaningful at all.
    """
    if type(a) is not type(b):
        raise IncompatibleSketchError("sketches of different estimators")
    sigma = type(a).expected_std_error(a.m)
    union = union_all([a, b]).estimate()
    return sigma * (a.estimate() + b.estimate() + union)
