"""LogLog and super-LogLog counting (Durand–Flajolet 2003).

Each bucket retains only the *largest* observation — the rank
``rho + 1`` of the rightmost 1-bit the paper speaks of — so a bucket costs
``O(log log n_max)`` bits instead of PCSA's ``O(log n_max)``.

* :class:`LogLogSketch` implements the plain estimator
  ``E(n) = alpha_m * m * 2^(mean M)``.
* :class:`SuperLogLogSketch` adds the truncation rule (keep the
  ``m0 = ⌊θ0·m⌋`` smallest registers, θ0 = 0.7) with the calibrated
  ``alpha-tilde`` constant — the paper's eq. 2, standard error
  ``≈ 1.05/sqrt(m)``.
"""

from __future__ import annotations

from typing import List

from repro.errors import EstimationError
from repro.hashing.family import HashFamily
from repro.sketches.base import HashSketch
from repro.sketches.constants import (
    loglog_alpha,
    sll_alpha_tilde,
    sll_truncated_count,
)

__all__ = ["LogLogSketch", "SuperLogLogSketch"]


class LogLogSketch(HashSketch):
    """Plain LogLog estimator (no truncation).

    Registers store the 1-indexed rank ``M = rho + 1`` so the classic
    ``alpha_m = (Gamma(-1/m)(1-2^{1/m})/ln 2)^{-m}`` constant applies
    without an off-by-one bias.  An empty bucket holds 0.
    """

    name = "loglog"

    def __init__(
        self,
        m: int = 64,
        key_bits: int = 64,
        hash_family: HashFamily | None = None,
    ) -> None:
        super().__init__(m=m, key_bits=key_bits, hash_family=hash_family)
        self._registers: List[int] = [0] * self.m

    # ------------------------------------------------------------------
    # HashSketch state hooks.
    # ------------------------------------------------------------------
    def record(self, vector: int, position: int) -> None:
        if not 0 <= vector < self.m:
            raise ValueError(f"vector {vector} out of range [0, {self.m})")
        rank = min(position, self.position_bits - 1) + 1
        if rank > self._registers[vector]:
            self._registers[vector] = rank

    def record_mask(self, vectors: int, position: int) -> None:
        if vectors < 0 or vectors >> self.m:
            raise ValueError(f"vector mask {vectors:#x} out of range [0, 2^{self.m})")
        rank = min(position, self.position_bits - 1) + 1
        registers = self._registers
        while vectors:
            low = vectors & -vectors
            vector = low.bit_length() - 1
            if rank > registers[vector]:
                registers[vector] = rank
            vectors ^= low

    def is_empty(self) -> bool:
        return all(r == 0 for r in self._registers)

    def _merge_state(self, other: HashSketch) -> None:
        assert isinstance(other, LogLogSketch)
        self._registers = [max(a, b) for a, b in zip(self._registers, other._registers)]

    def _copy_empty(self) -> "LogLogSketch":
        return type(self)(m=self.m, key_bits=self.key_bits, hash_family=self.hash_family)

    # ------------------------------------------------------------------
    # Estimation.
    # ------------------------------------------------------------------
    def registers(self) -> List[int]:
        """A copy of the per-bucket max ranks (0 = bucket never hit)."""
        return list(self._registers)

    def estimate(self) -> float:
        if self.is_empty():
            return 0.0
        mean_rank = sum(self._registers) / self.m
        return loglog_alpha(self.m) * self.m * 2.0**mean_rank

    @classmethod
    def expected_std_error(cls, m: int) -> float:
        """DF03: ``~1.30 / sqrt(m)`` for plain LogLog."""
        if m < 1:
            raise EstimationError(f"m must be >= 1, got {m}")
        return 1.30 / m**0.5

    # ------------------------------------------------------------------
    # Serialization: one byte per register (ranks fit in 8 bits for any
    # 64-bit hash, the log log n economy the paper cites).
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize registers, one byte each."""
        return bytes(self._registers)

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        m: int,
        key_bits: int = 64,
        hash_family: HashFamily | None = None,
    ) -> "LogLogSketch":
        """Rebuild a sketch serialized by :meth:`to_bytes`."""
        sketch = cls(m=m, key_bits=key_bits, hash_family=hash_family)
        if len(data) != m:
            raise ValueError(f"expected {m} register bytes, got {len(data)}")
        max_rank = sketch.position_bits + 1
        registers = list(data)
        if any(r > max_rank for r in registers):
            raise ValueError("register value exceeds position_bits + 1")
        sketch._registers = registers
        return sketch


class SuperLogLogSketch(LogLogSketch):
    """super-LogLog: LogLog plus the θ0-truncation rule (paper eq. 2)."""

    name = "sll"

    def estimate(self) -> float:
        if self.is_empty():
            return 0.0
        m0 = sll_truncated_count(self.m)
        smallest = sorted(self._registers)[:m0]
        mean_rank = sum(smallest) / m0
        return sll_alpha_tilde(self.m) * m0 * 2.0**mean_rank

    @classmethod
    def expected_std_error(cls, m: int) -> float:
        """DF03 (and the paper, section 2.2.1): ``1.05 / sqrt(m)``."""
        if m < 1:
            raise EstimationError(f"m must be >= 1, got {m}")
        return 1.05 / m**0.5
