"""Estimator constants for the sketch family.

* PCSA (Flajolet–Martin 1985): the magic constant ``phi = 0.77351`` from
  eq. 4 of the paper, and the ``1 + 0.31/m`` first-order bias factor.
* LogLog (Durand–Flajolet 2003): ``alpha_m`` from the closed form
  ``alpha_m = (Gamma(-1/m) * (1 - 2^(1/m)) / ln 2)^(-m)``.
* super-LogLog: the truncation constant ``alpha-tilde``, calibrated by
  register-level Monte Carlo (``tools/calibrate_sll.py``; Poissonized,
  lambda = 4096 items/bucket, ~600k register draws per m, seed 20060401).
* HyperLogLog (Flajolet et al. 2007, shipped as an extension): the usual
  ``alpha_m`` bias-correction constants.
"""

from __future__ import annotations

import math

from scipy.special import gamma as _gamma

__all__ = [
    "PCSA_PHI",
    "pcsa_bias_factor",
    "loglog_alpha",
    "SLL_THETA0",
    "sll_alpha_tilde",
    "sll_truncated_count",
    "hll_alpha",
]

#: FM85's ``phi``: E(n) = (1/phi) * m * 2^(mean R) (paper eq. 4).
PCSA_PHI = 0.77351

#: super-LogLog truncation ratio (theta_0 in the paper, near-optimal 0.7).
SLL_THETA0 = 0.7


def pcsa_bias_factor(m: int) -> float:
    """FM85's small-``m`` multiplicative bias, ``1 + 0.31/m``."""
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    return 1.0 + 0.31 / m


def loglog_alpha(m: int) -> float:
    """Durand–Flajolet ``alpha_m`` for the plain LogLog estimator.

    Closed form ``(Gamma(-1/m)*(1-2^(1/m))/ln 2)^(-m)``; tends to
    ``~0.39701`` as m grows.  ``Gamma(-1/m)`` and ``(1 - 2^(1/m))`` are both
    negative, so the base is positive.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if m == 1:
        # The closed form degenerates (E[2^M] diverges for a single
        # bucket); fall back to the calibrated truncation-free value.
        return 0.5305263157894737
    base = _gamma(-1.0 / m) * (1.0 - 2.0 ** (1.0 / m)) / math.log(2.0)
    return float(base ** (-m))


#: Monte-Carlo calibrated alpha-tilde for the truncated (super-LogLog)
#: estimator, keyed by m (powers of two).  Values for m <= 8 are dominated
#: by the degeneracy of the truncation rule at tiny m and carry large
#: statistical error bars; super-LogLog is intended for m >= 16.
_SLL_ALPHA_TILDE: dict[int, float] = {
    1: 0.062488,
    2: 0.996547,
    4: 1.500241,
    8: 1.188916,
    16: 1.058908,
    32: 1.101476,
    64: 1.120660,
    128: 1.103401,
    256: 1.091208,
    512: 1.095392,
    1024: 1.089956,
    2048: 1.092432,
    4096: 1.091453,
    8192: 1.092678,
    16384: 1.090642,
}

_SLL_ALPHA_ASYMPTOTIC = 1.0915


def sll_truncated_count(m: int) -> int:
    """Number of registers kept by the truncation rule, ``max(1, ⌊θ0·m⌋)``."""
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    return max(1, int(SLL_THETA0 * m))


def sll_alpha_tilde(m: int) -> float:
    """Calibrated alpha-tilde for ``m`` buckets.

    Exact table entries for powers of two up to 16384; geometric
    interpolation between table entries otherwise, and the asymptotic
    value beyond the table.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if m in _SLL_ALPHA_TILDE:
        return _SLL_ALPHA_TILDE[m]
    if m > max(_SLL_ALPHA_TILDE):
        return _SLL_ALPHA_ASYMPTOTIC
    lower = max(key for key in _SLL_ALPHA_TILDE if key < m)
    upper = min(key for key in _SLL_ALPHA_TILDE if key > m)
    weight = (math.log2(m) - math.log2(lower)) / (math.log2(upper) - math.log2(lower))
    return _SLL_ALPHA_TILDE[lower] * (1 - weight) + _SLL_ALPHA_TILDE[upper] * weight


def hll_alpha(m: int) -> float:
    """HyperLogLog's harmonic-mean correction constant."""
    if m <= 16:
        return 0.673
    if m <= 32:
        return 0.697
    if m <= 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)
