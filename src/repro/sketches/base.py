"""Abstract base class shared by every hash-sketch estimator.

A hash sketch (section 2.2 of the paper) maps each item through a
pseudo-uniform hash, splits the hashed key into a bucket selector (the low
``c = log2 m`` bits) and a geometric observation ``rho`` of the remaining
bits, and records the observation into one of ``m`` buckets.  Insertion is
identical for every estimator in the family — PCSA, LogLog, super-LogLog
and HyperLogLog differ only in what they retain per bucket and how they
turn the buckets into a cardinality estimate.

The split used here is exactly the paper's DHS convention (section 3.4):
``vector = lsb_k(key) mod m`` and ``position = rho(lsb_k(key) div m)``,
which lets the distributed reconstruction in :mod:`repro.core.count` feed
observed bits straight back into these classes via :meth:`record`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, Iterable, Tuple, TypeVar

from repro.errors import ConfigurationError, IncompatibleSketchError
from repro.hashing.bits import lsb, rho
from repro.hashing.family import HashFamily, default_hash_family

__all__ = ["HashSketch", "required_key_bits", "split_key"]

S = TypeVar("S", bound="HashSketch")


def required_key_bits(max_cardinality: int, m: int) -> int:
    """Paper eq. 3: minimum hash length ``H0 = log m + ceil(log(n/m) + 3)``."""
    if max_cardinality < 1:
        raise ConfigurationError(f"max_cardinality must be >= 1, got {max_cardinality}")
    if m < 1 or m & (m - 1):
        raise ConfigurationError(f"m must be a positive power of two, got {m}")
    c = m.bit_length() - 1
    per_bucket = max(1.0, max_cardinality / m)
    return c + max(1, math.ceil(math.log2(per_bucket) + 3))


def split_key(key: int, m: int, key_bits: int) -> Tuple[int, int]:
    """Split a ``key_bits``-bit key into ``(vector, position)``.

    ``vector = lsb(key) mod m`` selects the bucket; ``position`` is the
    paper's ``rho`` of the remaining ``key_bits - log2(m)`` bits.
    """
    c = m.bit_length() - 1
    truncated = lsb(key, key_bits)
    vector = truncated & (m - 1)
    return vector, rho(truncated >> c, key_bits - c)


class HashSketch(ABC):
    """Common machinery for the hash-sketch estimator family.

    Parameters
    ----------
    m:
        Number of buckets (bitmaps); must be a power of two.  Accuracy
        scales as ``O(1/sqrt(m))``, memory as ``O(m)``.
    key_bits:
        Length of the hashed keys actually consumed (the paper's ``k``).
        Bits beyond ``key_bits`` of the hash output are ignored, mirroring
        DHS's use of ``lsb_k``.
    hash_family:
        Pseudo-uniform hash; defaults to the library-wide splitmix64
        family.  Sketches are only mergeable when their families match.
    """

    #: Human-readable estimator name, set by subclasses.
    name: str = "abstract"

    def __init__(
        self,
        m: int = 64,
        key_bits: int = 64,
        hash_family: HashFamily | None = None,
    ) -> None:
        if m < 1 or m & (m - 1):
            raise ConfigurationError(f"m must be a positive power of two, got {m}")
        if key_bits < 1:
            raise ConfigurationError(f"key_bits must be >= 1, got {key_bits}")
        c = m.bit_length() - 1
        if key_bits <= c:
            raise ConfigurationError(
                f"key_bits ({key_bits}) must exceed log2(m) ({c}) to leave "
                "room for the position bits"
            )
        self.m = m
        self.key_bits = key_bits
        self.hash_family = hash_family or default_hash_family(bits=max(64, key_bits))
        #: Number of usable bit positions per bucket (``k - c``).
        self.position_bits = key_bits - c

    # ------------------------------------------------------------------
    # Insertion — identical across estimators (paper section 2.2.2).
    # ------------------------------------------------------------------
    def add(self, item: Any) -> None:
        """Record one item (duplicate-insensitively)."""
        self.add_key(self.hash_family(item))

    def add_all(self, items: Iterable[Any]) -> None:
        """Record every item of an iterable."""
        for item in items:
            self.add(item)

    def add_key(self, key: int) -> None:
        """Record an already-hashed ``key_bits``-bit key.

        The all-zero suffix (``rho == position_bits``) is clamped onto the
        top usable position so that a sketch reconstructed from DHS bits
        (which live in positions ``[0, position_bits)``) matches a locally
        built sketch exactly.
        """
        vector, position = split_key(key, self.m, self.key_bits)
        self.record(vector, min(position, self.position_bits - 1))

    def observation(self, item: Any) -> Tuple[int, int]:
        """Return the ``(vector, position)`` pair an item maps to."""
        return split_key(self.hash_family(item), self.m, self.key_bits)

    # ------------------------------------------------------------------
    # Estimator-specific state.
    # ------------------------------------------------------------------
    @abstractmethod
    def record(self, vector: int, position: int) -> None:
        """Fold the observation ``position`` into bucket ``vector``.

        ``position == position_bits`` encodes the all-zero suffix (the
        paper's ``rho(0) = L`` convention) and is recorded as-is.
        """

    def record_mask(self, vectors: int, position: int) -> None:
        """Record ``position`` into every bucket set in the ``vectors`` bitmap.

        Equivalent to calling :meth:`record` once per set bit; the
        distributed counter keeps its per-metric bookkeeping as packed
        bitmaps, and subclasses override this with a single pass over
        their register state.
        """
        while vectors:
            low = vectors & -vectors
            self.record(low.bit_length() - 1, position)
            vectors ^= low

    @abstractmethod
    def estimate(self) -> float:
        """Return the estimated number of distinct items recorded."""

    @abstractmethod
    def _merge_state(self, other: "HashSketch") -> None:
        """Fold ``other``'s per-bucket state into ours (union semantics)."""

    @abstractmethod
    def _copy_empty(self: S) -> S:
        """Return a fresh sketch with identical configuration."""

    @abstractmethod
    def is_empty(self) -> bool:
        """True when no item has been recorded."""

    # ------------------------------------------------------------------
    # Union / merge.
    # ------------------------------------------------------------------
    def check_compatible(self, other: "HashSketch") -> None:
        """Raise :class:`IncompatibleSketchError` unless merge is sound."""
        if type(self) is not type(other):
            raise IncompatibleSketchError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}"
            )
        if self.m != other.m or self.key_bits != other.key_bits:
            raise IncompatibleSketchError(
                f"parameter mismatch: (m={self.m}, k={self.key_bits}) vs "
                f"(m={other.m}, k={other.key_bits})"
            )
        if self.hash_family != other.hash_family:
            raise IncompatibleSketchError("hash families differ; union is meaningless")

    def merge(self: S, other: "HashSketch") -> S:
        """In-place union: afterwards ``self`` describes the set union."""
        self.check_compatible(other)
        self._merge_state(other)
        return self

    def union(self: S, other: "HashSketch") -> S:
        """Return a new sketch describing the union, leaving inputs intact."""
        out = self.copy()
        return out.merge(other)

    def copy(self: S) -> S:
        """Deep copy of this sketch."""
        out = self._copy_empty()
        out._merge_state(self)
        return out

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @classmethod
    def expected_std_error(cls, m: int) -> float:
        """Theoretical relative standard error for ``m`` buckets."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(m={self.m}, key_bits={self.key_bits}, "
            f"empty={self.is_empty()})"
        )
