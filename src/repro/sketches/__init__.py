"""Hash-sketch substrate: PCSA, LogLog, super-LogLog, HyperLogLog, linear counting."""

from repro.sketches.base import HashSketch, required_key_bits, split_key
from repro.sketches.constants import (
    PCSA_PHI,
    SLL_THETA0,
    hll_alpha,
    loglog_alpha,
    pcsa_bias_factor,
    sll_alpha_tilde,
    sll_truncated_count,
)
from repro.sketches.hyperloglog import HyperLogLogSketch
from repro.sketches.linear_counting import LinearCounter, linear_counting_estimate
from repro.sketches.loglog import LogLogSketch, SuperLogLogSketch
from repro.sketches.merge import estimate_union, union_all
from repro.sketches.pcsa import PCSASketch
from repro.sketches.setops import (
    estimate_difference,
    estimate_intersection,
    intersection_error_bound,
    jaccard_estimate,
)

#: Registry of the sketch estimators usable inside DHS, by short name.
SKETCH_TYPES = {
    PCSASketch.name: PCSASketch,
    LogLogSketch.name: LogLogSketch,
    SuperLogLogSketch.name: SuperLogLogSketch,
    HyperLogLogSketch.name: HyperLogLogSketch,
}

__all__ = [
    "HashSketch",
    "required_key_bits",
    "split_key",
    "PCSA_PHI",
    "SLL_THETA0",
    "hll_alpha",
    "loglog_alpha",
    "pcsa_bias_factor",
    "sll_alpha_tilde",
    "sll_truncated_count",
    "HyperLogLogSketch",
    "LinearCounter",
    "linear_counting_estimate",
    "LogLogSketch",
    "SuperLogLogSketch",
    "estimate_union",
    "union_all",
    "PCSASketch",
    "estimate_difference",
    "estimate_intersection",
    "intersection_error_bound",
    "jaccard_estimate",
    "SKETCH_TYPES",
]
