"""PCSA — Probabilistic Counting with Stochastic Averaging (FM85).

Each of the ``m`` buckets keeps a full bitmap; bit ``r`` of bucket ``j`` is
set when some item hashed to ``(j, r)``.  The per-bucket observable is
``R_j``, the position of the *leftmost 0-bit*, and the estimate is the
paper's eq. 4::

    E(n) = (1 / 0.77351) * m * 2^(mean R)

optionally divided by the first-order bias factor ``1 + 0.31/m``.
"""

from __future__ import annotations

from typing import List

from repro.errors import EstimationError
from repro.hashing.bits import mask, rho
from repro.hashing.family import HashFamily
from repro.sketches.base import HashSketch
from repro.sketches.constants import PCSA_PHI, pcsa_bias_factor

__all__ = ["PCSASketch"]


class PCSASketch(HashSketch):
    """Flajolet–Martin PCSA sketch with ``m`` bitmaps.

    Relative standard error ≈ ``0.78 / sqrt(m)``; memory is
    ``m * position_bits`` bits (``log2(n_max)`` bits per bucket, the
    difference from LogLog the paper highlights in section 2.2.2).
    """

    name = "pcsa"

    def __init__(
        self,
        m: int = 64,
        key_bits: int = 64,
        hash_family: HashFamily | None = None,
        bias_correction: bool = True,
    ) -> None:
        super().__init__(m=m, key_bits=key_bits, hash_family=hash_family)
        self.bias_correction = bias_correction
        self._bitmaps: List[int] = [0] * self.m
        self._full_mask = mask(self.position_bits)

    # ------------------------------------------------------------------
    # HashSketch state hooks.
    # ------------------------------------------------------------------
    def record(self, vector: int, position: int) -> None:
        if not 0 <= vector < self.m:
            raise ValueError(f"vector {vector} out of range [0, {self.m})")
        if position >= self.position_bits:
            # The all-zero suffix (rho == position_bits); FM85 bitmaps do
            # not extend past the usable width, so clamp to the top bit.
            position = self.position_bits - 1
        self._bitmaps[vector] |= 1 << position

    def record_mask(self, vectors: int, position: int) -> None:
        if vectors < 0 or vectors >> self.m:
            raise ValueError(f"vector mask {vectors:#x} out of range [0, 2^{self.m})")
        if position >= self.position_bits:
            position = self.position_bits - 1
        bit = 1 << position
        bitmaps = self._bitmaps
        while vectors:
            low = vectors & -vectors
            bitmaps[low.bit_length() - 1] |= bit
            vectors ^= low

    def is_empty(self) -> bool:
        return all(b == 0 for b in self._bitmaps)

    def _merge_state(self, other: HashSketch) -> None:
        assert isinstance(other, PCSASketch)
        self._bitmaps = [a | b for a, b in zip(self._bitmaps, other._bitmaps)]

    def _copy_empty(self) -> "PCSASketch":
        return PCSASketch(
            m=self.m,
            key_bits=self.key_bits,
            hash_family=self.hash_family,
            bias_correction=self.bias_correction,
        )

    # ------------------------------------------------------------------
    # Estimation.
    # ------------------------------------------------------------------
    def leftmost_zero(self, vector: int) -> int:
        """``R_j``: position of the leftmost 0-bit of bucket ``vector``."""
        complement = (~self._bitmaps[vector]) & self._full_mask
        return rho(complement, self.position_bits)

    def observables(self) -> List[int]:
        """The ``R`` vector over all buckets."""
        return [self.leftmost_zero(j) for j in range(self.m)]

    def estimate(self) -> float:
        if self.is_empty():
            return 0.0
        mean_r = sum(self.observables()) / self.m
        value = (1.0 / PCSA_PHI) * self.m * 2.0**mean_r
        if self.bias_correction:
            value /= pcsa_bias_factor(self.m)
        return value

    @classmethod
    def expected_std_error(cls, m: int) -> float:
        """FM85: ``0.78 / sqrt(m)``."""
        if m < 1:
            raise EstimationError(f"m must be >= 1, got {m}")
        return 0.78 / m**0.5

    # ------------------------------------------------------------------
    # Introspection / serialization.
    # ------------------------------------------------------------------
    def bitmaps(self) -> List[int]:
        """A copy of the raw bucket bitmaps (bit ``r`` set ⇔ observed)."""
        return list(self._bitmaps)

    def bit(self, vector: int, position: int) -> bool:
        """Whether bit ``position`` of bucket ``vector`` is set."""
        return bool((self._bitmaps[vector] >> position) & 1)

    def to_bytes(self) -> bytes:
        """Serialize the bucket bitmaps (config travels out of band)."""
        width = (self.position_bits + 7) // 8
        return b"".join(b.to_bytes(width, "little") for b in self._bitmaps)

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        m: int,
        key_bits: int = 64,
        hash_family: HashFamily | None = None,
        bias_correction: bool = True,
    ) -> "PCSASketch":
        """Rebuild a sketch serialized by :meth:`to_bytes`."""
        sketch = cls(
            m=m,
            key_bits=key_bits,
            hash_family=hash_family,
            bias_correction=bias_correction,
        )
        width = (sketch.position_bits + 7) // 8
        if len(data) != width * m:
            raise ValueError(
                f"expected {width * m} bytes for m={m}, k={key_bits}; got {len(data)}"
            )
        sketch._bitmaps = [
            int.from_bytes(data[i * width : (i + 1) * width], "little") for i in range(m)
        ]
        return sketch
