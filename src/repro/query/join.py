"""Join-size estimation from bucket histograms.

All evaluation relations share a single integer attribute, so queries
are natural equi-joins on it.  Under the classic uniform-within-bucket
assumption, the expected size of joining relations ``R1 .. Rj`` within
bucket ``i`` of width ``w_i`` is ``prod(c_ri) / w_i^(j-1)`` — each of the
``w_i`` values holds ``c/w`` tuples per relation and matching tuples
multiply.  Summing over buckets gives the estimate the optimizer uses.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import numpy.typing as npt

from repro.errors import QueryError
from repro.histograms.histogram import Histogram

__all__ = ["estimate_join_size", "true_join_size"]


def estimate_join_size(histograms: Sequence[Histogram]) -> float:
    """Estimated equi-join cardinality of the relations behind the
    histograms (all joined on the bucketed attribute)."""
    if not histograms:
        raise QueryError("estimate_join_size needs at least one histogram")
    spec = histograms[0].spec
    if any(h.spec != spec for h in histograms):
        raise QueryError("histograms must share a bucket spec")
    if len(histograms) == 1:
        return histograms[0].total
    total = 0.0
    for index in range(spec.n_buckets):
        width = spec.bucket_width(index)
        product = 1.0
        for histogram in histograms:
            product *= histogram.counts[index]
            if product == 0.0:
                break
        if product:
            total += product / width ** (len(histograms) - 1)
    return total


def true_join_size(value_arrays: Sequence[npt.NDArray[np.int64]], domain: int) -> int:
    """Exact equi-join cardinality: ``sum_v prod_r freq_r(v)``."""
    if not value_arrays:
        raise QueryError("true_join_size needs at least one relation")
    product = None
    for values in value_arrays:
        freq = np.bincount(np.asarray(values), minlength=domain + 1).astype(np.float64)
        product = freq if product is None else product * freq
    return int(product.sum())
