"""Execution of join plans over materialized relations.

The engine "runs" a plan against the simulated relations: every join
node ships both inputs (PIER's symmetric rehash), and intermediate
cardinalities are computed *exactly* via per-value frequency vectors —
for equi-joins on one attribute, ``freq_{R⋈S}(v) = freq_R(v)·freq_S(v)``.
The result is the ground-truth bytes a plan actually transfers, used to
judge the optimizer's histogram-based choices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
import numpy.typing as npt

from repro.errors import QueryError
from repro.query.plans import BaseRel, PlanNode
from repro.workloads.relations import Relation

__all__ = ["ExecutionResult", "execute_plan"]

#: Range predicates, as accepted by :func:`repro.query.optimizer.optimize`.
Predicates = Dict[str, Tuple[float, float]]


@dataclass
class ExecutionResult:
    """Ground-truth outcome of executing a join tree."""

    rows: int
    shipped_bytes: float
    per_join_shipped: List[float]

    @property
    def shipped_mb(self) -> float:
        """Shipped volume in megabytes."""
        return self.shipped_bytes / (1024 * 1024)


def execute_plan(
    root: PlanNode,
    relations: Dict[str, Relation],
    predicates: Optional[Predicates] = None,
) -> ExecutionResult:
    """Execute ``root`` over materialized relations, counting bytes.

    ``predicates`` are applied at the leaves (selection pushdown), so a
    filtered relation ships only its qualifying tuples.
    """
    domain = 0
    for relation in relations.values():
        domain = max(domain, int(relation.values.max(initial=0)))
    shipped: List[float] = []

    def walk(node: PlanNode) -> Tuple[npt.NDArray[np.float64], float, int]:
        """Returns (frequency vector, tuple width bytes, rows)."""
        if isinstance(node, BaseRel):
            try:
                relation = relations[node.name]
            except KeyError:
                raise QueryError(f"relation {node.name!r} not materialized") from None
            values = relation.values
            if predicates and node.name in predicates:
                from repro.query.optimizer import _split_predicate

                attribute, lo, hi = _split_predicate(
                    node.name, predicates[node.name]
                )
                if attribute == "a":
                    values = values[(values >= lo) & (values < hi)]
                else:
                    if relation.filter_values is None:
                        raise QueryError(
                            f"relation {node.name!r} has no filter attribute"
                        )
                    mask = (relation.filter_values >= lo) & (
                        relation.filter_values < hi
                    )
                    values = values[mask]
            freq = np.bincount(values, minlength=domain + 1).astype(np.float64)
            return freq, relation.tuple_bytes, int(values.shape[0])
        left_freq, left_width, left_rows = walk(node.left)
        right_freq, right_width, right_rows = walk(node.right)
        shipped.append(left_rows * left_width + right_rows * right_width)
        freq = left_freq * right_freq
        return freq, left_width + right_width, int(freq.sum())

    freq, _, rows = walk(root)
    if isinstance(root, BaseRel):
        # A single-relation "plan" ships nothing.
        return ExecutionResult(rows=rows, shipped_bytes=0.0, per_join_shipped=[])
    return ExecutionResult(
        rows=rows, shipped_bytes=float(sum(shipped)), per_join_shipped=shipped
    )
