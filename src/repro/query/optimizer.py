"""Histogram-driven join-order optimization (Selinger-style DP).

``optimize`` enumerates bushy join trees over subsets of the query's
relations, estimating intermediate cardinalities from the catalog's
(DHS-reconstructed) histograms and costing plans with the PIER shipping
model: every join ships both of its inputs.  With the handful of
relations the evaluation uses, exhaustive subset DP is exact and cheap.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import QueryError
from repro.query.catalog import Catalog, CatalogEntry
from repro.query.join import estimate_join_size
from repro.query.plans import BaseRel, JoinNode, Plan, PlanNode

__all__ = ["optimize", "cost_of_plan", "apply_predicates"]

_MAX_RELATIONS = 12

#: A range predicate on one relation: ``(lo, hi)`` filters the join
#: attribute ``a``; ``("b", lo, hi)`` filters the non-join attribute.
Predicates = Dict[str, tuple]


def _split_predicate(name: str, predicate: tuple) -> Tuple[str, float, float]:
    if len(predicate) == 2:
        attribute, (lo, hi) = "a", predicate
    elif len(predicate) == 3 and predicate[0] in ("a", "b"):
        attribute, lo, hi = predicate
    else:
        raise QueryError(
            f"predicate on {name!r} must be (lo, hi) or ('a'|'b', lo, hi); "
            f"got {predicate!r}"
        )
    if hi <= lo:
        raise QueryError(f"empty predicate range [{lo}, {hi}) on {name!r}")
    return attribute, float(lo), float(hi)


def apply_predicates(catalog: Catalog, predicates: Optional[Predicates]) -> Catalog:
    """A derived catalog with per-relation range predicates pushed down.

    Join-attribute predicates restrict the join histogram bucket-wise;
    non-join (``b``) predicates scale it by the ``b``-selectivity under
    the attribute-value-independence assumption.  Either way the bucket
    spec is preserved, so join-size estimation over a mix of filtered
    and unfiltered relations stays well-defined.
    """
    if not predicates:
        return catalog
    derived = Catalog(entries=dict(catalog.entries),
                      acquisition_cost=catalog.acquisition_cost)
    for name, predicate in predicates.items():
        entry = catalog.entry(name)
        attribute, lo, hi = _split_predicate(name, predicate)
        if attribute == "a":
            histogram = entry.histogram.restrict(lo, hi)
        else:
            if entry.filter_histogram is None:
                raise QueryError(
                    f"relation {name!r} has no filter-attribute statistics"
                )
            selectivity = entry.filter_histogram.selectivity_range(lo, hi)
            histogram = entry.histogram.scale(selectivity)
        derived.entries[name] = CatalogEntry(
            name=entry.name,
            histogram=histogram,
            tuple_bytes=entry.tuple_bytes,
            filter_histogram=entry.filter_histogram,
        )
    return derived


def _subset_rows(catalog: Catalog, subset: FrozenSet[str]) -> float:
    histograms = [catalog.entry(name).histogram for name in subset]
    return estimate_join_size(histograms)


def _subset_tuple_bytes(catalog: Catalog, subset: FrozenSet[str]) -> int:
    """Width of a joined tuple: concatenation of its constituents."""
    return sum(catalog.entry(name).tuple_bytes for name in subset)


def _subset_bytes(catalog: Catalog, subset: FrozenSet[str], rows: float) -> float:
    return rows * _subset_tuple_bytes(catalog, subset)


def optimize(
    catalog: Catalog,
    relation_names: List[str],
    predicates: Optional[Predicates] = None,
) -> Plan:
    """The cheapest join tree for an equi-join over ``relation_names``.

    ``predicates`` maps relation names to ``(lo, hi)`` range filters on
    the join attribute; they are pushed below the joins (both the size
    estimates and, in :mod:`repro.query.engine`, the execution do the
    filtering before shipping anything).
    """
    catalog = apply_predicates(catalog, predicates)
    if not relation_names:
        raise QueryError("optimize needs at least one relation")
    if len(set(relation_names)) != len(relation_names):
        raise QueryError("relation names must be unique")
    if len(relation_names) > _MAX_RELATIONS:
        raise QueryError(
            f"exhaustive DP is capped at {_MAX_RELATIONS} relations; "
            f"got {len(relation_names)}"
        )
    for name in relation_names:
        catalog.entry(name)  # validate upfront

    # best[subset] = (cost to produce the subset's join, plan node)
    best: Dict[FrozenSet[str], Tuple[float, PlanNode]] = {}
    rows: Dict[FrozenSet[str], float] = {}
    for name in relation_names:
        singleton = frozenset([name])
        best[singleton] = (0.0, BaseRel(name))
        rows[singleton] = _subset_rows(catalog, singleton)

    universe = frozenset(relation_names)
    for size in range(2, len(relation_names) + 1):
        for subset_tuple in combinations(sorted(universe), size):
            subset = frozenset(subset_tuple)
            rows[subset] = _subset_rows(catalog, subset)
            champion: Tuple[float, PlanNode] | None = None
            members = sorted(subset)
            # Enumerate proper splits; fix the first member on the left
            # to halve the symmetric duplicates.
            rest = members[1:]
            for left_size in range(0, len(rest) + 1):
                for extra in combinations(rest, left_size):
                    left = frozenset((members[0],) + extra)
                    right = subset - left
                    if not right:
                        continue
                    cost = (
                        best[left][0]
                        + best[right][0]
                        + _subset_bytes(catalog, left, rows[left])
                        + _subset_bytes(catalog, right, rows[right])
                    )
                    if champion is None or cost < champion[0]:
                        champion = (cost, JoinNode(best[left][1], best[right][1]))
            assert champion is not None
            best[subset] = champion

    cost, root = best[universe]
    return Plan(root=root, estimated_cost_bytes=cost, estimated_rows=rows[universe])


def cost_of_plan(
    catalog: Catalog,
    root: PlanNode,
    predicates: Optional[Predicates] = None,
) -> Plan:
    """Estimated cost/rows of an externally supplied join tree."""
    catalog = apply_predicates(catalog, predicates)

    def walk(node: PlanNode) -> Tuple[FrozenSet[str], float, float]:
        """Returns (subset, rows, accumulated cost)."""
        if isinstance(node, BaseRel):
            subset = frozenset([node.name])
            return subset, _subset_rows(catalog, subset), 0.0
        left_set, left_rows, left_cost = walk(node.left)
        right_set, right_rows, right_cost = walk(node.right)
        if left_set & right_set:
            raise QueryError("plan joins a relation with itself")
        subset = left_set | right_set
        cost = (
            left_cost
            + right_cost
            + _subset_bytes(catalog, left_set, left_rows)
            + _subset_bytes(catalog, right_set, right_rows)
        )
        return subset, _subset_rows(catalog, subset), cost

    subset, rows, cost = walk(root)
    return Plan(root=root, estimated_cost_bytes=cost, estimated_rows=rows)
