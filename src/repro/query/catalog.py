"""Statistics catalog for the distributed query optimizer.

A catalog maps relation names to the statistics the optimizer consumes:
a histogram over the join attribute plus the tuple width.  Catalogs can
be built exactly (ground truth, for evaluating plan quality) or from DHS
reconstructions (what a real node would obtain over the network, at the
reconstruction cost the paper reports in Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.dhs import DistributedHashSketch
from repro.errors import QueryError
from repro.histograms.buckets import BucketSpec
from repro.histograms.builder import DHSHistogramBuilder
from repro.histograms.histogram import Histogram
from repro.overlay.stats import OpCost
from repro.workloads.relations import Relation

__all__ = ["CatalogEntry", "Catalog"]


@dataclass
class CatalogEntry:
    """Optimizer-facing statistics of one relation.

    ``filter_histogram`` (over the non-join attribute ``b``, when the
    relation has one) supports selection predicates under the classic
    attribute-value-independence assumption.
    """

    name: str
    histogram: Histogram
    tuple_bytes: int
    filter_histogram: Optional[Histogram] = None

    @property
    def cardinality(self) -> float:
        """Estimated tuple count."""
        return self.histogram.total

    @property
    def bytes(self) -> float:
        """Estimated relation size in bytes."""
        return self.cardinality * self.tuple_bytes


@dataclass
class Catalog:
    """Named collection of relation statistics."""

    entries: Dict[str, CatalogEntry] = field(default_factory=dict)
    #: Cost of acquiring the statistics (zero for exact catalogs).
    acquisition_cost: OpCost = field(default_factory=OpCost)

    def add(self, entry: CatalogEntry) -> None:
        """Register a relation's statistics."""
        self.entries[entry.name] = entry

    def entry(self, name: str) -> CatalogEntry:
        """Statistics of ``name``; raises QueryError when unknown."""
        try:
            return self.entries[name]
        except KeyError:
            raise QueryError(f"relation {name!r} not in catalog") from None

    def __contains__(self, name: str) -> bool:
        return name in self.entries

    # ------------------------------------------------------------------
    # Constructors.
    # ------------------------------------------------------------------
    @classmethod
    def exact(
        cls,
        relations: list[Relation],
        spec: BucketSpec,
        filter_buckets: int = 20,
    ) -> "Catalog":
        """Ground-truth catalog from materialized relations."""
        catalog = cls()
        for relation in relations:
            filter_histogram = None
            if relation.filter_values is not None:
                filter_spec = BucketSpec.equi_width(
                    relation.filter_domain[0], relation.filter_domain[1], filter_buckets
                )
                filter_histogram = Histogram.exact(filter_spec, relation.filter_values)
            catalog.add(
                CatalogEntry(
                    name=relation.name,
                    histogram=Histogram.exact(spec, relation.values),
                    tuple_bytes=relation.tuple_bytes,
                    filter_histogram=filter_histogram,
                )
            )
        return catalog

    @classmethod
    def from_dhs(
        cls,
        dhs: DistributedHashSketch,
        relations: list[Relation],
        spec: BucketSpec,
        origin: Optional[int] = None,
        now: int = 0,
        filter_buckets: int = 0,
    ) -> "Catalog":
        """Catalog reconstructed over the network from DHS histograms.

        ``acquisition_cost`` accumulates the reconstruction cost of every
        relation's histogram — the ~1 MB the paper compares against the
        tens of MB a bad join order wastes.

        ``filter_buckets > 0`` additionally reconstructs the filter-
        attribute histograms (the caller must have populated the
        ``(name, "hist_b", i)`` metrics, e.g. via
        ``repro.experiments.common.populate_filter_histogram_metrics``).
        """
        catalog = cls()
        for relation in relations:
            builder = DHSHistogramBuilder(dhs, spec, relation.name)
            reconstruction = builder.reconstruct(origin=origin, now=now)
            catalog.acquisition_cost.add(reconstruction.cost)
            filter_histogram = None
            if filter_buckets > 0 and relation.filter_domain is not None:
                filter_spec = BucketSpec.equi_width(
                    relation.filter_domain[0],
                    relation.filter_domain[1],
                    filter_buckets,
                )
                metrics = [
                    (relation.name, "hist_b", i) for i in range(filter_buckets)
                ]
                result = dhs.count_many(metrics, origin=origin, now=now)
                catalog.acquisition_cost.add(result.cost)
                filter_histogram = Histogram.from_counts(
                    filter_spec, [result.estimates[m] for m in metrics]
                )
            catalog.add(
                CatalogEntry(
                    name=relation.name,
                    histogram=reconstruction.histogram,
                    tuple_bytes=relation.tuple_bytes,
                    filter_histogram=filter_histogram,
                )
            )
        return catalog
