"""Query processing over DHS histograms: catalog, optimizer, engine."""

from repro.query.catalog import Catalog, CatalogEntry
from repro.query.engine import ExecutionResult, execute_plan
from repro.query.join import estimate_join_size, true_join_size
from repro.query.optimizer import cost_of_plan, optimize
from repro.query.plans import BaseRel, JoinNode, Plan, leaves, left_deep_plan

__all__ = [
    "Catalog",
    "CatalogEntry",
    "ExecutionResult",
    "execute_plan",
    "estimate_join_size",
    "true_join_size",
    "cost_of_plan",
    "optimize",
    "BaseRel",
    "JoinNode",
    "Plan",
    "leaves",
    "left_deep_plan",
]
