"""Join trees and the PIER-style data-transfer cost model.

In a DHT query processor (PIER and its FedeRated-Eddies variant, which
the paper uses as its motivating comparison), every join rehashes both
inputs through the overlay, so executing a join node *ships* both input
relations.  The cost of a plan is therefore the total bytes of every
join node's inputs — base relations and intermediates alike — which is
exactly what a good join order minimizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

__all__ = ["BaseRel", "JoinNode", "Plan", "leaves", "left_deep_plan"]


@dataclass(frozen=True)
class BaseRel:
    """A plan leaf: one base relation."""

    name: str


@dataclass(frozen=True)
class JoinNode:
    """An equi-join of two sub-plans on the shared attribute."""

    left: "PlanNode"
    right: "PlanNode"


PlanNode = Union[BaseRel, JoinNode]


def leaves(node: PlanNode) -> List[str]:
    """Relation names under a plan node, left to right."""
    if isinstance(node, BaseRel):
        return [node.name]
    return leaves(node.left) + leaves(node.right)


def left_deep_plan(order: List[str]) -> PlanNode:
    """The left-deep join tree following ``order`` as written.

    This is the "naive" FREddies-style plan: join relations in the order
    the query lists them, ignoring statistics.
    """
    if not order:
        raise ValueError("left_deep_plan needs at least one relation")
    node: PlanNode = BaseRel(order[0])
    for name in order[1:]:
        node = JoinNode(node, BaseRel(name))
    return node


@dataclass
class Plan:
    """A join tree plus the optimizer's cost bookkeeping."""

    root: PlanNode
    estimated_cost_bytes: float
    estimated_rows: float

    def relation_order(self) -> List[str]:
        """The leaf order of the tree."""
        return leaves(self.root)

    def describe(self) -> str:
        """Parenthesized rendering, e.g. ``((Q ⋈ R) ⋈ T)``."""

        def render(node: PlanNode) -> str:
            if isinstance(node, BaseRel):
                return node.name
            return f"({render(node.left)} ⋈ {render(node.right)})"

        return render(self.root)
