"""Spans: the trace unit of the observability layer.

A :class:`Span` is one named operation — a distributed count, one
interval's probe walk, a DHT lookup, an insert store — annotated with
attributes (hop counts, probe counts, drops...) and ordered by a
process-local sequence number.  Time is the *simulator's logical clock*
(the ``now`` tick every DHS operation already carries); there is no
wall-clock anywhere, so a fixed-seed run produces a byte-identical trace
(dhslint DHS102/DHS601 enforce the no-wall-clock invariant repo-wide).

The :class:`Tracer` maintains the active-span stack and assigns
parent/child links; :class:`NullTracer` is the always-installed default
whose methods all no-op, keeping the instrumented hot paths zero-cost
when tracing is off (callers additionally guard on
``repro.obs.runtime.TRACING`` so the common case never even touches the
tracer object — see docs/OBSERVABILITY.md for the full contract).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import TracebackType
from typing import (
    ContextManager,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Type,
    Union,
    cast,
)

__all__ = ["AttrValue", "Span", "Tracer", "NullTracer", "NULL_TRACER"]

#: Span attribute values: JSON-stable scalars only (no containers), so
#: the JSONL export is byte-identical across runs and Python versions.
AttrValue = Union[int, float, str, bool]

#: Deferred point event: (name, parent_id, tick, attrs).  ``span_id`` and
#: ``seq`` are derived from the entry index at materialization time (the
#: tracer assigns ids densely in start order, so ``span_id == seq + 1``).
_RawEvent = Tuple[str, Optional[int], int, Dict[str, AttrValue]]


@dataclass(slots=True)
class Span:
    """One traced operation.

    ``seq`` is the start-order index assigned by the tracer (the trace's
    total order); ``tick`` is the logical-clock time the operation ran
    at.  ``parent_id`` is the ``span_id`` of the enclosing span, or
    ``None`` for a root.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    tick: int
    seq: int
    #: Whether this is a point event (no duration) rather than a scope.
    event: bool = False
    attrs: Dict[str, AttrValue] = field(default_factory=dict)

    def set(self, **attrs: AttrValue) -> "Span":
        """Set (overwrite) attributes on this span."""
        self.attrs.update(attrs)
        return self

    def add(self, **attrs: AttrValue) -> "Span":
        """Increment numeric attributes (missing keys start at 0)."""
        for key, amount in attrs.items():
            current = self.attrs.get(key, 0)
            if not isinstance(current, (int, float)) or isinstance(current, bool):
                raise TypeError(
                    f"span attribute {key!r} is not numeric: {current!r}"
                )
            if not isinstance(amount, (int, float)) or isinstance(amount, bool):
                raise TypeError(f"span increment {key!r} is not numeric: {amount!r}")
            self.attrs[key] = current + amount
        return self


class _SpanScope:
    """Context manager closing one span on exit (LIFO-checked)."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self._tracer.end(self.span)


class Tracer:
    """Collects spans for one run into an in-memory list.

    Spans are recorded in *start* order, which — together with the
    logical-clock ticks and the absence of threads in the simulator —
    makes the trace a deterministic function of the seed.  The tracer is
    process-local: under ``DHS_JOBS`` parallelism each worker would
    collect its own spans, so traced runs (the golden-trace test, the
    ``repro trace`` CLI) run serially by convention.
    """

    def __init__(self) -> None:
        #: Scope spans (live objects) interleaved with *deferred* point
        #: events, stored as plain tuples until someone reads ``spans``.
        #: Events are immutable after recording, so materializing them
        #: lazily is safe — and keeps the per-event hot-path cost at a
        #: tuple append instead of an object construction.
        self._entries: List[Union[Span, _RawEvent]] = []
        self._pending = False
        self._stack: List[Span] = []

    @property
    def spans(self) -> List[Span]:
        """All recorded spans in start order (materializing deferred events)."""
        if self._pending:
            entries = self._entries
            for index, entry in enumerate(entries):
                if type(entry) is tuple:
                    span: Span = Span.__new__(Span)
                    span.name, span.parent_id, span.tick, span.attrs = entry
                    span.span_id = index + 1
                    span.seq = index
                    span.event = True
                    entries[index] = span
            self._pending = False
        return cast(List[Span], self._entries)

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------
    def start(self, name: str, tick: int = 0, **attrs: AttrValue) -> Span:
        """Open a span as a child of the current span (if any)."""
        stack = self._stack
        entries = self._entries
        # Hand-rolled construction (no __init__ call) and attrs adopted
        # from the ** call syntax without a copy: span starts sit on the
        # count/insert hot paths, so every avoidable call matters here.
        span: Span = Span.__new__(Span)
        span.name = name
        span.seq = len(entries)
        span.span_id = span.seq + 1
        span.parent_id = stack[-1].span_id if stack else None
        span.tick = tick
        span.event = False
        span.attrs = attrs
        entries.append(span)
        stack.append(span)
        return span

    def end(self, span: Span) -> None:
        """Close ``span``; spans must close LIFO (enforced)."""
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} is not the innermost open span"
            )
        self._stack.pop()

    def span(self, name: str, tick: int = 0, **attrs: AttrValue) -> ContextManager[Span]:
        """``with tracer.span(...) as sp:`` — start + guaranteed end."""
        return _SpanScope(self, self.start(name, tick=tick, **attrs))

    def event(self, name: str, tick: int = 0, **attrs: AttrValue) -> None:
        """Record a point event under the current span.

        Deferred: the event is stored as a tuple and only becomes a
        :class:`Span` when :attr:`spans` is read.  Returns ``None`` —
        point events are write-only at the recording site.
        """
        stack = self._stack
        self._entries.append(
            (name, stack[-1].span_id if stack else None, tick, attrs)
        )
        self._pending = True

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> int:
        """Number of spans started but not yet ended."""
        return len(self._stack)

    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None`` at top level."""
        return self._stack[-1] if self._stack else None

    def roots(self) -> Iterator[Span]:
        """Top-level spans, in start order."""
        return (span for span in self.spans if span.parent_id is None)

    def children(self, span: Span) -> Iterator[Span]:
        """Direct children of ``span``, in start order."""
        return (s for s in self.spans if s.parent_id == span.span_id)

    def find(self, name: str) -> List[Span]:
        """Every span named ``name``, in start order."""
        return [span for span in self.spans if span.name == name]

    def clear(self) -> None:
        """Drop all recorded spans (open stack must be empty)."""
        if self._stack:
            raise RuntimeError("cannot clear a tracer with open spans")
        self._entries.clear()
        self._pending = False


class _NullScope:
    """No-op span scope returned by :class:`NullTracer`."""

    __slots__ = ("span",)

    def __init__(self, span: Span) -> None:
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None


class NullTracer(Tracer):
    """A tracer that records nothing (the zero-cost default).

    Every recording method returns the same dummy span, so code written
    against the :class:`Tracer` API runs unchanged — but hot paths
    should still guard on ``repro.obs.runtime.TRACING`` and skip the
    call entirely.
    """

    def __init__(self) -> None:
        super().__init__()
        self._dummy = Span(name="", span_id=0, parent_id=None, tick=0, seq=0)
        self._null_scope = _NullScope(self._dummy)

    def start(self, name: str, tick: int = 0, **attrs: AttrValue) -> Span:
        return self._dummy

    def end(self, span: Span) -> None:
        return None

    def span(self, name: str, tick: int = 0, **attrs: AttrValue) -> ContextManager[Span]:
        return self._null_scope

    def event(self, name: str, tick: int = 0, **attrs: AttrValue) -> None:
        return None


#: The process-wide default tracer (never records anything).
NULL_TRACER = NullTracer()
