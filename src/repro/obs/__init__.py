"""Structured observability: spans, metrics, and trace export.

The paper evaluates DHS by *counting* — hops per lookup, messages per
insert and count, per-node access and storage load (Figures 4-9).  This
package makes those numbers first-class instead of per-experiment
bookkeeping:

:mod:`repro.obs.span`
    :class:`Span` / :class:`Tracer` — a parent/child span tree over the
    simulator's logical clock (no wall-clock anywhere).
:mod:`repro.obs.metrics`
    :class:`MetricsRegistry` — O(1) counters, gauges and fixed-bucket
    histograms with a deterministic ``snapshot()`` that is bit-identical
    at any ``DHS_JOBS`` worker count.
:mod:`repro.obs.runtime`
    The zero-cost switch: hot paths guard on ``runtime.TRACING`` /
    ``runtime.METERING`` and skip all instrumentation when off.
:mod:`repro.obs.export`
    JSONL trace dumps (byte-identical for a fixed seed), span-tree
    rendering, and the paper-style per-interval load table.

See docs/OBSERVABILITY.md for the span model, the metric catalogue, and
the determinism contract.
"""

from repro.obs.export import (
    LoadRow,
    dump_jsonl,
    dumps_jsonl,
    format_load_table,
    format_snapshot,
    render_span_tree,
    span_to_dict,
)
from repro.obs.metrics import (
    METRIC_BUCKETS,
    Histogram,
    MetricsRegistry,
    Snapshot,
)
from repro.obs.runtime import disable, enable, observed
from repro.obs.span import NULL_TRACER, AttrValue, NullTracer, Span, Tracer

__all__ = [
    "AttrValue",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Histogram",
    "MetricsRegistry",
    "Snapshot",
    "METRIC_BUCKETS",
    "enable",
    "disable",
    "observed",
    "span_to_dict",
    "dump_jsonl",
    "dumps_jsonl",
    "render_span_tree",
    "LoadRow",
    "format_load_table",
    "format_snapshot",
]
