"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

The paper's evaluation is built from a handful of aggregate numbers —
hops per lookup, probes per interval, bytes and bits touched, per-node
access load — that today are scraped per-experiment.  A
:class:`MetricsRegistry` makes them first-class: O(1) ``inc`` /
``set_gauge`` / ``observe`` on the hot paths, and a :meth:`snapshot`
that is a plain, deterministically-ordered dict suitable for JSON
export and bit-for-bit comparison.

Determinism contract (see docs/OBSERVABILITY.md):

* counters and histogram buckets are integers (or exact float sums
  merged in a fixed order), so snapshots are reproducible;
* under ``DHS_JOBS`` parallelism every trial runs against a fresh
  registry and :func:`repro.sim.parallel.run_trials` merges the
  per-trial snapshots **in spec order** — the serial path uses the same
  capture-and-merge sequence, so ``snapshot()`` is bit-identical at any
  worker count;
* ``reset()`` clears every value (and cascades to attached resettables
  like :class:`~repro.overlay.stats.LoadTracker`), so experiment cells
  sharing a process cannot cross-contaminate.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Mapping, Protocol, Sequence, Tuple, Union

__all__ = [
    "BUCKETS_HOPS",
    "BUCKETS_PROBES",
    "BUCKETS_BITS",
    "BUCKETS_SEGMENTS",
    "GAUGE_RING_BUILD_SECONDS",
    "GAUGE_RING_MEMBERSHIP_BYTES_PER_NODE",
    "GAUGE_RING_NODE_HEAP_BYTES",
    "GAUGE_RING_PEAK_RSS_BYTES",
    "METRIC_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "Resettable",
    "Snapshot",
]

#: A snapshot is plain JSON-ready data (see :meth:`MetricsRegistry.snapshot`).
Snapshot = Dict[str, Dict[str, Union[float, Dict[str, Union[float, List[int], List[float]]]]]]

#: Default bucket upper bounds for hop-count histograms (last bucket is
#: the +inf overflow).  Chord lookups on the evaluated rings run a few
#: to a few dozen hops; the exponential ladder keeps tails visible.
BUCKETS_HOPS: Tuple[float, ...] = (0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64)

#: Buckets for per-interval probe counts (``lim`` is 5 in the paper;
#: the eq. 6 adaptive policy can push budgets higher).
BUCKETS_PROBES: Tuple[float, ...] = (0, 1, 2, 3, 4, 5, 8, 12, 20, 40)

#: Buckets for per-probe set-bit counts (``bits touched``).
BUCKETS_BITS: Tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

#: Buckets for anti-entropy segment counts per reconciliation (a node
#: root covers one segment per stored interval, ~L - b of them).
BUCKETS_SEGMENTS: Tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64)

#: The metric catalogue: histogram names -> default bucket bounds.
#: Counters and gauges need no pre-declaration; histograms observed via
#: :meth:`MetricsRegistry.observe` fall back to these bounds.
METRIC_BUCKETS: Mapping[str, Tuple[float, ...]] = {
    "dhs.lookup.hops": BUCKETS_HOPS,
    "dhs.count.probes_per_interval": BUCKETS_PROBES,
    "dhs.count.bits_touched": BUCKETS_BITS,
    "dhs.insert.store_hops": BUCKETS_HOPS,
    "dhs.antientropy.segments_mismatched": BUCKETS_SEGMENTS,
}

#: Fallback bounds for histograms not in the catalogue.
_DEFAULT_BUCKETS: Tuple[float, ...] = BUCKETS_HOPS

# ----------------------------------------------------------------------
# Scale-tier gauge names (ring-construction instrumentation).
#
# ``membership_bytes_per_node`` is a pure function of the deployment and
# may be set from experiment trial cells.  ``build_seconds`` and
# ``peak_rss_bytes`` carry wall-clock / process state and MUST only be
# set by benchmarks and scale-tier tests — never inside a trial cell,
# where they would break the DHS_JOBS bit-identity contract.
# ----------------------------------------------------------------------

#: Wall-clock seconds to construct the overlay (benchmarks/tests only).
GAUGE_RING_BUILD_SECONDS = "dhs.ring.build_seconds"

#: Bytes of membership state per live node (deterministic).
GAUGE_RING_MEMBERSHIP_BYTES_PER_NODE = "dhs.ring.membership_bytes_per_node"

#: tracemalloc-measured heap bytes per node for a reference ring build
#: (memory-regression test only).
GAUGE_RING_NODE_HEAP_BYTES = "dhs.ring.node_heap_bytes"

#: Peak resident set size observed around a ring build (benchmarks/tests
#: only; 0.0 where the platform cannot report it).
GAUGE_RING_PEAK_RSS_BYTES = "dhs.ring.peak_rss_bytes"


class Resettable(Protocol):
    """Anything with a ``reset()`` (e.g. ``LoadTracker``)."""

    def reset(self) -> None: ...


class Histogram:
    """Fixed-bucket histogram with O(log buckets) record.

    ``bounds`` are inclusive upper edges; one extra overflow bucket
    catches values above the last bound.  ``sum``/``count`` track the
    exact totals (sums of integral observations stay exact in floats up
    to 2**53, far beyond any hop count this simulator produces).
    """

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram bounds must be sorted and unique: {bounds!r}")
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        # Inclusive upper edges: bucket i is the smallest bound >= value,
        # anything above the last edge lands in the overflow bucket.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def mean(self) -> float:
        """Mean observed value (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Union[float, List[int], List[float]]]:
        """Plain-data form used by snapshots (bounds, counts, sum, count)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }

    def merge_dict(self, data: Mapping[str, Union[float, List[int], List[float]]]) -> None:
        """Accumulate a snapshot produced by a same-bounds histogram."""
        bounds = data["bounds"]
        if not isinstance(bounds, list) or tuple(bounds) != self.bounds:
            raise ValueError(
                f"histogram bounds mismatch: {bounds!r} vs {self.bounds!r}"
            )
        counts = data["counts"]
        assert isinstance(counts, list)
        for index, amount in enumerate(counts):
            self.counts[index] += int(amount)
        total = data["sum"]
        observations = data["count"]
        assert isinstance(total, (int, float)) and isinstance(observations, (int, float))
        self.total += total
        self.count += int(observations)

    def reset(self) -> None:
        """Zero every bucket and total (bounds are kept)."""
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0


class MetricsRegistry:
    """Named counters, gauges, and histograms for one process (or trial).

    All record operations are O(1) dict work; nothing allocates per
    event beyond first use of a name.  Hot paths guard on
    ``repro.obs.runtime.METERING`` so a disabled registry costs one
    module-attribute read per operation.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._attached: List[Resettable] = []

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (last write wins)."""
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``.

        Bucket bounds come from :data:`METRIC_BUCKETS` (or the hop
        ladder for unknown names); use :meth:`histogram` first to pin
        custom bounds.
        """
        hist = self._histograms.get(name)
        if hist is None:
            hist = self.histogram(name)
        # Inlined Histogram.observe: this method sits on the lookup /
        # probe hot paths, where the extra call level is measurable.
        hist.counts[bisect_left(hist.bounds, value)] += 1
        hist.total += value
        hist.count += 1

    def histogram(self, name: str, bounds: Sequence[float] | None = None) -> Histogram:
        """Get (or create with ``bounds``) the histogram ``name``."""
        hist = self._histograms.get(name)
        if hist is None:
            if bounds is None:
                bounds = METRIC_BUCKETS.get(name, _DEFAULT_BUCKETS)
            hist = Histogram(bounds)
            self._histograms[name] = hist
        elif bounds is not None and tuple(float(b) for b in bounds) != hist.bounds:
            raise ValueError(f"histogram {name!r} already exists with other bounds")
        return hist

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 when never written)."""
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> float:
        """Current value of gauge ``name`` (0.0 when never written)."""
        return self._gauges.get(name, 0.0)

    def snapshot(self) -> Snapshot:
        """Deterministic plain-data view of everything recorded.

        Keys are sorted, values are scalars/lists only — two registries
        that saw the same events (in any interleaving, merged in the
        same order) produce equal snapshots, which is what the
        ``DHS_JOBS`` bit-identity gate compares.
        """
        return {
            "counters": {name: self._counters[name] for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name] for name in sorted(self._gauges)},
            "histograms": {
                name: self._histograms[name].to_dict()
                for name in sorted(self._histograms)
            },
        }

    # ------------------------------------------------------------------
    # Merging (spec-order parallel aggregation) and lifecycle.
    # ------------------------------------------------------------------
    def merge_snapshot(self, snapshot: Snapshot) -> None:
        """Accumulate another registry's snapshot into this one.

        Counters and histogram buckets add; gauges overwrite (last
        merge wins) — so merging per-trial snapshots in spec order
        reproduces exactly what a serial run recording into one registry
        through the same capture sequence would hold.
        """
        counters = snapshot.get("counters", {})
        for name in sorted(counters):
            value = counters[name]
            assert isinstance(value, (int, float))
            self._counters[name] = self._counters.get(name, 0) + value
        gauges = snapshot.get("gauges", {})
        for name in sorted(gauges):
            value = gauges[name]
            assert isinstance(value, (int, float))
            self._gauges[name] = value
        histograms = snapshot.get("histograms", {})
        for name in sorted(histograms):
            data = histograms[name]
            assert isinstance(data, dict)
            bounds = data["bounds"]
            assert isinstance(bounds, list)
            self.histogram(name, bounds=bounds).merge_dict(data)

    def attach(self, resettable: Resettable) -> None:
        """Cascade :meth:`reset` to ``resettable`` (e.g. a LoadTracker).

        Lets an experiment driver wire the overlay's per-node access
        tallies to the registry so one ``reset()`` call cleans every
        tally between cells — the fault-matrix policy columns must never
        see each other's load.
        """
        self._attached.append(resettable)

    def reset(self) -> None:
        """Zero all values (histogram bounds survive); cascade to attached."""
        self._counters.clear()
        self._gauges.clear()
        for hist in self._histograms.values():
            hist.reset()
        for child in self._attached:
            child.reset()

    def is_empty(self) -> bool:
        """Whether nothing has been recorded since creation/reset."""
        return (
            not self._counters
            and not self._gauges
            and all(h.count == 0 for h in self._histograms.values())
        )
