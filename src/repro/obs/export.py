"""Exporters: JSONL trace dumps, span trees, and the paper-style load table.

The JSONL format is one JSON object per span, in start (``seq``) order,
with sorted keys and compact separators — a fixed-seed run therefore
produces a **byte-identical** file, which the committed golden-trace
fixture pins end to end (tests/obs/test_golden_trace.py).

``format_load_table`` renders per-interval access-load rows in the shape
of the paper's Figure 7: the exponentially-shrinking id-space intervals
each hold roughly ``2^-(r+1)`` of the nodes yet receive roughly equal
access counts per node — the uniform-load claim the DHS design makes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import IO, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.obs.metrics import Snapshot
from repro.obs.span import AttrValue, Span

__all__ = [
    "span_to_dict",
    "dump_jsonl",
    "dumps_jsonl",
    "render_span_tree",
    "LoadRow",
    "format_load_table",
    "format_snapshot",
]


def span_to_dict(span: Span) -> Dict[str, Union[AttrValue, None, Dict[str, AttrValue]]]:
    """Plain-data form of one span (stable field set, JSON-ready)."""
    return {
        "seq": span.seq,
        "span": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "tick": span.tick,
        "event": span.event,
        "attrs": dict(span.attrs),
    }


def dumps_jsonl(spans: Iterable[Span]) -> str:
    """The JSONL trace dump as a string (one span per line, seq order)."""
    lines = [
        json.dumps(span_to_dict(span), sort_keys=True, separators=(",", ":"))
        for span in spans
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def dump_jsonl(spans: Iterable[Span], fp: IO[str]) -> int:
    """Write the JSONL dump to ``fp``; returns the number of spans."""
    text = dumps_jsonl(spans)
    fp.write(text)
    return text.count("\n")


def render_span_tree(spans: Sequence[Span], max_attrs: int = 6) -> str:
    """ASCII tree of a span list (children indented under parents).

    Attributes are rendered inline, ``key=value`` sorted by key, at most
    ``max_attrs`` per span (the rest elided with ``...``).
    """
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)

    lines: List[str] = []

    def attr_text(span: Span) -> str:
        items = sorted(span.attrs.items())
        shown = [f"{key}={value}" for key, value in items[:max_attrs]]
        if len(items) > max_attrs:
            shown.append("...")
        return f" [{', '.join(shown)}]" if shown else ""

    def walk(parent: Optional[int], prefix: str) -> None:
        group = children.get(parent, [])
        for position, span in enumerate(group):
            last = position == len(group) - 1
            branch = "`-" if last else "|-"
            marker = "* " if span.event else ""
            lines.append(
                f"{prefix}{branch} {marker}{span.name} @t{span.tick}{attr_text(span)}"
            )
            walk(span.span_id, prefix + ("   " if last else "|  "))

    walk(None, "")
    return "\n".join(lines)


@dataclass(frozen=True)
class LoadRow:
    """Access load of one id-space interval (one Figure-7 bar)."""

    interval: int
    #: Bit position the interval stores (``r`` in the paper).
    position: int
    #: Live nodes inside the interval.
    nodes: int
    #: Total accesses charged to those nodes.
    accesses: int

    @property
    def per_node(self) -> float:
        """Mean accesses per interval node (0.0 for empty intervals)."""
        return self.accesses / self.nodes if self.nodes else 0.0


def format_load_table(rows: Sequence[LoadRow], title: str = "Per-interval access load") -> str:
    """Render the Figure-7-style load table with a uniformity summary."""
    header = f"{'interval':>8}  {'bit r':>5}  {'nodes':>6}  {'accesses':>9}  {'per node':>9}"
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.interval:>8}  {row.position:>5}  {row.nodes:>6}  "
            f"{row.accesses:>9}  {row.per_node:>9.2f}"
        )
    populated = [row.per_node for row in rows if row.nodes > 0]
    if populated:
        mean = sum(populated) / len(populated)
        peak = max(populated)
        ratio = peak / mean if mean > 0 else 0.0
        lines.append("-" * len(header))
        lines.append(
            f"per-node load over populated intervals: mean {mean:.2f}, "
            f"max {peak:.2f}, max/mean {ratio:.2f} (1.00 = perfectly uniform)"
        )
    return "\n".join(lines)


def format_snapshot(snapshot: Snapshot) -> str:
    """Human-readable rendering of a metrics snapshot."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name} = {counters[name]:g}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name} = {gauges[name]:g}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            data = histograms[name]
            assert isinstance(data, Mapping)
            count = data["count"]
            total = data["sum"]
            assert isinstance(count, (int, float)) and isinstance(total, (int, float))
            mean = total / count if count else 0.0
            lines.append(f"  {name}: n={count:g} mean={mean:.3f}")
            bounds = data["bounds"]
            bucket_counts = data["counts"]
            assert isinstance(bounds, list) and isinstance(bucket_counts, list)
            edges = [f"<={bound:g}" for bound in bounds] + ["overflow"]
            cells = [
                f"{edge}:{bucket}"
                for edge, bucket in zip(edges, bucket_counts)
                if bucket
            ]
            if cells:
                lines.append(f"    {' '.join(cells)}")
    return "\n".join(lines)
