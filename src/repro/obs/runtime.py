"""The observability on/off switch the hot paths guard on.

Instrumented code never calls the tracer or registry unconditionally; it
reads two module-level flags first::

    from repro.obs import runtime as obs

    if obs.TRACING:
        with obs.TRACER.span("dhs.count", tick=now):
            ...
    if obs.METERING:
        obs.METRICS.observe("dhs.lookup.hops", hops)

Both flags default to ``False`` and the default tracer is the no-op
:data:`~repro.obs.span.NULL_TRACER`, so the disabled-mode cost of an
instrumented hot path is one module-attribute read per guard — the
``count``/``insert`` perf micros pin this at ≈0% overhead against the
committed baseline (benchmarks/perf/run.py, ``*_traced`` entries carry
the enabled-mode overhead, gated below 25% by ``check.py``).

State changes go through :func:`enable` / :func:`disable` or the
:func:`observed` context manager; the latter restores the previous state
on exit, which is what keeps test isolation trivial.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import NULL_TRACER, Tracer

__all__ = [
    "TRACING",
    "METERING",
    "TRACER",
    "METRICS",
    "enable",
    "disable",
    "observed",
]

#: Whether span recording is active (hot-path guard).
TRACING: bool = False
#: Whether metric recording is active (hot-path guard).
METERING: bool = False
#: The active tracer (the no-op singleton when tracing is off).
TRACER: Tracer = NULL_TRACER
#: The active metrics registry.  Always a real registry so direct reads
#: (``obs.METRICS.counter(...)``) work even when metering is off.
METRICS: MetricsRegistry = MetricsRegistry()


def enable(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    *,
    tracing: bool = True,
    metering: bool = True,
) -> Tuple[Tracer, MetricsRegistry]:
    """Turn observability on; returns the active (tracer, registry).

    Passing no tracer installs a fresh recording :class:`Tracer`;
    passing no registry keeps the current one.  ``tracing=False`` /
    ``metering=False`` enable only one half.
    """
    global TRACING, METERING, TRACER, METRICS
    if tracing:
        TRACER = tracer if tracer is not None else Tracer()
        TRACING = True
    if metering:
        if registry is not None:
            METRICS = registry
        METERING = True
    return TRACER, METRICS


def disable() -> None:
    """Turn all observability off and drop back to the no-op tracer."""
    global TRACING, METERING, TRACER
    TRACING = False
    METERING = False
    TRACER = NULL_TRACER


@contextmanager
def observed(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    *,
    tracing: bool = True,
    metering: bool = True,
) -> Iterator[Tuple[Tracer, MetricsRegistry]]:
    """Scoped :func:`enable` that restores the previous state on exit."""
    global TRACING, METERING, TRACER, METRICS
    saved = (TRACING, METERING, TRACER, METRICS)
    try:
        yield enable(tracer, registry, tracing=tracing, metering=metering)
    finally:
        TRACING, METERING, TRACER, METRICS = saved
