"""Pure-Python MD4 (RFC 1320).

The paper's evaluation creates node and item identifiers with MD4, "selected
due to its speed on 32-bit CPUs".  We implement it from scratch so the
reproduction has no dependency on ``hashlib`` offering the legacy algorithm
(OpenSSL 3 removed it from the default provider).

MD4 is cryptographically broken; here it is used only as a pseudo-uniform
bit mixer, exactly as in the paper.
"""

from __future__ import annotations

import struct

__all__ = ["MD4", "md4_digest", "md4_hexdigest", "md4_int"]

_MASK32 = 0xFFFFFFFF


def _lrot(value: int, shift: int) -> int:
    value &= _MASK32
    return ((value << shift) | (value >> (32 - shift))) & _MASK32


def _f(x: int, y: int, z: int) -> int:
    return (x & y) | (~x & z)


def _g(x: int, y: int, z: int) -> int:
    return (x & y) | (x & z) | (y & z)


def _h(x: int, y: int, z: int) -> int:
    return x ^ y ^ z


class MD4:
    """Incremental MD4 with the familiar ``update``/``digest`` interface."""

    digest_size = 16
    block_size = 64

    def __init__(self, data: bytes = b"") -> None:
        self._state = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476]
        self._length = 0
        self._buffer = b""
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        """Feed ``data`` into the hash state."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"MD4 expects bytes, got {type(data).__name__}")
        data = bytes(data)
        self._length += len(data)
        buf = self._buffer + data
        offset = 0
        while offset + 64 <= len(buf):
            self._compress(buf[offset : offset + 64])
            offset += 64
        self._buffer = buf[offset:]

    def digest(self) -> bytes:
        """Return the 16-byte digest of the data fed so far."""
        clone = MD4()
        clone._state = list(self._state)
        clone._length = self._length
        clone._buffer = self._buffer
        clone._finalize()
        return struct.pack("<4I", *clone._state)

    def hexdigest(self) -> str:
        """Return the digest as a 32-character lowercase hex string."""
        return self.digest().hex()

    def copy(self) -> "MD4":
        """Return an independent copy of the current hash state."""
        clone = MD4()
        clone._state = list(self._state)
        clone._length = self._length
        clone._buffer = self._buffer
        return clone

    def _finalize(self) -> None:
        bit_length = (self._length * 8) & 0xFFFFFFFFFFFFFFFF
        pad_length = 56 - (self._length % 64)
        if pad_length <= 0:
            pad_length += 64
        padding = b"\x80" + b"\x00" * (pad_length - 1)
        tail = struct.pack("<Q", bit_length)
        buf = self._buffer + padding + tail
        self._buffer = b""
        for offset in range(0, len(buf), 64):
            self._compress(buf[offset : offset + 64])

    def _compress(self, block: bytes) -> None:
        x = struct.unpack("<16I", block)
        a, b, c, d = self._state

        # Round 1: F, shifts 3/7/11/19, word order 0..15.
        for i in range(0, 16, 4):
            a = _lrot(a + _f(b, c, d) + x[i + 0], 3)
            d = _lrot(d + _f(a, b, c) + x[i + 1], 7)
            c = _lrot(c + _f(d, a, b) + x[i + 2], 11)
            b = _lrot(b + _f(c, d, a) + x[i + 3], 19)

        # Round 2: G + 0x5A827999, shifts 3/5/9/13, column-major word order.
        for i in range(4):
            a = _lrot(a + _g(b, c, d) + x[i + 0] + 0x5A827999, 3)
            d = _lrot(d + _g(a, b, c) + x[i + 4] + 0x5A827999, 5)
            c = _lrot(c + _g(d, a, b) + x[i + 8] + 0x5A827999, 9)
            b = _lrot(b + _g(c, d, a) + x[i + 12] + 0x5A827999, 13)

        # Round 3: H + 0x6ED9EBA1, shifts 3/9/11/15, bit-reversed word order.
        for i in (0, 2, 1, 3):
            a = _lrot(a + _h(b, c, d) + x[i + 0] + 0x6ED9EBA1, 3)
            d = _lrot(d + _h(a, b, c) + x[i + 8] + 0x6ED9EBA1, 9)
            c = _lrot(c + _h(d, a, b) + x[i + 4] + 0x6ED9EBA1, 11)
            b = _lrot(b + _h(c, d, a) + x[i + 12] + 0x6ED9EBA1, 15)

        self._state = [
            (self._state[0] + a) & _MASK32,
            (self._state[1] + b) & _MASK32,
            (self._state[2] + c) & _MASK32,
            (self._state[3] + d) & _MASK32,
        ]


def md4_digest(data: bytes) -> bytes:
    """One-shot MD4 digest of ``data``."""
    return MD4(data).digest()


def md4_hexdigest(data: bytes) -> str:
    """One-shot MD4 hex digest of ``data``."""
    return MD4(data).hexdigest()


def md4_int(data: bytes, bits: int = 64) -> int:
    """MD4 digest truncated to a ``bits``-bit unsigned integer.

    The digest is interpreted little-endian (matching the internal word
    order) and masked to the requested width; ``bits`` may not exceed 128.
    """
    if not 0 < bits <= 128:
        raise ValueError(f"bits must be in (0, 128], got {bits}")
    value = int.from_bytes(md4_digest(data), "little")
    return value & ((1 << bits) - 1)
