"""Fast 64-bit integer mixers used as pseudo-uniform hash functions.

Hash sketches only require a hash whose output bits are individually
unbiased and jointly well mixed; ``splitmix64`` (Steele, Lea & Flood 2014)
and the MurmurHash3 finalizer both pass this bar and are orders of
magnitude faster in pure Python than a full digest such as MD4.
"""

from __future__ import annotations

__all__ = ["splitmix64", "fmix64", "mix_with_seed"]

_MASK64 = 0xFFFFFFFFFFFFFFFF


def splitmix64(x: int) -> int:
    """One round of the splitmix64 output function.

    Bijective on 64-bit integers, so distinct inputs never collide — a
    convenient property when hashing already-unique item identifiers.
    """
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def fmix64(x: int) -> int:
    """MurmurHash3's 64-bit finalizer (also bijective)."""
    x &= _MASK64
    x = ((x ^ (x >> 33)) * 0xFF51AFD7ED558CCD) & _MASK64
    x = ((x ^ (x >> 33)) * 0xC4CEB9FE1A85EC53) & _MASK64
    return x ^ (x >> 33)


def mix_with_seed(x: int, seed: int) -> int:
    """Mix ``x`` under ``seed``, giving an indexed family of 64-bit hashes.

    Two rounds keep the avalanche strong even when seeds differ in a single
    bit.  Not bijective across seeds (only within one seed), which is all a
    hash *family* needs.
    """
    return splitmix64(splitmix64(x ^ splitmix64(seed)))
