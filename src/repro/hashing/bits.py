"""Bit-level utilities used throughout the sketch and DHS layers.

The central function is :func:`rho`, the paper's ``ρ(y)``: the 0-indexed
position of the least-significant 1-bit of ``y``, with the convention
``rho(0, width) == width`` (section 2.2.1 of the paper, where the width is
the bitmap length ``L``).
"""

from __future__ import annotations

__all__ = [
    "bit",
    "rho",
    "rank",
    "lsb",
    "msb_position",
    "reverse_bits",
    "mask",
]


def mask(width: int) -> int:
    """Return a bit mask with the ``width`` low-order bits set."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def bit(y: int, k: int) -> int:
    """Return the ``k``-th bit of ``y`` (bit 0 = least significant)."""
    if k < 0:
        raise ValueError(f"bit index must be non-negative, got {k}")
    return (y >> k) & 1


def rho(y: int, width: int) -> int:
    """Position of the least-significant 1-bit of ``y`` (0-indexed).

    Follows the paper's convention: ``rho(0) == width`` where ``width`` is
    the number of bits under consideration.  ``y`` is first truncated to its
    ``width`` low-order bits, so stray high bits cannot inflate the result.
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    y &= mask(width)
    if y == 0:
        return width
    return (y & -y).bit_length() - 1


def rank(y: int, width: int) -> int:
    """Durand–Flajolet 1-indexed rank: ``rho(y) + 1``, capped at ``width + 1``.

    This is the quantity the LogLog estimator's ``alpha_m`` constant is
    derived for; keeping both conventions explicit avoids off-by-one bias.
    """
    return rho(y, width) + 1


def lsb(y: int, width: int) -> int:
    """Return the ``width`` low-order bits of ``y`` (the paper's lsb_k)."""
    return y & mask(width)


def msb_position(y: int) -> int:
    """0-indexed position of the most-significant 1-bit; -1 for ``y == 0``."""
    if y < 0:
        raise ValueError(f"y must be non-negative, got {y}")
    return y.bit_length() - 1


def reverse_bits(y: int, width: int) -> int:
    """Reverse the ``width`` low-order bits of ``y``.

    Useful for mapping between "leftmost zero" and "rightmost one"
    formulations when testing the PCSA/LogLog duality.
    """
    y &= mask(width)
    out = 0
    for _ in range(width):
        out = (out << 1) | (y & 1)
        y >>= 1
    return out
