"""Hash-function abstraction shared by sketches and the overlay.

Both DHTs and hash sketches assume a pseudo-uniform hash
``h: D -> [0, 2^L)`` (section 2.2 of the paper).  :class:`HashFamily`
provides exactly that contract for arbitrary Python items (ints, strings,
bytes) with two interchangeable back-ends:

* :class:`MixerHash` — seeded splitmix64 family; the default, fast enough
  to hash millions of items in a simulation run.
* :class:`MD4Hash` — the paper's own choice, built on our RFC 1320
  implementation; byte-for-byte reproducible across platforms.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.hashing.bits import mask
from repro.hashing.md4 import md4_int
from repro.hashing.mixers import mix_with_seed, splitmix64

__all__ = ["HashFamily", "MixerHash", "MD4Hash", "default_hash_family"]


def _to_bytes(item: Any) -> bytes:
    """Canonical byte encoding for the hashable item types we support."""
    if isinstance(item, bytes):
        return item
    if isinstance(item, str):
        return item.encode("utf-8")
    if isinstance(item, bool):
        # bool is an int subclass; give it a distinct tag to avoid aliasing
        # True with the integer 1 in string-keyed workloads.
        return b"bool:\x01" if item else b"bool:\x00"
    if isinstance(item, int):
        width = max(8, (item.bit_length() + 8) // 8 * 8)
        return item.to_bytes(width // 8, "little", signed=True)
    if isinstance(item, tuple):
        parts = [b"tuple:", len(item).to_bytes(4, "little")]
        for element in item:
            encoded = _to_bytes(element)
            parts.append(len(encoded).to_bytes(4, "little"))
            parts.append(encoded)
        return b"".join(parts)
    raise TypeError(f"unhashable item type for HashFamily: {type(item).__name__}")


def _to_int(item: Any) -> int:
    """Map an item onto an integer for the mixer back-end."""
    if isinstance(item, bool):
        return 0x626F6F6C_00000000 | int(item)
    if isinstance(item, int):
        return item
    data = _to_bytes(item)
    # Fold the bytes FNV-1a style, then rely on the mixer for avalanche.
    acc = 0xCBF29CE484222325
    for byte in data:
        acc = ((acc ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc


class HashFamily(ABC):
    """A family of pseudo-uniform hash functions ``h: item -> [0, 2^bits)``.

    ``seed`` selects a member of the family; sketches that need independent
    hash functions (e.g. per-experiment randomization) instantiate the same
    family with different seeds.
    """

    def __init__(self, bits: int = 64, seed: int = 0) -> None:
        if not 0 < bits <= 128:
            raise ValueError(f"bits must be in (0, 128], got {bits}")
        self.bits = bits
        self.seed = seed
        self._mask = mask(bits)

    @abstractmethod
    def hash(self, item: Any) -> int:
        """Return the ``bits``-bit hash of ``item``."""

    def __call__(self, item: Any) -> int:
        return self.hash(item)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(bits={self.bits}, seed={self.seed})"

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.bits == other.bits  # type: ignore[attr-defined]
            and self.seed == other.seed  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.bits, self.seed))


class MixerHash(HashFamily):
    """splitmix64-based family; the library default."""

    def hash(self, item: Any) -> int:
        value = mix_with_seed(_to_int(item), self.seed)
        if self.bits > 64:
            value |= splitmix64(value) << 64
        return value & self._mask


class MD4Hash(HashFamily):
    """MD4-based family, matching the paper's evaluation setup.

    The seed is prepended to the item encoding, giving independent family
    members without altering the digest algorithm itself.
    """

    def hash(self, item: Any) -> int:
        prefix = self.seed.to_bytes(8, "little", signed=True)
        return md4_int(prefix + _to_bytes(item), bits=min(self.bits, 128))


def default_hash_family(bits: int = 64, seed: int = 0) -> HashFamily:
    """The hash family used across the library unless overridden."""
    return MixerHash(bits=bits, seed=seed)
