"""Hashing substrate: bit utilities, MD4, fast mixers, hash families."""

from repro.hashing.bits import bit, lsb, mask, msb_position, rank, reverse_bits, rho
from repro.hashing.family import HashFamily, MD4Hash, MixerHash, default_hash_family
from repro.hashing.md4 import MD4, md4_digest, md4_hexdigest, md4_int
from repro.hashing.mixers import fmix64, mix_with_seed, splitmix64

__all__ = [
    "bit",
    "lsb",
    "mask",
    "msb_position",
    "rank",
    "reverse_bits",
    "rho",
    "HashFamily",
    "MD4Hash",
    "MixerHash",
    "default_hash_family",
    "MD4",
    "md4_digest",
    "md4_hexdigest",
    "md4_int",
    "fmix64",
    "mix_with_seed",
    "splitmix64",
]
