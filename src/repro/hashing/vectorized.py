"""Vectorized (numpy) twin of the scalar mixer hash path.

Populating DHS with millions of tuples is dominated by hashing and key
splitting; this module reproduces ``MixerHash`` + ``split_key`` bit-for-
bit over int64 arrays so workload loading runs at numpy speed.  Tests
assert exact agreement with the scalar implementations.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import numpy.typing as npt

__all__ = ["splitmix64_np", "mix_with_seed_np", "observations_np"]

_U64 = np.uint64


def splitmix64_np(x: npt.NDArray[np.uint64]) -> npt.NDArray[np.uint64]:
    """splitmix64 over a uint64 array (wrap-around semantics)."""
    with np.errstate(over="ignore"):
        x = (x + _U64(0x9E3779B97F4A7C15)).astype(_U64)
        x = ((x ^ (x >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)).astype(_U64)
        x = ((x ^ (x >> _U64(27))) * _U64(0x94D049BB133111EB)).astype(_U64)
        return x ^ (x >> _U64(31))


def mix_with_seed_np(x: npt.NDArray[np.uint64], seed: int) -> npt.NDArray[np.uint64]:
    """Vectorized ``repro.hashing.mixers.mix_with_seed``."""
    from repro.hashing.mixers import splitmix64

    seed_mixed = _U64(splitmix64(seed & 0xFFFFFFFFFFFFFFFF))
    return splitmix64_np(splitmix64_np(x.astype(_U64) ^ seed_mixed))


def _popcount64(x: npt.NDArray[np.uint64]) -> npt.NDArray[np.int64]:
    """Per-element population count of a uint64 array."""
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return np.bitwise_count(x).astype(np.int64)
    # SWAR fallback for numpy < 2.0 (exact for all 64-bit values).
    x = x - ((x >> _U64(1)) & _U64(0x5555555555555555))
    x = (x & _U64(0x3333333333333333)) + ((x >> _U64(2)) & _U64(0x3333333333333333))
    x = (x + (x >> _U64(4))) & _U64(0x0F0F0F0F0F0F0F0F)
    with np.errstate(over="ignore"):
        x = (x * _U64(0x0101010101010101)).astype(_U64)
    return (x >> _U64(56)).astype(np.int64)


def observations_np(
    item_ids: npt.NDArray[np.int64],
    m: int,
    key_bits: int,
    seed: int = 0,
) -> Tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
    """``(vector, position)`` arrays matching the scalar sketch path.

    ``item_ids`` must be non-negative integers (the library's workload
    item ids).  ``m`` must be a positive power of two and ``key_bits``
    must exceed ``log2(m)`` — the same contract
    :class:`repro.sketches.base.HashSketch` enforces (the ``m - 1``
    bucket mask and the ``log2(m)``-bit shift are wrong otherwise).
    Positions are clamped to ``position_bits - 1`` exactly like
    :meth:`repro.sketches.base.HashSketch.add_key`.
    """
    if m < 1 or m & (m - 1):
        raise ValueError(f"m must be a positive power of two, got {m}")
    c = m.bit_length() - 1
    if key_bits <= c:
        raise ValueError(
            f"key_bits ({key_bits}) must exceed log2(m) ({c}) to leave "
            "room for the position bits"
        )
    if np.any(np.asarray(item_ids) < 0):
        raise ValueError("vectorized hashing requires non-negative item ids")
    position_bits = key_bits - c
    hashed = mix_with_seed_np(np.asarray(item_ids, dtype=np.int64).astype(_U64), seed)
    truncated = hashed & _U64((1 << key_bits) - 1)
    vectors = (truncated & _U64(m - 1)).astype(np.int64)
    rest = (truncated >> _U64(c)).astype(_U64)
    # rho: isolate the lowest set bit, then its index is the popcount of
    # (bit - 1) — integer-exact, no float round-trip.  ``rest == 0``
    # (the all-zero suffix) encodes rho = position_bits.
    lowest = rest & (-rest.astype(np.int64)).astype(_U64)
    positions = np.where(
        rest == 0,
        np.int64(position_bits),
        _popcount64(np.maximum(lowest, _U64(1)) - _U64(1)),
    )
    positions = np.minimum(positions, position_bits - 1)
    return vectors, positions
