"""Vectorized (numpy) twin of the scalar mixer hash path.

Populating DHS with millions of tuples is dominated by hashing and key
splitting; this module reproduces ``MixerHash`` + ``split_key`` bit-for-
bit over int64 arrays so workload loading runs at numpy speed.  Tests
assert exact agreement with the scalar implementations.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import numpy.typing as npt

__all__ = ["splitmix64_np", "mix_with_seed_np", "observations_np"]

_U64 = np.uint64


def splitmix64_np(x: npt.NDArray[np.uint64]) -> npt.NDArray[np.uint64]:
    """splitmix64 over a uint64 array (wrap-around semantics)."""
    with np.errstate(over="ignore"):
        x = (x + _U64(0x9E3779B97F4A7C15)).astype(_U64)
        x = ((x ^ (x >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)).astype(_U64)
        x = ((x ^ (x >> _U64(27))) * _U64(0x94D049BB133111EB)).astype(_U64)
        return x ^ (x >> _U64(31))


def mix_with_seed_np(x: npt.NDArray[np.uint64], seed: int) -> npt.NDArray[np.uint64]:
    """Vectorized ``repro.hashing.mixers.mix_with_seed``."""
    from repro.hashing.mixers import splitmix64

    seed_mixed = _U64(splitmix64(seed & 0xFFFFFFFFFFFFFFFF))
    return splitmix64_np(splitmix64_np(x.astype(_U64) ^ seed_mixed))


def observations_np(
    item_ids: npt.NDArray[np.int64],
    m: int,
    key_bits: int,
    seed: int = 0,
) -> Tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
    """``(vector, position)`` arrays matching the scalar sketch path.

    ``item_ids`` must be non-negative integers (the library's workload
    item ids).  Positions are clamped to ``position_bits - 1`` exactly
    like :meth:`repro.sketches.base.HashSketch.add_key`.
    """
    if np.any(np.asarray(item_ids) < 0):
        raise ValueError("vectorized hashing requires non-negative item ids")
    c = m.bit_length() - 1
    position_bits = key_bits - c
    hashed = mix_with_seed_np(np.asarray(item_ids, dtype=np.int64).astype(_U64), seed)
    truncated = hashed & _U64((1 << key_bits) - 1)
    vectors = (truncated & _U64(m - 1)).astype(np.int64)
    rest = (truncated >> _U64(c)).astype(_U64)
    # rho via the lowest-set-bit trick; exact because the isolated bit is
    # a power of two (log2 is exact on those in float64).
    lowest = rest & (-rest.astype(np.int64)).astype(_U64)
    positions = np.where(
        rest == 0,
        np.int64(position_bits),
        np.log2(np.maximum(lowest, _U64(1)).astype(np.float64)).astype(np.int64),
    )
    positions = np.minimum(positions, position_bits - 1)
    return vectors, positions
