"""Exception hierarchy for the DHS reproduction.

All library-specific errors derive from :class:`ReproError` so that callers
can catch the whole family with a single ``except`` clause while still being
able to discriminate between configuration mistakes, overlay-level failures,
and estimation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A parameter combination is invalid (e.g. ``m`` not a power of two)."""


class OverlayError(ReproError):
    """Base class for DHT/overlay-level failures."""


class EmptyOverlayError(OverlayError):
    """An operation requires at least one live node, but none exists."""


class NodeNotFoundError(OverlayError, KeyError):
    """A node id was addressed that is not part of the overlay."""


class LookupFailedError(OverlayError):
    """A DHT lookup could not be routed (e.g. all replicas failed)."""


class MessageDropped(OverlayError):
    """A routed message was lost in flight (fault-injection layer).

    Raised by :class:`repro.overlay.faults.FaultInjector` when a
    scripted fault drops a lookup/store/probe message; callers recover
    through a :class:`repro.core.policy.RetryPolicy` (or degrade
    gracefully when the retry budget is exhausted).
    """

    def __init__(self, operation: str = "message") -> None:
        super().__init__(f"{operation} dropped by fault injection")
        self.operation = operation


class SketchError(ReproError):
    """Base class for sketch-level failures."""


class IncompatibleSketchError(SketchError, ValueError):
    """Two sketches cannot be merged (different m, k, or hash family)."""


class EstimationError(SketchError):
    """An estimate could not be produced (e.g. empty sketch w/o fallback)."""


class HistogramError(ReproError, ValueError):
    """Invalid histogram specification (empty domain, zero buckets...)."""


class QueryError(ReproError):
    """Base class for query-processing failures (unknown relation etc.)."""
