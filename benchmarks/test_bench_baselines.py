"""Bench: DHS versus the four related-work families (section 1).

Quantifies the constraint violations the paper attributes to each
family: single-node hotspots (constraints 2/3), gossip's multi-round
cost (1) and duplicate sensitivity (6), convergecast's touch-every-node
cost (1/3), and sampling's error + duplicate sensitivity (4/6).
"""

from conftest import run_once

from repro.experiments.baselines import format_baselines, run_baseline_comparison


def test_bench_baseline_comparison(benchmark, report_writer):
    rows = run_once(benchmark, run_baseline_comparison, seed=1)
    report_writer("baselines", format_baselines(rows, "(distinct truth: 20,000)"))

    by = {row.method: row for row in rows}
    dhs = by["DHS (sLL)"]

    # Duplicate insensitivity (constraint 6).
    assert dhs.duplicate_insensitive
    assert not by["push-sum gossip"].duplicate_insensitive
    assert not by["node sampling"].duplicate_insensitive
    # The duplicate-sensitive families overestimate the distinct count.
    assert by["push-sum gossip"].estimate > 1.5 * dhs.estimate
    assert by["node sampling"].estimate > 1.5 * dhs.estimate

    # Load balance (constraints 2/3): the single-node counter's hotspot
    # dwarfs DHS's spread (updates + query measured alike).
    assert dhs.load_imbalance < by["single-node counter"].load_imbalance / 3

    # Efficiency (constraint 1): DHS's one-shot query needs far fewer
    # hops than gossip's rounds or convergecast's full sweep.
    assert dhs.query_hops < by["push-sum gossip"].query_hops / 5
    assert dhs.query_hops < by["convergecast (sketch)"].query_hops / 2
    assert by["push-sum gossip"].rounds > 1

    # Sketch gossip fixes duplicates but pays sketch-sized messages
    # every round on every node — still a constraint-1 violation.
    assert by["sketch gossip"].duplicate_insensitive
    assert by["sketch gossip"].rounds > 1
    assert by["sketch gossip"].query_bytes > 20 * dhs.query_bytes

    # Accuracy (constraint 4): DHS lands within sketch tolerance.
    assert dhs.error_pct < 20
