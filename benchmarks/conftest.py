"""Benchmark-harness fixtures.

Each benchmark regenerates one of the paper's tables/figures, prints it,
and archives it under ``benchmarks/results/`` so a full
``pytest benchmarks/ --benchmark-only`` run leaves the reproduced
evaluation on disk (EXPERIMENTS.md records a reference run).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report_writer():
    """Write a named report to benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text, flush=True)

    return write


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
