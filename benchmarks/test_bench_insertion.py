"""Bench: insertion & maintenance costs (paper section 5.2, text).

Paper reference (1024 nodes, m=512, 100 buckets): ~3.4 hops and ~27 B
per insertion; ~384 kB storage per node per relation, vs a ~400 kB
theoretical worst case.
"""

import math

from conftest import run_once

from repro.experiments.insertion import run_insertion_experiment


def test_bench_insertion_costs(benchmark, report_writer):
    report = run_once(benchmark, run_insertion_experiment, seed=1)
    report_writer("insertion_costs", report.format())

    # O(log N) routing: within a small factor of log2(N).
    assert 1.0 < report.mean_hops_per_insert < 1.5 * math.log2(report.n_nodes)
    # The byte model: tuple size (8 B) carried per hop.
    assert report.mean_bytes_per_insert == 8 * report.mean_hops_per_insert
    # Storage bounded by the paper's worst case (I x m x b per node).
    assert report.mean_storage_bytes_per_node <= report.theoretical_worst_case_bytes
    assert report.max_storage_bytes_per_node <= 3 * report.theoretical_worst_case_bytes
