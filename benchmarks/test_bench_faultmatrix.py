"""Bench: the fault matrix (fault kind x intensity x policy x R).

Extends the paper's §3.5 robustness sweep with the richer fault model of
``repro.overlay.faults``: ambient message drops, lazy crashes and
crash-with-amnesia rejoins, crossed with the recovery stack (retry
policy, read-repair + stabilize, replication).  The assertions pin the
three headline behaviours the machinery exists for: error grows with
the drop rate when nothing recovers, retries + repair claw the accuracy
back, and every lossy count flags itself (degraded / confidence).
"""

from conftest import run_once

from repro.experiments.faultmatrix import format_faultmatrix, run_faultmatrix


def test_bench_faultmatrix(benchmark, report_writer):
    rows = run_once(benchmark, run_faultmatrix, seed=3)
    report_writer("fault_matrix", format_faultmatrix(rows))

    by = {
        (row.fault, row.intensity, row.policy, row.replication): row for row in rows
    }
    # (a) With no recovery, error grows with the drop rate at R=0.
    assert (
        by[("drop", 0.3, "none", 0)].error_pct
        > by[("drop", 0.1, "none", 0)].error_pct
    )
    # (b) Retries + read-repair recover accuracy under heavy drops...
    assert (
        by[("drop", 0.3, "retry+repair", 2)].error_pct
        < by[("drop", 0.3, "none", 2)].error_pct / 2
    )
    # ...and the stabilize handoff restores amnesiac deployments that
    # replication alone cannot: a rejoined-empty owner masks replicas
    # that spilled past its (possibly node-free) home interval, where
    # the interval-bounded walk never looks.
    assert (
        by[("amnesia", 0.3, "retry+repair", 2)].error_pct
        < by[("amnesia", 0.3, "none", 2)].error_pct / 2
    )
    assert by[("amnesia", 0.3, "retry+repair", 2)].repair_writes > 0
    # (c) Lossy runs know they are lossy: drops always flag degraded and
    # depress confidence below the clean-run 1.0.
    assert by[("drop", 0.3, "none", 0)].degraded_pct == 100.0
    assert by[("drop", 0.3, "none", 0)].confidence < 0.5
