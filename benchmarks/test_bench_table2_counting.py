"""Bench: Table 2 — counting costs and accuracy (sLL / PCSA).

Paper reference (N=1024, n=10-80M):

    m     nodes    hops       BW (kB)      error (%)
    128   68/65    86/69      11.0/8.8     5.0/5.8
    256   73/69    92/77      11.8/9.6     3.5/4.3
    512   81/80    120/114    15.4/15.9    1.8/2.7
    1024  96/91    139/128    17.8/16.0    1.1/7.5

Reproduced shape: error falls as ~1/sqrt(m) until the probe-miss regime,
bandwidth grows with m, hop count stays within a small O(k log N) band.
The workload AND network are scaled together to preserve the
alpha = n/(2mN) ratio that governs probe success (see EXPERIMENTS.md).
"""

from conftest import run_once

from repro.experiments.common import env_scale
from repro.experiments.table2 import format_table2, run_table2


def test_bench_table2_counting(benchmark, report_writer):
    rows = run_once(benchmark, run_table2, seed=1)
    report_writer("table2_counting", format_table2(rows, env_scale(2e-2)))

    by = {(row.m, row.estimator): row for row in rows}
    for estimator in ("sll", "pcsa"):
        # Errors are single-digit percentages throughout, like the paper,
        # and m=1024 is no worse than m=128 beyond trial noise.
        for m in (128, 256, 512, 1024):
            assert by[(m, estimator)].error_pct < 10
        assert (
            by[(1024, estimator)].error_pct
            < by[(128, estimator)].error_pct + 2.5
        )
        # Bandwidth grows with m; hop count must not scale with m.
        assert by[(1024, estimator)].bw_kbytes > by[(128, estimator)].bw_kbytes
        assert by[(1024, estimator)].hops < 4 * by[(128, estimator)].hops
