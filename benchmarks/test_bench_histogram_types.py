"""Bench: advanced histogram types over DHS (paper footnote 5).

The paper flags compressed / v-optimal / maxdiff histograms as future
work; this bench derives all of them from one DHS-maintained micro-bucket
histogram and compares narrow-range selectivity error at an equal bucket
budget, against the same constructions from exact micro-counts.
"""

from conftest import run_once

from repro.experiments.histogram_types import (
    format_histogram_types,
    run_histogram_types,
)


def test_bench_histogram_types(benchmark, report_writer):
    rows = run_once(benchmark, run_histogram_types, seed=1)
    report_writer("histogram_types", format_histogram_types(rows))

    by = {row.kind: row for row in rows}
    # Variance-aware bucketings beat equi-width on skewed data.
    assert by["v_optimal"].mean_range_error_pct < by["equi_width"].mean_range_error_pct
    assert by["compressed"].mean_range_error_pct < by["equi_width"].mean_range_error_pct
    # DHS estimation noise does not wreck the derived constructions:
    # each stays within a few points of its exact-micro counterpart.
    for row in rows:
        assert row.mean_range_error_pct < row.oracle_error_pct + 12
