"""Bench: soft-state maintenance under churn (section 3.3).

The paper's TTL trade-off, measured: shorter TTL + frequent refresh
tracks a drifting cardinality best but costs the most refresh
bandwidth; no refresh decays to zero; immortal entries over-count
departed items.
"""

from conftest import run_once

from repro.experiments.churn import format_churn, run_churn_experiment


def test_bench_churn_policies(benchmark, report_writer):
    rows = run_once(benchmark, run_churn_experiment, seed=1)
    report_writer("churn_policies", format_churn(rows))

    by = {row.label: row for row in rows}
    tight = by["ttl=4, refresh every 2"]
    lazy = by["ttl=16, refresh every 8"]
    decayed = by["ttl=4, refresh never"]
    immortal = by["ttl=inf, refresh never"]

    # Tight maintenance tracks best — and pays the most bandwidth.
    assert tight.mean_error_pct < lazy.mean_error_pct
    assert tight.mean_error_pct < immortal.mean_error_pct
    assert tight.refresh_kb > lazy.refresh_kb > 0
    # TTL without refresh silently decays (worst of all).
    assert decayed.mean_error_pct > tight.mean_error_pct
    assert decayed.final_error_pct > 50
    assert decayed.refresh_kb == 0
