"""Bench: query optimization with DHS histograms (section 5.2, text).

Paper reference (citing the PIER/FREddies setup): the optimal 3-way join
strategy moved 47 MB versus FREddies' 71 MB, while reconstructing the
DHS histograms that find the optimum costs ~1 MB — "orders of magnitude"
below the savings.  Reproduced claims: the plan picked from
DHS-reconstructed histograms matches (or nearly matches) the oracle
plan, beats the naive order, and the histogram acquisition cost is a
tiny fraction of the realized savings.
"""

from conftest import run_once

from repro.experiments.query_opt import run_query_opt


def test_bench_query_optimization(benchmark, report_writer):
    report = run_once(benchmark, run_query_opt, seed=1)
    report_writer("query_opt", report.format())

    # The DHS-informed plan beats the naive join order outright...
    assert report.chosen_shipped_mb < report.naive_shipped_mb
    # ...lands near the oracle's transfer volume...
    assert report.chosen_shipped_mb <= 1.5 * report.oracle_shipped_mb
    # ...and the histogram cost is orders of magnitude below the savings.
    savings = report.naive_shipped_mb - report.chosen_shipped_mb
    assert report.histogram_cost_mb < savings / 10
