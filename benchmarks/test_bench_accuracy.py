"""Bench: accuracy vs number of bitmaps (section 5.2, "Accuracy").

Paper reference: average error ~2.9% (PCSA) / ~5% (sLL) through the
moderate-m range, then a collapse once lim=5 probes stop finding the
sparse per-bitmap bits: at m=4096 PCSA degrades to ~44% versus sLL's
~15% — sLL tolerates the miss regime far better.  The collapse point
scales with alpha = n/(2mN); at reproduction scale it appears at the
top of the same sweep.
"""

from conftest import run_once

from repro.experiments.accuracy import format_accuracy, run_accuracy_sweep


def test_bench_accuracy_vs_bitmaps(benchmark, report_writer):
    rows = run_once(benchmark, run_accuracy_sweep, seed=1)
    report_writer("accuracy_vs_m", format_accuracy(rows))

    by = {(row.m, row.estimator): row for row in rows}
    # Moderate m: single-digit errors, improving with m.
    assert by[(512, "sll")].error_pct < 10
    assert by[(512, "pcsa")].error_pct < 10
    assert by[(512, "sll")].error_pct < by[(64, "sll")].error_pct + 2
    # Collapse regime at the top of the sweep: PCSA degrades much
    # faster than sLL (the paper's 44% vs 15% at m=4096).
    assert by[(4096, "pcsa")].error_pct > by[(4096, "sll")].error_pct
    assert by[(4096, "pcsa")].error_pct > 2 * by[(512, "pcsa")].error_pct
    # The collapse is an *under*estimate (missed bits), as predicted.
    assert by[(4096, "pcsa")].bias_pct < 0
