"""Bench: per-cell histogram accuracy (section 5.2, text).

Paper reference: mean per-cell error ~8.6% at m=64, ~7.7% at 128,
~6.8% at 256 — tracking the sketch's O(1/sqrt(m)) noise because probe
misses are negligible in the measured regime.
"""

from conftest import run_once

from repro.experiments.histogram_accuracy import (
    format_histogram_accuracy,
    run_histogram_accuracy,
)


def test_bench_histogram_cell_error(benchmark, report_writer):
    rows = run_once(benchmark, run_histogram_accuracy, seed=1)
    report_writer("histogram_accuracy", format_histogram_accuracy(rows))

    by = {(row.m, row.estimator): row for row in rows}
    # Error declines from m=64 to m=256 (the paper's 8.6 -> 6.8).
    assert by[(256, "sll")].cell_error_pct < by[(64, "sll")].cell_error_pct
    assert by[(128, "pcsa")].cell_error_pct < by[(64, "pcsa")].cell_error_pct + 2
    # And stays within a small factor of the sketch-theoretic sigma.
    for estimator in ("sll", "pcsa"):
        assert (
            by[(256, estimator)].cell_error_pct
            < 4 * by[(256, estimator)].sketch_sigma_pct
        )
