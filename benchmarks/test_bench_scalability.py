"""Bench: scalability figure (section 5.2, "Scalability"; figure omitted
in the paper).

Paper reference: counting hops grow from ~109/97 (sLL/PCSA) at 1024
nodes to only ~112/103 at 10240 nodes — logarithmic scaling.  The sweep
covers 256..4096 by default; set DHS_BENCH_BIG=1 to add 10240.
"""

import math
import os

from conftest import run_once

from repro.experiments.scalability import format_scalability, run_scalability


def test_bench_scalability(benchmark, report_writer):
    node_counts = (256, 1024, 4096)
    if os.environ.get("DHS_BENCH_BIG"):
        node_counts = (256, 1024, 4096, 10240)
    rows = run_once(benchmark, run_scalability, node_counts=node_counts, seed=1)
    report_writer("scalability", format_scalability(rows))

    by = {(row.n_nodes, row.estimator): row for row in rows}
    for estimator in ("sll", "pcsa"):
        small = by[(256, estimator)].hops
        large = by[(4096, estimator)].hops
        # 16x the nodes: hops grow, but by at most ~log ratio, not 16x.
        growth = large / small
        assert growth < math.log2(4096) / math.log2(256) * 2.5
        assert large >= small * 0.8  # no pathological shrinkage either
