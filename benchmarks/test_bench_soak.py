"""Bench: continuous-churn soak and the anti-entropy acceptance gate.

The soak run (``soak/*`` trial labels) drives a sustained insert+count
workload through periodic amnesia/partition/crash/transient faults and
archives the divergence / convergence / repair-bandwidth trajectory of
the two maintenance policies.  The assertions pin the tentpole's
acceptance criteria:

* anti-entropy keeps replica divergence bounded (and ends converged)
  where read-repair alone does not;
* its repair traffic is fully charged through the ``SizeModel`` and is
  reported per reconciliation round;
* on the paired fault-matrix cells, the ``retry+antientropy`` column
  shows *strictly lower under-read* than ``retry+readrepair`` on every
  amnesia and partition cell.
"""

from conftest import run_once

from repro.experiments.faultmatrix import run_faultmatrix
from repro.experiments.soak import format_soak, run_soak

#: The paired gate cells: at this deployment size every amnesia and
#: partition cell leaves walk-invisible replicas for read-repair while
#: anti-entropy's homecoming pass heals them (see docs/ROBUSTNESS.md).
GATE = dict(
    fault_kinds=("amnesia", "partition"),
    intensities=(0.3, 0.4),
    policies=("retry+readrepair", "retry+antientropy"),
    replications=(2,),
    n_nodes=96,
    n_items=6_000,
    num_bitmaps=32,
    estimator="sll",
    trials=3,
    draws=3,
)


def test_bench_soak(benchmark, report_writer):
    rows = run_once(benchmark, run_soak, seed=3)
    by = {row.policy: row for row in rows}
    ae, rr = by["antientropy"], by["readrepair"]
    rounds = max(1, ae.ticks)  # antientropy_every=1: one round per tick
    report = format_soak(rows) + (
        f"\nanti-entropy repair bandwidth: {ae.repair_kb:.1f} kB over "
        f"{rounds} rounds ({1024 * ae.repair_kb / rounds:.0f} B/round, "
        f"{ae.repair_writes} entries rewritten)"
    )
    report_writer("soak", report)

    # (a) Proactive reconciliation keeps the replica chains converged:
    # the run ends at divergence 0 and every fault heals within its
    # window, while read-repair alone leaves standing divergence.
    assert ae.final_divergence == 0
    assert ae.mean_divergence < rr.mean_divergence
    assert ae.mean_convergence_ticks < rr.mean_convergence_ticks
    # (b) The healing is not free — and every byte of it is visible:
    # SizeModel-charged digest + summary traffic, reported per round.
    assert ae.repair_kb > 0
    assert ae.repair_writes > 0
    assert rr.repair_kb == 0
    # (c) Counts under churn under-read less with anti-entropy running.
    assert ae.mean_underread_pct < rr.mean_underread_pct


def test_bench_soak_gate_antientropy_beats_readrepair(benchmark, report_writer):
    rows = run_once(benchmark, run_faultmatrix, seed=3, **GATE)
    by = {
        (row.fault, row.intensity, row.policy): row
        for row in rows
    }
    lines = []
    for fault in GATE["fault_kinds"]:
        for intensity in GATE["intensities"]:
            rr = by[(fault, intensity, "retry+readrepair")]
            ae = by[(fault, intensity, "retry+antientropy")]
            lines.append(
                f"{fault:10s} p={intensity:.2f}  "
                f"readrepair under-read {rr.underread_pct:5.1f}%  ->  "
                f"antientropy {ae.underread_pct:5.1f}%"
            )
            # The acceptance gate: strictly lower under-read on every
            # amnesia and partition cell, from actual repair work.
            assert ae.underread_pct < rr.underread_pct
            assert ae.repair_writes > rr.repair_writes
    report_writer("soak_gate", "Anti-entropy under-read gate\n" + "\n".join(lines))
