"""Compare a perf run against a committed baseline (CI regression gate).

Usage::

    python benchmarks/perf/check.py --baseline benchmarks/perf/baseline_smoke.json \
                                    --current BENCH_perf.json [--max-regression 3.0]

For every benchmark present in *both* files, the current ``ops_per_sec``
must be at least ``baseline / max_regression``.  The generous default
factor (3x) absorbs hardware differences between the machine that
committed the baseline and the CI runner while still catching real
hot-path regressions (which are typically 5-30x when a fast path stops
being taken).  Exits non-zero on any regression or on an empty
intersection of benchmark names.

Two baselines are committed: ``baseline_smoke.json`` (the per-push
``smoke`` preset) and ``baseline_scale.json`` (the ``scale`` preset's
internet-scale families — ``ringbuild/n1e5`` and
``multitenant/zipf_1e5`` — gated by the ``scale-smoke`` job).  The same
shared-name ``ops_per_sec`` rule applies to both.

``parallel_scaling/*`` entries additionally carry an
``identical_to_serial`` flag (the harness's determinism contract: any
worker count reproduces the serial rows bit for bit).  A false flag in
the *current* run fails the check outright — that is a correctness bug,
not a performance regression, so no tolerance factor applies.

``count_regstore/*`` entries carry ``speedup_vs_packed`` — the array
backend's count throughput relative to the ``store="packed"`` reference
backend measured in the same process.  A value below 1.0 means the
contiguous register-array layout lost to the layout it replaced; that is
a hard failure with no tolerance factor (same-process A/B, machine
differences cancel).

``count_traced/*`` and ``insert_traced/*`` entries carry
``overhead_vs_disabled_pct`` — the in-process cost of running the same
workload with spans + metrics enabled.  Any entry above
``--max-traced-overhead`` (default 40%) fails the check; this number is
machine-independent (both modes run in the same process), so no
regression factor applies to it either.  The budget covers more than
instrumentation: enabling tracing also disqualifies the count fast path
(`Counter._fast` requires observability off), so the traced count pays
the reference-path delta on top of the span/metric cost — ~30% on the
headline workload, against which 40% leaves regression headroom.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=pathlib.Path, required=True)
    parser.add_argument("--current", type=pathlib.Path, required=True)
    parser.add_argument("--max-regression", type=float, default=3.0)
    parser.add_argument("--max-traced-overhead", type=float, default=40.0)
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())["benchmarks"]
    current = json.loads(args.current.read_text())["benchmarks"]
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("perf-check: no shared benchmarks between baseline and current")
        return 1

    diverged = [
        name
        for name, entry in sorted(current.items())
        if entry.get("identical_to_serial") is False
    ]
    if diverged:
        print(
            "perf-check: parallel runs diverged from serial results: "
            + ", ".join(diverged)
        )
        return 1

    slower_than_packed = [
        (name, entry["speedup_vs_packed"])
        for name, entry in sorted(current.items())
        if entry.get("speedup_vs_packed") is not None
        and entry["speedup_vs_packed"] < 1.0
    ]
    if slower_than_packed:
        for name, speedup in slower_than_packed:
            print(
                f"perf-check: {name} array backend is slower than the packed "
                f"reference ({speedup:.2f}x)"
            )
        return 1

    over_budget = [
        (name, entry["overhead_vs_disabled_pct"])
        for name, entry in sorted(current.items())
        if entry.get("overhead_vs_disabled_pct") is not None
        and entry["overhead_vs_disabled_pct"] > args.max_traced_overhead
    ]
    if over_budget:
        for name, pct in over_budget:
            print(
                f"perf-check: {name} traced overhead {pct:.1f}% exceeds the "
                f"{args.max_traced_overhead:.0f}% budget"
            )
        return 1

    failures = []
    width = max(len(name) for name in shared)
    for name in shared:
        base_ops = float(baseline[name]["ops_per_sec"])
        cur_ops = float(current[name]["ops_per_sec"])
        ratio = base_ops / cur_ops if cur_ops > 0 else float("inf")
        verdict = "ok"
        if ratio > args.max_regression:
            verdict = f"REGRESSION ({ratio:.1f}x slower)"
            failures.append(name)
        print(
            f"  {name:<{width}}  baseline {base_ops:>14,.1f}  "
            f"current {cur_ops:>14,.1f}  {verdict}"
        )
    if failures:
        print(
            f"perf-check: {len(failures)} benchmark(s) regressed more than "
            f"{args.max_regression}x: {', '.join(failures)}"
        )
        return 1
    print(f"perf-check: {len(shared)} benchmark(s) within {args.max_regression}x")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
