"""Tracked performance microbenchmarks (see docs/PERFORMANCE.md).

Usage::

    python benchmarks/perf/run.py [--preset smoke|default|full|scale]
                                  [--json BENCH_perf.json]

Measures wall-clock throughput and per-op hop counts of the three DHS
hot paths — overlay lookups, bulk insertion, and distributed counting —
and writes a machine-readable JSON trajectory (``BENCH_perf.json`` at
the repo root by default).  CI runs the ``smoke`` preset on every push
and fails if any microbenchmark regresses more than 3x against the
committed ``baseline_smoke.json`` (see ``check.py``).  The ``scale``
preset holds the internet-scale families (``ringbuild/n1e5``,
``multitenant/zipf_1e5``) gated by the ``scale-smoke`` job against
``baseline_scale.json``.

Every entry carries a canonical ``ops_per_sec`` so the regression check
and the report renderer need no per-benchmark knowledge; insert
benchmarks count one op per *item*, count benchmarks one op per
distributed count.
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import platform
import sys
import time
from typing import Any, Dict, List

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
_SRC = _REPO_ROOT / "src"
for path in (str(_SRC), str(_REPO_ROOT)):
    if path not in sys.path:
        sys.path.insert(0, path)

import numpy as np  # noqa: E402

from repro.core.config import DHSConfig  # noqa: E402
from repro.core.dhs import DistributedHashSketch  # noqa: E402
from repro.core.policy import RetryPolicy  # noqa: E402
from repro.obs import runtime as obs  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.obs.span import Tracer  # noqa: E402
from repro.overlay.chord import ChordRing  # noqa: E402
from repro.overlay.faults import FaultInjector, FaultPlan  # noqa: E402
from repro.sim.seeds import rng_for  # noqa: E402

#: Benchmark sizes per preset.  ``smoke`` must finish well under 60 s on
#: a cold CI runner; ``default`` is the committed BENCH_perf.json run;
#: ``full`` approaches the ROADMAP's scalability targets.
PRESETS: Dict[str, Dict[str, Any]] = {
    "smoke": {
        "lookup": [{"n_nodes": 256, "ops": 2000}],
        "insert": [{"n_nodes": 128, "array_items": 100_000, "scalar_items": 10_000}],
        "count": [{"n_nodes": 64, "m": 64, "items": 20_000, "counts": 5}],
        "count_faulty": [{"n_nodes": 64, "m": 64, "items": 20_000, "counts": 5}],
        "count_regstore": [{"n_nodes": 64, "m": 64, "items": 20_000, "counts": 5}],
        "count_traced": [
            {"n_nodes": 1024, "m": 512, "items": 1_000_000, "counts": 3},
        ],
        "insert_traced": [{"n_nodes": 128, "items": 100_000}],
        "parallel": {
            "jobs": [1, 2],
            "sweep": {"ms": (32, 64), "n_nodes": 32, "scale": 2e-4, "trials": 1},
        },
        "parallel_shared": {
            "jobs": [1, 2],
            "n_nodes": 64,
            "m": 64,
            "items": 50_000,
            "metrics": 4,
        },
    },
    "default": {
        "lookup": [{"n_nodes": 1024, "ops": 20_000}, {"n_nodes": 4096, "ops": 10_000}],
        "insert": [
            {"n_nodes": 1024, "array_items": 1_000_000, "scalar_items": 200_000},
        ],
        "count": [
            {"n_nodes": 256, "m": 128, "items": 100_000, "counts": 8},
            {"n_nodes": 1024, "m": 512, "items": 200_000, "counts": 4},
        ],
        "count_faulty": [
            {"n_nodes": 256, "m": 128, "items": 100_000, "counts": 8},
        ],
        "count_regstore": [
            {"n_nodes": 1024, "m": 512, "items": 200_000, "counts": 4},
        ],
        "count_traced": [
            {"n_nodes": 1024, "m": 512, "items": 1_000_000, "counts": 8},
        ],
        "insert_traced": [{"n_nodes": 1024, "items": 1_000_000}],
        "parallel": {
            "jobs": [1, 2, 4, 8],
            "sweep": {"ms": (64, 128, 256), "n_nodes": 64, "scale": 2e-3, "trials": 2},
        },
        "parallel_shared": {
            "jobs": [1, 2, 4],
            "n_nodes": 256,
            "m": 128,
            "items": 250_000,
            "metrics": 6,
        },
    },
    # Internet-scale families gated by the ``scale-smoke`` CI job against
    # ``baseline_scale.json``.  Kept out of ``smoke`` so the per-push job
    # stays fast; ``ringbuild`` exercises the lean SortedIdArray bulk
    # construction path, ``multitenant`` the vectorized Zipf populate.
    "scale": {
        "ringbuild": [
            {"n_nodes": 100_000, "label": "n1e5"},
        ],
        "multitenant": [
            {
                "n_nodes": 1024,
                "n_tenants": 100_000,
                "total_ops": 500_000,
                "m": 64,
                "label": "zipf_1e5",
            },
        ],
    },
    "full": {
        "lookup": [
            {"n_nodes": 1024, "ops": 50_000},
            {"n_nodes": 16384, "ops": 20_000},
        ],
        "insert": [
            {"n_nodes": 1024, "array_items": 10_000_000, "scalar_items": 500_000},
            {"n_nodes": 8192, "array_items": 10_000_000, "scalar_items": 200_000},
        ],
        "count": [
            {"n_nodes": 1024, "m": 512, "items": 1_000_000, "counts": 8},
            {"n_nodes": 4096, "m": 1024, "items": 1_000_000, "counts": 4},
        ],
        "count_faulty": [
            {"n_nodes": 1024, "m": 512, "items": 1_000_000, "counts": 4},
        ],
        "count_regstore": [
            {"n_nodes": 1024, "m": 512, "items": 1_000_000, "counts": 4},
            {"n_nodes": 4096, "m": 1024, "items": 1_000_000, "counts": 2},
        ],
        "count_traced": [
            {"n_nodes": 1024, "m": 512, "items": 1_000_000, "counts": 4},
        ],
        "insert_traced": [{"n_nodes": 1024, "items": 10_000_000}],
        "parallel": {
            "jobs": [1, 2, 4, 8],
            "sweep": {"ms": (64, 128, 256, 512), "n_nodes": 128, "scale": 1e-2, "trials": 2},
        },
        "parallel_shared": {
            "jobs": [1, 2, 4, 8],
            "n_nodes": 1024,
            "m": 512,
            "items": 1_000_000,
            "metrics": 8,
        },
    },
}

SEED = 2006  # ICDE 2006 — fixed so runs are workload-identical.


def bench_lookup(n_nodes: int, ops: int, finger_cache: bool = True) -> Dict[str, Any]:
    """Random-key, random-origin lookup throughput on an idle ring."""
    ring = ChordRing.build(n_nodes, bits=64, seed=SEED, finger_cache=finger_cache)
    rng = rng_for(SEED, "perf-lookup", n_nodes)
    ids = list(ring.node_ids())
    keys = [rng.randrange(2**64) for _ in range(ops)]
    origins = [ids[rng.randrange(len(ids))] for _ in range(ops)]
    # Warm the finger memo with a small prefix so the steady-state rate
    # is measured (cold-cache cost is amortized across a real workload).
    for key, origin in zip(keys[:200], origins[:200]):
        ring.lookup(key, origin=origin)
    hops = 0
    start = time.perf_counter()
    for key, origin in zip(keys, origins):
        hops += ring.lookup(key, origin=origin).cost.hops
    seconds = time.perf_counter() - start
    return {
        "ops": ops,
        "seconds": round(seconds, 4),
        "ops_per_sec": round(ops / seconds, 1),
        "hops_per_op": round(hops / ops, 3),
    }


def bench_ringbuild(n_nodes: int) -> Dict[str, Any]:
    """Ring-construction throughput for the memory-lean overlay.

    One op per node joined.  Best-of-3 so a scheduler hiccup on a cold
    CI runner does not masquerade as a reintroduced quadratic (or
    per-node-object) construction path.  Alongside the rate, the entry
    records the resident membership footprint and how many ``Node``
    objects construction materialized — the lean representation promises
    8 B/node and zero, so drift here is visible in the trajectory even
    before it is slow enough to trip the throughput gate.
    """
    ring = ChordRing.build(n_nodes, bits=64, seed=SEED)
    best = float("inf")
    gc.collect()
    for _ in range(3):
        start = time.perf_counter()
        ring = ChordRing.build(n_nodes, bits=64, seed=SEED)
        best = min(best, time.perf_counter() - start)
    return {
        "ops": n_nodes,
        "seconds": round(best, 4),
        "ops_per_sec": round(n_nodes / best, 1),
        "membership_bytes_per_node": round(ring.membership_nbytes() / n_nodes, 2),
        "nodes_materialized": len(ring._nodes),
    }


def bench_multitenant(
    n_nodes: int, n_tenants: int, total_ops: int, m: int
) -> Dict[str, Any]:
    """Multi-tenant Zipf populate throughput (one op per observation).

    Draws the Zipf per-tenant operation counts, then times the single
    vectorized ``populate_tenants`` pass that hashes every tenant's
    items and stores them through their Zipf-chosen inserter nodes.  The
    resulting per-node storage balance rides along so the trajectory
    shows skew drift, not just speed.
    """
    from repro.experiments.multitenant import populate_tenants
    from repro.workloads.multitenant import load_balance, tenant_op_counts

    ring = ChordRing.build(n_nodes, bits=64, seed=SEED)
    dhs = DistributedHashSketch(
        ring, DHSConfig(num_bitmaps=m, key_bits=24), seed=SEED
    )
    ops = tenant_op_counts(n_tenants, total_ops, theta=0.7, seed=SEED)
    gc.collect()
    start = time.perf_counter()
    populate_tenants(dhs, ops, seed=SEED)
    seconds = time.perf_counter() - start
    balance = load_balance(
        np.fromiter(dhs.storage_per_node().values(), dtype=np.float64)
    )
    return {
        "ops": total_ops,
        "seconds": round(seconds, 4),
        "ops_per_sec": round(total_ops / seconds, 1),
        "active_tenants": int(np.count_nonzero(ops)),
        "storage_max_mean": round(balance.max_mean, 3),
        "storage_gini": round(balance.gini, 3),
    }


def bench_insert(
    n_nodes: int, items: int, vectorized: bool, m: int = 512
) -> Dict[str, Any]:
    """Bulk-insertion throughput (one metric, one origin node)."""
    ring = ChordRing.build(n_nodes, bits=64, seed=SEED)
    dhs = DistributedHashSketch(
        ring, DHSConfig(num_bitmaps=m, key_bits=24), seed=SEED
    )
    ids = np.arange(items, dtype=np.int64)
    origin = list(ring.node_ids())[0]
    start = time.perf_counter()
    if vectorized:
        cost = dhs.insert_array("perf", ids, origin=origin)
    else:
        cost = dhs.insert_bulk("perf", (int(item) for item in ids), origin=origin)
    seconds = time.perf_counter() - start
    return {
        "ops": items,
        "seconds": round(seconds, 4),
        "ops_per_sec": round(items / seconds, 1),
        "hops_per_op": round(cost.hops / items, 6),
        "total_hops": cost.hops,
    }


def bench_count(
    n_nodes: int, m: int, items: int, counts: int
) -> Dict[str, Any]:
    """Distributed-count latency on a populated ring."""
    ring = ChordRing.build(n_nodes, bits=64, seed=SEED)
    dhs = DistributedHashSketch(
        ring, DHSConfig(num_bitmaps=m, key_bits=24), seed=SEED
    )
    dhs.insert_array("perf", np.arange(items, dtype=np.int64))
    rng = rng_for(SEED, "perf-count", n_nodes, m)
    origins = [ring.random_live_node(rng) for _ in range(counts)]
    hops = 0
    start = time.perf_counter()
    for origin in origins:
        hops += dhs.count("perf", origin=origin).cost.hops
    seconds = time.perf_counter() - start
    return {
        "ops": counts,
        "seconds": round(seconds, 4),
        "ops_per_sec": round(counts / seconds, 2),
        "hops_per_op": round(hops / counts, 1),
        "seconds_per_count": round(seconds / counts, 4),
    }


def bench_count_faulty(
    n_nodes: int, m: int, items: int, counts: int, drop: float = 0.05
) -> Dict[str, Any]:
    """Distributed-count latency with the fault layer live.

    Same workload as :func:`bench_count`, but the ring is wrapped in a
    :class:`FaultInjector` losing ``drop`` of all messages (population
    stays clean via ``drop_from``) and counting runs under a 3-attempt
    retry policy.  Tracking this next to ``count`` keeps the fault
    layer's wrapper overhead and the retry bookkeeping from regressing
    the packed count hot path unnoticed.
    """
    ring = ChordRing.build(n_nodes, bits=64, seed=SEED)
    injector = FaultInjector(
        ring, FaultPlan(drop_probability=drop, drop_from=1), seed=SEED
    )
    dhs = DistributedHashSketch(
        injector,
        DHSConfig(num_bitmaps=m, key_bits=24),
        seed=SEED,
        policy=RetryPolicy(max_attempts=3, backoff_hops=1),
    )
    dhs.insert_array("perf", np.arange(items, dtype=np.int64))
    injector.advance_to(1)
    rng = rng_for(SEED, "perf-count-faulty", n_nodes, m)
    origins = [injector.random_live_node(rng) for _ in range(counts)]
    hops = 0
    degraded = 0
    start = time.perf_counter()
    for origin in origins:
        result = dhs.count("perf", origin=origin, now=1)
        hops += result.cost.hops
        degraded += int(result.degraded)
    seconds = time.perf_counter() - start
    return {
        "ops": counts,
        "seconds": round(seconds, 4),
        "ops_per_sec": round(counts / seconds, 2),
        "hops_per_op": round(hops / counts, 1),
        "seconds_per_count": round(seconds / counts, 4),
        "degraded_counts": degraded,
        "dropped_messages": injector.dropped_messages,
    }


def bench_count_backend(
    n_nodes: int, m: int, items: int, counts: int
) -> Dict[str, Any]:
    """Array-backend count throughput vs the packed reference backend.

    Runs the exact :func:`bench_count` workload twice in-process — once
    per ``DHSConfig(store=...)`` backend — and reports the array
    backend's stats alongside ``speedup_vs_packed`` and an
    ``identical_to_serial`` flag asserting both backends produced the
    same estimates and hop counts (the regstore determinism contract).
    ``check.py`` hard-fails when the array backend is slower than the
    layout it replaced or the flag flips; both checks are same-process
    A/B comparisons, so no machine-tolerance factor applies.
    """
    deployments: Dict[str, Any] = {}
    origins_by_store: Dict[str, List[int]] = {}
    for store in ("array", "packed"):
        ring = ChordRing.build(n_nodes, bits=64, seed=SEED)
        dhs = DistributedHashSketch(
            ring, DHSConfig(num_bitmaps=m, key_bits=24, store=store), seed=SEED
        )
        dhs.insert_array("perf", np.arange(items, dtype=np.int64))
        rng = rng_for(SEED, "perf-count-regstore", n_nodes, m)
        deployments[store] = dhs
        origins_by_store[store] = [ring.random_live_node(rng) for _ in range(counts)]

    def one_pass(store: str) -> Any:
        dhs = deployments[store]
        hops = 0
        seen: List[Any] = []
        start = time.perf_counter()
        for origin in origins_by_store[store]:
            result = dhs.count("perf", origin=origin)
            hops += result.cost.hops
            seen.append((result.estimates, result.cost.hops, result.probes))
        return time.perf_counter() - start, hops, seen

    # Alternating best-of repetitions with the collector parked, exactly
    # like bench_count_traced: the speedup is a same-process A/B ratio
    # and must not be at the mercy of one scheduler hiccup.
    best: Dict[str, float] = {"array": float("inf"), "packed": float("inf")}
    hops_by_store: Dict[str, int] = {}
    outcomes: Dict[str, List[Any]] = {}
    gc.collect()
    gc.disable()
    try:
        for _ in range(5):
            for store in ("array", "packed"):
                seconds, hops, seen = one_pass(store)
                best[store] = min(best[store], seconds)
                hops_by_store[store] = hops
                outcomes[store] = seen
    finally:
        gc.enable()
    per_store = {
        store: {
            "ops": counts,
            "seconds": round(seconds, 4),
            "ops_per_sec": round(counts / seconds, 2),
            "hops_per_op": round(hops_by_store[store] / counts, 1),
        }
        for store, seconds in best.items()
    }
    entry = per_store["array"]
    entry["packed_ops_per_sec"] = per_store["packed"]["ops_per_sec"]
    entry["speedup_vs_packed"] = round(
        entry["ops_per_sec"] / per_store["packed"]["ops_per_sec"], 2
    )
    entry["identical_to_serial"] = outcomes["array"] == outcomes["packed"]
    return entry


def bench_count_traced(
    n_nodes: int, m: int, items: int, counts: int
) -> Dict[str, Any]:
    """Distributed-count latency with tracing + metering enabled.

    Runs the exact :func:`bench_count` workload twice in-process —
    observability disabled, then enabled (fresh ``Tracer`` +
    ``MetricsRegistry``) — and reports the enabled throughput along with
    ``overhead_vs_disabled_pct``.  Three alternating repetitions per mode
    (best-of) damp scheduler noise.  ``check.py`` hard-fails when the
    overhead exceeds its ``--max-traced-overhead`` budget (40% by
    default); the disabled mode is covered by the ordinary ``count/``
    entry's baseline comparison, pinning the flag-check cost at ~0.
    The overhead includes losing the array-backend count fast path —
    ``Counter._fast`` requires observability off — so the traced pass
    pays the reference probe path plus the span/metric cost.

    The specs pin the *representative* deployment (the ``count/n1024_m512``
    headline workload): per-span overhead is a fixed pure-Python cost, so
    the ratio shrinks as the network (and with it the baseline lookup
    work per interval) grows — tiny rings at low load factors measure the
    instrumentation floor, not a deployment anyone traces.
    """
    ring = ChordRing.build(n_nodes, bits=64, seed=SEED)
    dhs = DistributedHashSketch(
        ring, DHSConfig(num_bitmaps=m, key_bits=24), seed=SEED
    )
    dhs.insert_array("perf", np.arange(items, dtype=np.int64))
    rng = rng_for(SEED, "perf-count-traced", n_nodes, m)
    origins = [ring.random_live_node(rng) for _ in range(counts)]

    def one_pass() -> float:
        start = time.perf_counter()
        for origin in origins:
            dhs.count("perf", origin=origin)
        return time.perf_counter() - start

    plain = traced = float("inf")
    spans = 0
    # The overhead ratio is an in-process A/B comparison, so shield it
    # from suite-order artefacts: collect whatever previous benchmarks
    # left behind and keep the collector out of both timed modes (the
    # per-pass span list is a few hundred entries — GC is irrelevant to
    # the instrumentation cost being measured).
    gc.collect()
    gc.disable()
    try:
        for _ in range(5):
            plain = min(plain, one_pass())
            tracer = Tracer()
            with obs.observed(tracer, MetricsRegistry()):
                traced = min(traced, one_pass())
            spans = len(tracer.spans)
    finally:
        gc.enable()
    overhead = 100.0 * (traced / plain - 1.0)
    return {
        "ops": counts,
        "seconds": round(traced, 4),
        "ops_per_sec": round(counts / traced, 2),
        "disabled_ops_per_sec": round(counts / plain, 2),
        "overhead_vs_disabled_pct": round(overhead, 2),
        "spans_per_op": round(spans / counts, 1),
    }


def bench_insert_traced(n_nodes: int, items: int, m: int = 512) -> Dict[str, Any]:
    """Vectorized bulk-insert throughput with tracing + metering enabled.

    Same alternating disabled/enabled structure as
    :func:`bench_count_traced`; the span stream here is one
    ``insert.store`` per interval, so the absolute overhead is dominated
    by the metering counters.
    """
    ring = ChordRing.build(n_nodes, bits=64, seed=SEED)
    dhs = DistributedHashSketch(
        ring, DHSConfig(num_bitmaps=m, key_bits=24), seed=SEED
    )
    ids = np.arange(items, dtype=np.int64)
    origin = list(ring.node_ids())[0]

    def one_pass() -> float:
        start = time.perf_counter()
        dhs.insert_array("perf", ids, origin=origin)
        return time.perf_counter() - start

    plain = traced = float("inf")
    spans = 0
    gc.collect()
    gc.disable()
    try:
        for _ in range(3):
            plain = min(plain, one_pass())
            tracer = Tracer()
            with obs.observed(tracer, MetricsRegistry()):
                traced = min(traced, one_pass())
            spans = len(tracer.spans)
    finally:
        gc.enable()
    overhead = 100.0 * (traced / plain - 1.0)
    return {
        "ops": items,
        "seconds": round(traced, 4),
        "ops_per_sec": round(items / traced, 1),
        "disabled_ops_per_sec": round(items / plain, 1),
        "overhead_vs_disabled_pct": round(overhead, 2),
        "spans_per_op": round(spans / items, 6),
    }


def bench_parallel(jobs_list: List[int], sweep: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Accuracy-sweep wall-clock at several ``DHS_JOBS`` widths.

    Every width must reproduce the serial (jobs=1) rows exactly — the
    harness's determinism contract — so each entry carries an
    ``identical_to_serial`` flag that ``check.py`` turns into a hard
    failure.  Speedups only show up on multi-core runners; on one core
    the flag still verifies the contract.
    """
    from repro.experiments.accuracy import run_accuracy_sweep

    entries: Dict[str, Dict[str, Any]] = {}
    serial_rows = None
    # Size goes in the name (like count/n256_m128) so entries from
    # different presets never collide in the regression check.
    size = f"n{sweep['n_nodes']}_m{max(sweep['ms'])}"
    for jobs in jobs_list:
        start = time.perf_counter()
        rows = run_accuracy_sweep(seed=SEED, jobs=jobs, **sweep)
        seconds = time.perf_counter() - start
        if serial_rows is None:
            serial_rows = rows
        cells = len(sweep["ms"]) * 2  # (m, hash_seed) grid with 2 default seeds
        entries[f"parallel_scaling/{size}/jobs{jobs}"] = {
            "ops": cells,
            "seconds": round(seconds, 4),
            "ops_per_sec": round(cells / seconds, 3),
            "jobs": jobs,
            "identical_to_serial": rows == serial_rows,
        }
    return entries


def _store_fingerprint(dhs: DistributedHashSketch) -> Dict[int, Dict[Any, Any]]:
    """Full logical store state, backend-agnostic (masks + TTL maps)."""
    return {
        node_id: {
            key: (slot.mask, dict(slot.expiring) if slot.expiring else None)
            for key, slot in dhs.dht.node(node_id).store.items()
        }
        for node_id in dhs.dht.node_ids()
    }


def bench_parallel_shared(
    jobs_list: List[int], n_nodes: int, m: int, items: int, metrics: int
) -> Dict[str, Dict[str, Any]]:
    """Zero-copy shared-memory parallelism at several ``DHS_JOBS`` widths.

    Two workloads per width (see :mod:`repro.core.shared`):

    * ``count`` — one populated deployment, its arena migrated into
      shared memory, every metric counted by forked workers against the
      same physical register pages;
    * ``insert`` — a fresh twin deployment per width, workers ORing
      hashed chunk deltas into shared arenas that the parent tree-merges
      before performing the serial stores.

    Every width must reproduce the serial results (and, for insert, the
    full node-store state) exactly; the ``identical_to_serial`` flag is
    a hard ``check.py`` failure when false.  Speedups only show up on
    multi-core runners — on one core the flags still verify the
    contract.
    """
    entries: Dict[str, Dict[str, Any]] = {}
    size = f"n{n_nodes}_m{m}"
    metric_ids = [f"perf{i}" for i in range(metrics)]

    ring = ChordRing.build(n_nodes, bits=64, seed=SEED)
    dhs = DistributedHashSketch(
        ring, DHSConfig(num_bitmaps=m, key_bits=24), seed=SEED
    )
    per_metric = max(items // metrics, 1)
    for i, metric in enumerate(metric_ids):
        dhs.insert_array(
            metric,
            np.arange(i * per_metric, (i + 1) * per_metric, dtype=np.int64),
        )
    serial_view = None
    for jobs in jobs_list:
        start = time.perf_counter()
        results = dhs.count_parallel(metric_ids, jobs=jobs)
        seconds = time.perf_counter() - start
        view = [(r.estimates, r.cost.hops, r.probes) for r in results]
        if serial_view is None:
            serial_view = view
        entries[f"parallel_shared/count/{size}/jobs{jobs}"] = {
            "ops": metrics,
            "seconds": round(seconds, 4),
            "ops_per_sec": round(metrics / seconds, 2),
            "jobs": jobs,
            "identical_to_serial": view == serial_view,
        }
    if dhs.arena is not None:
        dhs.arena.close()  # reclaim the shared segment before the next phase

    ids = np.arange(items, dtype=np.int64)
    serial_state = None
    for jobs in jobs_list:
        ring = ChordRing.build(n_nodes, bits=64, seed=SEED)
        dhs = DistributedHashSketch(
            ring, DHSConfig(num_bitmaps=m, key_bits=24), seed=SEED
        )
        start = time.perf_counter()
        cost = dhs.insert_array_parallel("perf", ids, jobs=jobs)
        seconds = time.perf_counter() - start
        state = (_store_fingerprint(dhs), cost.hops, round(cost.bytes, 4))
        if serial_state is None:
            serial_state = state
        entries[f"parallel_shared/insert/n{n_nodes}_items{items}/jobs{jobs}"] = {
            "ops": items,
            "seconds": round(seconds, 4),
            "ops_per_sec": round(items / seconds, 1),
            "jobs": jobs,
            "identical_to_serial": state == serial_state,
        }
    return entries


def run_suite(preset: str, only: set | None = None) -> Dict[str, Any]:
    sizes = PRESETS[preset]
    benchmarks: Dict[str, Dict[str, Any]] = {}

    def want(family: str) -> bool:
        return only is None or family in only

    for spec in sizes.get("ringbuild", []) if want("ringbuild") else []:
        name = f"ringbuild/{spec['label']}"
        print(f"[perf] {name} ...", flush=True)
        benchmarks[name] = bench_ringbuild(spec["n_nodes"])

    for spec in sizes.get("multitenant", []) if want("multitenant") else []:
        name = f"multitenant/{spec['label']}"
        print(f"[perf] {name} ...", flush=True)
        benchmarks[name] = bench_multitenant(
            spec["n_nodes"], spec["n_tenants"], spec["total_ops"], spec["m"]
        )

    for spec in sizes.get("lookup", []) if want("lookup") else []:
        name = f"lookup/n{spec['n_nodes']}"
        print(f"[perf] {name} ...", flush=True)
        benchmarks[name] = bench_lookup(spec["n_nodes"], spec["ops"])
        uncached = f"lookup_uncached/n{spec['n_nodes']}"
        print(f"[perf] {uncached} ...", flush=True)
        benchmarks[uncached] = bench_lookup(
            spec["n_nodes"], max(spec["ops"] // 4, 500), finger_cache=False
        )

    for spec in sizes.get("insert", []) if want("insert") else []:
        n_nodes = spec["n_nodes"]
        array_name = f"bulk_insert_array/n{n_nodes}_items{spec['array_items']}"
        print(f"[perf] {array_name} ...", flush=True)
        benchmarks[array_name] = bench_insert(
            n_nodes, spec["array_items"], vectorized=True
        )
        scalar_name = f"bulk_insert_scalar/n{n_nodes}_items{spec['scalar_items']}"
        print(f"[perf] {scalar_name} ...", flush=True)
        benchmarks[scalar_name] = bench_insert(
            n_nodes, spec["scalar_items"], vectorized=False
        )
        benchmarks[array_name]["speedup_vs_scalar"] = round(
            benchmarks[array_name]["ops_per_sec"]
            / benchmarks[scalar_name]["ops_per_sec"],
            2,
        )

    for spec in sizes.get("count", []) if want("count") else []:
        name = f"count/n{spec['n_nodes']}_m{spec['m']}"
        print(f"[perf] {name} ...", flush=True)
        benchmarks[name] = bench_count(
            spec["n_nodes"], spec["m"], spec["items"], spec["counts"]
        )

    for spec in sizes.get("count_faulty", []) if want("count_faulty") else []:
        name = f"count_faulty/n{spec['n_nodes']}_m{spec['m']}"
        print(f"[perf] {name} ...", flush=True)
        benchmarks[name] = bench_count_faulty(
            spec["n_nodes"], spec["m"], spec["items"], spec["counts"]
        )

    for spec in sizes.get("count_regstore", []) if want("count_regstore") else []:
        name = f"count_regstore/n{spec['n_nodes']}_m{spec['m']}"
        print(f"[perf] {name} ...", flush=True)
        benchmarks[name] = bench_count_backend(
            spec["n_nodes"], spec["m"], spec["items"], spec["counts"]
        )

    for spec in sizes.get("count_traced", []) if want("count_traced") else []:
        name = f"count_traced/n{spec['n_nodes']}_m{spec['m']}"
        print(f"[perf] {name} ...", flush=True)
        benchmarks[name] = bench_count_traced(
            spec["n_nodes"], spec["m"], spec["items"], spec["counts"]
        )

    for spec in sizes.get("insert_traced", []) if want("insert_traced") else []:
        name = f"insert_traced/n{spec['n_nodes']}_items{spec['items']}"
        print(f"[perf] {name} ...", flush=True)
        benchmarks[name] = bench_insert_traced(spec["n_nodes"], spec["items"])

    parallel = sizes.get("parallel")
    if parallel is not None and want("parallel"):
        print(f"[perf] parallel_scaling (jobs {parallel['jobs']}) ...", flush=True)
        benchmarks.update(bench_parallel(parallel["jobs"], dict(parallel["sweep"])))

    shared = sizes.get("parallel_shared")
    if shared is not None and want("parallel_shared"):
        print(f"[perf] parallel_shared (jobs {shared['jobs']}) ...", flush=True)
        benchmarks.update(
            bench_parallel_shared(
                shared["jobs"],
                shared["n_nodes"],
                shared["m"],
                shared["items"],
                shared["metrics"],
            )
        )

    return {
        "schema": 1,
        "preset": preset,
        "seed": SEED,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": benchmarks,
    }


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="default")
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=_REPO_ROOT / "BENCH_perf.json",
        help="output path (default: BENCH_perf.json at the repo root)",
    )
    parser.add_argument(
        "--only",
        default=None,
        help="comma-separated benchmark families to run "
        "(ringbuild,multitenant,lookup,insert,count,count_faulty,"
        "count_regstore,count_traced,insert_traced,parallel,parallel_shared)",
    )
    args = parser.parse_args(argv)
    only = {part.strip() for part in args.only.split(",") if part.strip()} if args.only else None
    report = run_suite(args.preset, only=only)
    args.json.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[perf] wrote {args.json}")
    width = max(len(name) for name in report["benchmarks"])
    for name, entry in report["benchmarks"].items():
        line = f"  {name:<{width}}  {entry['ops_per_sec']:>14,.1f} ops/s"
        if "hops_per_op" in entry:
            line += f"  {entry['hops_per_op']:>10.3f} hops/op"
        if "identical_to_serial" in entry:
            line += "  bit-identical" if entry["identical_to_serial"] else "  DIVERGED"
        if "overhead_vs_disabled_pct" in entry:
            line += f"  {entry['overhead_vs_disabled_pct']:+.1f}% vs disabled"
        print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
