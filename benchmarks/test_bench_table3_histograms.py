"""Bench: Table 3 — histogram building costs (sLL / PCSA).

Paper reference (N=1024, 100-bucket histograms, relation R):

    m     nodes    hops       BW (MB)
    128   69/67    89/72      1.1/0.9
    256   73/70    94/80      1.2/1.0
    512   79/81    118/108    1.5/1.4
    1024  94/89    142/131    1.8/1.7

Headline property: reconstructing the *whole* histogram costs the hops
of a single-metric count (the bit→interval map is shared), while bytes
scale with the bucket count.
"""

from conftest import run_once

from repro.experiments.common import env_scale
from repro.experiments.table3 import format_table3, run_table3


def test_bench_table3_histograms(benchmark, report_writer):
    rows = run_once(benchmark, run_table3, n_nodes=256, seed=1)
    report_writer("table3_histograms", format_table3(rows, env_scale(1e-2)))

    by = {(row.m, row.estimator): row for row in rows}
    for estimator in ("sll", "pcsa"):
        # Hops stay in a narrow band across m (cost independent of m).
        assert by[(1024, estimator)].hops < 4 * by[(128, estimator)].hops
        # Bytes do not collapse with m (they grow in the saturated
        # regime; at reduced scale per-probe responses are noisy, so
        # only the non-shrinking direction is asserted).
        assert by[(1024, estimator)].bw_kbytes > 0.5 * by[(128, estimator)].bw_kbytes
    # In the sLL scan bytes grow with m, as in the paper's Table 3.
    assert by[(1024, "sll")].bw_kbytes > by[(128, "sll")].bw_kbytes


def test_bench_table3_hops_independent_of_buckets(benchmark, report_writer):
    """Reconstruction hop cost ~ single count; bytes ~ bucket count."""

    def compare():
        few = run_table3(n_nodes=256, ms=(256,), n_buckets=10, trials=2, seed=2)
        many = run_table3(n_nodes=256, ms=(256,), n_buckets=100, trials=2, seed=2)
        return few, many

    few, many = run_once(benchmark, compare)
    sll_few = next(r for r in few if r.estimator == "sll")
    sll_many = next(r for r in many if r.estimator == "sll")
    report_writer(
        "table3_bucket_independence",
        "Histogram reconstruction: 10 vs 100 buckets (m=256, sLL)\n"
        f"hops:  {sll_few.hops:.0f} -> {sll_many.hops:.0f}\n"
        f"bytes: {sll_few.bw_kbytes:.1f} kB -> {sll_many.bw_kbytes:.1f} kB",
    )
    # 10x the buckets: bytes grow severalfold, hops by far less.
    assert sll_many.bw_kbytes > 2 * sll_few.bw_kbytes
    assert sll_many.hops < 3 * sll_few.hops
