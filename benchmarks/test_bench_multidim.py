"""Bench: multi-dimension counting (section 4.2).

The claim: counting many metrics at once costs the hops of counting one
(the bit→interval mapping is shared across bitmaps and dimensions);
only response bytes grow with the number of dimensions.
"""

from conftest import run_once

from repro.experiments.multidim import format_multidim, run_multidim


def test_bench_multidim_counting(benchmark, report_writer):
    rows = run_once(benchmark, run_multidim, seed=1)
    report_writer("multidim", format_multidim(rows))

    one = next(r for r in rows if r.metrics == 1)
    most = max(rows, key=lambda r: r.metrics)
    # 64x the dimensions: bytes grow manyfold...
    assert most.bytes_kb > 8 * one.bytes_kb
    # ...but hops stay in the same band (not remotely 64x).
    assert most.hops < 4 * one.hops
