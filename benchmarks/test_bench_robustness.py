"""Bench: counting under undetected failures (section 3.5).

The paper: with R replicas the probability of losing DHS bit
information is p_f^R — negligible for practical R.  Measured with the
lazy failure model (crashes discovered on contact): the unreplicated
deployment degrades steeply with p_f while R=3 stays at its
failure-free error.
"""

from conftest import run_once

from repro.experiments.robustness import format_robustness, run_failure_robustness


def test_bench_failure_robustness(benchmark, report_writer):
    rows = run_once(benchmark, run_failure_robustness, seed=1)
    report_writer("failure_robustness", format_robustness(rows))

    by = {(row.p_f, row.replication): row for row in rows}
    # Without replication, undetected failures destroy accuracy...
    assert by[(0.3, 0)].error_pct > by[(0.0, 0)].error_pct + 10
    # ...while R=3 holds the failure-free error through the whole sweep.
    assert by[(0.3, 3)].error_pct < by[(0.0, 3)].error_pct + 5
    assert by[(0.3, 3)].error_pct < by[(0.3, 0)].error_pct / 3
    # Routing around corpses costs extra hops, but not catastrophically.
    assert by[(0.3, 0)].hops < 3 * by[(0.0, 0)].hops