"""Micro-benchmarks: raw sketch operation throughput.

Unlike the table/figure benches (one-shot simulations), these use
pytest-benchmark's statistical timing — the numbers a library user cares
about when sizing an ingest pipeline: items/s into each sketch type,
estimate latency, merge cost, and the vectorized hashing path.
"""

import numpy as np
import pytest

from repro.hashing.family import MixerHash
from repro.hashing.md4 import md4_digest
from repro.hashing.vectorized import observations_np
from repro.sketches import (
    HyperLogLogSketch,
    LinearCounter,
    PCSASketch,
    SuperLogLogSketch,
)

N_ITEMS = 20_000
ALL_SKETCHES = [PCSASketch, SuperLogLogSketch, HyperLogLogSketch]


@pytest.mark.parametrize("sketch_cls", ALL_SKETCHES, ids=lambda c: c.name)
def test_bench_sketch_insert_throughput(benchmark, sketch_cls):
    items = list(range(N_ITEMS))

    def insert_all():
        sketch = sketch_cls(m=256, hash_family=MixerHash(seed=1))
        sketch.add_all(items)
        return sketch

    sketch = benchmark(insert_all)
    assert not sketch.is_empty()


@pytest.mark.parametrize("sketch_cls", ALL_SKETCHES, ids=lambda c: c.name)
def test_bench_sketch_estimate_latency(benchmark, sketch_cls):
    sketch = sketch_cls(m=1024, hash_family=MixerHash(seed=1))
    sketch.add_all(range(N_ITEMS))
    estimate = benchmark(sketch.estimate)
    assert estimate == pytest.approx(N_ITEMS, rel=0.3)


def test_bench_sketch_merge(benchmark):
    a = SuperLogLogSketch(m=1024, hash_family=MixerHash(seed=1))
    b = SuperLogLogSketch(m=1024, hash_family=MixerHash(seed=1))
    a.add_all(range(0, N_ITEMS))
    b.add_all(range(N_ITEMS, 2 * N_ITEMS))
    merged = benchmark(a.union, b)
    assert merged.estimate() == pytest.approx(2 * N_ITEMS, rel=0.3)


def test_bench_linear_counter_insert(benchmark):
    items = list(range(N_ITEMS))

    def insert_all():
        counter = LinearCounter(size=1 << 16, hash_family=MixerHash(seed=1))
        counter.add_all(items)
        return counter

    counter = benchmark(insert_all)
    assert counter.estimate() == pytest.approx(N_ITEMS, rel=0.2)


def test_bench_vectorized_hashing(benchmark):
    ids = np.arange(1_000_000, dtype=np.int64)
    vectors, positions = benchmark(observations_np, ids, 512, 24, 1)
    assert vectors.shape == positions.shape == ids.shape


def test_bench_md4_throughput(benchmark):
    blocks = [f"item-{i}".encode() for i in range(2_000)]

    def digest_all():
        return [md4_digest(block) for block in blocks]

    digests = benchmark(digest_all)
    assert len(digests) == 2_000
