"""Benches: ablations over DHS design knobs (sections 3.5 and 4.1).

* retry budget ``lim`` — accuracy vs probe surcharge;
* replication degree ``R`` under 25% node crashes;
* bit-shift mapping ``b`` — write savings vs accuracy;
* overlay substrate — Chord vs Kademlia (DHT-agnosticism).
"""

from conftest import run_once

from repro.experiments.ablations import (
    format_ablation,
    run_bitshift_ablation,
    run_lim_ablation,
    run_overlay_comparison,
    run_replication_ablation,
)


def test_bench_ablation_retries(benchmark, report_writer):
    rows = run_once(benchmark, run_lim_ablation, seed=1)
    report_writer(
        "ablation_retries",
        format_ablation("Retry budget ablation (section 4.1)", "nodes visited", rows),
    )
    by = {row.label: row for row in rows}
    # Starving the probe budget destroys accuracy; the default heals it.
    assert by["lim=1"].error_pct > by["lim=5"].error_pct
    # Extra budget beyond the default costs probes/bandwidth for little
    # extra accuracy (hops can even dip slightly: intervals confirm and
    # exit earlier when more of their bits are found).
    assert by["lim=10"].bytes_kb > by["lim=5"].bytes_kb
    assert by["lim=10"].extra > by["lim=5"].extra  # nodes visited
    assert by["lim=10"].error_pct <= by["lim=5"].error_pct + 3


def test_bench_ablation_replication(benchmark, report_writer):
    rows = run_once(benchmark, run_replication_ablation, seed=1)
    report_writer(
        "ablation_replication",
        format_ablation(
            "Replication under 25% crashes (section 3.5)", "hops/insert", rows
        ),
    )
    by = {row.label: row for row in rows}
    # Replicas recover accuracy lost to crashes.
    assert by["R=4"].error_pct < by["R=0"].error_pct
    # At constant R the insert surcharge is a constant number of hops.
    assert by["R=4"].extra > by["R=0"].extra


def test_bench_ablation_bitshift(benchmark, report_writer):
    rows = run_once(benchmark, run_bitshift_ablation, seed=1)
    report_writer(
        "ablation_bitshift",
        format_ablation(
            "Bit-shift mapping ablation (section 3.5)", "insert kB", rows
        ),
    )
    by = {row.label: row for row in rows}
    # Skipping the first b positions slashes write traffic...
    assert by["b=4"].extra < 0.5 * by["b=0"].extra
    # ...while estimates stay usable (cardinality >> 2^b here).
    assert by["b=4"].error_pct < by["b=0"].error_pct + 15


def test_bench_overlay_agnosticism(benchmark, report_writer):
    rows = run_once(benchmark, run_overlay_comparison, seed=1)
    report_writer(
        "overlay_agnosticism",
        format_ablation("DHS over Chord vs Kademlia vs Pastry", "nodes visited", rows),
    )
    by = {row.label: row for row in rows}
    # Same accuracy class on every geometry, costs within a small factor.
    for other in ("kademlia", "pastry"):
        assert abs(by["chord"].error_pct - by[other].error_pct) < 15
        assert by[other].hops < 3 * by["chord"].hops
        assert by["chord"].hops < 4 * by[other].hops
