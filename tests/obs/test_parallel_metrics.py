"""DHS_JOBS metrics determinism: merged snapshots are worker-count-invariant.

``run_trials`` runs every trial against a fresh registry and merges the
per-trial snapshots in spec order on the serial and the parallel path
alike, so the caller's ``snapshot()`` is bit-identical at any pool
width — including float-valued counters, whose addition is
order-sensitive.
"""

import numpy as np

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.experiments.common import populate_metric
from repro.obs import runtime as obs
from repro.obs.metrics import MetricsRegistry
from repro.overlay.chord import ChordRing
from repro.sim.parallel import TrialSpec, run_trials
from repro.sim.seeds import derive_seed, rng_for


def _metered_trial(seed: int, weight: float) -> float:
    """A trial whose metrics exercise counters, gauges and histograms."""
    obs.METRICS.inc("trials")
    obs.METRICS.inc("weight", weight * (1 + seed % 3))
    obs.METRICS.set_gauge("last_seed", seed)
    obs.METRICS.observe("dhs.lookup.hops", seed % 7)
    return weight * seed


def _specs():
    # Floats chosen so that summation order matters in IEEE-754.
    return [
        TrialSpec(fn=_metered_trial, seed=seed, kwargs={"weight": 0.1 + seed * 1e-9})
        for seed in range(12)
    ]


def _run(jobs: int):
    registry = MetricsRegistry()
    with obs.observed(registry=registry, tracing=False):
        results = run_trials(_specs(), jobs=jobs)
    return results, registry.snapshot()


class TestParallelMetrics:
    def test_parallel_snapshot_bit_identical_to_serial(self):
        serial_results, serial_snap = _run(jobs=1)
        parallel_results, parallel_snap = _run(jobs=4)
        assert parallel_results == serial_results
        assert parallel_snap == serial_snap

    def test_counters_and_histograms_aggregate(self):
        _, snap = _run(jobs=1)
        assert snap["counters"]["trials"] == 12
        assert snap["histograms"]["dhs.lookup.hops"]["count"] == 12
        # Gauge: last merge (spec order) wins deterministically.
        assert snap["gauges"]["last_seed"] == 11

    def test_trial_metrics_stay_out_of_parent_registry_until_merge(self):
        registry = MetricsRegistry()
        with obs.observed(registry=registry, tracing=False):
            run_trials(_specs()[:2], jobs=1)
            # Everything recorded inside trials arrived via merge only.
            assert obs.METRICS.counter("trials") == 2

    def test_metering_off_returns_plain_results(self):
        assert obs.METERING is False
        results = run_trials(_specs()[:3], jobs=1)
        assert results == [0.0, 0.1 + 1e-9, 2 * (0.1 + 2e-9)]

    def test_metering_off_parallel_matches_serial(self):
        assert run_trials(_specs()[:4], jobs=2) == run_trials(_specs()[:4], jobs=1)


def _count_trial(seed: int, n_nodes: int, n_items: int) -> float:
    """One real instrumented populate+count cell (runs inside a worker)."""
    ring = ChordRing.build(n_nodes, seed=derive_seed(seed, "ring"))
    dhs = DistributedHashSketch(
        ring,
        DHSConfig(num_bitmaps=32, key_bits=16, hash_seed=seed),
        seed=seed,
    )
    populate_metric(dhs, "m", np.arange(n_items, dtype=np.int64), seed=seed)
    origin = ring.random_live_node(rng_for(seed, "origin"))
    return dhs.count("m", origin=origin).estimate()


class TestRealWorkloadMetrics:
    """The acceptance gate: DHS_JOBS=4 == serial, on real counting trials."""

    def _run(self, jobs: int):
        specs = [
            TrialSpec(fn=_count_trial, seed=seed,
                      kwargs={"n_nodes": 32, "n_items": 400})
            for seed in range(4)
        ]
        registry = MetricsRegistry()
        with obs.observed(registry=registry, tracing=False):
            results = run_trials(specs, jobs=jobs)
        return results, registry.snapshot()

    def test_jobs4_snapshot_bit_identical(self):
        serial_results, serial_snap = self._run(jobs=1)
        parallel_results, parallel_snap = self._run(jobs=4)
        assert parallel_results == serial_results
        assert parallel_snap == serial_snap
        # The instrumented hot paths actually recorded something.
        assert serial_snap["counters"]["dhs.count.ops"] == 4
        assert serial_snap["histograms"]["dhs.lookup.hops"]["count"] > 0
