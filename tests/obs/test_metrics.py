"""MetricsRegistry/Histogram unit tests: bucketing, merge, reset cascade."""

import pytest

from repro.obs.metrics import METRIC_BUCKETS, Histogram, MetricsRegistry


class TestHistogram:
    def test_bounds_must_be_sorted_unique(self):
        with pytest.raises(ValueError):
            Histogram([])
        with pytest.raises(ValueError):
            Histogram([1, 1, 2])
        with pytest.raises(ValueError):
            Histogram([2, 1])

    def test_inclusive_upper_edges(self):
        hist = Histogram([0, 2, 4])
        for value in (0, 1, 2, 3, 4, 5):
            hist.observe(value)
        # 0 -> <=0; 1,2 -> <=2; 3,4 -> <=4; 5 -> overflow.
        assert hist.counts == [1, 2, 2, 1]
        assert hist.count == 6
        assert hist.total == 15.0
        assert hist.mean() == pytest.approx(2.5)

    def test_mean_empty_is_zero(self):
        assert Histogram([1]).mean() == 0.0

    def test_merge_dict_adds(self):
        a, b = Histogram([0, 1]), Histogram([0, 1])
        a.observe(0)
        b.observe(1)
        b.observe(5)
        a.merge_dict(b.to_dict())
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.total == 6.0

    def test_merge_dict_rejects_other_bounds(self):
        a = Histogram([0, 1])
        with pytest.raises(ValueError):
            a.merge_dict(Histogram([0, 2]).to_dict())

    def test_reset_keeps_bounds(self):
        hist = Histogram([0, 1])
        hist.observe(1)
        hist.reset()
        assert hist.counts == [0, 0, 0]
        assert hist.count == 0
        assert hist.bounds == (0.0, 1.0)


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.inc("c", 2)
        reg.set_gauge("g", 1.5)
        reg.set_gauge("g", 2.5)
        assert reg.counter("c") == 3
        assert reg.gauge("g") == 2.5
        assert reg.counter("missing") == 0
        assert reg.gauge("missing") == 0.0

    def test_observe_uses_catalogue_bounds(self):
        reg = MetricsRegistry()
        reg.observe("dhs.lookup.hops", 3)
        hist = reg.histogram("dhs.lookup.hops")
        assert hist.bounds == tuple(float(b) for b in METRIC_BUCKETS["dhs.lookup.hops"])
        assert hist.count == 1

    def test_histogram_bounds_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=[0, 1])
        assert reg.histogram("h").bounds == (0.0, 1.0)
        with pytest.raises(ValueError):
            reg.histogram("h", bounds=[0, 2])

    def test_snapshot_is_sorted_plain_data(self):
        reg = MetricsRegistry()
        reg.inc("z")
        reg.inc("a")
        reg.observe("h", 1)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["histograms"]["h"]["count"] == 1
        # Plain data only: round-trips through JSON.
        import json

        assert json.loads(json.dumps(snap)) == snap

    def test_merge_snapshot_counters_add_gauges_overwrite(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 1)
        a.set_gauge("g", 1.0)
        b.inc("c", 2)
        b.inc("only_b")
        b.set_gauge("g", 9.0)
        b.observe("h", 3)
        a.merge_snapshot(b.snapshot())
        assert a.counter("c") == 3
        assert a.counter("only_b") == 1
        assert a.gauge("g") == 9.0
        assert a.histogram("h").count == 1

    def test_merge_sequence_equals_serial_recording(self):
        # Recording x then y into one registry == merging two per-trial
        # snapshots in the same order — floats included.
        values = [0.1, 0.2, 0.7, 1e-3]
        serial = MetricsRegistry()
        merged = MetricsRegistry()
        for value in values:
            serial.inc("c", value)
            trial = MetricsRegistry()
            trial.inc("c", value)
            merged.merge_snapshot(trial.snapshot())
        assert merged.snapshot() == serial.snapshot()

    def test_reset_cascades_to_attached(self):
        class FakeTracker:
            def __init__(self):
                self.resets = 0

            def reset(self):
                self.resets += 1

        reg = MetricsRegistry()
        tracker = FakeTracker()
        reg.attach(tracker)
        reg.inc("c")
        reg.set_gauge("g", 1.0)
        reg.observe("h", 1)
        assert not reg.is_empty()
        reg.reset()
        assert tracker.resets == 1
        assert reg.is_empty()
        assert reg.counter("c") == 0
        # Histogram survives with zeroed buckets.
        assert reg.histogram("h").count == 0
