"""Observability must never change behaviour: traced == untraced, bit for bit.

Every instrumented hot path (count walk, insert store, retry policy,
fault injector, overlay lookups) is exercised here with observability on
and off; the returned estimates and costs must be identical, the span
stack must balance, and the fault-path events/metrics must appear.
"""

import dataclasses

import numpy as np

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.core.policy import RetryPolicy
from repro.experiments.common import populate_metric
from repro.obs import runtime as obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Tracer
from repro.overlay.chord import ChordRing
from repro.overlay.faults import FaultEvent, FaultInjector, FaultPlan
from repro.sim.seeds import derive_seed, rng_for


def _cost_tuple(cost):
    return tuple(
        getattr(cost, f.name)
        for f in dataclasses.fields(cost)
        if f.name != "nodes_visited"
    )


def _scenario(seed=7, plan=None, policy=None):
    """Build, populate, and count once; returns (insert_cost, result)."""
    ring = ChordRing.build(48, seed=derive_seed(seed, "ring"))
    dht = ring if plan is None else FaultInjector(ring, plan, seed=seed)
    dhs = DistributedHashSketch(
        dht,
        DHSConfig(num_bitmaps=32, key_bits=16, replication=1,
                  read_repair=True, hash_seed=seed),
        seed=seed,
        policy=policy or RetryPolicy(),
    )
    insert_cost = populate_metric(
        dhs, "m", np.arange(600, dtype=np.int64), seed=seed, now=0
    )
    if plan is not None:
        dht.advance_to(10)
    origin = dht.random_live_node(rng_for(seed, "origin"))
    result = dhs.count("m", origin=origin, now=10)
    return insert_cost, result


class TestIdentity:
    def test_fault_free_run_identical(self):
        base_insert, base = _scenario()
        tracer = Tracer()
        with obs.observed(tracer, MetricsRegistry()):
            traced_insert, traced = _scenario()
        assert traced.estimates == base.estimates
        assert _cost_tuple(traced.cost) == _cost_tuple(base.cost)
        assert _cost_tuple(traced_insert) == _cost_tuple(base_insert)
        assert traced.probes == base.probes
        assert traced.probed_ids == base.probed_ids
        assert tracer.open_spans == 0
        assert tracer.spans

    def test_faulty_run_identical(self):
        plan = FaultPlan(
            drop_probability=0.15,
            drop_from=1,
            events=(
                FaultEvent("lazy_crash", at=2, fraction=0.1),
                FaultEvent("transient", at=3, fraction=0.1, duration=5),
                FaultEvent("amnesia", at=2, fraction=0.05, duration=4),
            ),
        )
        policy = RetryPolicy(max_attempts=3, backoff_hops=2)
        base_insert, base = _scenario(plan=plan, policy=policy)
        tracer = Tracer()
        registry = MetricsRegistry()
        with obs.observed(tracer, registry):
            traced_insert, traced = _scenario(plan=plan, policy=policy)
        assert traced.estimates == base.estimates
        assert _cost_tuple(traced.cost) == _cost_tuple(base.cost)
        assert _cost_tuple(traced_insert) == _cost_tuple(base_insert)
        assert traced.degraded == base.degraded
        assert traced.confidence == base.confidence
        assert tracer.open_spans == 0
        # Fault machinery showed up in the trace and the metrics.
        names = {span.name for span in tracer.spans}
        assert "fault.lazy_crash" in names
        assert "fault.transient" in names
        assert "fault.rejoin" in names
        counters = registry.snapshot()["counters"]
        assert counters["dhs.faults.events"] == 3
        if base.cost.drops or base.cost.timeouts:
            assert (
                counters.get("dhs.faults.dropped_messages", 0)
                + counters.get("dhs.retry.timeouts", 0)
            ) > 0

    def test_metering_only_records_without_spans(self):
        registry = MetricsRegistry()
        with obs.observed(registry=registry, tracing=False):
            _scenario()
        assert obs.TRACER.spans == []
        snap = registry.snapshot()
        assert snap["counters"]["dhs.count.ops"] == 1
        assert snap["counters"]["dhs.insert.stores"] > 0
        assert snap["histograms"]["dhs.lookup.hops"]["count"] > 0
        assert snap["histograms"]["dhs.insert.store_hops"]["count"] > 0

    def test_retry_metrics_and_events(self):
        plan = FaultPlan(drop_probability=0.3, drop_from=0)
        policy = RetryPolicy(max_attempts=2, backoff_hops=1)
        tracer = Tracer()
        registry = MetricsRegistry()
        with obs.observed(tracer, registry):
            _scenario(plan=plan, policy=policy)
        counters = registry.snapshot()["counters"]
        assert counters["dhs.retry.timeouts"] > 0
        assert counters["dhs.retry.retries"] > 0
        names = [span.name for span in tracer.spans]
        assert "msg.retry" in names
