"""Span/Tracer unit tests: tree shape, LIFO discipline, null tracer."""

import pytest

from repro.obs.span import NULL_TRACER, NullTracer, Span, Tracer


class TestSpanAttrs:
    def test_set_overwrites(self):
        span = Span(name="s", span_id=1, parent_id=None, tick=0, seq=0)
        span.set(hops=3).set(hops=5, ok=True)
        assert span.attrs == {"hops": 5, "ok": True}

    def test_add_increments_and_creates(self):
        span = Span(name="s", span_id=1, parent_id=None, tick=0, seq=0)
        span.add(hops=2).add(hops=3, probes=1)
        assert span.attrs == {"hops": 5, "probes": 1}

    def test_add_rejects_non_numeric(self):
        span = Span(name="s", span_id=1, parent_id=None, tick=0, seq=0)
        span.set(label="x")
        with pytest.raises(TypeError):
            span.add(label=1)
        with pytest.raises(TypeError):
            span.add(hops=True)


class TestTracer:
    def test_parent_child_links(self):
        tracer = Tracer()
        root = tracer.start("root", tick=3)
        child = tracer.start("child", tick=4)
        tracer.end(child)
        tracer.end(root)
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert [s.seq for s in tracer.spans] == [0, 1]
        assert tracer.open_spans == 0

    def test_span_context_manager_closes(self):
        tracer = Tracer()
        with tracer.span("op", tick=1, hops=0) as span:
            assert tracer.current() is span
        assert tracer.open_spans == 0

    def test_context_manager_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("op"):
                raise RuntimeError("boom")
        assert tracer.open_spans == 0

    def test_end_enforces_lifo(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        tracer.start("inner")
        with pytest.raises(RuntimeError):
            tracer.end(outer)

    def test_event_is_point_child(self):
        tracer = Tracer()
        with tracer.span("op") as parent:
            tracer.event("probe", tick=2, node=7)
        event = tracer.spans[-1]
        assert event.event is True
        assert event.parent_id == parent.span_id
        assert event.attrs == {"node": 7}
        # Events never join the open stack.
        assert tracer.open_spans == 0

    def test_roots_children_find(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            tracer.event("e")
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.roots()] == ["a", "b"]
        assert [s.name for s in tracer.children(a)] == ["e"]
        assert len(tracer.find("e")) == 1

    def test_clear_resets_ids(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.spans == []
        assert tracer.start("b").span_id == 1

    def test_clear_refuses_open_spans(self):
        tracer = Tracer()
        tracer.start("open")
        with pytest.raises(RuntimeError):
            tracer.clear()


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("op", hops=1) as span:
            tracer.event("e")
            inner = tracer.start("inner")
            tracer.end(inner)
        assert tracer.spans == []
        assert tracer.open_spans == 0
        assert span is inner  # the shared dummy span

    def test_singleton_is_null(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.spans == []
