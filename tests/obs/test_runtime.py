"""Runtime flag tests: enable/disable, scoped restore, zero-cost default."""

from repro.obs import runtime as obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import NULL_TRACER, Tracer


class TestDefaults:
    def test_disabled_by_default(self):
        assert obs.TRACING is False
        assert obs.METERING is False
        assert obs.TRACER is NULL_TRACER
        assert isinstance(obs.METRICS, MetricsRegistry)


class TestObserved:
    def test_observed_installs_and_restores(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        with obs.observed(tracer, registry) as (active_tracer, active_registry):
            assert obs.TRACING and obs.METERING
            assert active_tracer is tracer is obs.TRACER
            assert active_registry is registry is obs.METRICS
        assert obs.TRACING is False
        assert obs.METERING is False
        assert obs.TRACER is NULL_TRACER

    def test_observed_restores_on_exception(self):
        try:
            with obs.observed():
                raise ValueError("boom")
        except ValueError:
            pass
        assert obs.TRACING is False

    def test_fresh_tracer_when_none_given(self):
        with obs.observed() as (tracer, _):
            assert isinstance(tracer, Tracer)
            assert not isinstance(tracer, type(NULL_TRACER))

    def test_halves_enable_independently(self):
        with obs.observed(tracing=False):
            assert obs.METERING is True
            assert obs.TRACING is False
        with obs.observed(metering=False):
            assert obs.TRACING is True
            assert obs.METERING is False

    def test_enable_disable(self):
        tracer, registry = obs.enable()
        try:
            assert obs.TRACING and obs.METERING
            assert obs.TRACER is tracer
            assert obs.METRICS is registry
        finally:
            obs.disable()
        assert obs.TRACING is False
        assert obs.TRACER is NULL_TRACER

    def test_nested_observed_restores_inner(self):
        outer_reg = MetricsRegistry()
        with obs.observed(registry=outer_reg):
            with obs.observed(registry=MetricsRegistry()):
                assert obs.METRICS is not outer_reg
            assert obs.METRICS is outer_reg
