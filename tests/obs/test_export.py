"""Exporter tests: JSONL stability, span-tree rendering, load table."""

import io
import json

from repro.obs.export import (
    LoadRow,
    dump_jsonl,
    dumps_jsonl,
    format_load_table,
    format_snapshot,
    render_span_tree,
    span_to_dict,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Tracer


def _sample_tracer():
    tracer = Tracer()
    with tracer.span("count", tick=1, hops=4):
        tracer.event("lookup", tick=1, node=9)
        with tracer.span("interval", tick=2, index=0):
            tracer.event("probe", tick=2, ok=True)
    return tracer


class TestJsonl:
    def test_span_to_dict_field_set(self):
        span = _sample_tracer().spans[0]
        assert span_to_dict(span) == {
            "seq": 0,
            "span": 1,
            "parent": None,
            "name": "count",
            "tick": 1,
            "event": False,
            "attrs": {"hops": 4},
        }

    def test_dumps_one_line_per_span_sorted_keys(self):
        text = dumps_jsonl(_sample_tracer().spans)
        lines = text.splitlines()
        assert len(lines) == 4
        assert text.endswith("\n")
        for line in lines:
            parsed = json.loads(line)
            assert list(parsed) == sorted(parsed)
            assert " " not in line.split('"name"')[0]  # compact separators

    def test_dumps_empty(self):
        assert dumps_jsonl([]) == ""

    def test_dump_writes_and_counts(self):
        buffer = io.StringIO()
        count = dump_jsonl(_sample_tracer().spans, buffer)
        assert count == 4
        assert buffer.getvalue() == dumps_jsonl(_sample_tracer().spans)

    def test_byte_stability_across_runs(self):
        assert dumps_jsonl(_sample_tracer().spans) == dumps_jsonl(
            _sample_tracer().spans
        )


class TestSpanTree:
    def test_tree_shape_and_markers(self):
        text = render_span_tree(_sample_tracer().spans)
        lines = text.splitlines()
        assert lines[0].startswith("`- count @t1")
        assert "* lookup" in lines[1]  # event marker
        assert lines[2].lstrip().startswith("`- interval")
        # Children are indented beneath their parent.
        assert lines[1].startswith("   ")

    def test_attr_elision(self):
        tracer = Tracer()
        with tracer.span("op", a=1, b=2, c=3):
            pass
        text = render_span_tree(tracer.spans, max_attrs=2)
        assert "..." in text
        assert "c=3" not in text

    def test_empty(self):
        assert render_span_tree([]) == ""


class TestLoadTable:
    def test_per_node_handles_empty_interval(self):
        assert LoadRow(interval=0, position=0, nodes=0, accesses=0).per_node == 0.0
        assert LoadRow(interval=0, position=0, nodes=4, accesses=8).per_node == 2.0

    def test_format_contains_rows_and_uniformity(self):
        rows = [
            LoadRow(interval=0, position=0, nodes=4, accesses=8),
            LoadRow(interval=1, position=1, nodes=2, accesses=4),
            LoadRow(interval=2, position=2, nodes=0, accesses=0),
        ]
        text = format_load_table(rows)
        assert "interval" in text and "per node" in text
        # Both populated intervals carry 2.0/node: perfectly uniform.
        assert "max/mean 1.00" in text
        # Empty intervals are listed but excluded from the summary.
        assert text.count("0.00") >= 1

    def test_format_all_empty_has_no_summary(self):
        rows = [LoadRow(interval=0, position=0, nodes=0, accesses=0)]
        assert "max/mean" not in format_load_table(rows)


class TestFormatSnapshot:
    def test_sections_render(self):
        reg = MetricsRegistry()
        reg.inc("ops", 2)
        reg.set_gauge("depth", 1.5)
        reg.observe("h", 3)
        text = format_snapshot(reg.snapshot())
        assert "counters:" in text and "ops = 2" in text
        assert "gauges:" in text and "depth = 1.5" in text
        assert "histograms:" in text and "n=1" in text

    def test_empty_snapshot_renders_empty(self):
        assert format_snapshot(MetricsRegistry().snapshot()) == ""
