"""Golden-trace test: the fixed-seed traced count is byte-stable.

The committed fixture pins the JSONL dump of the default
:class:`~repro.experiments.tracing.TraceScenario` end to end: span
ordering (``seq``), parent/child links, hop attribution, and attribute
values.  Regenerate it deliberately with::

    PYTHONPATH=src python -m repro trace --trace-jsonl tests/obs/golden_trace.jsonl

and review the diff — a change here means the observable behaviour of
the counting path changed.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.tracing import TraceScenario, format_trace, run_traced_count

FIXTURE = Path(__file__).parent / "golden_trace.jsonl"


@pytest.fixture(scope="module")
def run():
    return run_traced_count()


class TestGoldenTrace:
    def test_jsonl_matches_fixture_byte_for_byte(self, run):
        assert run.jsonl() == FIXTURE.read_text()

    def test_rerun_is_identical(self, run):
        assert run_traced_count().jsonl() == run.jsonl()

    def test_seq_is_file_order(self, run):
        assert [span.seq for span in run.spans] == list(range(len(run.spans)))

    def test_span_tree_shape(self, run):
        counts = [s for s in run.spans if s.name == "dhs.count"]
        assert len(counts) == run.scenario.trials
        for span in counts:
            assert span.parent_id is None
        by_id = {s.span_id: s for s in run.spans}
        for span in run.spans:
            if span.name == "count.interval":
                assert by_id[span.parent_id].name == "dhs.count"
            elif span.name in ("dht.lookup", "probe"):
                assert by_id[span.parent_id].name == "count.interval"

    def test_hop_accounting(self, run):
        """Fault-free interval walk: hops == lookup.hops + probes - 1."""
        by_parent = {}
        for span in run.spans:
            by_parent.setdefault(span.parent_id, []).append(span)
        intervals = [s for s in run.spans if s.name == "count.interval"]
        assert intervals
        for interval in intervals:
            assert interval.attrs["timeouts"] == 0
            assert interval.attrs["drops"] == 0
            children = by_parent.get(interval.span_id, [])
            lookups = [c for c in children if c.name == "dht.lookup"]
            probes = [c for c in children if c.name == "probe"]
            assert len(lookups) == 1
            assert len(probes) == interval.attrs["probes"]
            assert interval.attrs["hops"] == (
                lookups[0].attrs["hops"] + interval.attrs["probes"] - 1
            )

    def test_count_span_totals_cover_intervals(self, run):
        by_parent = {}
        for span in run.spans:
            by_parent.setdefault(span.parent_id, []).append(span)
        for count in (s for s in run.spans if s.name == "dhs.count"):
            intervals = [
                c for c in by_parent[count.span_id] if c.name == "count.interval"
            ]
            assert count.attrs["intervals"] == len(intervals)
            assert count.attrs["hops"] == sum(i.attrs["hops"] for i in intervals)
            assert count.attrs["probes"] == sum(i.attrs["probes"] for i in intervals)

    def test_metrics_agree_with_trace(self, run):
        counters = run.snapshot["counters"]
        assert counters["dhs.count.ops"] == run.scenario.trials
        probes_hist = run.snapshot["histograms"]["dhs.count.probes_per_interval"]
        assert probes_hist["count"] == sum(
            1 for s in run.spans if s.name == "count.interval"
        )
        assert probes_hist["sum"] == sum(
            s.attrs["probes"] for s in run.spans if s.name == "count.interval"
        )
        assert counters["dht.probes"] == sum(
            1 for s in run.spans if s.name == "probe"
        )

    def test_fixture_lines_are_sorted_compact_json(self):
        for line in FIXTURE.read_text().splitlines():
            parsed = json.loads(line)
            assert list(parsed) == sorted(parsed)
            assert json.dumps(parsed, sort_keys=True, separators=(",", ":")) == line

    def test_estimates_are_sane(self, run):
        for estimate in run.estimates:
            assert estimate == pytest.approx(run.truth, rel=0.5)

    def test_format_trace_renders(self, run):
        text = format_trace(run)
        assert "Span tree" in text
        assert "dhs.count" in text
        assert "Per-interval query access load" in text

    def test_scenario_knobs_change_trace(self):
        other = run_traced_count(TraceScenario(seed=2))
        assert other.jsonl() != FIXTURE.read_text()
