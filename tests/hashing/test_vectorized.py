"""The vectorized hash path must agree with the scalar path bit-for-bit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.family import MixerHash
from repro.hashing.mixers import mix_with_seed, splitmix64
from repro.hashing.vectorized import (
    _popcount64,
    mix_with_seed_np,
    observations_np,
    splitmix64_np,
)
from repro.sketches.base import HashSketch, split_key
from repro.sketches.loglog import SuperLogLogSketch


class TestMixerAgreement:
    def test_splitmix_matches_scalar(self):
        xs = np.arange(0, 10_000, dtype=np.uint64)
        vectorized = splitmix64_np(xs)
        for i in (0, 1, 17, 4095, 9999):
            assert int(vectorized[i]) == splitmix64(int(xs[i]))

    def test_splitmix_high_values(self):
        xs = np.array([2**64 - 1, 2**63, 2**63 - 1], dtype=np.uint64)
        vectorized = splitmix64_np(xs)
        for i, x in enumerate((2**64 - 1, 2**63, 2**63 - 1)):
            assert int(vectorized[i]) == splitmix64(x)

    @given(st.integers(min_value=0, max_value=2**63 - 1), st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=50, deadline=None)
    def test_mix_with_seed_matches_scalar(self, x, seed):
        vectorized = mix_with_seed_np(np.array([x], dtype=np.uint64), seed)
        assert int(vectorized[0]) == mix_with_seed(x, seed)


class TestObservations:
    @pytest.mark.parametrize("m,key_bits,seed", [(1, 24, 0), (16, 24, 3), (512, 24, 7), (64, 32, 1)])
    def test_matches_scalar_split(self, m, key_bits, seed):
        ids = np.arange(0, 3000, dtype=np.int64)
        vectors, positions = observations_np(ids, m, key_bits, seed=seed)
        family = MixerHash(bits=64, seed=seed)
        position_bits = key_bits - (m.bit_length() - 1)
        for i in range(0, 3000, 97):
            vector, position = split_key(family(int(ids[i])), m, key_bits)
            assert vectors[i] == vector
            assert positions[i] == min(position, position_bits - 1)

    def test_matches_sketch_state(self):
        """Feeding the vectorized observations reproduces add() exactly."""
        ids = np.arange(0, 5000, dtype=np.int64)
        direct = SuperLogLogSketch(m=32, hash_family=MixerHash(bits=64, seed=5))
        direct.add_all(int(i) for i in ids)
        via_np = SuperLogLogSketch(m=32, hash_family=MixerHash(bits=64, seed=5))
        vectors, positions = observations_np(ids, 32, 64, seed=5)
        for vector, position in zip(vectors.tolist(), positions.tolist()):
            via_np.record(vector, position)
        assert via_np.registers() == direct.registers()

    def test_rejects_negative_ids(self):
        with pytest.raises(ValueError):
            observations_np(np.array([-1]), 16, 24)

    @pytest.mark.parametrize("m", [0, -4, 3, 6, 12, 100, 1000])
    def test_rejects_non_power_of_two_m(self, m):
        """Same contract as the scalar HashSketch: m must be 2^c > 0."""
        with pytest.raises(ValueError, match="power of two"):
            observations_np(np.arange(10, dtype=np.int64), m, 24)

    @pytest.mark.parametrize("m,key_bits", [(16, 4), (16, 3), (512, 9), (2, 1)])
    def test_rejects_key_bits_not_exceeding_log2_m(self, m, key_bits):
        with pytest.raises(ValueError, match="key_bits"):
            observations_np(np.arange(10, dtype=np.int64), m, key_bits)

    def test_positions_clamped(self):
        ids = np.arange(0, 100_000, dtype=np.int64)
        _, positions = observations_np(ids, 16, 16, seed=0)
        assert positions.max() <= 16 - 4 - 1
        assert positions.min() >= 0


class TestPopcount:
    EDGE_VALUES = [0, 1, 2, 3, 2**32 - 1, 2**63, 2**64 - 1, 0x5555555555555555]

    def _assert_exact(self, values):
        xs = np.array(values, dtype=np.uint64)
        got = _popcount64(xs)
        assert got.dtype == np.int64
        for x, count in zip(values, got.tolist()):
            assert count == int(x).bit_count()

    def test_matches_int_bit_count(self):
        rng = np.random.default_rng(11)
        values = rng.integers(0, 2**63, size=5000, dtype=np.int64).astype(np.uint64)
        self._assert_exact([int(v) for v in values] + self.EDGE_VALUES)

    def test_swar_fallback_exact(self, monkeypatch):
        """Force the numpy<2.0 SWAR branch and re-check exactness."""
        monkeypatch.delattr(np, "bitwise_count", raising=False)
        assert not hasattr(np, "bitwise_count")
        rng = np.random.default_rng(12)
        values = [int(v) for v in rng.integers(0, 2**64, size=2000, dtype=np.uint64)]
        self._assert_exact(values + self.EDGE_VALUES)

    def test_swar_fallback_rho_path(self, monkeypatch):
        """observations_np stays scalar-exact without np.bitwise_count."""
        monkeypatch.delattr(np, "bitwise_count", raising=False)
        ids = np.arange(0, 2000, dtype=np.int64)
        vectors, positions = observations_np(ids, 64, 24, seed=9)
        family = MixerHash(bits=64, seed=9)
        position_bits = 24 - 6
        for i in range(0, 2000, 53):
            vector, position = split_key(family(int(ids[i])), 64, 24)
            assert vectors[i] == vector
            assert positions[i] == min(position, position_bits - 1)
