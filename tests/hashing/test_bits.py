"""Unit tests for bit-level utilities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.bits import bit, lsb, mask, msb_position, rank, reverse_bits, rho


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 0b1
        assert mask(4) == 0b1111
        assert mask(8) == 0xFF

    def test_large_width(self):
        assert mask(64) == 2**64 - 1

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestBit:
    def test_low_bit(self):
        assert bit(0b1011, 0) == 1
        assert bit(0b1010, 0) == 0

    def test_high_bit(self):
        assert bit(1 << 63, 63) == 1
        assert bit(1 << 63, 62) == 0

    def test_beyond_width_is_zero(self):
        assert bit(0b111, 10) == 0

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            bit(5, -1)


class TestRho:
    def test_paper_convention_zero(self):
        # rho(0) == L, the bitmap length (section 2.2.1).
        assert rho(0, 24) == 24
        assert rho(0, 64) == 64

    def test_odd_numbers(self):
        for y in (1, 3, 5, 7, 1023):
            assert rho(y, 16) == 0

    def test_powers_of_two(self):
        for k in range(16):
            assert rho(1 << k, 16) == k

    def test_truncation_to_width(self):
        # High bits beyond the width are ignored: 2^20 truncated to 16 bits
        # is zero, so rho must hit the all-zero convention.
        assert rho(1 << 20, 16) == 16

    def test_mixed_bits(self):
        assert rho(0b101000, 8) == 3

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            rho(1, -2)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_matches_naive_scan(self, y):
        width = 32
        expected = width
        for k in range(width):
            if (y >> k) & 1:
                expected = k
                break
        assert rho(y, width) == expected

    @given(st.integers(min_value=1, max_value=2**24 - 1))
    def test_geometric_distribution_support(self, y):
        # rho of a nonzero 24-bit value is always in [0, 24).
        assert 0 <= rho(y, 24) < 24


class TestRank:
    def test_rank_is_rho_plus_one(self):
        assert rank(0b100, 8) == 3
        assert rank(1, 8) == 1

    def test_rank_of_zero(self):
        assert rank(0, 8) == 9


class TestLsb:
    def test_truncates(self):
        assert lsb(0xDEADBEEF, 8) == 0xEF
        assert lsb(0xDEADBEEF, 16) == 0xBEEF

    def test_zero_width(self):
        assert lsb(12345, 0) == 0

    @given(st.integers(min_value=0), st.integers(min_value=0, max_value=64))
    def test_result_fits_width(self, y, width):
        assert lsb(y, width) < max(1, 1 << width) or width == 0


class TestMsbPosition:
    def test_zero(self):
        assert msb_position(0) == -1

    def test_powers(self):
        for k in range(64):
            assert msb_position(1 << k) == k

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            msb_position(-3)


class TestReverseBits:
    def test_simple(self):
        assert reverse_bits(0b0001, 4) == 0b1000
        assert reverse_bits(0b1101, 4) == 0b1011

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_involution(self, y):
        assert reverse_bits(reverse_bits(y, 16), 16) == y

    def test_rho_msb_duality(self):
        # rho of the reversed word relates to the MSB of the original.
        y = 0b0010_1100
        width = 8
        assert rho(reverse_bits(y, width), width) == width - 1 - msb_position(y)
