"""Statistical and structural tests for the 64-bit mixers."""

from collections import Counter

from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.bits import rho
from repro.hashing.mixers import fmix64, mix_with_seed, splitmix64

U64 = st.integers(min_value=0, max_value=2**64 - 1)


class TestRange:
    @given(U64)
    def test_splitmix64_in_range(self, x):
        assert 0 <= splitmix64(x) < 2**64

    @given(U64)
    def test_fmix64_in_range(self, x):
        assert 0 <= fmix64(x) < 2**64

    @given(U64, U64)
    def test_mix_with_seed_in_range(self, x, seed):
        assert 0 <= mix_with_seed(x, seed) < 2**64


class TestBijectivity:
    def test_splitmix64_injective_on_sample(self):
        outputs = {splitmix64(i) for i in range(100_000)}
        assert len(outputs) == 100_000

    def test_fmix64_injective_on_sample(self):
        outputs = {fmix64(i) for i in range(100_000)}
        assert len(outputs) == 100_000


class TestUniformity:
    def test_bit_balance(self):
        """Each output bit should be ~50% ones over sequential inputs."""
        n = 20_000
        counts = [0] * 64
        for i in range(n):
            y = splitmix64(i)
            for b in range(64):
                counts[b] += (y >> b) & 1
        for b, c in enumerate(counts):
            assert abs(c / n - 0.5) < 0.02, f"bit {b} biased: {c / n:.3f}"

    def test_rho_geometric(self):
        """P(rho == k) ~ 2^-(k+1): the invariant hash sketches rely on."""
        n = 50_000
        hist = Counter(rho(splitmix64(i), 64) for i in range(n))
        for k in range(8):
            expected = n * 2 ** -(k + 1)
            assert abs(hist[k] - expected) < 5 * (expected**0.5) + 20

    def test_seeds_decorrelate(self):
        a = [mix_with_seed(i, 1) for i in range(2_000)]
        b = [mix_with_seed(i, 2) for i in range(2_000)]
        matches = sum(1 for x, y in zip(a, b) if x == y)
        assert matches == 0

    def test_adjacent_seeds_avalanche(self):
        """Hamming distance between adjacent-seed outputs should be ~32."""
        total = 0
        n = 2_000
        for i in range(n):
            total += bin(mix_with_seed(i, 7) ^ mix_with_seed(i, 8)).count("1")
        assert 28 < total / n < 36
