"""MD4 correctness against the RFC 1320 appendix A.5 test vectors."""

import pytest

from repro.hashing.md4 import MD4, md4_digest, md4_hexdigest, md4_int

RFC1320_VECTORS = [
    (b"", "31d6cfe0d16ae931b73c59d7e0c089c0"),
    (b"a", "bde52cb31de33e46245e05fbdbd6fb24"),
    (b"abc", "a448017aaf21d8525fc10ae87aa6729d"),
    (b"message digest", "d9130a8164549fe818874806e1c7014b"),
    (b"abcdefghijklmnopqrstuvwxyz", "d79e1c308aa5bbcdeea8ed63df412da9"),
    (
        b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
        "043f8582f241db351ce627e153e7f0e4",
    ),
    (
        b"1234567890" * 8,
        "e33b4ddc9c38f2199c3e7b164fcc0536",
    ),
]


class TestRFC1320Vectors:
    @pytest.mark.parametrize("message,expected", RFC1320_VECTORS)
    def test_one_shot(self, message, expected):
        assert md4_hexdigest(message) == expected

    @pytest.mark.parametrize("message,expected", RFC1320_VECTORS)
    def test_byte_at_a_time(self, message, expected):
        h = MD4()
        for i in range(len(message)):
            h.update(message[i : i + 1])
        assert h.hexdigest() == expected

    @pytest.mark.parametrize("message,expected", RFC1320_VECTORS)
    def test_chunked_updates(self, message, expected):
        h = MD4()
        mid = len(message) // 2
        h.update(message[:mid])
        h.update(message[mid:])
        assert h.hexdigest() == expected


class TestIncrementalBehaviour:
    def test_digest_is_idempotent(self):
        h = MD4(b"hello")
        first = h.digest()
        second = h.digest()
        assert first == second

    def test_update_after_digest_continues_stream(self):
        h = MD4(b"hello ")
        h.digest()
        h.update(b"world")
        assert h.hexdigest() == md4_hexdigest(b"hello world")

    def test_copy_is_independent(self):
        h = MD4(b"prefix")
        clone = h.copy()
        clone.update(b"-suffix")
        assert h.hexdigest() == md4_hexdigest(b"prefix")
        assert clone.hexdigest() == md4_hexdigest(b"prefix-suffix")

    def test_boundary_lengths(self):
        # Padding edge cases: 55, 56, 63, 64, 65 bytes.
        for n in (55, 56, 63, 64, 65, 119, 120, 128):
            data = bytes(range(256))[:n] * 1
            ref = MD4(data).hexdigest()
            h = MD4()
            h.update(data[:7])
            h.update(data[7:])
            assert h.hexdigest() == ref

    def test_non_bytes_rejected(self):
        with pytest.raises(TypeError):
            MD4("not bytes")  # type: ignore[arg-type]


class TestMd4Int:
    def test_width_masking(self):
        full = md4_int(b"abc", bits=128)
        assert md4_int(b"abc", bits=64) == full & (2**64 - 1)
        assert md4_int(b"abc", bits=24) == full & (2**24 - 1)

    def test_matches_digest_little_endian(self):
        value = md4_int(b"abc", bits=128)
        assert value == int.from_bytes(md4_digest(b"abc"), "little")

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            md4_int(b"x", bits=0)
        with pytest.raises(ValueError):
            md4_int(b"x", bits=129)

    def test_distinct_inputs_differ(self):
        seen = {md4_int(str(i).encode(), bits=64) for i in range(1000)}
        assert len(seen) == 1000
