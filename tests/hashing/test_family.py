"""Tests for the HashFamily abstraction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.family import MD4Hash, MixerHash, default_hash_family


@pytest.fixture(params=[MixerHash, MD4Hash])
def family_cls(request):
    return request.param


class TestContract:
    def test_output_in_range(self, family_cls):
        h = family_cls(bits=24, seed=3)
        for item in (0, 1, "doc-17", b"\x00\xff", 2**70):
            assert 0 <= h(item) < 2**24

    def test_deterministic(self, family_cls):
        a = family_cls(bits=64, seed=11)
        b = family_cls(bits=64, seed=11)
        for item in ("x", 42, b"blob"):
            assert a(item) == b(item)

    def test_seed_changes_output(self, family_cls):
        a = family_cls(bits=64, seed=1)
        b = family_cls(bits=64, seed=2)
        diffs = sum(1 for i in range(200) if a(i) != b(i))
        assert diffs > 195

    def test_type_separation(self, family_cls):
        """int 1, True and '1' must not systematically collide."""
        h = family_cls(bits=64)
        assert len({h(1), h(True), h("1")}) == 3

    def test_unsupported_type_raises(self, family_cls):
        h = family_cls(bits=64)
        with pytest.raises(TypeError):
            h(3.14)

    def test_tuples_supported(self, family_cls):
        h = family_cls(bits=64)
        assert h(("rel", "hist", 3)) != h(("rel", "hist", 4))
        assert h(("a", 1)) == h(("a", 1))
        # Flattening must not alias: ("ab",) vs ("a", "b").
        assert h(("ab",)) != h(("a", "b"))

    def test_invalid_bits(self, family_cls):
        with pytest.raises(ValueError):
            family_cls(bits=0)

    def test_negative_ints_supported(self, family_cls):
        h = family_cls(bits=64)
        assert h(-1) != h(1)

    def test_equality_and_hash(self, family_cls):
        assert family_cls(bits=64, seed=5) == family_cls(bits=64, seed=5)
        assert family_cls(bits=64, seed=5) != family_cls(bits=64, seed=6)
        assert hash(family_cls(bits=32, seed=5)) == hash(family_cls(bits=32, seed=5))

    def test_mixer_and_md4_are_distinct_families(self):
        assert MixerHash(bits=64, seed=0) != MD4Hash(bits=64, seed=0)


class TestUniformity:
    def test_low_collision_rate(self, family_cls):
        h = family_cls(bits=64, seed=0)
        values = {h(f"item-{i}") for i in range(5_000)}
        assert len(values) == 5_000

    def test_bucket_balance_strings(self, family_cls):
        h = family_cls(bits=64, seed=0)
        buckets = [0] * 16
        n = 4_000
        for i in range(n):
            buckets[h(f"key:{i}") % 16] += 1
        for c in buckets:
            assert abs(c - n / 16) < 5 * (n / 16) ** 0.5


class TestDefaults:
    def test_default_family_is_mixer(self):
        assert isinstance(default_hash_family(), MixerHash)

    def test_default_bits(self):
        assert default_hash_family().bits == 64

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_default_family_total_on_ints(self, x):
        assert 0 <= default_hash_family()(x) < 2**64
