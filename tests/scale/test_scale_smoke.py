"""Internet-scale smoke tier (run with ``pytest -m scale``).

Excluded from tier-1 by the ``-m "not scale"`` default: these tests
build N=10^5 rings, which is seconds of work rather than milliseconds.
They gate the ROADMAP's deployment-size axis: ring construction within
a fixed budget, O(log N) routing at a size the paper only extrapolated
to, and ``DHS_JOBS`` byte-identity for a full counting cell at N=10^5.

Wall-clock and RSS measurements live here (and in benchmarks) ONLY —
never inside experiment trial cells, where they would break the
bit-identity contract.
"""

import math
import time

import pytest

from repro.experiments.scalability import fit_log2_coefficient, run_scalability
from repro.obs import runtime as obs
from repro.obs.metrics import (
    GAUGE_RING_BUILD_SECONDS,
    GAUGE_RING_PEAK_RSS_BYTES,
)
from repro.overlay.chord import ChordRing
from repro.sim.seeds import rng_for

pytestmark = pytest.mark.scale

#: The scale-tier deployment size (3 orders past the paper's 1024).
N_SCALE = 100_000

#: Generous wall-clock budget for building the N=10^5 ring (measured
#: ~0.1 s on a dev box; the budget absorbs slow CI runners while still
#: catching a reintroduced quadratic construction path instantly).
BUILD_BUDGET_SECONDS = 30.0


def _peak_rss_bytes() -> float:
    try:
        import resource

        return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024.0
    except (ImportError, ValueError):  # pragma: no cover - non-POSIX
        return 0.0


class TestScaleSmoke:
    def test_ring_build_within_budget(self):
        started = time.perf_counter()
        ring = ChordRing.build(N_SCALE, seed=13)
        elapsed = time.perf_counter() - started
        obs.METRICS.set_gauge(GAUGE_RING_BUILD_SECONDS, elapsed)
        obs.METRICS.set_gauge(GAUGE_RING_PEAK_RSS_BYTES, _peak_rss_bytes())
        assert ring.size == N_SCALE
        assert elapsed < BUILD_BUDGET_SECONDS
        assert ring._nodes == {}  # memory-lean: zero nodes materialized
        assert ring.membership_nbytes() / ring.size <= 16

    def test_mean_lookup_hops_tracks_half_log2_n(self):
        ring = ChordRing.build(N_SCALE, seed=13)
        rng = rng_for(13, "scale-lookups")
        hops = []
        for _ in range(300):
            origin = ring.random_live_node(rng)
            key = rng.randrange(ring.space.size)
            hops.append(ring.lookup(key, origin=origin).cost.hops)
        mean_hops = sum(hops) / len(hops)
        expected = 0.5 * math.log2(N_SCALE)  # ~8.3 hops
        assert mean_hops <= 2.0 * expected
        assert mean_hops >= 0.25 * expected  # sanity floor: still routing

    def test_seeded_count_byte_identical_across_jobs_and_log_fit(self):
        """One N=10^5 counting cell: DHS_JOBS=1 == DHS_JOBS=4 bit-for-bit,
        and measured counting hops stay within 2x of the O(log N) fit
        anchored to the paper-sized (N<=10^4) cells."""
        kwargs = dict(
            node_counts=(1000, 10_000, N_SCALE),
            num_bitmaps=32,
            scale=1e-3,
            trials=2,
            seed=7,
        )
        serial = run_scalability(jobs=1, **kwargs)
        parallel = run_scalability(jobs=4, **kwargs)
        assert serial == parallel  # byte-identity at any DHS_JOBS width
        coefficient = fit_log2_coefficient(serial)
        assert coefficient > 0.0
        for row in serial:
            if row.n_nodes == N_SCALE:
                predicted = coefficient * math.log2(row.n_nodes)
                assert row.hops <= 2.0 * predicted
