"""Tests for the multi-tenant Zipf workload generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.multitenant import (
    TENANT_ID_STRIDE,
    gini_coefficient,
    load_balance,
    tenant_item_ids,
    tenant_metric,
    tenant_op_counts,
)


class TestTenantOpCounts:
    def test_conserves_total_and_is_deterministic(self):
        ops = tenant_op_counts(100, 5000, theta=0.7, seed=11)
        assert ops.shape == (100,)
        assert int(ops.sum()) == 5000
        again = tenant_op_counts(100, 5000, theta=0.7, seed=11)
        assert np.array_equal(ops, again)

    def test_skew_puts_most_traffic_on_low_tenants(self):
        ops = tenant_op_counts(1000, 50_000, theta=0.9, seed=2)
        head = int(ops[:10].sum())
        tail = int(ops[-10:].sum())
        assert head > 5 * max(tail, 1)
        assert int(ops[0]) == int(ops.max())

    def test_seed_changes_draw(self):
        a = tenant_op_counts(50, 1000, seed=1)
        b = tenant_op_counts(50, 1000, seed=2)
        assert not np.array_equal(a, b)

    def test_zero_ops(self):
        assert int(tenant_op_counts(10, 0).sum()) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            tenant_op_counts(0, 10)
        with pytest.raises(ConfigurationError):
            tenant_op_counts(10, -1)


class TestTenantItemIds:
    def test_blocks_are_disjoint(self):
        a = tenant_item_ids(0, 100)
        b = tenant_item_ids(1, 100)
        assert a[0] == 0 and a[-1] == 99
        assert b[0] == TENANT_ID_STRIDE
        assert not set(a.tolist()) & set(b.tolist())

    def test_large_tenant_index_stays_in_int64(self):
        ids = tenant_item_ids(1_000_000, 3)
        assert ids.dtype == np.int64
        assert int(ids[0]) == 1_000_000 * TENANT_ID_STRIDE

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            tenant_item_ids(-1, 10)
        with pytest.raises(ConfigurationError):
            tenant_item_ids(0, TENANT_ID_STRIDE)

    def test_metric_ids_distinct(self):
        assert tenant_metric(3) != tenant_metric(4)
        assert tenant_metric(3) == ("tenant", 3)


class TestLoadBalance:
    def test_uniform_vector(self):
        balance = load_balance([5.0, 5.0, 5.0, 5.0])
        assert balance.max_mean == 1.0
        assert balance.gini == 0.0
        assert balance.n == 4 and balance.mean == 5.0 and balance.max == 5.0

    def test_fully_concentrated_vector(self):
        balance = load_balance([0.0, 0.0, 0.0, 12.0])
        assert balance.max_mean == 4.0
        assert balance.gini == pytest.approx(0.75)

    def test_all_zero_vector_is_balanced(self):
        balance = load_balance([0.0, 0.0])
        assert balance.max_mean == 0.0
        assert balance.gini == 0.0

    def test_gini_edge_cases(self):
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([3.0]) == 0.0
        with pytest.raises(ConfigurationError):
            gini_coefficient([-1.0, 2.0])

    def test_empty_vector_rejected(self):
        with pytest.raises(ConfigurationError):
            load_balance([])

    def test_gini_scale_invariant(self):
        values = [1.0, 2.0, 3.0, 10.0]
        assert gini_coefficient(values) == pytest.approx(
            gini_coefficient([10 * v for v in values])
        )
