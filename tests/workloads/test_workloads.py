"""Tests for workload generators: Zipf, relations, assignment, multisets."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.assignment import assign_items, assign_uniform
from repro.workloads.multisets import replicated_multiset, zipf_duplicated_multiset
from repro.workloads.relations import PAPER_SIZES, make_relation, standard_relations
from repro.workloads.zipf import ZipfGenerator


class TestZipf:
    def test_samples_in_domain(self):
        generator = ZipfGenerator(100, theta=0.7)
        samples = generator.sample(10_000, seed=1)
        assert samples.min() >= 1
        assert samples.max() <= 100

    def test_deterministic(self):
        generator = ZipfGenerator(50)
        assert np.array_equal(generator.sample(100, seed=5), generator.sample(100, seed=5))

    def test_skew_orders_frequencies(self):
        generator = ZipfGenerator(100, theta=1.0)
        samples = generator.sample(50_000, seed=2)
        counts = np.bincount(samples, minlength=101)
        assert counts[1] > counts[10] > counts[100]

    def test_theta_zero_is_uniform(self):
        generator = ZipfGenerator(10, theta=0.0)
        samples = generator.sample(50_000, seed=3)
        counts = np.bincount(samples, minlength=11)[1:]
        assert counts.max() / counts.min() < 1.2

    def test_probability_sums_to_one(self):
        generator = ZipfGenerator(200, theta=0.7)
        total = sum(generator.probability(v) for v in range(1, 201))
        assert total == pytest.approx(1.0)

    def test_probability_matches_definition(self):
        generator = ZipfGenerator(10, theta=0.7)
        weights = [1 / i**0.7 for i in range(1, 11)]
        assert generator.probability(1) == pytest.approx(weights[0] / sum(weights))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfGenerator(0)
        with pytest.raises(ConfigurationError):
            ZipfGenerator(10, theta=-1)
        with pytest.raises(ConfigurationError):
            ZipfGenerator(10).sample(-1)
        with pytest.raises(ValueError):
            ZipfGenerator(10).probability(11)


class TestRelations:
    def test_make_relation(self):
        relation = make_relation("R", 1000, domain=500, seed=1)
        assert relation.size == 1000
        assert relation.domain == (1, 500)
        assert relation.values.min() >= 1
        assert relation.values.max() <= 500

    def test_item_ids_unique_across_relations(self):
        a = make_relation("A", 100)
        b = make_relation("B", 100)
        assert set(a.item_ids().tolist()).isdisjoint(b.item_ids().tolist())

    def test_item_ids_match_iter(self):
        relation = make_relation("C", 50)
        assert relation.item_ids().tolist() == list(relation.iter_items())

    def test_item_id_scalar(self):
        relation = make_relation("D", 10)
        assert relation.item_id(3) == relation.item_ids()[3]

    def test_value_of(self):
        relation = make_relation("E", 10)
        assert relation.value_of(0) == int(relation.values[0])

    def test_standard_relations_scaled(self):
        relations = standard_relations(scale=1e-4)
        assert [r.name for r in relations] == ["Q", "R", "S", "T"]
        for relation, full in zip(relations, PAPER_SIZES.values()):
            assert relation.size == int(full * 1e-4)

    def test_sizes_double(self):
        relations = standard_relations(scale=1e-4)
        sizes = [r.size for r in relations]
        for a, b in zip(sizes, sizes[1:]):
            assert b == 2 * a

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_relation("X", 0)
        with pytest.raises(ConfigurationError):
            standard_relations(scale=0)
        with pytest.raises(ConfigurationError):
            standard_relations(scale=1.5)


class TestAssignment:
    def test_partition_covers_everything_once(self):
        nodes = [10, 20, 30, 40]
        assignment = assign_uniform(1000, nodes, seed=1)
        seen = np.concatenate(list(assignment.values()))
        assert sorted(seen.tolist()) == list(range(1000))

    def test_roughly_uniform(self):
        nodes = list(range(16))
        assignment = assign_uniform(16_000, nodes, seed=2)
        sizes = [len(v) for v in assignment.values()]
        assert min(sizes) > 700
        assert max(sizes) < 1300

    def test_deterministic(self):
        nodes = [1, 2, 3]
        a = assign_uniform(100, nodes, seed=3)
        b = assign_uniform(100, nodes, seed=3)
        for node in a:
            assert np.array_equal(a[node], b[node])

    def test_assign_items_maps_values(self):
        items = ["a", "b", "c", "d", "e"]
        assignment = assign_items(items, [1, 2], seed=1)
        flat = [item for chunk in assignment.values() for item in chunk]
        assert sorted(flat) == sorted(items)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            assign_uniform(10, [])
        with pytest.raises(ConfigurationError):
            assign_uniform(-1, [1])


class TestMultisets:
    def test_replicated_counts(self):
        multiset = replicated_multiset(100, copies=5, seed=1)
        assert len(multiset) == 500
        assert len(set(multiset)) == 100

    def test_replicated_each_item_exact_copies(self):
        from collections import Counter

        counts = Counter(replicated_multiset(50, copies=3, seed=2))
        assert all(c == 3 for c in counts.values())

    def test_zipf_duplicated_distinct_exact(self):
        multiset = zipf_duplicated_multiset(200, total=1000, seed=3)
        assert len(multiset) == 1000
        assert len(set(multiset)) == 200

    def test_zipf_duplicated_skew(self):
        from collections import Counter

        counts = Counter(zipf_duplicated_multiset(100, total=10_000, theta=1.2, seed=4))
        most_common = counts.most_common(1)[0][1]
        assert most_common > 10_000 / 100  # popular item well above average

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            replicated_multiset(-1, 1)
        with pytest.raises(ConfigurationError):
            replicated_multiset(10, 0)
        with pytest.raises(ConfigurationError):
            zipf_duplicated_multiset(10, total=5)
