"""Tests for the sketch-payload gossip baseline."""

import pytest

from repro.baselines.base import distinct_count, total_count
from repro.baselines.gossip import PushSumGossip
from repro.baselines.sketch_gossip import SketchGossip
from repro.core.config import DHSConfig
from repro.errors import ConfigurationError
from repro.overlay.chord import ChordRing
from repro.workloads.assignment import assign_items
from repro.workloads.multisets import replicated_multiset


@pytest.fixture(scope="module")
def ring():
    return ChordRing.build(64, bits=32, seed=4)


@pytest.fixture(scope="module")
def scenario(ring):
    items = replicated_multiset(800, copies=3, seed=1)
    return assign_items(items, list(ring.node_ids()), seed=2)


@pytest.fixture(scope="module")
def result(ring, scenario):
    gossip = SketchGossip(ring, DHSConfig(num_bitmaps=128), seed=3)
    return gossip.run(scenario)


class TestConvergence:
    def test_estimates_distinct_count(self, result, scenario):
        outcome, _ = result
        truth = distinct_count(scenario)
        assert outcome.estimate == pytest.approx(truth, rel=0.35)
        # Crucially NOT the occurrence count: duplicates are free.
        assert outcome.estimate < 0.6 * total_count(scenario)

    def test_duplicate_insensitive_flag(self, result):
        outcome, _ = result
        assert outcome.duplicate_insensitive

    def test_logarithmic_rounds(self, result, ring):
        _, rounds = result
        # Push gossip disseminates in O(log N) rounds.
        assert 2 <= rounds <= 30

    def test_every_round_moves_full_sketches(self, result, ring):
        outcome, rounds = result
        assert outcome.cost.messages == rounds * ring.size
        # Sketch payloads (m registers) dwarf push-sum's 16-byte pairs.
        assert outcome.cost.bytes / outcome.cost.messages >= 128

    def test_costlier_than_pushsum_per_round(self, ring, scenario):
        sketch_result, _ = SketchGossip(ring, DHSConfig(num_bitmaps=128), seed=3).run(
            scenario
        )
        pushsum_result, _ = PushSumGossip(ring, seed=3).run(scenario, epsilon=0.05)
        sketch_per_round = sketch_result.cost.bytes / sketch_result.rounds
        pushsum_per_round = pushsum_result.cost.bytes / pushsum_result.rounds
        assert sketch_per_round > 5 * pushsum_per_round


class TestValidation:
    def test_empty_overlay_rejected(self):
        ring = ChordRing.from_ids([1], bits=8)
        ring.remove_node(1, graceful=False)
        with pytest.raises(ConfigurationError):
            SketchGossip(ring).run({})

    def test_deterministic(self, ring, scenario):
        a, _ = SketchGossip(ring, DHSConfig(num_bitmaps=64), seed=9).run(scenario)
        b, _ = SketchGossip(ring, DHSConfig(num_bitmaps=64), seed=9).run(scenario)
        assert a.estimate == b.estimate
