"""Tests for the four related-work baseline families."""

import pytest

from repro.baselines.base import BaselineResult, distinct_count, total_count
from repro.baselines.convergecast import ConvergecastAggregator
from repro.baselines.gossip import PushSumGossip
from repro.baselines.sampling import SamplingEstimator
from repro.baselines.single_node import SingleNodeCounter
from repro.core.config import DHSConfig
from repro.errors import ConfigurationError
from repro.overlay.chord import ChordRing
from repro.workloads.assignment import assign_items
from repro.workloads.multisets import replicated_multiset


@pytest.fixture(scope="module")
def ring():
    return ChordRing.build(64, bits=32, seed=4)


@pytest.fixture(scope="module")
def scenario(ring):
    """800 distinct items, each held by 3 different nodes (duplicates)."""
    items = replicated_multiset(800, copies=3, seed=1)
    return assign_items(items, list(ring.node_ids()), seed=2)


class TestScenarioHelpers:
    def test_counts(self, scenario):
        assert distinct_count(scenario) == 800
        assert total_count(scenario) == 2400

    def test_relative_error(self):
        result = BaselineResult(estimate=110.0)
        assert result.relative_error(100.0) == pytest.approx(0.1)
        assert BaselineResult(estimate=0.0).relative_error(0.0) == 0.0
        assert BaselineResult(estimate=1.0).relative_error(0.0) == float("inf")


class TestSingleNode:
    def test_exact_distinct_count(self, ring, scenario):
        counter = SingleNodeCounter(ring, "docs", distinct=True)
        counter.populate(scenario)
        result = counter.query(origin=list(ring.node_ids())[5])
        assert result.estimate == 800
        assert result.duplicate_insensitive

    def test_occurrence_mode_counts_duplicates(self, ring, scenario):
        counter = SingleNodeCounter(ring, "occurrences", distinct=False)
        counter.populate(scenario)
        assert counter.query().estimate == 2400

    def test_hotspot_load(self, ring, scenario):
        """The family's flaw: one node absorbs every update."""
        ring.load.reset()
        counter = SingleNodeCounter(ring, "hotspot-check", distinct=True)
        counter.populate(scenario)
        hot = ring.load.count(counter.counter_node)
        assert hot >= total_count(scenario)  # every update landed there
        assert ring.load.imbalance(ring.node_ids()) > 5

    def test_distinct_mode_stores_whole_set(self, ring, scenario):
        counter = SingleNodeCounter(ring, "storage-check", distinct=True)
        counter.populate(scenario)
        assert counter.counter_storage_entries() == 800

    def test_empty_counter_reads_zero(self, ring):
        counter = SingleNodeCounter(ring, "never-touched")
        assert counter.query().estimate == 0.0


class TestGossip:
    def test_converges_to_sum(self, ring, scenario):
        gossip = PushSumGossip(ring, seed=3)
        result, trace = gossip.run(scenario, epsilon=0.01)
        truth = total_count(scenario)  # duplicate-sensitive by nature
        assert result.estimate == pytest.approx(truth, rel=0.02)
        assert trace.deviations[-1] <= 0.01

    def test_needs_many_rounds(self, ring, scenario):
        """Multi-round behaviour: well above one round-trip."""
        result, _ = PushSumGossip(ring, seed=3).run(scenario, epsilon=0.01)
        assert result.rounds >= 5

    def test_deviation_decreases(self, ring, scenario):
        _, trace = PushSumGossip(ring, seed=3).run(scenario, epsilon=0.001)
        assert trace.deviations[-1] < trace.deviations[0]

    def test_messages_scale_with_nodes_and_rounds(self, ring, scenario):
        result, _ = PushSumGossip(ring, seed=3).run(scenario, epsilon=0.01)
        assert result.cost.messages == result.rounds * ring.size

    def test_duplicate_sensitivity_flag(self, ring, scenario):
        result, _ = PushSumGossip(ring, seed=3).run(scenario)
        assert not result.duplicate_insensitive

    def test_epsilon_validated(self, ring, scenario):
        with pytest.raises(ConfigurationError):
            PushSumGossip(ring).run(scenario, epsilon=0.0)


class TestConvergecast:
    def test_sketch_variant_estimates_distinct(self, ring, scenario):
        aggregator = ConvergecastAggregator(
            ring, use_sketches=True, sketch_config=DHSConfig(num_bitmaps=128)
        )
        result = aggregator.query(scenario)
        assert result.duplicate_insensitive
        assert result.estimate == pytest.approx(800, rel=0.4)

    def test_raw_variant_double_counts(self, ring, scenario):
        aggregator = ConvergecastAggregator(ring, use_sketches=False)
        result = aggregator.query(scenario)
        assert result.estimate == 2400  # occurrences, not distinct
        assert not result.duplicate_insensitive

    def test_touches_every_node(self, ring, scenario):
        result = ConvergecastAggregator(ring, use_sketches=False).query(scenario)
        # one broadcast + one convergecast message per tree edge
        assert result.cost.messages == 2 * (ring.size - 1)

    def test_sketches_cost_more_bandwidth_than_counts(self, ring, scenario):
        raw = ConvergecastAggregator(ring, use_sketches=False).query(scenario)
        sketched = ConvergecastAggregator(
            ring, use_sketches=True, sketch_config=DHSConfig(num_bitmaps=128)
        ).query(scenario)
        assert sketched.cost.bytes > raw.cost.bytes

    def test_root_choice_does_not_change_raw_estimate(self, ring, scenario):
        aggregator = ConvergecastAggregator(ring, use_sketches=False)
        ids = list(ring.node_ids())
        assert (
            aggregator.query(scenario, root=ids[0]).estimate
            == aggregator.query(scenario, root=ids[7]).estimate
        )


class TestSampling:
    def test_full_sample_is_exact_total(self, ring, scenario):
        estimator = SamplingEstimator(ring, seed=5)
        result = estimator.query(scenario, sample_size=ring.size, local_dedup=False)
        assert result.estimate == pytest.approx(total_count(scenario))

    def test_small_sample_noisy(self, ring, scenario):
        """Accuracy improves with sample size (on average)."""
        truth = total_count(scenario)

        def mean_error(size):
            errors = []
            for seed in range(12):
                result = SamplingEstimator(ring, seed=seed).query(
                    scenario, sample_size=size, local_dedup=False
                )
                errors.append(result.relative_error(truth))
            return sum(errors) / len(errors)

        assert mean_error(48) <= mean_error(4) + 0.02

    def test_cost_scales_with_sample(self, ring, scenario):
        small = SamplingEstimator(ring, seed=1).query(scenario, sample_size=4)
        large = SamplingEstimator(ring, seed=1).query(scenario, sample_size=32)
        assert large.cost.hops > small.cost.hops

    def test_cannot_see_cross_node_duplicates(self, ring, scenario):
        """Even with local dedup the estimate tracks occurrences."""
        result = SamplingEstimator(ring, seed=2).query(
            scenario, sample_size=ring.size, local_dedup=True
        )
        assert result.estimate > 1.5 * distinct_count(scenario)

    def test_sample_size_validated(self, ring, scenario):
        with pytest.raises(ConfigurationError):
            SamplingEstimator(ring).query(scenario, sample_size=0)
        with pytest.raises(ConfigurationError):
            SamplingEstimator(ring).query(scenario, sample_size=ring.size + 1)


class TestPartitionedCounter:
    def test_exact_distinct_count(self, ring, scenario):
        from repro.baselines.single_node import PartitionedCounter

        counter = PartitionedCounter(ring, "p-docs", partitions=8)
        counter.populate(scenario)
        result = counter.query(origin=list(ring.node_ids())[3])
        assert result.estimate == 800
        assert result.duplicate_insensitive

    def test_query_cost_scales_with_partitions(self, ring, scenario):
        from repro.baselines.single_node import PartitionedCounter

        small = PartitionedCounter(ring, "p2", partitions=2)
        large = PartitionedCounter(ring, "p16", partitions=16)
        small.populate(scenario)
        large.populate(scenario)
        origin = list(ring.node_ids())[0]
        assert large.query(origin=origin).cost.lookups == 16
        assert small.query(origin=origin).cost.lookups == 2
        assert (
            large.query(origin=origin).cost.hops
            > small.query(origin=origin).cost.hops
        )

    def test_partitions_dilute_the_hotspot(self, ring, scenario):
        """More partitions -> lower per-node update load; the paper's
        'merely mitigates' observation."""
        from repro.baselines.single_node import PartitionedCounter

        ring.load.reset()
        single = PartitionedCounter(ring, "hot1", partitions=1)
        single.populate(scenario)
        single_max = ring.load.max_load()

        ring.load.reset()
        spread = PartitionedCounter(ring, "hot8", partitions=8)
        spread.populate(scenario)
        spread_max = ring.load.max_load()
        assert spread_max < single_max

    def test_single_partition_matches_single_node_semantics(self, ring, scenario):
        from repro.baselines.single_node import PartitionedCounter

        counter = PartitionedCounter(ring, "p-one", partitions=1)
        counter.populate(scenario)
        assert counter.query().estimate == 800

    def test_partitions_validated(self, ring):
        from repro.baselines.single_node import PartitionedCounter

        with pytest.raises(ValueError):
            PartitionedCounter(ring, "bad", partitions=0)
