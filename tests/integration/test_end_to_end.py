"""End-to-end integration tests across the whole stack."""

import py_compile
import pathlib

import pytest

from repro import (
    ChordRing,
    DHSConfig,
    DistributedHashSketch,
    KademliaOverlay,
)
from repro.histograms.buckets import BucketSpec
from repro.histograms.builder import DHSHistogramBuilder
from repro.histograms.histogram import Histogram
from repro.query.catalog import Catalog
from repro.query.engine import execute_plan
from repro.query.optimizer import optimize
from repro.sim.seeds import rng_for
from repro.workloads.assignment import assign_items
from repro.workloads.multisets import zipf_duplicated_multiset
from repro.workloads.relations import make_relation

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


class TestExamplesCompile:
    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_example_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_at_least_three_examples(self):
        assert len(EXAMPLES) >= 3


class TestDHSOverKademlia:
    """The DHT-agnosticism claim: DHS runs unchanged over XOR routing."""

    def test_count_over_kademlia(self):
        overlay = KademliaOverlay.build(64, bits=32, seed=5)
        dhs = DistributedHashSketch(
            overlay, DHSConfig(key_bits=16, num_bitmaps=8, lim=70), seed=2
        )
        node_ids = list(overlay.node_ids())
        for i in range(3000):
            dhs.insert("docs", i, origin=node_ids[i % len(node_ids)])
        result = dhs.count("docs")
        assert result.estimate() == pytest.approx(3000, rel=0.6)
        assert result.cost.hops > 0

    def test_same_config_either_overlay(self):
        """Identical DHS code paths on both geometries, similar results."""
        estimates = {}
        for name, overlay in (
            ("chord", ChordRing.build(64, bits=32, seed=5)),
            ("kademlia", KademliaOverlay.build(64, bits=32, seed=5)),
        ):
            dhs = DistributedHashSketch(
                overlay, DHSConfig(key_bits=16, num_bitmaps=8, lim=70), seed=2
            )
            node_ids = list(overlay.node_ids())
            for i in range(3000):
                dhs.insert("docs", i, origin=node_ids[i % len(node_ids)])
            estimates[name] = dhs.count("docs").estimate()
        # Same sketch parameters and hash family => same underlying
        # logical sketch; lossless reads would agree exactly.
        assert estimates["chord"] == pytest.approx(estimates["kademlia"], rel=0.3)


class TestDuplicateScenario:
    def test_file_sharing_pipeline(self):
        """Duplicated documents over many peers count once."""
        ring = ChordRing.build(64, bits=32, seed=9)
        dhs = DistributedHashSketch(
            ring, DHSConfig(key_bits=16, num_bitmaps=16, lim=70), seed=3
        )
        copies = zipf_duplicated_multiset(1500, total=6000, seed=4)
        holdings = assign_items(copies, list(ring.node_ids()), seed=5)
        for node_id, docs in holdings.items():
            dhs.insert_bulk("files", docs, origin=node_id)
        estimate = dhs.count("files").estimate()
        assert estimate == pytest.approx(1500, rel=0.5)
        assert estimate < 3000  # nowhere near the 6000 occurrences


class TestHistogramToOptimizerPipeline:
    def test_dhs_catalog_drives_optimizer(self):
        """The full paper pipeline: relations -> DHS histogram metrics ->
        network reconstruction -> catalog -> join plan -> execution."""
        relations = [
            make_relation("A", 4000, domain=500, seed=1),
            make_relation("B", 8000, domain=500, seed=2),
            make_relation("C", 16000, domain=500, seed=3),
        ]
        by_name = {r.name: r for r in relations}
        spec = BucketSpec.equi_width(1, 500, 8)
        ring = ChordRing.build(64, bits=32, seed=11)
        dhs = DistributedHashSketch(
            ring, DHSConfig(key_bits=16, num_bitmaps=16, lim=70), seed=4
        )
        node_ids = list(ring.node_ids())
        for relation in relations:
            builder = DHSHistogramBuilder(dhs, spec, relation.name)
            pairs = [
                (relation.item_id(i), float(relation.values[i]))
                for i in range(relation.size)
            ]
            for start in range(0, len(pairs), 500):
                origin = node_ids[(start // 500) % len(node_ids)]
                builder.record_bulk(pairs[start : start + 500], origin=origin)

        catalog = Catalog.from_dhs(dhs, relations, spec)
        assert catalog.acquisition_cost.hops > 0

        # Catalog cardinalities approximate the truth.
        for relation in relations:
            assert catalog.entry(relation.name).cardinality == pytest.approx(
                relation.size, rel=0.6
            )

        plan = optimize(catalog, ["A", "B", "C"])
        executed = execute_plan(plan.root, by_name)
        worst = max(
            execute_plan(optimize(Catalog.exact(relations, spec), ["A", "B", "C"]).root, by_name).shipped_bytes,
            1.0,
        )
        # The DHS-informed plan's transfer is within a modest factor of
        # the oracle's (same plan space, estimated statistics).
        assert executed.shipped_bytes <= 3 * worst

    def test_dhs_histogram_matches_exact_shape(self):
        relation = make_relation("D", 12_000, domain=400, seed=7)
        spec = BucketSpec.equi_width(1, 400, 5)
        ring = ChordRing.build(64, bits=32, seed=13)
        dhs = DistributedHashSketch(
            ring, DHSConfig(key_bits=16, num_bitmaps=16, lim=70), seed=5
        )
        builder = DHSHistogramBuilder(dhs, spec, "D")
        node_ids = list(ring.node_ids())
        rng = rng_for(7, "spread")
        pairs = [(relation.item_id(i), float(relation.values[i])) for i in range(relation.size)]
        for start in range(0, len(pairs), 400):
            builder.record_bulk(pairs[start : start + 400], origin=rng.choice(node_ids))
        reconstruction = builder.reconstruct()
        truth = Histogram.exact(spec, relation.values)
        # Zipf data: bucket 0 dominates; the reconstruction must agree
        # on the ordering of dense vs sparse buckets.
        est = reconstruction.histogram.counts
        assert est[0] == max(est)
        assert est[0] == pytest.approx(truth.counts[0], rel=0.5)


class TestSoftStateLifecycle:
    def test_insert_expire_refresh_cycle(self):
        ring = ChordRing.build(32, bits=32, seed=17)
        dhs = DistributedHashSketch(
            ring, DHSConfig(key_bits=16, num_bitmaps=4, lim=40, ttl=20), seed=6
        )
        items = list(range(600))
        node_ids = list(ring.node_ids())
        for i, item in enumerate(items):
            dhs.insert("m", item, origin=node_ids[i % len(node_ids)], now=0)
        alive = dhs.count("m", now=10).estimate()
        dead = dhs.count("m", now=50).estimate()
        dhs.refresh("m", items, now=50)
        revived = dhs.count("m", now=60).estimate()
        assert alive > 0
        assert dead == 0.0
        assert revived == pytest.approx(alive, rel=0.7)


class TestMultiAttributeOverDHS:
    def test_filter_histograms_reconstructed_over_network(self):
        """Full multi-attribute pipeline: both attributes' histograms
        live in the DHS; a querying node reconstructs them and pushes a
        b-predicate below an optimized join."""
        from repro.core.config import DHSConfig
        from repro.core.dhs import DistributedHashSketch
        from repro.experiments.common import (
            populate_filter_histogram_metrics,
            populate_histogram_metrics,
        )
        from repro.overlay.chord import ChordRing
        from repro.query.engine import execute_plan
        from repro.query.optimizer import optimize

        relations = [
            make_relation("A", 6000, domain=500, seed=1, filter_domain=100),
            make_relation("B", 12000, domain=500, seed=2, filter_domain=100),
        ]
        by_name = {r.name: r for r in relations}
        spec = BucketSpec.equi_width(1, 500, 8)
        ring = ChordRing.build(64, seed=15)
        dhs = DistributedHashSketch(
            ring, DHSConfig(num_bitmaps=32, lim=20), seed=6
        )
        for relation in relations:
            populate_histogram_metrics(dhs, relation, 8, seed=3)
            populate_filter_histogram_metrics(dhs, relation, 5, seed=4)

        catalog = Catalog.from_dhs(dhs, relations, spec, filter_buckets=5)
        for relation in relations:
            entry = catalog.entry(relation.name)
            assert entry.filter_histogram is not None
            assert entry.filter_histogram.total == pytest.approx(
                relation.size, rel=0.6
            )

        predicates = {"B": ("b", 1, 20)}
        plan = optimize(catalog, ["A", "B"], predicates=predicates)
        executed = execute_plan(plan.root, by_name, predicates=predicates)
        unfiltered = execute_plan(plan.root, by_name)
        assert executed.rows < unfiltered.rows
