"""Tests for deterministic seed derivation."""

import pytest

from repro.sim.seeds import derive_seed, rng_for, spawn_seeds


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "overlay") == derive_seed(1, "overlay")

    def test_label_paths_distinct(self):
        assert derive_seed(1, "overlay") != derive_seed(1, "workload")
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_master_seed_matters(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_int_labels(self):
        assert derive_seed(1, 5) != derive_seed(1, 6)

    def test_mixed_labels(self):
        assert derive_seed(1, "trial", 3) == derive_seed(1, "trial", 3)

    def test_rejects_bad_label_type(self):
        with pytest.raises(TypeError):
            derive_seed(1, 3.5)

    def test_no_trivial_collisions(self):
        seeds = {derive_seed(0, "label", i) for i in range(10_000)}
        assert len(seeds) == 10_000


class TestRngFor:
    def test_streams_reproducible(self):
        a = rng_for(7, "stream")
        b = rng_for(7, "stream")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_independent(self):
        a = rng_for(7, "s1")
        b = rng_for(7, "s2")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestSpawnSeeds:
    def test_count_and_determinism(self):
        first = list(spawn_seeds(3, 10, "workers"))
        second = list(spawn_seeds(3, 10, "workers"))
        assert len(first) == 10
        assert first == second
        assert len(set(first)) == 10
