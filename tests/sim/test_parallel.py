"""Tests for the process-parallel trial runner (repro.sim.parallel).

The harness's contract is that results are bit-identical to the serial
run at any worker count: trials are pure functions of ``(fn, seed,
kwargs)`` and results come back in submission order.  The property test
at the bottom checks the contract end to end on a real experiment
driver with ``DHS_JOBS=4``.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.accuracy import run_accuracy_sweep
from repro.sim.parallel import TrialSpec, env_jobs, run_trials
from repro.sim.seeds import rng_for


def _stream_cell(seed, *, label, draws):
    """Module-level (hence picklable) trial: a few seeded RNG draws."""
    rng = rng_for(seed, "cell", label)
    return (seed, label, [rng.random() for _ in range(draws)])


def _identity_cell(seed):
    return seed


def _grid(seeds):
    return [
        TrialSpec(fn=_stream_cell, seed=seed, kwargs={"label": str(i), "draws": 3})
        for i, seed in enumerate(seeds)
    ]


class TestRunTrials:
    def test_serial_runs_in_spec_order(self):
        specs = [TrialSpec(fn=_identity_cell, seed=s) for s in (5, 3, 8, 1)]
        assert run_trials(specs, jobs=1) == [5, 3, 8, 1]

    def test_parallel_preserves_spec_order(self):
        specs = [TrialSpec(fn=_identity_cell, seed=s) for s in (5, 3, 8, 1, 9, 2)]
        assert run_trials(specs, jobs=4) == [5, 3, 8, 1, 9, 2]

    @pytest.mark.parametrize("jobs", [2, 4, 8])
    def test_parallel_matches_serial_exactly(self, jobs):
        specs = _grid([11, 7, 7, 42, 0])
        assert run_trials(specs, jobs=jobs) == run_trials(specs, jobs=1)

    def test_single_spec_skips_the_pool(self):
        specs = [TrialSpec(fn=_identity_cell, seed=123)]
        assert run_trials(specs, jobs=8) == [123]

    def test_empty_grid(self):
        assert run_trials([], jobs=4) == []


class TestEnvJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("DHS_JOBS", raising=False)
        assert env_jobs() == 1

    def test_reads_dhs_jobs(self, monkeypatch):
        monkeypatch.setenv("DHS_JOBS", "6")
        assert env_jobs() == 6

    def test_caller_default_wins_when_unset(self, monkeypatch):
        monkeypatch.delenv("DHS_JOBS", raising=False)
        assert env_jobs(default=4) == 4

    def test_run_trials_honours_env(self, monkeypatch):
        monkeypatch.setenv("DHS_JOBS", "2")
        specs = _grid([1, 2, 3])
        assert run_trials(specs) == run_trials(specs, jobs=1)


class TestDriverDeterminism:
    """End-to-end contract: a real driver is bit-identical at DHS_JOBS=4."""

    SWEEP = dict(ms=(8, 16), n_nodes=8, scale=2e-5, trials=1, hash_seeds=(0, 1))

    @given(seed=st.integers(0, 2**20))
    @settings(max_examples=3, deadline=None)
    def test_accuracy_sweep_bit_identical_at_four_workers(self, seed):
        serial = run_accuracy_sweep(seed=seed, jobs=1, **self.SWEEP)
        previous = os.environ.get("DHS_JOBS")
        os.environ["DHS_JOBS"] = "4"
        try:
            parallel = run_accuracy_sweep(seed=seed, **self.SWEEP)
        finally:
            if previous is None:
                os.environ.pop("DHS_JOBS", None)
            else:
                os.environ["DHS_JOBS"] = previous
        assert parallel == serial
