"""Tests for DistributedHashSketch facade introspection utilities."""

import pytest

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.overlay.chord import ChordRing


@pytest.fixture()
def dhs():
    ring = ChordRing.build(64, bits=32, seed=19)
    deployment = DistributedHashSketch(
        ring, DHSConfig(key_bits=16, num_bitmaps=8, lim=40), seed=7
    )
    node_ids = list(ring.node_ids())
    for i in range(2000):
        deployment.insert("docs", i, origin=node_ids[i % len(node_ids)])
    return deployment


class TestStorageIntrospection:
    def test_storage_per_node_covers_all_nodes(self, dhs):
        storage = dhs.storage_per_node()
        assert set(storage) == set(dhs.dht.node_ids())
        assert sum(storage.values()) > 0

    def test_storage_bytes_scale_by_tuple_size(self, dhs):
        entries = dhs.storage_per_node()
        bytes_ = dhs.storage_bytes_per_node()
        tuple_bytes = dhs.config.size_model.tuple_bytes
        for node_id in entries:
            assert bytes_[node_id] == entries[node_id] * tuple_bytes

    def test_interval_node_counts(self, dhs):
        counts = dhs.interval_node_counts()
        assert len(counts) == dhs.mapping.num_intervals
        # Interval sizes halve, so node counts must sum to <= N and the
        # first interval holds about half the nodes.
        assert sum(counts) <= dhs.dht.size
        assert counts[0] == pytest.approx(dhs.dht.size / 2, rel=0.5)


class TestLocalSketch:
    def test_local_sketch_matches_config(self, dhs):
        sketch = dhs.local_sketch(range(100))
        assert sketch.m == dhs.config.num_bitmaps
        assert sketch.key_bits == dhs.config.key_bits
        assert not sketch.is_empty()

    def test_local_sketch_uses_same_hash_family(self, dhs):
        sketch = dhs.local_sketch([])
        assert sketch.hash_family == dhs.hash_family


class TestStoreMergeHook:
    def test_facade_installs_dhs_merge(self, dhs):
        from repro.core.tuples import merge_store_values

        assert dhs.dht.store_merge is merge_store_values

    def test_graceful_leave_preserves_counts(self, dhs):
        before = dhs.count("docs", origin=dhs.dht.node_ids()[0]).estimate()
        victims = list(dhs.dht.node_ids())[10:18]
        for victim in victims:
            dhs.dht.remove_node(victim, graceful=True)
        after = dhs.count("docs", origin=dhs.dht.node_ids()[0]).estimate()
        assert after == pytest.approx(before, rel=0.3)


class TestInsertManyCost:
    def test_costs_accumulate(self, dhs):
        origin = dhs.dht.node_ids()[0]
        total = dhs.insert_many("other", range(25), origin=origin)
        assert total.lookups == 25
        assert total.hops >= 25  # at least one hop each on a 64-node ring
