"""Packed-bitmap store vs a plain-dict reference model.

``core/tuples.py`` stores one :class:`PackedSlot` per ``(metric, bit)``
key: an integer mask of immortal vectors plus a lazy ``{vector: expiry}``
dict for TTL'd entries.  These tests drive the packed implementation and
an obviously-correct ``{(metric, bit): {vector: expiry}}`` dict model
through the same operation sequences — including TTL expiry, refresh
(max-wins), and immortality dominating TTL — and require identical
observable behaviour at every step.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tuples import (
    PackedSlot,
    bits_of,
    merge_store_values,
    purge_expired,
    storage_entries,
    vectors_at,
    vectors_mask,
    write_entry,
)
from repro.overlay.node import Node

METRICS = ("docs", "users")
MAX_VECTOR = 8
MAX_BIT = 4


class ReferenceStore:
    """The pre-packed layout: ``{(metric, bit): {vector: expiry}}``.

    Immortal entries are modelled as ``inf`` expiry; refresh is max-wins,
    so immortality can never be shortened by a later TTL write.
    """

    def __init__(self):
        self.slots = {}

    def write(self, metric, vector, bit, expiry):
        slot = self.slots.setdefault((metric, bit), {})
        new = math.inf if expiry is None else float(expiry)
        current = slot.get(vector)
        if current is None or new > current:
            slot[vector] = new

    def vectors(self, metric, bit, now):
        slot = self.slots.get((metric, bit), {})
        return sorted(v for v, expiry in slot.items() if expiry >= now)

    def purge(self, now):
        removed = 0
        for key in list(self.slots):
            slot = self.slots[key]
            for vector in [v for v, e in slot.items() if e < now]:
                del slot[vector]
                removed += 1
            if not slot:
                del self.slots[key]
        return removed

    def entries(self):
        return sum(len(slot) for slot in self.slots.values())


def write_op():
    return st.tuples(
        st.just("write"),
        st.sampled_from(METRICS),
        st.integers(0, MAX_VECTOR - 1),
        st.integers(0, MAX_BIT - 1),
        st.one_of(st.none(), st.integers(0, 20)),
    )


def purge_op():
    return st.tuples(st.just("purge"), st.integers(0, 25))


def assert_same_view(node, ref, now):
    for metric in METRICS:
        for bit in range(MAX_BIT):
            expected = ref.vectors(metric, bit, now)
            assert vectors_at(node, metric, bit, now) == expected
            mask = vectors_mask(node, metric, bit, now)
            assert bits_of(mask) == expected
    assert storage_entries(node) == ref.entries()


class TestPackedMatchesReference:
    @given(
        ops=st.lists(st.one_of(write_op(), purge_op()), max_size=60),
        now=st.integers(0, 25),
    )
    @settings(max_examples=200, deadline=None)
    def test_operation_sequences(self, ops, now):
        node = Node(0)
        ref = ReferenceStore()
        for op in ops:
            if op[0] == "write":
                _, metric, vector, bit, expiry = op
                write_entry(node, metric, vector, bit, expiry)
                ref.write(metric, vector, bit, expiry)
            else:
                _, purge_now = op
                assert purge_expired(node, purge_now) == ref.purge(purge_now)
        assert_same_view(node, ref, now)

    @given(
        ops=st.lists(write_op(), min_size=1, max_size=40),
        purge_times=st.lists(st.integers(0, 25), max_size=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_interleaved_purges_keep_views_aligned(self, ops, purge_times):
        node = Node(0)
        ref = ReferenceStore()
        times = iter(purge_times)
        for i, (_, metric, vector, bit, expiry) in enumerate(ops):
            write_entry(node, metric, vector, bit, expiry)
            ref.write(metric, vector, bit, expiry)
            if i % 7 == 3:
                purge_now = next(times, None)
                if purge_now is not None:
                    assert purge_expired(node, purge_now) == ref.purge(purge_now)
                    assert_same_view(node, ref, purge_now)
        assert_same_view(node, ref, 0)


class TestTTLSemantics:
    def test_entry_expires(self):
        node = Node(0)
        write_entry(node, "docs", 2, 1, expiry=10)
        assert vectors_at(node, "docs", 1, now=10) == [2]  # inclusive bound
        assert vectors_at(node, "docs", 1, now=11) == []

    def test_refresh_extends_max_wins(self):
        node = Node(0)
        write_entry(node, "docs", 2, 1, expiry=10)
        write_entry(node, "docs", 2, 1, expiry=30)
        assert vectors_at(node, "docs", 1, now=20) == [2]
        # A later, shorter TTL must not shorten the stored expiry.
        write_entry(node, "docs", 2, 1, expiry=5)
        assert vectors_at(node, "docs", 1, now=20) == [2]

    def test_immortal_dominates_ttl(self):
        node = Node(0)
        write_entry(node, "docs", 2, 1, expiry=10)
        write_entry(node, "docs", 2, 1, expiry=None)
        assert purge_expired(node, now=1000) == 0
        assert vectors_at(node, "docs", 1, now=10**6) == [2]
        # ... and a TTL written after immortality is a no-op.
        write_entry(node, "docs", 2, 1, expiry=3)
        slot = node.store[("docs", 1)]
        assert not slot.expiring
        assert vectors_at(node, "docs", 1, now=10**6) == [2]

    def test_purge_drops_empty_slots(self):
        node = Node(0)
        write_entry(node, "docs", 2, 1, expiry=5)
        write_entry(node, "docs", 3, 2, expiry=None)
        assert purge_expired(node, now=6) == 1
        assert ("docs", 1) not in node.store
        assert ("docs", 2) in node.store
        assert storage_entries(node) == 1


class TestMergeStoreValues:
    def test_packed_merge_unions_and_max_wins(self):
        a = PackedSlot(mask=0b0011, expiring={5: 10.0, 6: 40.0})
        b = PackedSlot(mask=0b0100, expiring={5: 20.0})
        merged = merge_store_values(a, b)
        assert isinstance(merged, PackedSlot)
        assert merged.mask == 0b0111
        assert merged.expiring == {5: 20.0, 6: 40.0}

    def test_packed_merge_drops_ttl_shadowed_by_immortal(self):
        a = PackedSlot(mask=0b0010, expiring=None)
        b = PackedSlot(mask=0, expiring={1: 50.0, 3: 9.0})
        merged = merge_store_values(a, b)
        assert merged.mask == 0b0010
        assert merged.expiring == {3: 9.0}

    def test_merge_into_empty(self):
        incoming = PackedSlot(mask=0b101, expiring={4: 7.0})
        merged = merge_store_values(None, incoming)
        assert merged.mask == 0b101
        assert merged.expiring == {4: 7.0}

    def test_legacy_dict_slots_merge_max_wins(self):
        merged = merge_store_values({1: 5.0}, {1: 3.0, 2: 9.0})
        assert merged == {1: 5.0, 2: 9.0}

    @given(
        mask_a=st.integers(0, 2**MAX_VECTOR - 1),
        mask_b=st.integers(0, 2**MAX_VECTOR - 1),
        ttl_a=st.dictionaries(
            st.integers(0, MAX_VECTOR - 1), st.floats(0, 50), max_size=4
        ),
        ttl_b=st.dictionaries(
            st.integers(0, MAX_VECTOR - 1), st.floats(0, 50), max_size=4
        ),
        now=st.integers(0, 50),
    )
    @settings(max_examples=150, deadline=None)
    def test_merge_equals_replaying_both_write_streams(self, mask_a, mask_b, ttl_a, ttl_b, now):
        """merge(a, b) must look exactly like writing both slots' entries."""
        slot_a = PackedSlot(mask_a, {v: e for v, e in ttl_a.items() if not mask_a >> v & 1} or None)
        slot_b = PackedSlot(mask_b, {v: e for v, e in ttl_b.items() if not mask_b >> v & 1} or None)
        merged = merge_store_values(slot_a, slot_b)

        node = Node(0)
        for slot in (slot_a, slot_b):
            for vector in bits_of(slot.mask):
                write_entry(node, "m", vector, 0, expiry=None)
            for vector, expiry in (slot.expiring or {}).items():
                write_entry(node, "m", vector, 0, expiry=expiry)

        replayed = node.store.get(("m", 0))
        if replayed is None:  # nothing to replay: both slots were empty
            replayed = PackedSlot()
        assert merged.live_mask(now) == replayed.live_mask(now)
        assert merged.entries() == replayed.entries()
