"""Tests for RetryPolicy (repro.core.policy)."""

import pytest

from repro.core.policy import DEFAULT_POLICY, RetryPolicy
from repro.errors import ConfigurationError, MessageDropped
from repro.overlay.stats import OpCost
from repro.sim.seeds import rng_for


class CountingRng:
    """A fake rng that records every draw (must stay untouched by the
    default policy)."""

    def __init__(self):
        self.draws = 0

    def randrange(self, n):
        self.draws += 1
        return 0

    def random(self):
        self.draws += 1
        return 0.5


class FlakyOp:
    """Fails ``failures`` times with MessageDropped, then succeeds."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise MessageDropped("probe")
        return "ok"


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_hops=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter_hops=-1)

    def test_default_is_default(self):
        assert DEFAULT_POLICY.is_default
        assert not RetryPolicy(max_attempts=2).is_default


class TestDefaultPolicy:
    def test_success_is_transparent(self):
        cost = OpCost()
        rng = CountingRng()
        assert DEFAULT_POLICY.call(lambda: 42, rng, cost) == 42
        assert (cost.hops, cost.timeouts, cost.retries, cost.drops) == (0, 0, 0, 0)
        assert rng.draws == 0

    def test_no_retry_and_no_rng_draw_on_drop(self):
        # The byte-identity contract: the default policy never touches
        # the RNG, even while handling a drop.
        cost = OpCost()
        rng = CountingRng()
        op = FlakyOp(failures=1)
        with pytest.raises(MessageDropped):
            DEFAULT_POLICY.call(op, rng, cost)
        assert op.calls == 1
        assert rng.draws == 0
        # The lost send is still accounted: one timeout hop + the drop.
        assert (cost.hops, cost.timeouts, cost.retries, cost.drops) == (1, 1, 0, 1)


class TestRetries:
    def test_retry_until_success(self):
        policy = RetryPolicy(max_attempts=3, backoff_hops=2, backoff_factor=2.0)
        cost = OpCost()
        op = FlakyOp(failures=2)
        assert policy.call(op, rng_for(0, "t"), cost) == "ok"
        assert op.calls == 3
        # Two drops: 2 timeout hops; two waits: 2*2**0 + 2*2**1 = 6 hops.
        assert cost.timeouts == 2
        assert cost.retries == 2
        assert cost.hops == 2 + 6
        assert cost.drops == 0

    def test_exhausted_budget_reraises_and_counts_drop(self):
        policy = RetryPolicy(max_attempts=3, backoff_hops=1)
        cost = OpCost()
        op = FlakyOp(failures=99)
        with pytest.raises(MessageDropped):
            policy.call(op, rng_for(0, "t"), cost)
        assert op.calls == 3
        assert cost.timeouts == 3
        assert cost.retries == 2  # no backoff wait after the final try
        assert cost.drops == 1

    def test_backoff_cost_arithmetic(self):
        policy = RetryPolicy(max_attempts=4, backoff_hops=3, backoff_factor=2.0)
        rng = CountingRng()
        assert [policy.backoff_cost(k, rng) for k in range(3)] == [3, 6, 12]
        assert rng.draws == 0  # jitter off: still no draws

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(max_attempts=2, backoff_hops=1, jitter_hops=4)
        rng_a, rng_b = rng_for(9, "j"), rng_for(9, "j")
        a = [policy.backoff_cost(0, rng_a) for _ in range(8)]
        b = [policy.backoff_cost(0, rng_b) for _ in range(8)]
        assert a == b  # same labelled stream, same waits
        assert all(1 <= x <= 5 for x in a)
        assert len(set(a)) > 1  # jitter actually varies
