"""Tests for the maintenance scheduler and its duty plumbing.

Covers the deterministic duty cadence (refresh / sweep / stabilize /
anti-entropy on the logical clock), the vectorized refresh lane
(ndarray items must be bit-identical to the scalar bulk path), and the
sweep-time resync of the incremental ``storage_entries`` bookkeeping.
"""

import numpy as np
import pytest

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.core.maintenance import MaintenanceConfig, MaintenanceScheduler
from repro.core.tuples import purge_expired, storage_entries, write_entry
from repro.overlay.chord import ChordRing
from repro.overlay.faults import FaultEvent, FaultInjector, FaultPlan
from repro.overlay.stats import OpCost


def store_state(dht):
    """Full logical store state: node -> slot -> (mask, expiries)."""
    state = {}
    for node_id in dht.node_ids():
        node = dht.node(node_id)
        state[node_id] = {
            key: (slot.mask, dict(slot.expiring or {}))
            for key, slot in node.store.items()
            if hasattr(slot, "live_mask")
        }
    return state


def make_dhs(replication=2, ttl=None, n_nodes=24, plan=None, seed=5, **kwargs):
    ring = ChordRing.build(n_nodes, seed=seed)
    dht = ring if plan is None else FaultInjector(ring, plan, seed=seed)
    config = DHSConfig(
        key_bits=8, num_bitmaps=8, replication=replication,
        read_repair=replication > 0, ttl=ttl, **kwargs,
    )
    return dht, DistributedHashSketch(dht, config, seed=seed)


class TestRefreshArrayLane:
    @pytest.mark.parametrize("store", ["packed", "array"])
    def test_ndarray_refresh_bit_identical_to_bulk(self, store):
        """Satellite 1: the ndarray fast path must change nothing but speed."""
        items = np.arange(500, dtype=np.int64)
        states = {}
        costs = {}
        for lane in ("bulk", "array"):
            _, dhs = make_dhs(store=store)
            dhs.insert_bulk("docs", items.tolist(), origin=None, now=0)
            payload = items.tolist() if lane == "bulk" else items
            costs[lane] = dhs.refresh("docs", payload, now=3)
            states[lane] = store_state(dhs.dht)
        assert states["bulk"] == states["array"]
        assert costs["bulk"] == costs["array"]


class TestSweepBookkeeping:
    def test_sweep_resyncs_drifted_entry_count(self):
        """Satellite 2: a sweep rebuilds ``app_entries`` from survivors.

        Bookkeeping can drift when a store mutates outside write_entry
        (amnesia wipes, bulk merges); the sweep is the natural resync
        point, so after it the incremental count must equal a rescan.
        """
        ring = ChordRing.from_ids([100, 20000, 40000], bits=16)
        node = ring.node(100)
        write_entry(node, "m", 0, 2, 5)    # expires at 5
        write_entry(node, "m", 1, 2, None)
        write_entry(node, "m", 0, 9, None)
        node.app_entries += 50  # simulated drift
        removed = purge_expired(node, now=10)
        assert removed == 1
        assert node.app_entries == 2
        assert not node.app_entries_stale
        assert storage_entries(node) == 2

    def test_sweep_after_amnesia_rejoin_matches_rescan(self):
        plan = FaultPlan(events=(FaultEvent("amnesia", at=1, fraction=0.4, duration=2),))
        dht, dhs = make_dhs(ttl=50, plan=plan)
        dhs.insert_bulk("docs", range(400), origin=None, now=0)
        dht.advance_to(3)
        dhs.antientropy(3)
        dhs.sweep_expired(3)
        for node_id in dht.node_ids():
            node = dht.node(node_id)
            incremental = node.app_entries
            node.app_entries_stale = True
            assert storage_entries(node) == incremental


class TestScheduler:
    def test_duty_cadence(self):
        _, dhs = make_dhs(ttl=4)
        dhs.insert_bulk("docs", range(200), origin=None, now=0)
        scheduler = dhs.make_scheduler(
            MaintenanceConfig(refresh_every=2, sweep_every=3, antientropy_every=2),
            refresh_fn=lambda now: OpCost(hops=7),
        )
        reports = {now: scheduler.tick(now) for now in range(1, 7)}
        assert [reports[t].refreshed for t in range(1, 7)] == [
            False, True, False, True, False, True,
        ]
        assert [reports[t].antientropy is not None for t in range(1, 7)] == [
            False, True, False, True, False, True,
        ]
        # The TTL-4 population expires by tick 6; the sweep at tick 6
        # reclaims it (tick 3's sweep sees everything still live).
        assert reports[3].swept == 0
        assert reports[6].swept > 0
        # Duty costs accumulate into the tick's report.
        assert reports[2].cost.hops >= 7

    def test_disabled_duties_never_fire(self):
        _, dhs = make_dhs()
        dhs.insert_bulk("docs", range(50), origin=None, now=0)
        scheduler = dhs.make_scheduler(MaintenanceConfig())
        for now in range(1, 5):
            report = scheduler.tick(now)
            assert not report.refreshed
            assert report.swept == 0
            assert report.antientropy is None
            assert report.cost == OpCost()

    def test_scheduler_runs_are_reproducible(self):
        def trajectory():
            plan = FaultPlan(
                events=(FaultEvent("amnesia", at=2, fraction=0.3, duration=2),)
            )
            dht, dhs = make_dhs(plan=plan)
            dhs.insert_bulk("docs", range(300), origin=None, now=0)
            scheduler = dhs.make_scheduler(
                MaintenanceConfig(antientropy_every=1, antientropy_sample=4)
            )
            out = []
            for now in range(1, 8):
                dht.advance_to(now)
                stats = scheduler.tick(now).antientropy
                assert stats is not None
                out.append(
                    (stats.pairs, stats.entries_written, stats.cost.bytes)
                )
            return out

        assert trajectory() == trajectory()

    def test_antientropy_drives_divergence_to_zero(self):
        plan = FaultPlan(events=(FaultEvent("amnesia", at=1, fraction=0.3, duration=2),))
        dht, dhs = make_dhs(plan=plan)
        dhs.insert_bulk("docs", range(300), origin=None, now=0)
        scheduler = dhs.make_scheduler(MaintenanceConfig(antientropy_every=1))
        dht.advance_to(3)
        assert dhs.replica_divergence(3) > 0
        for now in range(3, 8):
            scheduler.tick(now)
            if dhs.replica_divergence(now) == 0:
                break
        assert dhs.replica_divergence(7) == 0
