"""Hypothesis property tests on DHS counting invariants.

The key soundness properties of the distributed reconstruction:

* with an exhaustive probe budget, the distributed sketch equals the
  local sketch exactly (no information loss);
* with any finite budget, the distributed registers are a *lower set*
  of the local ones — probe misses can only lose bits, never invent
  them (which is why both estimators' failure mode is underestimation);
* recorded state is monotone in the item set.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.overlay.chord import ChordRing

items_strategy = st.lists(
    st.integers(min_value=0, max_value=10**9), min_size=1, max_size=120, unique=True
)


def build_dhs(n_nodes=24, m=4, lim=30, estimator="sll", ring_seed=5):
    ring = ChordRing.build(n_nodes, bits=32, seed=ring_seed)
    config = DHSConfig(key_bits=16, num_bitmaps=m, lim=lim, estimator=estimator)
    return DistributedHashSketch(ring, config, seed=2)


def populate(dhs, items):
    node_ids = list(dhs.dht.node_ids())
    for i, item in enumerate(items):
        dhs.insert("m", item, origin=node_ids[i % len(node_ids)])


@given(items_strategy)
@settings(max_examples=25, deadline=None)
def test_exhaustive_probing_is_lossless_sll(items):
    dhs = build_dhs(estimator="sll")
    populate(dhs, items)
    local = dhs.local_sketch(items)
    result = dhs.count("m")
    assert result.sketches["m"].registers() == local.registers()


@given(items_strategy)
@settings(max_examples=25, deadline=None)
def test_exhaustive_probing_is_lossless_pcsa(items):
    dhs = build_dhs(estimator="pcsa")
    populate(dhs, items)
    local = dhs.local_sketch(items)
    result = dhs.count("m")
    assert result.sketches["m"].observables() == local.observables()


@given(items_strategy, st.integers(min_value=1, max_value=3))
@settings(max_examples=25, deadline=None)
def test_finite_budget_only_loses_bits_sll(items, lim):
    dhs = build_dhs(estimator="sll", lim=lim)
    populate(dhs, items)
    local = dhs.local_sketch(items)
    observed = dhs.count("m").sketches["m"]
    for got, truth in zip(observed.registers(), local.registers()):
        assert got <= truth


@given(items_strategy, st.integers(min_value=1, max_value=3))
@settings(max_examples=25, deadline=None)
def test_finite_budget_only_loses_bits_pcsa(items, lim):
    dhs = build_dhs(estimator="pcsa", lim=lim)
    populate(dhs, items)
    local = dhs.local_sketch(items)
    observed = dhs.count("m").sketches["m"]
    for got, truth in zip(observed.observables(), local.observables()):
        assert got <= truth


@given(items_strategy, items_strategy)
@settings(max_examples=20, deadline=None)
def test_state_monotone_in_items(base_items, extra_items):
    small = build_dhs(estimator="sll")
    populate(small, base_items)
    large = build_dhs(estimator="sll")
    populate(large, base_items + [i + 2**40 for i in extra_items])
    small_regs = small.count("m").sketches["m"].registers()
    large_regs = large.count("m").sketches["m"].registers()
    for a, b in zip(small_regs, large_regs):
        assert b >= a


@given(items_strategy)
@settings(max_examples=20, deadline=None)
def test_count_is_idempotent(items):
    """Counting is read-only: repeated counts see identical state."""
    dhs = build_dhs(estimator="sll")
    populate(dhs, items)
    first = dhs.count("m", origin=dhs.dht.node_ids()[0])
    second = dhs.count("m", origin=dhs.dht.node_ids()[0])
    assert first.sketches["m"].registers() == second.sketches["m"].registers()
