"""Tests for DHS counting (Algorithm 1), both scan orders."""

import pytest

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.overlay.chord import ChordRing
from repro.overlay.failures import fail_fraction
from repro.sim.seeds import rng_for

ESTIMATORS = ["sll", "pcsa", "loglog", "hll"]


def make_dhs(n_nodes=64, bits=32, key_bits=16, m=4, seed=3, **kwargs):
    ring = ChordRing.build(n_nodes, bits=bits, seed=seed)
    config = DHSConfig(key_bits=key_bits, num_bitmaps=m, **kwargs)
    return DistributedHashSketch(ring, config, seed=1)


def state_of(sketch):
    return sketch.registers() if hasattr(sketch, "registers") else sketch.bitmaps()


def populate_spread(dhs, metric, items, now=0):
    """Per-item insertion from rotating origins (spreads bit copies)."""
    node_ids = list(dhs.dht.node_ids())
    for i, item in enumerate(items):
        dhs.insert(metric, item, origin=node_ids[i % len(node_ids)], now=now)


class TestExactReconstruction:
    """With an exhaustive probe budget the distributed count must
    reconstruct the centralized sketch bit-for-bit — the core soundness
    property of DHS."""

    @pytest.mark.parametrize("estimator", ESTIMATORS)
    def test_matches_local_sketch(self, estimator):
        dhs = make_dhs(n_nodes=64, m=4, estimator=estimator, lim=70)
        items = list(range(800))
        populate_spread(dhs, "docs", items)
        local = dhs.local_sketch(items)
        result = dhs.count("docs")
        if estimator == "pcsa":
            # PCSA reconstructs bits only up to each leftmost zero; the
            # observables (hence the estimate) must still match exactly.
            assert result.sketches["docs"].observables() == local.observables()
        else:
            assert state_of(result.sketches["docs"]) == state_of(local)
        assert result.estimate() == pytest.approx(local.estimate())

    @pytest.mark.parametrize("estimator", ["sll", "pcsa"])
    def test_matches_local_sketch_many_bitmaps(self, estimator):
        dhs = make_dhs(n_nodes=64, m=16, estimator=estimator, lim=70)
        items = list(range(2000))
        populate_spread(dhs, "docs", items)
        local = dhs.local_sketch(items)
        result = dhs.count("docs")
        assert result.estimate() == pytest.approx(local.estimate())


class TestDuplicateInsensitivity:
    @pytest.mark.parametrize("estimator", ["sll", "pcsa"])
    def test_duplicates_ignored(self, estimator):
        dhs = make_dhs(estimator=estimator, lim=70)
        items = list(range(500)) * 4  # every item four times
        populate_spread(dhs, "docs", items)
        result = dhs.count("docs")
        local = dhs.local_sketch(range(500))
        assert result.estimate() == pytest.approx(local.estimate())


class TestEmptyMetric:
    @pytest.mark.parametrize("estimator", ESTIMATORS)
    def test_unknown_metric_estimates_zero(self, estimator):
        dhs = make_dhs(estimator=estimator)
        result = dhs.count("never-written")
        assert result.estimate() == 0.0


class TestCostProperties:
    def test_hops_independent_of_metric_count(self):
        """Section 4.2: multi-dimension counting costs the hops of one."""
        dhs = make_dhs(m=4, lim=5)
        for metric in ("a", "b", "c", "d"):
            populate_spread(dhs, metric, range(300))
        origin = dhs.dht.node_ids()[0]
        single = dhs.count("a", origin=origin)
        # fresh but identically-seeded counter for a fair comparison
        dhs2 = make_dhs(m=4, lim=5)
        for metric in ("a", "b", "c", "d"):
            populate_spread(dhs2, metric, range(300))
        multi = dhs2.count_many(["a", "b", "c", "d"], origin=origin)
        assert multi.cost.hops <= 2 * single.cost.hops + 10

    def test_bytes_grow_with_metric_count(self):
        dhs = make_dhs(m=4, lim=5)
        for metric in ("a", "b", "c", "d"):
            populate_spread(dhs, metric, range(300))
        origin = dhs.dht.node_ids()[0]
        single = dhs.count("a", origin=origin)
        multi = dhs.count_many(["a", "b", "c", "d"], origin=origin)
        assert multi.cost.bytes > single.cost.bytes

    def test_count_many_estimates_every_metric(self):
        dhs = make_dhs(lim=70)
        populate_spread(dhs, "a", range(400))
        populate_spread(dhs, "b", range(50))
        result = dhs.count_many(["a", "b"])
        assert result.estimates["a"] > result.estimates["b"] > 0

    def test_count_many_validates_input(self):
        dhs = make_dhs()
        with pytest.raises(ValueError):
            dhs.count_many([])
        with pytest.raises(ValueError):
            dhs.count_many(["a", "a"])

    def test_estimate_requires_single_metric(self):
        dhs = make_dhs(lim=20)
        populate_spread(dhs, "a", range(100))
        populate_spread(dhs, "b", range(100))
        result = dhs.count_many(["a", "b"])
        with pytest.raises(ValueError):
            result.estimate()

    def test_probes_bounded_by_lim(self):
        dhs = make_dhs(m=4, lim=3)
        populate_spread(dhs, "docs", range(500))
        result = dhs.count("docs")
        assert result.probes <= 3 * result.intervals_scanned

    def test_lookup_count_matches_intervals(self):
        dhs = make_dhs(m=4, lim=5)
        populate_spread(dhs, "docs", range(500))
        result = dhs.count("docs")
        assert result.cost.lookups == result.intervals_scanned


class TestSoftState:
    def test_expired_entries_invisible(self):
        dhs = make_dhs(ttl=10, lim=70)
        populate_spread(dhs, "docs", range(400), now=0)
        fresh = dhs.count("docs", now=5)
        stale = dhs.count("docs", now=100)
        assert fresh.estimate() > 0
        assert stale.estimate() == 0.0

    def test_refresh_keeps_alive(self):
        dhs = make_dhs(ttl=10, lim=70)
        items = list(range(400))
        populate_spread(dhs, "docs", items, now=0)
        dhs.refresh("docs", items, now=8)
        refreshed = dhs.count("docs", now=15)
        assert refreshed.estimate() > 0

    def test_sweep_reclaims_storage(self):
        dhs = make_dhs(ttl=10)
        populate_spread(dhs, "docs", range(400), now=0)
        before = sum(dhs.storage_per_node().values())
        freed = dhs.sweep_expired(now=100)
        after = sum(dhs.storage_per_node().values())
        assert freed == before
        assert after == 0


class TestFaultTolerance:
    def test_failures_degrade_unreplicated_estimate(self):
        dhs = make_dhs(n_nodes=128, m=4, lim=5, seed=5)
        populate_spread(dhs, "docs", range(2000))
        baseline = dhs.count("docs").estimate()
        fail_fraction(dhs.dht, 0.5, seed=2)
        degraded = dhs.count("docs").estimate()
        assert degraded <= baseline

    def test_replication_recovers_failures(self):
        """With R replicas a 10% failure rate should barely matter."""
        results = {}
        for replication in (0, 4):
            dhs = make_dhs(n_nodes=128, m=4, lim=8, seed=5, replication=replication)
            populate_spread(dhs, "docs", range(1500))
            truth = dhs.local_sketch(range(1500)).estimate()
            fail_fraction(dhs.dht, 0.3, seed=2)
            estimate = dhs.count("docs").estimate()
            results[replication] = abs(estimate - truth) / truth
        assert results[4] <= results[0] + 0.05

    def test_count_works_after_graceful_leaves(self):
        dhs = make_dhs(n_nodes=64, m=4, lim=70)
        items = list(range(800))
        populate_spread(dhs, "docs", items)
        rng = rng_for(4, "leavers")
        for victim in rng.sample(list(dhs.dht.node_ids()), 20):
            dhs.dht.remove_node(victim, graceful=True)
        local = dhs.local_sketch(items)
        result = dhs.count("docs")
        assert result.estimate() == pytest.approx(local.estimate())


class TestBitShiftCounting:
    @pytest.mark.parametrize("estimator", ["sll", "pcsa"])
    def test_shifted_estimate_close_to_plain(self, estimator):
        items = list(range(3000))
        plain = make_dhs(m=4, estimator=estimator, lim=70, bit_shift=0)
        shifted = make_dhs(m=4, estimator=estimator, lim=70, bit_shift=3)
        populate_spread(plain, "docs", items)
        populate_spread(shifted, "docs", items)
        a = plain.count("docs").estimate()
        b = shifted.count("docs").estimate()
        # The shift discards only positions the estimators barely use
        # at this cardinality; estimates stay in the same ballpark.
        assert b == pytest.approx(a, rel=0.35)

    def test_shift_reduces_stored_entries(self):
        items = list(range(3000))
        plain = make_dhs(m=4, bit_shift=0)
        shifted = make_dhs(m=4, bit_shift=3)
        populate_spread(plain, "docs", items)
        populate_spread(shifted, "docs", items)
        # Shifted positions are never written; node-level dedup means the
        # visible reduction is milder than the 8x write reduction.
        assert (
            sum(shifted.storage_per_node().values())
            < 0.75 * sum(plain.storage_per_node().values())
        )
