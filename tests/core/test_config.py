"""Tests for DHSConfig validation and derived properties."""

import pytest

from repro.core.config import DEFAULT_LIM, DHSConfig
from repro.errors import ConfigurationError
from repro.sketches import (
    HyperLogLogSketch,
    LogLogSketch,
    PCSASketch,
    SuperLogLogSketch,
)


class TestDefaults:
    def test_paper_defaults(self):
        config = DHSConfig()
        assert config.key_bits == 24
        assert config.num_bitmaps == 512
        assert config.estimator == "sll"
        assert config.lim == DEFAULT_LIM == 5
        assert config.replication == 0
        assert config.bit_shift == 0
        assert config.ttl is None

    def test_derived_bits(self):
        config = DHSConfig(key_bits=24, num_bitmaps=512)
        assert config.selector_bits == 9
        assert config.position_bits == 15

    def test_single_bitmap(self):
        config = DHSConfig(num_bitmaps=1)
        assert config.selector_bits == 0
        assert config.position_bits == 24


class TestValidation:
    def test_m_power_of_two(self):
        with pytest.raises(ConfigurationError):
            DHSConfig(num_bitmaps=300)

    def test_m_positive(self):
        with pytest.raises(ConfigurationError):
            DHSConfig(num_bitmaps=0)

    def test_unknown_estimator(self):
        with pytest.raises(ConfigurationError):
            DHSConfig(estimator="fm2006")

    def test_key_bits_vs_selector(self):
        with pytest.raises(ConfigurationError):
            DHSConfig(key_bits=9, num_bitmaps=512)

    def test_lim_positive(self):
        with pytest.raises(ConfigurationError):
            DHSConfig(lim=0)

    def test_replication_nonnegative(self):
        with pytest.raises(ConfigurationError):
            DHSConfig(replication=-1)

    def test_bit_shift_range(self):
        with pytest.raises(ConfigurationError):
            DHSConfig(bit_shift=-1)
        with pytest.raises(ConfigurationError):
            DHSConfig(key_bits=24, num_bitmaps=512, bit_shift=15)
        assert DHSConfig(bit_shift=14).bit_shift == 14

    def test_ttl_positive_or_none(self):
        with pytest.raises(ConfigurationError):
            DHSConfig(ttl=0)
        assert DHSConfig(ttl=10).ttl == 10


class TestFactories:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("pcsa", PCSASketch),
            ("sll", SuperLogLogSketch),
            ("loglog", LogLogSketch),
            ("hll", HyperLogLogSketch),
        ],
    )
    def test_sketch_class(self, name, cls):
        assert DHSConfig(estimator=name).sketch_class() is cls

    def test_make_sketch_parameters(self):
        config = DHSConfig(key_bits=20, num_bitmaps=64)
        sketch = config.make_sketch(config.hash_family(64))
        assert sketch.m == 64
        assert sketch.key_bits == 20

    def test_hash_family_uses_seed(self):
        a = DHSConfig(hash_seed=1).hash_family(64)
        b = DHSConfig(hash_seed=2).hash_family(64)
        assert a("x") != b("x")

    def test_expiry(self):
        assert DHSConfig(ttl=10).expiry(now=5) == 15
        assert DHSConfig().expiry(now=5) is None


class TestEq3Capacity:
    def test_paper_default_capacity(self):
        # k=24, m=512: 15 position bits -> 512 * 2^12 = 2,097,152.
        config = DHSConfig()
        assert config.max_supported_cardinality == 512 * 2**12

    def test_paper_relation_T_exceeds_its_own_config(self):
        # The paper's 80M-tuple relation T violates eq. 3 at k=24, m=512.
        assert not DHSConfig().supports_cardinality(80_000_000)

    def test_wider_keys_restore_capacity(self):
        assert DHSConfig(key_bits=32).supports_cardinality(80_000_000)

    def test_supports_boundary(self):
        config = DHSConfig(key_bits=20, num_bitmaps=16)
        cap = config.max_supported_cardinality
        assert config.supports_cardinality(cap)
        assert not config.supports_cardinality(cap + 1)
