"""Zero-copy parallel counting/insertion: serial equivalence and leak safety.

Pins the ``DHS_JOBS`` contract of :mod:`repro.core.shared`: at any
worker count the parallel paths return results byte-identical to the
serial ones (fault-free rings), and no shared-memory segment survives a
call — not even when a worker crashes mid-trial.
"""

import os

import numpy as np
import pytest

from repro.core import shared
from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.core.regstore import RegArena
from repro.errors import ConfigurationError
from repro.obs import runtime as obs
from repro.obs.metrics import MetricsRegistry
from repro.overlay.chord import ChordRing

METRICS = ("docs", "users", "hosts", "repos", "keys", "jobs")


def build_dhs(seed=11, store="array"):
    ring = ChordRing.build(16, bits=16, seed=seed)
    return DistributedHashSketch(
        ring, DHSConfig(key_bits=12, num_bitmaps=16, store=store), seed=seed
    )


def shm_entries():
    path = "/dev/shm"
    return set(os.listdir(path)) if os.path.isdir(path) else set()


def count_view(result):
    cost = result.cost
    return (
        result.estimates,
        result.probes,
        result.probed_ids,
        result.intervals_scanned,
        result.degraded,
        (cost.hops, cost.messages, cost.bytes, cost.lookups, cost.timeouts),
    )


def cost_view(cost):
    return (cost.hops, cost.messages, cost.bytes, cost.lookups, cost.timeouts)


def stores_of(dhs):
    return {
        node_id: {
            key: (slot.mask, slot.expiring or None)
            for key, slot in dhs.dht.node(node_id).store.items()
        }
        for node_id in dhs.dht.node_ids()
    }


class TestCountParallel:
    def test_jobs4_identical_to_inline(self):
        dhs = build_dhs()
        for i, metric in enumerate(METRICS):
            dhs.insert_array(metric, np.arange(i * 50, i * 50 + 300, dtype=np.int64))
        serial = dhs.count_parallel(METRICS, jobs=1)
        parallel = dhs.count_parallel(METRICS, jobs=4)
        assert [count_view(r) for r in parallel] == [count_view(r) for r in serial]
        dhs.arena.close()

    def test_parallel_count_shares_arena(self):
        dhs = build_dhs()
        dhs.insert_array("docs", np.arange(100, dtype=np.int64))
        assert dhs.arena.shared_name is None
        dhs.count_parallel(["docs", "users"], jobs=2)
        # Zero-copy precondition: the arena was migrated pre-fork.
        assert dhs.arena.shared_name is not None
        dhs.arena.close()

    def test_packed_backend_still_works(self):
        dhs_p = build_dhs(store="packed")
        dhs_a = build_dhs(store="array")
        for dhs in (dhs_p, dhs_a):
            dhs.insert_array("docs", np.arange(200, dtype=np.int64))
        results_p = dhs_p.count_parallel(["docs"], jobs=4)
        results_a = dhs_a.count_parallel(["docs"], jobs=4)
        assert [count_view(r) for r in results_p] == [count_view(r) for r in results_a]


class TestInsertArrayParallel:
    ITEMS = np.arange(6000, dtype=np.int64)

    def test_jobs4_identical_to_serial(self):
        serial = build_dhs()
        parallel = build_dhs()
        cost_s = serial.insert_array("docs", self.ITEMS)
        cost_p = parallel.insert_array_parallel("docs", self.ITEMS, jobs=4)
        assert cost_view(cost_p) == cost_view(cost_s)
        assert stores_of(parallel) == stores_of(serial)
        assert count_view(parallel.count("docs")) == count_view(serial.count("docs"))

    def test_small_input_falls_back_to_serial(self):
        serial = build_dhs()
        parallel = build_dhs()
        small = np.arange(100, dtype=np.int64)
        cost_s = serial.insert_array("docs", small)
        cost_p = parallel.insert_array_parallel("docs", small, jobs=4)
        assert cost_view(cost_p) == cost_view(cost_s)
        assert stores_of(parallel) == stores_of(serial)

    def test_no_segments_leaked(self):
        before = shm_entries()
        dhs = build_dhs()
        dhs.insert_array_parallel("docs", self.ITEMS, jobs=4)
        assert shm_entries() <= before  # every delta segment reclaimed

    def test_crashed_worker_leaks_nothing(self, monkeypatch):
        before = shm_entries()
        dhs = build_dhs()
        monkeypatch.setattr(shared, "_CRASH_WORKER", 1)
        with pytest.raises(Exception):  # the pool surfaces the dead worker
            dhs.insert_array_parallel("docs", self.ITEMS, jobs=4)
        # The finally-block unlink must reclaim every delta segment even
        # though worker 1 died with os._exit and ran no cleanup.
        assert shm_entries() <= before


class TestWorkerFunctionsInline:
    """Run the fork-side worker bodies in-process.

    The end-to-end tests above exercise them inside forked children,
    where the coverage tracer cannot see them; these calls pin the same
    code paths deterministically in the parent.
    """

    def test_insert_delta_worker_inline(self):
        dhs = build_dhs()
        config = dhs.config
        ids = np.arange(5000, dtype=np.int64)
        delta = RegArena(
            config.num_bitmaps, capacity=config.position_bits, shared=True
        )
        shared._INSERT_CTX = shared._InsertCtx(
            ids=ids,
            m=config.num_bitmaps,
            key_bits=config.key_bits,
            hash_seed=config.hash_seed,
            position_bits=config.position_bits,
            bit_shift=config.bit_shift,
        )
        try:
            assert shared._insert_delta_worker((0, 0, ids.size, delta.shared_name))
            assert delta.data.any()  # presence bits landed in the delta
            # The delta's union must equal what the serial path stores.
            serial = build_dhs()
            serial.insert_array("docs", ids)
            serial_union = 0
            for node_id in serial.dht.node_ids():
                for (_, _bit), slot in serial.dht.node(node_id).store.items():
                    serial_union |= slot.mask
            delta_union = 0
            for position in range(config.position_bits):
                delta_union |= delta.read_row(position)
            assert delta_union == serial_union
        finally:
            shared._INSERT_CTX = None
            delta.unlink()

    def test_count_one_metered_inline(self):
        dhs = build_dhs()
        dhs.insert_array("docs", np.arange(300, dtype=np.int64))
        dhs.insert_array("users", np.arange(300, dtype=np.int64))
        plain = dhs.count_parallel(["docs", "users"], jobs=1)
        registry = MetricsRegistry()
        with obs.observed(registry=registry, tracing=False):
            metered = dhs.count_parallel(["docs", "users"], jobs=1)
        assert [count_view(r) for r in metered] == [count_view(r) for r in plain]
        assert registry.snapshot()  # per-metric snapshots were merged

    def test_worker_asserts_outside_context(self):
        assert shared._COUNT_CTX is None and shared._INSERT_CTX is None
        with pytest.raises(AssertionError):
            shared._count_one(0)
        with pytest.raises(AssertionError):
            shared._insert_delta_worker((0, 0, 1, "nope"))


class TestConfigValidation:
    def test_unknown_store_rejected(self):
        with pytest.raises(ConfigurationError):
            DHSConfig(store="bogus")
