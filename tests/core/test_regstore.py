"""Register-array backend: arena mechanics and backend equivalence.

Two layers of coverage:

* Unit tests for :class:`~repro.core.regstore.RegArena` /
  :class:`~repro.core.regstore.RegSlot` — row allocation, growth,
  integer round-trips, shared-memory migrate/attach/close/unlink and the
  leak-safety finalizer.
* A hypothesis suite driving random insert / TTL-expiry / graceful-leave
  / count sequences through two twin deployments — ``store="array"`` and
  the ``store="packed"`` reference backend — and asserting identical
  node-store state (``vectors_mask``) and identical
  :class:`~repro.core.count.CountResult`s at every step.  This is the
  determinism contract of docs/PERFORMANCE.md §"Register-array layout".
"""

import gc
from multiprocessing import shared_memory

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.core.regstore import RegArena, RegSlot, tree_merge
from repro.core.tuples import PackedSlot, storage_entries, vectors_mask, write_entry
from repro.errors import ConfigurationError
from repro.overlay.chord import ChordRing


# ----------------------------------------------------------------------
# Arena mechanics.
# ----------------------------------------------------------------------
class TestRegArena:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RegArena(0)
        with pytest.raises(ConfigurationError):
            RegArena(16, capacity=0)

    def test_words_per_row(self):
        assert RegArena(1).words == 1
        assert RegArena(64).words == 1
        assert RegArena(65).words == 2
        assert RegArena(512).words == 8

    def test_row_roundtrip_wide_mask(self):
        arena = RegArena(130)  # 3 words per row
        row = arena.alloc()
        mask = (1 << 129) | (1 << 64) | 1
        arena.write_row(row, mask)
        assert arena.read_row(row) == mask

    def test_alloc_zeroes_reused_rows(self):
        arena = RegArena(64, capacity=1)
        row = arena.alloc()
        arena.write_row(row, 0xDEAD)
        arena.free(row)
        again = arena.alloc()
        assert again == row
        assert arena.read_row(again) == 0

    def test_free_does_not_zero(self):
        # The __del__-path contract: freeing must never write row data
        # (forked workers free their slot copies against shared pages).
        arena = RegArena(64)
        row = arena.alloc()
        arena.write_row(row, 0xBEEF)
        arena.free(row)
        assert int(arena.data[row][0]) == 0xBEEF

    def test_grow_preserves_rows(self):
        arena = RegArena(128, capacity=2)
        masks = [(1 << 100) | i for i in range(9)]
        rows = []
        for mask in masks:
            row = arena.alloc()
            arena.write_row(row, mask)
            rows.append(row)
        assert arena.capacity >= 9
        assert [arena.read_row(row) for row in rows] == masks

    def test_rows_in_use(self):
        arena = RegArena(64)
        a, b = arena.alloc(), arena.alloc()
        assert arena.rows_in_use == 2
        arena.free(a)
        assert arena.rows_in_use == 1
        arena.free(b)
        assert arena.rows_in_use == 0

    def test_or_rows_union(self):
        arena = RegArena(128)
        rows = []
        for mask in (1 << 3, 1 << 90, (1 << 3) | (1 << 127)):
            row = arena.alloc()
            arena.write_row(row, mask)
            rows.append(row)
        assert arena.or_rows(rows) == (1 << 3) | (1 << 90) | (1 << 127)
        assert arena.or_rows([]) == 0

    def test_or_row_words(self):
        arena = RegArena(128)
        row = arena.alloc()
        arena.write_row(row, 1 << 5)
        delta = np.zeros(arena.words, dtype=np.uint64)
        delta[1] = np.uint64(1)  # bit 64
        arena.or_row_words(row, delta)
        assert arena.read_row(row) == (1 << 5) | (1 << 64)


class TestSharedSegments:
    def test_migrate_preserves_rows_and_slots(self):
        arena = RegArena(64)
        slot = arena.new_slot()
        slot.mask = 0b1011
        assert arena.shared_name is None
        name = arena.migrate_to_shared()
        assert name and arena.shared_name == name
        assert arena.migrate_to_shared() == name  # idempotent
        assert arena.read_row(slot.row) == 0b1011
        slot.mask |= 0b100  # handles stay live after the buffer swap
        assert arena.read_row(slot.row) == 0b1111
        arena.unlink()

    def test_attach_sees_owner_writes_both_ways(self):
        owner = RegArena(128, shared=True)
        row = owner.alloc()
        owner.write_row(row, 1 << 70)
        peer = RegArena.attach(owner.shared_name)
        assert (peer.m, peer.words, peer.capacity) == (128, 2, owner.capacity)
        assert peer.read_row(row) == 1 << 70
        peer.data[row][0] |= np.uint64(1)
        assert owner.read_row(row) == (1 << 70) | 1
        peer.close()
        owner.unlink()

    def test_attach_rejects_foreign_segment(self):
        shm = shared_memory.SharedMemory(create=True, size=256)
        try:
            with pytest.raises(ConfigurationError):
                RegArena.attach(shm.name)
        finally:
            shm.close()
            shm.unlink()

    def test_attached_arena_must_not_unlink(self):
        owner = RegArena(64, shared=True)
        peer = RegArena.attach(owner.shared_name)
        with pytest.raises(ConfigurationError):
            peer.unlink()
        peer.close()
        owner.unlink()

    def test_unlink_removes_segment(self):
        arena = RegArena(64, shared=True)
        name = arena.shared_name
        arena.unlink()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name, create=False)

    def test_close_is_idempotent_and_fails_loudly_after(self):
        arena = RegArena(64, shared=True)
        row = arena.alloc()
        arena.close()
        arena.close()
        with pytest.raises(IndexError):
            arena.read_row(row)

    def test_finalizer_reclaims_dropped_segment(self):
        arena = RegArena(64, shared=True)
        name = arena.shared_name
        del arena
        gc.collect()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name, create=False)

    def test_shared_grow_moves_segment(self):
        arena = RegArena(64, capacity=2, shared=True)
        first = arena.shared_name
        rows = [arena.alloc() for _ in range(3)]  # forces a grow
        for i, row in enumerate(rows):
            arena.write_row(row, 1 << i)
        assert arena.shared_name != first
        with pytest.raises(FileNotFoundError):  # outgrown segment unlinked
            shared_memory.SharedMemory(name=first, create=False)
        assert [arena.read_row(row) for row in rows] == [1, 2, 4]
        arena.unlink()


class TestRegSlot:
    def test_mask_property_mirrors_row(self):
        arena = RegArena(128)
        slot = arena.new_slot()
        assert isinstance(slot, RegSlot) and isinstance(slot, PackedSlot)
        slot.mask = (1 << 90) | 1
        assert slot.mask == (1 << 90) | 1
        assert arena.read_row(slot.row) == slot.mask

    def test_or_mask_with_packed_delta(self):
        arena = RegArena(128)
        slot = arena.new_slot()
        slot.mask = 1
        delta = np.zeros(arena.words, dtype=np.uint64)
        delta[1] = np.uint64(1 << 2)  # bit 66
        slot.or_mask(1 << 66, delta)
        assert slot.mask == 1 | (1 << 66)
        assert arena.read_row(slot.row) == slot.mask

    def test_del_recycles_row(self):
        arena = RegArena(64)
        slot = arena.new_slot()
        row = slot.row
        del slot
        gc.collect()
        assert arena.alloc() == row


class TestTreeMerge:
    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            tree_merge([])

    def test_single_layer_returned_as_is(self):
        layer = np.arange(6, dtype=np.uint64).reshape(3, 2)
        assert tree_merge([layer]) is layer

    @given(st.integers(2, 7), st.integers(0, 2**32))
    @settings(max_examples=40, deadline=None)
    def test_union_independent_of_layer_count(self, n_layers, seed):
        rng = np.random.default_rng(seed)
        layers = [
            rng.integers(0, 2**63, size=(4, 2), dtype=np.int64).astype(np.uint64)
            for _ in range(n_layers)
        ]
        expected = layers[0].copy()
        for layer in layers[1:]:
            expected |= layer
        merged = tree_merge([layer.copy() for layer in layers])
        assert np.array_equal(merged, expected)


# ----------------------------------------------------------------------
# Incremental storage_entries (no full-store scan on the hot path).
# ----------------------------------------------------------------------
class TestIncrementalStorageEntries:
    def test_query_does_not_scan_slots(self, monkeypatch):
        ring = ChordRing.build(8, bits=16, seed=3)
        dhs = DistributedHashSketch(
            ring, DHSConfig(key_bits=12, num_bitmaps=16), seed=1
        )
        dhs.insert_array("docs", np.arange(200, dtype=np.int64))
        before = dhs.storage_per_node()
        assert sum(before.values()) > 0

        def boom(self):  # pragma: no cover - must never run
            raise AssertionError("storage_entries scanned a slot")

        monkeypatch.setattr(PackedSlot, "entries", boom)
        assert dhs.storage_per_node() == before  # O(1) counter reads only

    def test_stale_flag_triggers_one_rescan(self):
        ring = ChordRing.build(8, bits=16, seed=3)
        dhs = DistributedHashSketch(
            ring, DHSConfig(key_bits=12, num_bitmaps=16), seed=1
        )
        dhs.insert_array("docs", np.arange(100, dtype=np.int64))
        node = ring.node(ring.node_ids()[0])
        true_count = storage_entries(node)
        node.app_entries = -1  # corrupt the counter, then mark stale
        node.app_entries_stale = True
        assert storage_entries(node) == true_count
        assert not node.app_entries_stale

    def test_graceful_leave_marks_heir_stale(self):
        ring = ChordRing.build(8, bits=16, seed=5)
        dhs = DistributedHashSketch(
            ring, DHSConfig(key_bits=12, num_bitmaps=16), seed=2
        )
        dhs.insert_array("docs", np.arange(500, dtype=np.int64))
        total = sum(dhs.storage_per_node().values())
        leaver = next(
            node_id for node_id in ring.node_ids() if ring.node(node_id).store
        )
        ring.remove_node(leaver, graceful=True)
        assert sum(dhs.storage_per_node().values()) == total


# ----------------------------------------------------------------------
# live_mask TTL short-circuit.
# ----------------------------------------------------------------------
class _CountingDict(dict):
    """Dict that counts iteration — pins the no-walk fast path."""

    walks = 0

    def items(self):
        type(self).walks += 1
        return super().items()


class TestLiveMaskShortCircuit:
    def test_no_dict_walk_before_first_expiry(self):
        slot = PackedSlot(mask=0b1)
        slot.expiring = _CountingDict({3: 10.0, 4: 20.0})
        slot._recompute_ttl_cache()
        _CountingDict.walks = 0
        # now <= _ttl_min (10): every TTL'd vector is provably live.
        assert slot.live_mask(0) == 0b1 | (1 << 3) | (1 << 4)
        assert slot.live_mask(10) == 0b1 | (1 << 3) | (1 << 4)
        assert _CountingDict.walks == 0
        # Past the earliest expiry the dict walk is required.
        assert slot.live_mask(11) == 0b1 | (1 << 4)
        assert _CountingDict.walks == 1

    def test_refresh_keeps_short_circuit_conservative(self):
        node_mask_bit = 1 << 2
        slot = PackedSlot()
        slot.expiring = {2: 5.0}
        slot._recompute_ttl_cache()
        # Max-wins refresh leaves _ttl_min at the stale lower bound 5 —
        # the short circuit fires less often but never wrongly.
        slot.expiring[2] = 50.0
        assert slot._ttl_min == 5.0
        assert slot.live_mask(30) == node_mask_bit  # dict walk, still live


# ----------------------------------------------------------------------
# Backend equivalence: array vs packed, end to end.
# ----------------------------------------------------------------------
METRICS = ("docs", "users", "hosts")


def _build_pair(seed, ttl):
    config = dict(key_bits=12, num_bitmaps=16, ttl=ttl)
    pair = []
    for store in ("array", "packed"):
        ring = ChordRing.build(16, bits=16, seed=seed)
        pair.append(
            DistributedHashSketch(
                ring, DHSConfig(store=store, **config), seed=seed
            )
        )
    return pair


def _count_view(result):
    cost = result.cost
    return (
        result.estimates,
        result.probes,
        result.probed_ids,
        result.intervals_scanned,
        result.degraded,
        (cost.hops, cost.messages, cost.bytes, cost.lookups, cost.timeouts),
    )


def _cost_view(cost):
    return (cost.hops, cost.messages, cost.bytes, cost.lookups, cost.timeouts)


def _assert_stores_identical(dhs_a, dhs_p, now):
    assert list(dhs_a.dht.node_ids()) == list(dhs_p.dht.node_ids())
    for node_id in dhs_a.dht.node_ids():
        node_a = dhs_a.dht.node(node_id)
        node_p = dhs_p.dht.node(node_id)
        assert set(node_a.store) == set(node_p.store)
        for metric, bit in node_a.store:
            assert vectors_mask(node_a, metric, bit, now) == vectors_mask(
                node_p, metric, bit, now
            )
            slot_a, slot_p = node_a.store[(metric, bit)], node_p.store[(metric, bit)]
            assert slot_a == slot_p  # mask + expiring, backend-agnostic
            if isinstance(slot_a, RegSlot):
                # Row-sync invariant: the arena row always mirrors _mask.
                assert slot_a.arena.read_row(slot_a.row) == slot_a.mask
        assert storage_entries(node_a) == storage_entries(node_p)


def op_strategy():
    insert = st.tuples(
        st.just("insert"),
        st.sampled_from(METRICS),
        st.integers(1, 400),  # item count
        st.integers(0, 5),  # base offset (overlap across inserts)
        st.integers(0, 12),  # now
    )
    sweep = st.tuples(st.just("sweep"), st.integers(0, 40))
    leave = st.tuples(st.just("leave"), st.integers(0, 15))
    count = st.tuples(st.just("count"), st.sampled_from(METRICS), st.integers(0, 40))
    return st.one_of(insert, sweep, leave, count)


class TestBackendEquivalence:
    @given(
        seed=st.integers(0, 2**16),
        ttl=st.sampled_from([None, 8]),
        ops=st.lists(op_strategy(), min_size=1, max_size=10),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_histories_identical(self, seed, ttl, ops):
        dhs_a, dhs_p = _build_pair(seed, ttl)
        latest = 0
        for op in ops:
            if op[0] == "insert":
                _, metric, n, base, now = op
                items = np.arange(base * 100, base * 100 + n, dtype=np.int64)
                cost_a = dhs_a.insert_array(metric, items, now=now)
                cost_p = dhs_p.insert_array(metric, items, now=now)
                assert _cost_view(cost_a) == _cost_view(cost_p)
                latest = max(latest, now)
            elif op[0] == "sweep":
                _, now = op
                assert dhs_a.sweep_expired(now) == dhs_p.sweep_expired(now)
                latest = max(latest, now)
            elif op[0] == "leave":
                _, pick = op
                ids = list(dhs_a.dht.node_ids())
                if len(ids) <= 2:
                    continue
                victim = ids[pick % len(ids)]
                dhs_a.dht.remove_node(victim, graceful=True)
                dhs_p.dht.remove_node(victim, graceful=True)
            else:
                _, metric, now = op
                result_a = dhs_a.count(metric, now=now)
                result_p = dhs_p.count(metric, now=now)
                assert _count_view(result_a) == _count_view(result_p)
            _assert_stores_identical(dhs_a, dhs_p, latest)

    def test_scalar_and_bulk_paths_identical(self):
        dhs_a, dhs_p = _build_pair(99, None)
        items = list(range(50))
        assert _cost_view(dhs_a.insert_many("docs", items)) == _cost_view(
            dhs_p.insert_many("docs", items)
        )
        assert _cost_view(dhs_a.insert_bulk("users", items)) == _cost_view(
            dhs_p.insert_bulk("users", items)
        )
        _assert_stores_identical(dhs_a, dhs_p, 0)
        for metric in ("docs", "users"):
            assert _count_view(dhs_a.count(metric)) == _count_view(dhs_p.count(metric))

    def test_ttl_refresh_paths_identical(self):
        dhs_a, dhs_p = _build_pair(7, 10)
        items = list(range(40))
        for dhs in (dhs_a, dhs_p):
            dhs.insert_bulk("docs", items, now=0)
            dhs.refresh("docs", items[:20], now=5)
            dhs.sweep_expired(11)
        _assert_stores_identical(dhs_a, dhs_p, 11)
        assert _count_view(dhs_a.count("docs", now=11)) == _count_view(
            dhs_p.count("docs", now=11)
        )

    def test_write_entry_mixed_backend_promotion(self):
        # A TTL'd vector promoted to immortal must not double-count on
        # either backend.
        for arena in (None, RegArena(16)):
            from repro.overlay.node import Node

            node = Node(0)
            write_entry(node, "docs", 3, 1, expiry=10, arena=arena)
            write_entry(node, "docs", 3, 1, expiry=None, arena=arena)
            assert storage_entries(node) == 1
            slot = node.store[("docs", 1)]
            assert slot.mask == 1 << 3 and not slot.expiring
