"""Surgical tests of Algorithm 1's per-interval probe walk.

Built on a hand-placed ring so the expected probe order is computable by
eye: lookup target first, successors up to (and one past) the interval's
top edge, then predecessors from the start point, bounded by ``lim`` and
by the interval being exhausted.
"""

import pytest

from repro.core.config import DHSConfig
from repro.core.count import Counter
from repro.core.dhs import DistributedHashSketch
from repro.core.mapping import BitIntervalMap
from repro.overlay.chord import ChordRing

# 16-bit space. Interval of position 0 (with key_bits=8, m=1) is
# [2^15, 2^16) = [32768, 65536).
IN_INTERVAL = [33000, 40000, 50000, 60000]
BELOW = [100, 20000]
ABOVE_WRAP = []  # the ring wraps: the "overflow owner" is min(all ids)


def make_counter(lim=5, seed=1):
    # trace=True so the probe walk records its full node sequence
    # (CountResult.probed_nodes stays empty otherwise).
    ring = ChordRing.from_ids(sorted(IN_INTERVAL + BELOW), bits=16, trace=True)
    config = DHSConfig(key_bits=8, num_bitmaps=1, lim=lim)
    dhs = DistributedHashSketch(ring, config, seed=seed)
    return ring, dhs


def probed_sequence(dhs, ring, lim, position=0):
    """Run one interval probe and return the probed node sequence."""
    counter: Counter = dhs._counter
    from repro.core.count import CountResult
    from repro.overlay.stats import OpCost

    result = CountResult(estimates={}, sketches={}, cost=OpCost())
    needed = {"m": 0b1}  # pending bitmap: vector 0 unresolved
    counter._probe_interval(
        counter.mapping.interval_index(position),
        position,
        needed,
        origin=ring.node_ids()[0],
        now=0,
        result=result,
    )
    return result.probed_nodes


class TestWalkOrder:
    def test_walk_covers_interval_nodes_in_neighbour_order(self):
        ring, dhs = make_counter(lim=10)
        probed = probed_sequence(dhs, ring, lim=10)
        # Nothing is stored, so the walk runs to exhaustion: it must have
        # probed every in-interval node exactly once plus the wrap-around
        # overflow owner (the smallest id).
        assert sorted(set(probed)) == sorted(IN_INTERVAL + [min(BELOW)])
        assert len(probed) == len(set(probed))

    def test_successor_steps_are_adjacent(self):
        ring, dhs = make_counter(lim=10)
        probed = probed_sequence(dhs, ring, lim=10)
        # From the first target, consecutive successor probes must be
        # ring-adjacent until the direction flips (one flip max).
        flips = 0
        for a, b in zip(probed, probed[1:]):
            if ring.successor_id(a) != b:
                flips += 1
        assert flips <= 2  # succ-run -> overflow hop -> pred-run

    def test_budget_caps_probes(self):
        ring, dhs = make_counter(lim=2)
        probed = probed_sequence(dhs, ring, lim=2)
        assert len(probed) == 2

    def test_early_exit_on_found_bit(self):
        ring, dhs = make_counter(lim=10)
        # Plant the bit on EVERY candidate node: the first probe hits.
        from repro.core.tuples import write_entry

        for node_id in IN_INTERVAL + BELOW:
            write_entry(ring.node(node_id), "m", 0, 0, None)
        probed = probed_sequence(dhs, ring, lim=10)
        assert len(probed) == 1


def run_probe(dhs, origin, key):
    """Probe position 0's interval from ``origin`` with a pinned key."""
    from repro.core.count import CountResult
    from repro.overlay.stats import OpCost

    counter: Counter = dhs._counter
    result = CountResult(estimates={}, sketches={}, cost=OpCost(), confidence={"m": 1.0})
    counter._probe_interval(
        counter.mapping.interval_index(0),
        0,
        {"m": 0b1},
        origin=origin,
        now=0,
        result=result,
        key=key,
    )
    return result


class TestTimeoutAccounting:
    """A lazily-failed node met mid-walk: one timeout hop, then route on.

    The origin is the interval's first owner, so the lookup is zero hops
    and never touches the corpse — it must be *discovered by the probe
    walk*, charged exactly one timeout, and walked past.
    """

    # key 32900 is owned by 33000 (the interval's first node).
    KEY = 32900

    def _walk(self, replication):
        ring = ChordRing.from_ids(sorted(IN_INTERVAL + BELOW), bits=16, trace=True)
        config = DHSConfig(key_bits=8, num_bitmaps=1, lim=10, replication=replication)
        dhs = DistributedHashSketch(ring, config, seed=1)
        ring.mark_failed(40000)
        result = run_probe(dhs, origin=33000, key=self.KEY)
        return ring, result

    @pytest.mark.parametrize("replication", [0, 2])
    def test_one_timeout_hop_then_route_on(self, replication):
        ring, result = self._walk(replication)
        # The dead node was contacted once (one timeout), and the walk
        # went on to cover the rest of the interval plus the overflow
        # owner — the corpse does not end the scan.
        assert result.cost.timeouts == 1
        assert result.probed_nodes == [33000, 40000, 50000, 60000, min(BELOW)]
        # The first target rides on the lookup; every later probe is one
        # hop.  The dead contact's hop was already paid by the walk, so
        # the PR3 cost identity survives faults unchanged.
        assert result.cost.hops == result.probes - 1
        assert result.cost.messages == result.cost.hops

    @pytest.mark.parametrize("replication", [0, 2])
    def test_corpse_evicted_on_contact(self, replication):
        ring, result = self._walk(replication)
        # Lazy failures are discovered (and evicted) on contact (§3.5).
        assert not ring.has_node(40000)

    def test_transient_node_times_out_but_survives(self):
        from repro.overlay.faults import FaultEvent, FaultInjector, FaultPlan

        ring = ChordRing.from_ids(sorted(IN_INTERVAL + BELOW), bits=16, trace=True)
        plan = FaultPlan(
            events=(FaultEvent("transient", at=1, node_ids=(40000,), duration=5),)
        )
        injector = FaultInjector(ring, plan, seed=0)
        config = DHSConfig(key_bits=8, num_bitmaps=1, lim=10)
        dhs = DistributedHashSketch(injector, config, seed=1)
        injector.advance_to(1)
        result = run_probe(dhs, origin=33000, key=self.KEY)
        # Same timeout charge as a crash, but the fault layer vetoes the
        # eviction: the node keeps its membership (and its store).
        assert result.cost.timeouts == 1
        assert result.cost.hops == result.probes - 1
        assert ring.has_node(40000)


class TestOverflowOwner:
    def test_wrapped_overflow_owner_holds_interval_tuples(self):
        """Keys above the last in-interval node wrap to the ring's first
        node; the walk must check it."""
        ring, dhs = make_counter(lim=10)
        # A key just below 2^16 is owned by... successor wraps to min id.
        assert ring.owner_of(65000) == min(BELOW)
        probed = probed_sequence(dhs, ring, lim=10)
        assert min(BELOW) in probed

    def test_no_second_overflow_node(self):
        ring, dhs = make_counter(lim=10)
        probed = probed_sequence(dhs, ring, lim=10)
        # 20000 is outside the interval and NOT the overflow owner:
        # it must never be probed.
        assert 20000 not in probed
