"""count_many shares one interval scan across metrics (section 4.2).

With ``lim = 1`` every interval costs exactly one lookup and probes
exactly one node, so the multi-metric scan is hop-for-hop the same walk
as a single-metric scan — and because each metric's tuples are read from
the same probed nodes, per-metric estimates are *exactly* the isolated
single-metric results, not merely close.
"""

import pytest

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.overlay.chord import ChordRing

METRICS = ("docs", "users", "tags")


def build_ring():
    return ChordRing.build(64, bits=32, seed=3)


def make_counter(ring, estimator, lim=1, m=16):
    config = DHSConfig(key_bits=16, num_bitmaps=m, lim=lim, estimator=estimator)
    return DistributedHashSketch(ring, config, seed=7)


def populate(ring, estimator, lim=1, m=16):
    """Write three metrics of different cardinalities onto ``ring``."""
    writer = make_counter(ring, estimator, lim=lim, m=m)
    node_ids = list(ring.node_ids())
    sizes = {"docs": 400, "users": 150, "tags": 40}
    offset = 0
    for metric in METRICS:
        for i in range(sizes[metric]):
            writer.insert(metric, offset + i, origin=node_ids[i % len(node_ids)])
        offset += 10_000
    return writer


@pytest.mark.parametrize("estimator", ["sll", "pcsa"])
class TestSharedScan:
    def test_hop_cost_equals_single_metric_scan(self, estimator):
        ring = build_ring()
        populate(ring, estimator)
        origin = ring.node_ids()[0]
        single = make_counter(ring, estimator).count("docs", origin=origin)
        multi = make_counter(ring, estimator).count_many(
            list(METRICS), origin=origin
        )
        assert multi.cost.hops == single.cost.hops
        assert multi.cost.messages == single.cost.messages
        assert multi.intervals_scanned == single.intervals_scanned

    def test_shared_scan_beats_separate_counts(self, estimator):
        ring = build_ring()
        populate(ring, estimator)
        origin = ring.node_ids()[0]
        separate_hops = sum(
            make_counter(ring, estimator).count(metric, origin=origin).cost.hops
            for metric in METRICS
        )
        multi = make_counter(ring, estimator).count_many(
            list(METRICS), origin=origin
        )
        assert multi.cost.hops < separate_hops

    def test_estimates_match_isolated_counts_exactly(self, estimator):
        ring = build_ring()
        populate(ring, estimator)
        origin = ring.node_ids()[0]
        multi = make_counter(ring, estimator).count_many(
            list(METRICS), origin=origin
        )
        for metric in METRICS:
            isolated = make_counter(ring, estimator).count(metric, origin=origin)
            assert multi.estimates[metric] == isolated.estimates[metric]

    def test_response_bytes_grow_with_metric_count(self, estimator):
        ring = build_ring()
        populate(ring, estimator)
        origin = ring.node_ids()[0]
        single = make_counter(ring, estimator).count("docs", origin=origin)
        multi = make_counter(ring, estimator).count_many(
            list(METRICS), origin=origin
        )
        assert multi.cost.bytes > single.cost.bytes
