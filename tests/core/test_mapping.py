"""Tests for the bit-position to id-interval mapping."""

import pytest

from repro.core.config import DHSConfig
from repro.core.mapping import BitIntervalMap
from repro.errors import ConfigurationError
from repro.overlay.idspace import IdSpace
from repro.sim.seeds import rng_for


def make_map(bits=32, key_bits=16, m=1, shift=0):
    return BitIntervalMap(
        IdSpace(bits),
        DHSConfig(key_bits=key_bits, num_bitmaps=m, bit_shift=shift),
    )


class TestThresholds:
    def test_paper_formula(self):
        mapping = make_map(bits=32)
        assert mapping.threshold(0) == 2**31
        assert mapping.threshold(1) == 2**30
        assert mapping.threshold(-1) == 2**32

    def test_key_bits_cannot_exceed_space(self):
        with pytest.raises(ConfigurationError):
            BitIntervalMap(IdSpace(16), DHSConfig(key_bits=24))


class TestIntervals:
    def test_first_interval_is_top_half(self):
        mapping = make_map(bits=32)
        assert mapping.interval_for_index(0) == (2**31, 2**32)

    def test_intervals_halve(self):
        mapping = make_map(bits=32)
        for index in range(mapping.num_intervals - 2):
            lo1, hi1 = mapping.interval_for_index(index)
            lo2, hi2 = mapping.interval_for_index(index + 1)
            assert hi2 == lo1
            assert (hi2 - lo2) * 2 == hi1 - lo1

    def test_last_interval_absorbs_zero(self):
        mapping = make_map(bits=32, key_bits=16)
        lo, hi = mapping.interval_for_index(mapping.num_intervals - 1)
        assert lo == 0

    def test_intervals_partition_ring(self):
        mapping = make_map(bits=32, key_bits=16)
        covered = 0
        for index in range(mapping.num_intervals):
            lo, hi = mapping.interval_for_index(index)
            covered += hi - lo
        assert covered == 2**32

    def test_num_intervals(self):
        assert make_map(key_bits=16, m=1).num_intervals == 16
        assert make_map(key_bits=16, m=4).num_intervals == 14
        assert make_map(key_bits=16, m=4, shift=3).num_intervals == 11

    def test_index_bounds_checked(self):
        mapping = make_map()
        with pytest.raises(ValueError):
            mapping.interval_for_index(-1)
        with pytest.raises(ValueError):
            mapping.interval_for_index(mapping.num_intervals)


class TestPositionMapping:
    def test_round_trip_without_shift(self):
        mapping = make_map(key_bits=16, m=4)
        for position in range(mapping.config.position_bits):
            index = mapping.interval_index(position)
            assert mapping.position_for_index(index) == position

    def test_shift_moves_positions_to_larger_intervals(self):
        plain = make_map(key_bits=16, m=1, shift=0)
        shifted = make_map(key_bits=16, m=1, shift=3)
        # Position 3 with shift 3 lives in the interval of position 0.
        assert shifted.interval_for_position(3) == plain.interval_for_position(0)

    def test_shifted_positions_not_stored(self):
        mapping = make_map(shift=3)
        assert not mapping.is_stored(0)
        assert not mapping.is_stored(2)
        assert mapping.is_stored(3)
        with pytest.raises(ValueError):
            mapping.interval_index(2)

    def test_contains(self):
        mapping = make_map(bits=32)
        assert mapping.contains(0, 2**31)
        assert mapping.contains(0, 2**32 - 1)
        assert not mapping.contains(0, 2**31 - 1)


class TestRandomKeys:
    def test_keys_fall_in_interval(self):
        mapping = make_map(bits=32, key_bits=16)
        rng = rng_for(1, "keys")
        for index in range(mapping.num_intervals):
            lo, hi = mapping.interval_for_index(index)
            for _ in range(20):
                key = mapping.random_key_in_interval(index, rng)
                assert lo <= key < hi

    def test_expected_nodes_halve(self):
        mapping = make_map(bits=32, key_bits=16)
        assert mapping.expected_nodes(0, 1024) == pytest.approx(512)
        assert mapping.expected_nodes(1, 1024) == pytest.approx(256)

    def test_load_balance_invariant(self):
        """Items hitting interval r and ids inside it shrink together:
        expected items per node is constant across intervals."""
        mapping = make_map(bits=32, key_bits=16)
        n_items, n_nodes = 2**20, 1024
        ratios = []
        for index in range(mapping.num_intervals - 1):  # last absorbs the tail
            position = mapping.position_for_index(index)
            items_here = n_items * 2.0 ** -(position + 1)
            nodes_here = mapping.expected_nodes(index, n_nodes)
            ratios.append(items_here / nodes_here)
        assert max(ratios) == pytest.approx(min(ratios))
