"""Tests for DHS node-store entries and soft-state semantics."""

from repro.core.tuples import (
    DHSTuple,
    merge_store_values,
    purge_expired,
    storage_entries,
    vectors_at,
    write_entry,
)
from repro.overlay.node import Node


class TestWriteRead:
    def test_round_trip(self):
        node = Node(1)
        write_entry(node, "docs", vector_id=3, bit=2, expiry=None)
        assert vectors_at(node, "docs", 2) == [3]

    def test_missing_is_empty(self):
        node = Node(1)
        assert vectors_at(node, "docs", 0) == []

    def test_metrics_isolated(self):
        node = Node(1)
        write_entry(node, "a", 1, 0, None)
        write_entry(node, "b", 2, 0, None)
        assert vectors_at(node, "a", 0) == [1]
        assert vectors_at(node, "b", 0) == [2]

    def test_bits_isolated(self):
        node = Node(1)
        write_entry(node, "a", 1, 0, None)
        write_entry(node, "a", 1, 5, None)
        assert vectors_at(node, "a", 0) == [1]
        assert vectors_at(node, "a", 5) == [1]

    def test_duplicate_write_is_single_entry(self):
        node = Node(1)
        write_entry(node, "a", 1, 0, 10)
        write_entry(node, "a", 1, 0, 20)
        assert storage_entries(node) == 1

    def test_storage_entries_counts_all(self):
        node = Node(1)
        for vector in range(5):
            write_entry(node, "a", vector, 0, None)
        write_entry(node, "a", 0, 3, None)
        assert storage_entries(node) == 6


class TestTTL:
    def test_live_until_expiry(self):
        node = Node(1)
        write_entry(node, "a", 1, 0, expiry=10)
        assert vectors_at(node, "a", 0, now=10) == [1]
        assert vectors_at(node, "a", 0, now=11) == []

    def test_refresh_extends(self):
        node = Node(1)
        write_entry(node, "a", 1, 0, expiry=10)
        write_entry(node, "a", 1, 0, expiry=30)
        assert vectors_at(node, "a", 0, now=20) == [1]

    def test_refresh_never_shortens(self):
        node = Node(1)
        write_entry(node, "a", 1, 0, expiry=30)
        write_entry(node, "a", 1, 0, expiry=10)
        assert vectors_at(node, "a", 0, now=20) == [1]

    def test_none_expiry_is_immortal(self):
        node = Node(1)
        write_entry(node, "a", 1, 0, expiry=None)
        assert vectors_at(node, "a", 0, now=10**9) == [1]

    def test_purge_removes_expired_only(self):
        node = Node(1)
        write_entry(node, "a", 1, 0, expiry=5)
        write_entry(node, "a", 2, 0, expiry=50)
        removed = purge_expired(node, now=10)
        assert removed == 1
        assert vectors_at(node, "a", 0, now=10) == [2]

    def test_purge_drops_empty_slots(self):
        node = Node(1)
        write_entry(node, "a", 1, 0, expiry=5)
        purge_expired(node, now=10)
        assert node.store == {}


class TestMerge:
    def test_merge_none_existing(self):
        assert merge_store_values(None, {1: 5.0}) == {1: 5.0}

    def test_merge_unions_vectors(self):
        merged = merge_store_values({1: 5.0}, {2: 7.0})
        assert merged == {1: 5.0, 2: 7.0}

    def test_merge_keeps_later_expiry(self):
        assert merge_store_values({1: 5.0}, {1: 9.0}) == {1: 9.0}
        assert merge_store_values({1: 9.0}, {1: 5.0}) == {1: 9.0}

    def test_merge_does_not_mutate_inputs(self):
        existing, incoming = {1: 5.0}, {2: 7.0}
        merge_store_values(existing, incoming)
        assert existing == {1: 5.0}
        assert incoming == {2: 7.0}


class TestDHSTuple:
    def test_fields(self):
        record = DHSTuple("docs", 3, 7, 100)
        assert record.metric_id == "docs"
        assert record.vector_id == 3
        assert record.bit == 7
        assert record.time_out == 100

    def test_default_timeout(self):
        assert DHSTuple("docs", 0, 0).time_out is None
