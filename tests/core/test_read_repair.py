"""Tests for the self-healing paths: counting read-repair and stabilize."""

import pytest

from repro.core.config import DHSConfig
from repro.core.count import CountResult
from repro.core.dhs import DistributedHashSketch
from repro.core.maintenance import stabilize
from repro.core.tuples import vectors_mask, write_entry
from repro.errors import ConfigurationError
from repro.overlay.chord import ChordRing
from repro.overlay.faults import FaultEvent, FaultInjector, FaultPlan
from repro.overlay.stats import OpCost

# 16-bit space; with key_bits=8 and m=1 position 0 maps to [32768, 65536).
IDS = [100, 20000, 33000, 40000, 50000, 60000]
KEY = 32900  # owned by 33000


def make_dhs(dht, replication=2, read_repair=True):
    config = DHSConfig(
        key_bits=8, num_bitmaps=1, lim=10,
        replication=replication, read_repair=read_repair,
    )
    return DistributedHashSketch(dht, config, seed=1)


def probe_once(dhs, origin=33000):
    counter = dhs._counter
    result = CountResult(
        estimates={}, sketches={}, cost=OpCost(), confidence={"m": 1.0}
    )
    counter._probe_interval(
        counter.mapping.interval_index(0), 0, {"m": 0b1},
        origin=origin, now=0, result=result, key=KEY,
    )
    return result


class TestReadRepair:
    def test_config_requires_replication(self):
        with pytest.raises(ConfigurationError):
            DHSConfig(read_repair=True, replication=0)

    def test_probe_rewrites_missing_replicas(self):
        ring = ChordRing.from_ids(IDS, bits=16)
        dhs = make_dhs(ring)
        # The bit lives only on the primary: both replicas lost it.
        write_entry(ring.node(33000), "m", 0, 0, None)
        result = probe_once(dhs)
        for replica in (40000, 50000):
            assert vectors_mask(ring.node(replica), "m", 0) == 0b1
        # One write to each of the two replicas: a hop and a tuple each.
        assert result.cost.repair_writes == 2

    def test_repair_cost_is_accounted(self):
        ring = ChordRing.from_ids(IDS, bits=16)
        baseline = probe_once(make_dhs(ChordRing.from_ids(IDS, bits=16)))
        write_entry(ring.node(33000), "m", 0, 0, None)
        repaired = probe_once(make_dhs(ring))
        # The found bit ends the walk early, but the two repair writes
        # each charge a hop, a message and the copied tuple bytes.
        assert repaired.cost.repair_writes == 2
        assert repaired.cost.messages >= 2
        tuple_bytes = DHSConfig().size_model.tuple_bytes
        assert repaired.cost.bytes >= 2 * tuple_bytes

    def test_no_repair_when_disabled(self):
        ring = ChordRing.from_ids(IDS, bits=16)
        dhs = make_dhs(ring, read_repair=False)
        write_entry(ring.node(33000), "m", 0, 0, None)
        result = probe_once(dhs)
        assert result.cost.repair_writes == 0
        assert vectors_mask(ring.node(40000), "m", 0) == 0

    def test_replicas_already_current_cost_nothing(self):
        ring = ChordRing.from_ids(IDS, bits=16)
        dhs = make_dhs(ring)
        for node_id in (33000, 40000, 50000):
            write_entry(ring.node(node_id), "m", 0, 0, None)
        result = probe_once(dhs)
        assert result.cost.repair_writes == 0

    def test_repair_preserves_ttl(self):
        ring = ChordRing.from_ids(IDS, bits=16)
        dhs = make_dhs(ring)
        write_entry(ring.node(33000), "m", 0, 0, 10)  # expires at 10
        probe_once(dhs)
        replica = ring.node(40000)
        assert vectors_mask(replica, "m", 0, now=9) == 0b1
        assert vectors_mask(replica, "m", 0, now=11) == 0

    def test_unresponsive_replica_skipped(self):
        ring = ChordRing.from_ids(IDS, bits=16)
        plan = FaultPlan(
            events=(FaultEvent("transient", at=1, node_ids=(40000,), duration=9),)
        )
        injector = FaultInjector(ring, plan, seed=0)
        dhs = make_dhs(injector)
        write_entry(ring.node(33000), "m", 0, 0, None)
        injector.advance_to(1)
        result = probe_once(dhs)
        # Only the reachable replica is repaired; the down one is not
        # written to (and not crashed either — it comes back later).
        assert vectors_mask(ring.node(50000), "m", 0) == 0b1
        assert vectors_mask(ring.node(40000), "m", 0) == 0
        assert result.cost.repair_writes == 1


class TestStabilize:
    def _populated_ring(self):
        ring = ChordRing.from_ids(IDS, bits=16)
        # The replication-2 steady state for one bit owned by 33000.
        for node_id in (33000, 40000, 50000):
            write_entry(ring.node(node_id), "m", 0, 0, None)
        return ring

    def test_noop_without_replication(self):
        ring = self._populated_ring()
        ring.node(40000).store.clear()
        cost = stabilize(ring, 0)
        assert cost.hops == 0 and cost.repair_writes == 0
        assert vectors_mask(ring.node(40000), "m", 0) == 0

    def test_rebuilds_amnesiac_replica(self):
        ring = self._populated_ring()
        ring.node(40000).store.clear()  # amnesia: rejoined empty
        cost = stabilize(ring, 2)
        assert vectors_mask(ring.node(40000), "m", 0) == 0b1
        assert cost.repair_writes == 1
        assert cost.hops == 1

    def test_chain_stays_bounded_across_sweeps(self):
        # Repeated sweeps must not flood the bit around the ring: only
        # the primary's R successors may ever hold it.
        ring = self._populated_ring()
        for _ in range(3):
            stabilize(ring, 2)
        holders = [n for n in IDS if vectors_mask(ring.node(n), "m", 0)]
        assert holders == [33000, 40000, 50000]

    def test_steady_state_sweep_is_free(self):
        ring = self._populated_ring()
        cost = stabilize(ring, 2)
        assert cost.repair_writes == 0
        assert cost.bytes == 0

    def test_facade_wrapper_uses_config_replication(self):
        ring = self._populated_ring()
        dhs = make_dhs(ring, replication=2)
        ring.node(50000).store.clear()
        cost = dhs.stabilize()
        assert vectors_mask(ring.node(50000), "m", 0) == 0b1
        assert cost.repair_writes == 1

    def test_preserves_expiry(self):
        ring = ChordRing.from_ids(IDS, bits=16)
        write_entry(ring.node(33000), "m", 0, 0, 10)
        stabilize(ring, 2, now=0)
        assert vectors_mask(ring.node(40000), "m", 0, now=9) == 0b1
        assert vectors_mask(ring.node(40000), "m", 0, now=11) == 0

    def test_skips_unresponsive_nodes(self):
        ring = self._populated_ring()
        ring.node(40000).store.clear()
        plan = FaultPlan(
            events=(FaultEvent("transient", at=1, node_ids=(40000,), duration=9),)
        )
        injector = FaultInjector(ring, plan, seed=0)
        injector.advance_to(1)
        cost = stabilize(injector, 2)
        # The down node can be neither a source nor a repair target.
        assert vectors_mask(ring.node(40000), "m", 0) == 0
        assert cost.repair_writes == 0


class TestIntervalHandoff:
    """Spilled replicas are handed back to the counting walk's reach.

    With ``key_bits=8`` over this 16-bit ring, the position-2 interval
    ``[8192, 16384)`` holds no nodes: every key in it is owned by the
    overflow node 20000, and the R=2 replicas of anything stored there
    live on 33000/40000.  If the owner crashes and rejoins empty
    (amnesia), the bits survive only on those replicas — which the
    interval-bounded walk never probes, so a count confidently misses
    them.  ``stabilize`` with the bit→interval mapping (as the DHS
    facade passes it) must hand the bits back to the owner.
    """

    def _spilled_ring(self):
        ring = ChordRing.from_ids(IDS, bits=16)
        for node_id in (33000, 40000):
            write_entry(ring.node(node_id), "docs", 0, 2, None)
        return ring

    def test_facade_hands_bits_back_to_overflow_owner(self):
        ring = self._spilled_ring()
        dhs = make_dhs(ring, read_repair=False)
        cost = dhs.stabilize()
        # Exactly one handoff write: 33000 offers the bit to its live
        # predecessor 20000, the owner of every key in [8192, 16384);
        # 40000's predecessor 33000 is no closer to the walk's reach.
        assert vectors_mask(ring.node(20000), "docs", 2) == 0b1
        assert cost.repair_writes == 1

    def test_bare_stabilize_without_mapping_cannot_see_intervals(self):
        ring = self._spilled_ring()
        stabilize(ring, 2)
        assert vectors_mask(ring.node(20000), "docs", 2) == 0

    def test_handoff_restores_count_visibility(self):
        ring = self._spilled_ring()
        # Keep vector 0 alive through positions 0 and 1 so the scan
        # reaches position 2 (both holders are inside their intervals).
        write_entry(ring.node(33000), "docs", 0, 0, None)
        write_entry(ring.node(20000), "docs", 0, 1, None)
        dhs = make_dhs(ring, read_repair=False)
        before = dhs.count("docs").estimate()
        dhs.stabilize()
        after = dhs.count("docs").estimate()
        assert after > before

    def test_second_sweep_is_free(self):
        ring = self._spilled_ring()
        dhs = make_dhs(ring, read_repair=False)
        dhs.stabilize()
        assert dhs.stabilize().repair_writes == 0
