"""``insert_array`` is an exact twin of the scalar bulk path.

The vectorized inserter must be *indistinguishable* from
``insert_bulk`` given the same items, seed and overlay: same stored
tuples on the same nodes, same random target keys (hence the same
``OpCost``, hop for hop).  These tests pin that equivalence, the md4
fallback, and the zero-cost contract for positions below ``bit_shift``.
"""

import numpy as np
import pytest

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.core.tuples import bits_of
from repro.overlay.chord import ChordRing
from repro.overlay.stats import OpCost


def make_dhs(n_nodes=64, bits=32, key_bits=16, m=16, trace=False, **kwargs):
    ring = ChordRing.build(n_nodes, bits=bits, seed=3, trace=trace)
    config = DHSConfig(key_bits=key_bits, num_bitmaps=m, **kwargs)
    return DistributedHashSketch(ring, config, seed=1)


def stored_state(dhs):
    """Full logical store of the deployment: node -> sorted entry keys."""
    state = {}
    for node_id in dhs.dht.node_ids():
        node = dhs.dht.node(node_id)
        if node.store:
            state[node_id] = sorted(
                (key, sorted(bits_of(slot.mask) + list(slot.expiring or {})))
                for key, slot in node.store.items()
            )
    return state


def assert_costs_equal(a: OpCost, b: OpCost):
    assert a.hops == b.hops
    assert a.messages == b.messages
    assert a.bytes == b.bytes
    assert a.lookups == b.lookups
    assert a.nodes_visited == b.nodes_visited


class TestArrayVsBulk:
    @pytest.mark.parametrize("kwargs", [{}, {"bit_shift": 3}, {"replication": 2}])
    def test_exact_equality(self, kwargs):
        scalar = make_dhs(trace=True, **kwargs)
        vectorized = make_dhs(trace=True, **kwargs)
        items = list(range(2000)) + list(range(500))  # duplicates included
        origin = scalar.dht.node_ids()[0]
        cost_scalar = scalar.insert_bulk("docs", items, origin=origin)
        cost_array = vectorized.insert_array(
            "docs", np.array(items, dtype=np.int64), origin=origin
        )
        assert_costs_equal(cost_scalar, cost_array)
        assert stored_state(scalar) == stored_state(vectorized)

    def test_equality_holds_across_repeated_batches(self):
        """The shared RNG stays in lockstep batch after batch."""
        scalar = make_dhs()
        vectorized = make_dhs()
        for batch in range(5):
            items = list(range(batch * 300, batch * 300 + 300))
            cost_scalar = scalar.insert_bulk("docs", items)
            cost_array = vectorized.insert_array(
                "docs", np.array(items, dtype=np.int64)
            )
            assert_costs_equal(cost_scalar, cost_array)
        assert stored_state(scalar) == stored_state(vectorized)

    def test_facade_delegates(self):
        dhs = make_dhs()
        cost = dhs.insert_array("docs", np.arange(100, dtype=np.int64))
        assert cost.lookups > 0

    def test_accepts_python_list(self):
        scalar = make_dhs()
        vectorized = make_dhs()
        cost_scalar = scalar.insert_bulk("docs", range(250))
        cost_array = vectorized.insert_array("docs", list(range(250)))
        assert_costs_equal(cost_scalar, cost_array)

    def test_empty_array(self):
        dhs = make_dhs()
        cost = dhs.insert_array("docs", np.array([], dtype=np.int64))
        assert cost.hops == 0
        assert cost.lookups == 0

    def test_md4_falls_back_to_scalar_path(self):
        scalar = make_dhs(hash_family_name="md4")
        vectorized = make_dhs(hash_family_name="md4")
        items = list(range(300))
        cost_scalar = scalar.insert_bulk("docs", items)
        cost_array = vectorized.insert_array(
            "docs", np.array(items, dtype=np.int64)
        )
        assert_costs_equal(cost_scalar, cost_array)
        assert stored_state(scalar) == stored_state(vectorized)


class TestObservationArrays:
    def test_matches_insert_observations(self):
        scalar = make_dhs(bit_shift=2)
        vectorized = make_dhs(bit_shift=2)
        rng = np.random.default_rng(7)
        vectors = rng.integers(0, 16, size=1500)
        positions = rng.integers(0, 14, size=1500)
        cost_scalar = scalar._inserter.insert_observations(
            "docs", zip(vectors.tolist(), positions.tolist())
        )
        cost_array = vectorized._inserter.insert_observation_arrays(
            "docs", vectors, positions
        )
        assert_costs_equal(cost_scalar, cost_array)
        assert stored_state(scalar) == stored_state(vectorized)

    def test_clamps_overlong_positions(self):
        scalar = make_dhs()
        vectorized = make_dhs()
        position_bits = scalar.config.position_bits
        pairs = [(1, position_bits + 40), (2, position_bits - 1), (1, 0)]
        cost_scalar = scalar._inserter.insert_observations("docs", pairs)
        cost_array = vectorized._inserter.insert_observation_arrays(
            "docs",
            np.array([v for v, _ in pairs], dtype=np.int64),
            np.array([p for _, p in pairs], dtype=np.int64),
        )
        assert_costs_equal(cost_scalar, cost_array)
        assert stored_state(scalar) == stored_state(vectorized)

    def test_all_below_bit_shift_is_free(self):
        dhs = make_dhs(bit_shift=6)
        cost = dhs._inserter.insert_observation_arrays(
            "docs",
            np.array([0, 1, 2], dtype=np.int64),
            np.array([0, 3, 5], dtype=np.int64),
        )
        assert cost.hops == 0
        assert cost.lookups == 0
        assert stored_state(dhs) == {}


class TestBitShiftZeroCost:
    """Positions below ``bit_shift`` are assumed set: they must store
    nothing and contribute exactly zero cost (section 3.5) — the
    ``insert_many`` docstring's "at most one DHT store each" contract."""

    def _low_position_items(self, dhs, shift, want=20):
        items = []
        for item in range(20_000):
            _, position = dhs._inserter.observation(item)
            if position < shift:
                items.append(item)
                if len(items) == want:
                    return items
        pytest.fail("not enough low-position items found")

    def test_insert_is_free_below_shift(self):
        dhs = make_dhs(bit_shift=8)
        for item in self._low_position_items(dhs, 8):
            cost = dhs.insert("docs", item)
            assert cost.hops == 0
            assert cost.messages == 0
            assert cost.bytes == 0
            assert cost.lookups == 0
        assert stored_state(dhs) == {}

    def test_insert_many_is_free_below_shift(self):
        dhs = make_dhs(bit_shift=8)
        items = self._low_position_items(dhs, 8)
        cost = dhs._inserter.insert_many("docs", items)
        assert cost.hops == 0
        assert cost.lookups == 0
        assert stored_state(dhs) == {}
