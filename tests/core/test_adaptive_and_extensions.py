"""Tests for the eq6 adaptive lim policy, MD4-backed DHS, and
node-population counting."""

import pytest

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.errors import ConfigurationError
from repro.hashing.family import MD4Hash, MixerHash
from repro.overlay.chord import ChordRing


def make_dhs(n_nodes=64, bits=32, key_bits=16, m=4, seed=3, **kwargs):
    ring = ChordRing.build(n_nodes, bits=bits, seed=seed)
    config = DHSConfig(key_bits=key_bits, num_bitmaps=m, **kwargs)
    return DistributedHashSketch(ring, config, seed=1)


def populate_spread(dhs, metric, items, now=0):
    node_ids = list(dhs.dht.node_ids())
    for i, item in enumerate(items):
        dhs.insert(metric, item, origin=node_ids[i % len(node_ids)], now=now)


class TestConfigValidation:
    def test_lim_policy_values(self):
        assert DHSConfig(lim_policy="eq6").lim_policy == "eq6"
        with pytest.raises(ConfigurationError):
            DHSConfig(lim_policy="adaptive")

    def test_lim_target_p_range(self):
        with pytest.raises(ConfigurationError):
            DHSConfig(lim_target_p=0.0)
        with pytest.raises(ConfigurationError):
            DHSConfig(lim_target_p=1.0)

    def test_hash_family_name_values(self):
        assert DHSConfig(hash_family_name="md4").hash_family_name == "md4"
        with pytest.raises(ConfigurationError):
            DHSConfig(hash_family_name="sha1")


class TestEq6Policy:
    def test_accurate_prior_beats_starved_fixed_lim(self):
        """With a tiny fixed lim PCSA collapses; the eq6 policy sizes the
        budget from the prior and recovers the estimate."""
        items = list(range(2000))
        fixed = make_dhs(n_nodes=128, m=16, estimator="pcsa", lim=1)
        adaptive = make_dhs(
            n_nodes=128, m=16, estimator="pcsa", lim=8, lim_policy="eq6"
        )
        populate_spread(fixed, "docs", items)
        populate_spread(adaptive, "docs", items)
        fixed_est = fixed.count("docs").estimate()
        adaptive_est = adaptive.count("docs", expected_items=2000.0).estimate()
        truth = 2000
        assert abs(adaptive_est - truth) / truth < abs(fixed_est - truth) / truth + 0.05

    def test_bootstrap_when_no_prior(self):
        dhs = make_dhs(n_nodes=64, m=4, lim=5, lim_policy="eq6")
        populate_spread(dhs, "docs", range(1000))
        result = dhs.count("docs")  # no prior: triggers bootstrap pass
        assert result.estimate() > 0
        # Bootstrap cost is folded in: at least two scans' lookups.
        assert result.cost.lookups >= 2

    def test_prior_skips_bootstrap(self):
        dhs = make_dhs(n_nodes=64, m=4, lim=5, lim_policy="eq6")
        populate_spread(dhs, "docs", range(1000))
        with_prior = dhs.count("docs", expected_items=1000.0)
        without = dhs.count("docs")
        assert with_prior.cost.lookups < without.cost.lookups

    def test_fixed_policy_ignores_prior(self):
        dhs = make_dhs(n_nodes=64, m=4, lim=5)
        populate_spread(dhs, "docs", range(500))
        a = dhs.count("docs", origin=dhs.dht.node_ids()[0])
        b = dhs.count("docs", origin=dhs.dht.node_ids()[0], expected_items=500.0)
        # Same policy, same budget: identical estimates modulo the RNG
        # stream position — compare probe counts per interval instead.
        assert a.intervals_scanned == b.intervals_scanned

    def test_budget_bounded(self):
        dhs = make_dhs(n_nodes=64, m=4, lim=5, lim_policy="eq6")
        populate_spread(dhs, "docs", range(100))
        result = dhs.count("docs", expected_items=1.0)  # absurdly sparse prior
        # Budget is capped at 8 * lim per interval.
        assert result.probes <= 8 * 5 * result.intervals_scanned


class TestMD4BackedDHS:
    def test_md4_hash_family_used(self):
        dhs = make_dhs(hash_family_name="md4")
        assert isinstance(dhs.hash_family, MD4Hash)
        assert isinstance(make_dhs().hash_family, MixerHash)

    def test_md4_end_to_end(self):
        dhs = make_dhs(n_nodes=64, m=4, lim=70, hash_family_name="md4")
        items = list(range(800))
        populate_spread(dhs, "docs", items)
        local = dhs.local_sketch(items)
        result = dhs.count("docs")
        assert result.estimate() == pytest.approx(local.estimate())

    def test_md4_populate_helper(self):
        """The fast populate helper must fall back to the scalar path."""
        import numpy as np

        from repro.experiments.common import populate_metric

        dhs = make_dhs(n_nodes=32, m=4, lim=40, hash_family_name="md4")
        populate_metric(dhs, "docs", np.arange(500, dtype=np.int64), seed=2)
        local = dhs.local_sketch(range(500))
        assert dhs.count("docs").estimate() == pytest.approx(local.estimate())


class TestNodePopulation:
    def test_count_nodes(self):
        dhs = make_dhs(n_nodes=100, m=16, lim=70)
        dhs.register_nodes()
        result = dhs.count_nodes()
        assert result.estimate() == pytest.approx(100, rel=0.6)

    def test_population_tracks_churn(self):
        dhs = make_dhs(n_nodes=100, m=16, lim=70, ttl=10)
        dhs.register_nodes(now=0)
        before = dhs.count_nodes(now=0).estimate()
        # Half the nodes fail; the survivors re-register next round.
        from repro.overlay.failures import fail_fraction

        fail_fraction(dhs.dht, 0.5, seed=1)
        dhs.register_nodes(now=20)  # previous entries have expired
        after = dhs.count_nodes(now=20).estimate()
        assert after < before
        assert after == pytest.approx(50, rel=0.7)
