"""Tests for the eq. 5 / eq. 6 retry model (paper section 4.1)."""

import pytest

from repro.core.retries import (
    lim_for_interval,
    lim_with_bitmaps,
    lim_with_replication,
    prob_all_probes_empty,
    success_probability,
)
from repro.errors import ConfigurationError


class TestEq5:
    def test_zero_probes(self):
        assert prob_all_probes_empty(100, 50, 0) == 1.0

    def test_exhaustive_probes(self):
        # Probing every bin must find something when items exist.
        assert prob_all_probes_empty(100, 50, 50) == 0.0

    def test_formula_value(self):
        # ((N - t)/N)^n with N=10, t=2, n=3 -> 0.8^3
        assert prob_all_probes_empty(3, 10, 2) == pytest.approx(0.512)

    def test_monotone_in_probes(self):
        values = [prob_all_probes_empty(20, 100, t) for t in range(0, 50, 5)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_monotone_in_items(self):
        sparse = prob_all_probes_empty(5, 100, 5)
        dense = prob_all_probes_empty(500, 100, 5)
        assert dense < sparse

    def test_no_items_never_found(self):
        assert prob_all_probes_empty(0, 100, 5) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            prob_all_probes_empty(10, 0, 1)
        with pytest.raises(ConfigurationError):
            prob_all_probes_empty(-1, 10, 1)
        with pytest.raises(ConfigurationError):
            prob_all_probes_empty(10, 10, -1)


class TestLim:
    def test_lim_achieves_target(self):
        for n_items, n_bins in [(50, 100), (200, 100), (10, 1000)]:
            lim = lim_for_interval(0.99, n_items, n_bins)
            assert success_probability(n_items, n_bins, lim) >= 0.99

    def test_lim_is_tight(self):
        lim = lim_for_interval(0.99, 50, 100)
        if lim > 1:
            assert success_probability(50, 100, lim - 1) < 0.99

    def test_paper_default_guarantee(self):
        """lim=5 suffices for p >= 0.99 whenever items >= bins (sect 4.1)."""
        for n_bins in (8, 64, 512, 4096):
            assert lim_for_interval(0.99, n_bins, n_bins) <= 5

    def test_lim_grows_when_items_sparse(self):
        dense = lim_for_interval(0.99, 1000, 100)
        sparse = lim_for_interval(0.99, 10, 100)
        assert sparse > dense

    def test_lim_bounded_by_bins(self):
        assert lim_for_interval(0.999999, 1, 10) <= 10

    def test_lim_with_no_items_is_exhaustive(self):
        assert lim_for_interval(0.99, 0, 64) == 64

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            lim_for_interval(0.0, 10, 10)
        with pytest.raises(ConfigurationError):
            lim_for_interval(1.0, 10, 10)


class TestEq6Extensions:
    def test_bitmaps_dilute_items(self):
        # Items split over m bitmaps: the probe budget must grow.
        base = lim_with_bitmaps(0.99, 1000, 100, m=1)
        split = lim_with_bitmaps(0.99, 1000, 100, m=64)
        assert split > base
        assert base == lim_for_interval(0.99, 1000, 100)

    def test_replication_restores_budget(self):
        unreplicated = lim_with_replication(0.99, 1000, 100, m=64, replication=1)
        replicated = lim_with_replication(0.99, 1000, 100, m=64, replication=8)
        assert replicated <= unreplicated
        assert replicated == lim_with_bitmaps(0.99, 8 * 1000, 100, m=64)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            lim_with_bitmaps(0.99, 10, 10, m=0)
        with pytest.raises(ConfigurationError):
            lim_with_replication(0.99, 10, 10, m=1, replication=0)


class TestSuccessProbability:
    def test_complementarity(self):
        assert success_probability(50, 100, 5) == pytest.approx(
            1 - prob_all_probes_empty(50, 100, 5)
        )

    def test_lim_beyond_bins_clamped(self):
        assert success_probability(10, 5, 100) == 1.0


from hypothesis import given, settings
from hypothesis import strategies as st


class TestRetryModelProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        n_items=st.floats(min_value=0.1, max_value=1e6),
        n_bins=st.floats(min_value=1, max_value=1e5),
        p=st.floats(min_value=0.01, max_value=0.999),
    )
    def test_lim_always_achieves_target(self, n_items, n_bins, p):
        lim = lim_for_interval(p, n_items, n_bins)
        assert 1 <= lim <= int(n_bins) + 1
        assert success_probability(n_items, n_bins, lim) >= p - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(
        n_items=st.floats(min_value=1, max_value=1e5),
        n_bins=st.floats(min_value=2, max_value=1e4),
        t=st.integers(min_value=0, max_value=50),
    )
    def test_probability_is_a_probability(self, n_items, n_bins, t):
        value = prob_all_probes_empty(n_items, n_bins, t)
        assert 0.0 <= value <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(
        n_items=st.floats(min_value=1, max_value=1e5),
        n_bins=st.floats(min_value=2, max_value=1e4),
        m=st.sampled_from([1, 4, 64, 1024]),
        r=st.integers(min_value=1, max_value=16),
    )
    def test_replication_never_raises_budget(self, n_items, n_bins, m, r):
        base = lim_with_replication(0.95, n_items, n_bins, m=m, replication=1)
        replicated = lim_with_replication(0.95, n_items, n_bins, m=m, replication=r)
        assert replicated <= base
