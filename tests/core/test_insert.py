"""Tests for DHS insertion: placement, dedup, bulk grouping, replication."""

import pytest

from repro.core.config import DHSConfig
from repro.core.dhs import DistributedHashSketch
from repro.core.tuples import storage_entries, vectors_at
from repro.overlay.chord import ChordRing


def make_dhs(n_nodes=64, bits=32, key_bits=16, m=4, **kwargs):
    ring = ChordRing.build(n_nodes, bits=bits, seed=3)
    config = DHSConfig(key_bits=key_bits, num_bitmaps=m, **kwargs)
    return DistributedHashSketch(ring, config, seed=1)


def find_entry_nodes(dhs, metric, vector, bit):
    """All nodes holding a live entry for (metric, vector, bit)."""
    return [
        node_id
        for node_id in dhs.dht.node_ids()
        if vector in vectors_at(dhs.dht.node(node_id), metric, bit)
    ]


class TestPlacement:
    def test_entry_lands_in_mapped_interval(self):
        dhs = make_dhs()
        for item in range(50):
            dhs.insert("docs", item)
        for node_id in dhs.dht.node_ids():
            node = dhs.dht.node(node_id)
            for (metric, bit), slot in node.store.items():
                assert metric == "docs"
                lo, hi = dhs.mapping.interval_for_position(bit)
                # The storing node owns a key in [lo, hi): its id is in
                # the interval or it is the first node after it.
                pred = dhs.dht.predecessor_id(node_id)
                owns_from = (pred + 1) % dhs.dht.space.size
                assert owns_from < hi or node_id >= lo or pred > node_id

    def test_observation_consistent_with_sketch(self):
        dhs = make_dhs()
        sketch = dhs.config.make_sketch(dhs.hash_family)
        for item in range(100):
            assert dhs._inserter.observation(item) == (
                sketch.observation(item)[0],
                min(sketch.observation(item)[1], sketch.position_bits - 1),
            )

    def test_insert_cost_is_logarithmic(self):
        dhs = make_dhs(n_nodes=256)
        total_hops = sum(dhs.insert("docs", item).hops for item in range(200))
        assert 1.0 < total_hops / 200 < 16  # ~0.5*log2(256)+1 expected

    def test_insert_bytes_match_hops(self):
        dhs = make_dhs()
        cost = dhs.insert("docs", 123)
        assert cost.bytes == cost.hops * dhs.config.size_model.tuple_bytes


class TestDedup:
    def test_same_item_from_same_origin_no_growth(self):
        dhs = make_dhs()
        origin = dhs.dht.node_ids()[0]
        dhs.insert("docs", 42, origin=origin)
        before = sum(dhs.storage_per_node().values())
        # Re-inserting the same item can only refresh or add one more
        # random-key copy of the SAME logical bit — never new logical state.
        dhs.insert("docs", 42, origin=origin)
        after = sum(dhs.storage_per_node().values())
        assert after <= before + 1

    def test_node_level_dedup(self):
        dhs = make_dhs(n_nodes=1)  # everything lands on one node
        for _ in range(20):
            dhs.insert("docs", 7)
        node = dhs.dht.node(dhs.dht.node_ids()[0])
        assert storage_entries(node) == 1


class TestBulk:
    def test_bulk_equals_individual_state(self):
        a = make_dhs()
        b = make_dhs()
        items = list(range(300))
        for item in items:
            a.insert("docs", item)
        b.insert_bulk("docs", items)
        # Same logical bits present somewhere in each deployment.
        for vector in range(4):
            for bit in range(10):
                assert bool(find_entry_nodes(a, "docs", vector, bit)) == bool(
                    find_entry_nodes(b, "docs", vector, bit)
                )

    def test_bulk_uses_fewer_lookups(self):
        a = make_dhs()
        b = make_dhs()
        items = list(range(300))
        origin = a.dht.node_ids()[0]
        cost_individual = a.insert_many("docs", items, origin=origin)
        cost_bulk = b.insert_bulk("docs", items, origin=origin)
        assert cost_bulk.lookups <= a.mapping.num_intervals
        assert cost_individual.lookups == len(items)
        assert cost_bulk.hops < cost_individual.hops

    def test_bulk_sends_distinct_tuples_only(self):
        dhs = make_dhs()
        origin = dhs.dht.node_ids()[0]
        once = dhs.insert_bulk("a", list(range(100)), origin=origin)
        duplicated = dhs.insert_bulk("b", list(range(100)) * 5, origin=origin)
        assert duplicated.bytes == pytest.approx(once.bytes, rel=0.7)

    def test_bulk_empty_iterable(self):
        dhs = make_dhs()
        cost = dhs.insert_bulk("docs", [])
        assert cost.hops == 0
        assert cost.bytes == 0


class TestReplication:
    def test_replicas_written_to_successors(self):
        dhs = make_dhs(replication=3)
        dhs.insert("docs", 99)
        vector, position = dhs._inserter.observation(99)
        holders = find_entry_nodes(dhs, "docs", vector, position)
        assert len(holders) == 4  # primary + 3 replicas

    def test_replication_cost_constant_extra_hops(self):
        plain = make_dhs(replication=0)
        replicated = make_dhs(replication=3)
        origin = plain.dht.node_ids()[0]
        cost_plain = plain.insert("docs", 5, origin=origin)
        cost_repl = replicated.insert("docs", 5, origin=origin)
        assert cost_repl.hops == cost_plain.hops + 3


class TestBitShift:
    def test_low_positions_not_stored(self):
        dhs = make_dhs(bit_shift=4)
        stored_low = 0
        for item in range(500):
            vector, position = dhs._inserter.observation(item)
            dhs.insert("docs", item)
            if position < 4:
                stored_low += 1
        # ~94% of items have position < 4 and must not be stored.
        assert stored_low > 400
        for node_id in dhs.dht.node_ids():
            for (metric, bit) in dhs.dht.node(node_id).store:
                assert bit >= 4

    def test_shifted_insert_costs_nothing_for_low_bits(self):
        dhs = make_dhs(bit_shift=8)
        # find an item with a low position
        for item in range(100):
            _, position = dhs._inserter.observation(item)
            if position < 8:
                assert dhs.insert("docs", item).hops == 0
                break
        else:
            pytest.fail("no low-position item found in 100 tries")


class TestTTLInsertion:
    def test_expiry_recorded(self):
        dhs = make_dhs(n_nodes=1, ttl=10)
        dhs.insert("docs", 1, now=5)
        node = dhs.dht.node(dhs.dht.node_ids()[0])
        vector, position = dhs._inserter.observation(1)
        assert vectors_at(node, "docs", position, now=15) == [vector]
        assert vectors_at(node, "docs", position, now=16) == []
