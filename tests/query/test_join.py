"""Tests for join-size estimation."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.histograms.buckets import BucketSpec
from repro.histograms.histogram import Histogram
from repro.query.join import estimate_join_size, true_join_size

SPEC = BucketSpec.equi_width(1, 100, 10)


class TestTrueJoinSize:
    def test_two_way(self):
        r = np.array([1, 1, 2, 3])
        s = np.array([1, 2, 2, 4])
        # value 1: 2*1, value 2: 1*2 -> 4
        assert true_join_size([r, s], domain=100) == 4

    def test_three_way(self):
        r = np.array([5, 5])
        s = np.array([5])
        t = np.array([5, 5, 5])
        assert true_join_size([r, s, t], domain=100) == 6

    def test_disjoint_values(self):
        assert true_join_size([np.array([1]), np.array([2])], domain=10) == 0

    def test_single_relation(self):
        assert true_join_size([np.array([1, 2, 3])], domain=10) == 3

    def test_empty_input_rejected(self):
        with pytest.raises(QueryError):
            true_join_size([], domain=10)


class TestEstimateJoinSize:
    def test_single_histogram_is_cardinality(self):
        histogram = Histogram.from_counts(SPEC, [10.0] * 10)
        assert estimate_join_size([histogram]) == 100.0

    def test_uniform_exactness(self):
        """On perfectly uniform data the bucket formula is exact."""
        values = np.repeat(np.arange(1, 101), 3)  # every value 3 times
        r = Histogram.exact(SPEC, values)
        s = Histogram.exact(SPEC, values)
        estimate = estimate_join_size([r, s])
        truth = true_join_size([values, values], domain=100)
        assert estimate == pytest.approx(truth)

    def test_zero_bucket_contributes_nothing(self):
        r = Histogram.from_counts(SPEC, [100.0] + [0.0] * 9)
        s = Histogram.from_counts(SPEC, [0.0] * 9 + [100.0])
        assert estimate_join_size([r, s]) == 0.0

    def test_estimate_tracks_skew_direction(self):
        """Joining on co-located skew must estimate larger than joining
        on disjoint skew."""
        hot = Histogram.from_counts(SPEC, [90.0] + [1.0] * 9)
        cold = Histogram.from_counts(SPEC, [1.0] * 9 + [90.0])
        assert estimate_join_size([hot, hot]) > estimate_join_size([hot, cold])

    def test_three_way_formula(self):
        counts = [10.0] * 10
        histogram = Histogram.from_counts(SPEC, counts)
        # per bucket: 10^3 / 10^2 = 10, times 10 buckets = 100
        assert estimate_join_size([histogram] * 3) == pytest.approx(100.0)

    def test_mismatched_specs_rejected(self):
        other = BucketSpec.equi_width(1, 100, 5)
        with pytest.raises(QueryError):
            estimate_join_size(
                [
                    Histogram.from_counts(SPEC, [1.0] * 10),
                    Histogram.from_counts(other, [1.0] * 5),
                ]
            )

    def test_empty_input_rejected(self):
        with pytest.raises(QueryError):
            estimate_join_size([])

    def test_accuracy_on_zipf_data(self):
        """Histogram estimates should land within ~2x on skewed data."""
        from repro.workloads.zipf import ZipfGenerator

        generator = ZipfGenerator(100, theta=0.7)
        r_values = generator.sample(5000, seed=1)
        s_values = generator.sample(8000, seed=2)
        spec = BucketSpec.equi_width(1, 100, 20)
        estimate = estimate_join_size(
            [Histogram.exact(spec, r_values), Histogram.exact(spec, s_values)]
        )
        truth = true_join_size([r_values, s_values], domain=100)
        assert truth * 0.4 < estimate < truth * 2.5
