"""Tests for the non-join filter attribute (multi-attribute SPJ)."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.histograms.buckets import BucketSpec
from repro.histograms.histogram import Histogram
from repro.query.catalog import Catalog
from repro.query.engine import execute_plan
from repro.query.optimizer import apply_predicates, optimize
from repro.query.plans import BaseRel, left_deep_plan
from repro.workloads.relations import make_relation

SPEC = BucketSpec.equi_width(1, 1000, 20)


@pytest.fixture(scope="module")
def workload():
    relations = {
        name: make_relation(
            name, size, domain=1000, theta=0.7, seed=i,
            filter_domain=200, filter_theta=0.5,
        )
        for i, (name, size) in enumerate([("A", 5000), ("B", 10000), ("C", 20000)])
    }
    catalog = Catalog.exact(list(relations.values()), SPEC)
    return relations, catalog


class TestRelationFilterAttribute:
    def test_filter_values_materialized(self, workload):
        relations, _ = workload
        relation = relations["A"]
        assert relation.filter_values is not None
        assert relation.filter_values.shape == relation.values.shape
        assert relation.filter_domain == (1, 200)

    def test_attributes_independent(self, workload):
        relations, _ = workload
        relation = relations["C"]
        corr = np.corrcoef(relation.values, relation.filter_values)[0, 1]
        assert abs(corr) < 0.05

    def test_no_filter_by_default(self):
        relation = make_relation("X", 100)
        assert relation.filter_values is None


class TestHistogramScale:
    def test_scale(self):
        histogram = Histogram.from_counts(SPEC, [10.0] * 20)
        assert histogram.scale(0.25).total == pytest.approx(50.0)

    def test_scale_validates(self):
        histogram = Histogram.from_counts(SPEC, [10.0] * 20)
        from repro.errors import HistogramError

        with pytest.raises(HistogramError):
            histogram.scale(-1)


class TestCatalogFilterStats:
    def test_filter_histogram_built(self, workload):
        _, catalog = workload
        entry = catalog.entry("A")
        assert entry.filter_histogram is not None
        assert entry.filter_histogram.total == 5000


class TestPredicates:
    def test_b_predicate_scales_estimates(self, workload):
        _, catalog = workload
        derived = apply_predicates(catalog, {"A": ("b", 1, 50)})
        selectivity = catalog.entry("A").filter_histogram.selectivity_range(1, 50)
        assert derived.entry("A").cardinality == pytest.approx(
            5000 * selectivity, rel=1e-6
        )

    def test_b_predicate_without_stats_rejected(self):
        relation = make_relation("X", 100, domain=1000)
        catalog = Catalog.exact([relation], SPEC)
        with pytest.raises(QueryError):
            apply_predicates(catalog, {"X": ("b", 1, 10)})

    def test_malformed_predicate_rejected(self, workload):
        _, catalog = workload
        with pytest.raises(QueryError):
            apply_predicates(catalog, {"A": ("c", 1, 10)})
        with pytest.raises(QueryError):
            apply_predicates(catalog, {"A": (1, 2, 3, 4)})

    def test_engine_filters_on_b(self, workload):
        relations, _ = workload
        result = execute_plan(
            BaseRel("C"), relations, predicates={"C": ("b", 1, 50)}
        )
        truth = int(
            (
                (relations["C"].filter_values >= 1)
                & (relations["C"].filter_values < 50)
            ).sum()
        )
        assert result.rows == truth

    def test_engine_rejects_b_without_attribute(self, workload):
        relations, _ = workload
        stripped = {
            name: make_relation(name, 100, domain=1000, seed=9)
            for name in ("A",)
        }
        with pytest.raises(QueryError):
            execute_plan(BaseRel("A"), stripped, predicates={"A": ("b", 1, 10)})

    def test_estimate_tracks_reality(self, workload):
        """AVI estimate of a filtered join within a reasonable factor of
        the true filtered join size."""
        relations, catalog = workload
        predicates = {"C": ("b", 1, 30), "A": (1, 400)}
        plan = optimize(catalog, ["A", "B", "C"], predicates=predicates)
        executed = execute_plan(plan.root, relations, predicates=predicates)
        assert executed.rows > 0
        assert plan.estimated_rows == pytest.approx(executed.rows, rel=0.9)

    def test_mixed_predicates_beat_unfiltered_shipping(self, workload):
        relations, catalog = workload
        predicates = {"C": ("b", 1, 30)}
        plan = optimize(catalog, ["A", "B", "C"], predicates=predicates)
        filtered = execute_plan(plan.root, relations, predicates=predicates)
        unfiltered = execute_plan(
            left_deep_plan(["A", "B", "C"]), relations
        )
        assert filtered.shipped_bytes < unfiltered.shipped_bytes
