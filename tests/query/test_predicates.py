"""Tests for selection-predicate pushdown through the query stack."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.histograms.buckets import BucketSpec
from repro.histograms.histogram import Histogram
from repro.query.catalog import Catalog
from repro.query.engine import execute_plan
from repro.query.optimizer import apply_predicates, optimize
from repro.query.plans import BaseRel, left_deep_plan
from repro.workloads.relations import make_relation

SPEC = BucketSpec.equi_width(1, 100, 10)


class TestHistogramRestrict:
    def test_full_range_is_identity(self):
        histogram = Histogram.from_counts(SPEC, [10.0] * 10)
        assert histogram.restrict(1, 101).counts == histogram.counts

    def test_partial_bucket_scaled(self):
        histogram = Histogram.from_counts(SPEC, [10.0] * 10)
        restricted = histogram.restrict(1, 6)
        assert restricted.counts[0] == pytest.approx(5.0)
        assert sum(restricted.counts[1:]) == 0.0

    def test_disjoint_range_empties(self):
        histogram = Histogram.from_counts(SPEC, [10.0] * 10)
        assert histogram.restrict(500, 600).total == 0.0

    def test_spec_preserved(self):
        histogram = Histogram.from_counts(SPEC, [10.0] * 10)
        assert histogram.restrict(20, 50).spec == SPEC


@pytest.fixture(scope="module")
def workload():
    relations = {
        name: make_relation(name, size, domain=1000, theta=0.7, seed=i)
        for i, (name, size) in enumerate([("A", 4000), ("B", 8000), ("C", 16000)])
    }
    spec = BucketSpec.equi_width(1, 1000, 20)
    return relations, Catalog.exact(list(relations.values()), spec)


class TestApplyPredicates:
    def test_restricts_named_relation_only(self, workload):
        _, catalog = workload
        derived = apply_predicates(catalog, {"A": (1, 100)})
        assert derived.entry("A").cardinality < catalog.entry("A").cardinality
        assert derived.entry("B").cardinality == catalog.entry("B").cardinality

    def test_none_is_identity(self, workload):
        _, catalog = workload
        assert apply_predicates(catalog, None) is catalog

    def test_empty_range_rejected(self, workload):
        _, catalog = workload
        with pytest.raises(QueryError):
            apply_predicates(catalog, {"A": (50, 50)})

    def test_original_catalog_untouched(self, workload):
        _, catalog = workload
        before = catalog.entry("A").cardinality
        apply_predicates(catalog, {"A": (1, 10)})
        assert catalog.entry("A").cardinality == before


class TestEngineWithPredicates:
    def test_filter_reduces_rows(self, workload):
        relations, _ = workload
        full = execute_plan(BaseRel("C"), relations)
        filtered = execute_plan(BaseRel("C"), relations, predicates={"C": (1, 50)})
        truth = int(((relations["C"].values >= 1) & (relations["C"].values < 50)).sum())
        assert filtered.rows == truth < full.rows

    def test_filter_reduces_shipping(self, workload):
        relations, _ = workload
        plan = left_deep_plan(["A", "C"])
        full = execute_plan(plan, relations)
        filtered = execute_plan(plan, relations, predicates={"C": (1, 50)})
        assert filtered.shipped_bytes < full.shipped_bytes

    def test_join_respects_filter_semantics(self, workload):
        relations, _ = workload
        result = execute_plan(
            left_deep_plan(["A", "B"]), relations, predicates={"A": (1, 100)}
        )
        a = relations["A"].values
        a_filtered = a[(a >= 1) & (a < 100)]
        from repro.query.join import true_join_size

        assert result.rows == true_join_size(
            [a_filtered, relations["B"].values], domain=1000
        )


class TestOptimizerWithPredicates:
    def test_estimates_shrink(self, workload):
        _, catalog = workload
        unfiltered = optimize(catalog, ["A", "B", "C"])
        filtered = optimize(catalog, ["A", "B", "C"], predicates={"C": (1, 30)})
        assert filtered.estimated_rows < unfiltered.estimated_rows
        assert filtered.estimated_cost_bytes < unfiltered.estimated_cost_bytes

    def test_predicate_can_change_plan_choice(self, workload):
        """Filtering the biggest relation hard makes it cheap to join
        early; the chosen tree must reflect the filtered statistics."""
        relations, catalog = workload
        predicates = {"C": (900, 1000)}  # keeps only the sparse tail of C
        plan = optimize(catalog, ["A", "B", "C"], predicates=predicates)
        executed = execute_plan(plan.root, relations, predicates=predicates)
        # Compare against every left-deep alternative under the same
        # predicate: the chosen plan must be (near-)optimal in reality.
        from itertools import permutations

        best = min(
            execute_plan(
                left_deep_plan(list(order)), relations, predicates=predicates
            ).shipped_bytes
            for order in permutations(["A", "B", "C"])
        )
        assert executed.shipped_bytes <= best * 1.01


class TestCostOfPlanWithPredicates:
    def test_predicates_shrink_plan_cost(self, workload):
        from repro.query.optimizer import cost_of_plan

        _, catalog = workload
        plan = left_deep_plan(["A", "B", "C"])
        full = cost_of_plan(catalog, plan)
        filtered = cost_of_plan(catalog, plan, predicates={"C": (1, 30)})
        assert filtered.estimated_cost_bytes < full.estimated_cost_bytes
