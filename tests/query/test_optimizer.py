"""Tests for plan representation, DP optimizer, and the engine."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.histograms.buckets import BucketSpec
from repro.query.catalog import Catalog
from repro.query.engine import execute_plan
from repro.query.optimizer import cost_of_plan, optimize
from repro.query.plans import BaseRel, JoinNode, left_deep_plan, leaves
from repro.workloads.relations import make_relation

SPEC = BucketSpec.equi_width(1, 1000, 20)


@pytest.fixture(scope="module")
def workload():
    relations = {
        name: make_relation(name, size, domain=1000, theta=0.7, seed=i)
        for i, (name, size) in enumerate(
            [("Q", 3000), ("R", 6000), ("S", 12000), ("T", 24000)]
        )
    }
    catalog = Catalog.exact(list(relations.values()), SPEC)
    return relations, catalog


class TestPlans:
    def test_left_deep_shape(self):
        plan = left_deep_plan(["A", "B", "C"])
        assert isinstance(plan, JoinNode)
        assert leaves(plan) == ["A", "B", "C"]
        assert isinstance(plan.left, JoinNode)
        assert isinstance(plan.right, BaseRel)

    def test_left_deep_single(self):
        assert left_deep_plan(["A"]) == BaseRel("A")

    def test_left_deep_empty_rejected(self):
        with pytest.raises(ValueError):
            left_deep_plan([])

    def test_describe(self, workload):
        _, catalog = workload
        plan = cost_of_plan(catalog, left_deep_plan(["Q", "R"]))
        assert plan.describe() == "(Q ⋈ R)"


class TestOptimizer:
    def test_optimal_covers_all_relations(self, workload):
        _, catalog = workload
        plan = optimize(catalog, ["Q", "R", "S"])
        assert sorted(plan.relation_order()) == ["Q", "R", "S"]

    def test_optimal_no_worse_than_any_left_deep(self, workload):
        """DP must beat (or match) every left-deep enumeration."""
        from itertools import permutations

        _, catalog = workload
        names = ["Q", "R", "S", "T"]
        best = optimize(catalog, names)
        for order in permutations(names):
            candidate = cost_of_plan(catalog, left_deep_plan(list(order)))
            assert best.estimated_cost_bytes <= candidate.estimated_cost_bytes + 1e-6

    def test_single_relation_plan_free(self, workload):
        _, catalog = workload
        plan = optimize(catalog, ["Q"])
        assert plan.estimated_cost_bytes == 0.0
        assert plan.root == BaseRel("Q")

    def test_two_relations_cost_is_input_shipping(self, workload):
        _, catalog = workload
        plan = optimize(catalog, ["Q", "R"])
        expected = (
            catalog.entry("Q").bytes + catalog.entry("R").bytes
        )
        assert plan.estimated_cost_bytes == pytest.approx(expected)

    def test_validation(self, workload):
        _, catalog = workload
        with pytest.raises(QueryError):
            optimize(catalog, [])
        with pytest.raises(QueryError):
            optimize(catalog, ["Q", "Q"])
        with pytest.raises(QueryError):
            optimize(catalog, ["Q", "NOPE"])

    def test_cost_of_plan_rejects_self_join(self, workload):
        _, catalog = workload
        with pytest.raises(QueryError):
            cost_of_plan(catalog, JoinNode(BaseRel("Q"), BaseRel("Q")))


class TestEngine:
    def test_execution_rows_match_true_join(self, workload):
        relations, _ = workload
        from repro.query.join import true_join_size

        result = execute_plan(left_deep_plan(["Q", "R"]), relations)
        truth = true_join_size(
            [relations["Q"].values, relations["R"].values], domain=1000
        )
        assert result.rows == truth

    def test_rows_independent_of_join_order(self, workload):
        relations, _ = workload
        a = execute_plan(left_deep_plan(["Q", "R", "S"]), relations)
        b = execute_plan(left_deep_plan(["S", "Q", "R"]), relations)
        assert a.rows == b.rows

    def test_shipping_depends_on_order(self, workload):
        relations, _ = workload
        good = execute_plan(left_deep_plan(["Q", "R", "T"]), relations)
        bad = execute_plan(left_deep_plan(["T", "R", "Q"]), relations)
        assert good.shipped_bytes != bad.shipped_bytes

    def test_base_relation_ships_nothing(self, workload):
        relations, _ = workload
        result = execute_plan(BaseRel("Q"), relations)
        assert result.shipped_bytes == 0.0
        assert result.rows == relations["Q"].size

    def test_per_join_breakdown_sums(self, workload):
        relations, _ = workload
        result = execute_plan(left_deep_plan(["Q", "R", "S"]), relations)
        assert sum(result.per_join_shipped) == pytest.approx(result.shipped_bytes)

    def test_unknown_relation_rejected(self, workload):
        relations, _ = workload
        with pytest.raises(QueryError):
            execute_plan(BaseRel("NOPE"), relations)


class TestOptimizerBeatsNaive:
    def test_histogram_plan_beats_worst_order_in_reality(self, workload):
        """The paper's selling point: the optimizer's choice (made from
        histograms only) transfers fewer *actual* bytes than the naive
        largest-first order."""
        relations, catalog = workload
        names = ["Q", "R", "S", "T"]
        chosen = optimize(catalog, names)
        actual_chosen = execute_plan(chosen.root, relations)
        naive = left_deep_plan(["T", "S", "R", "Q"])  # largest first
        actual_naive = execute_plan(naive, relations)
        assert actual_chosen.shipped_bytes < actual_naive.shipped_bytes


class TestCatalog:
    def test_exact_catalog_entries(self, workload):
        relations, catalog = workload
        entry = catalog.entry("Q")
        assert entry.cardinality == relations["Q"].size
        assert entry.bytes == relations["Q"].size * 1024

    def test_contains(self, workload):
        _, catalog = workload
        assert "Q" in catalog
        assert "X" not in catalog

    def test_unknown_entry_raises(self, workload):
        _, catalog = workload
        with pytest.raises(QueryError):
            catalog.entry("X")
