"""Tests for estimator constants."""

import math

import pytest

from repro.sketches.constants import (
    PCSA_PHI,
    SLL_THETA0,
    hll_alpha,
    loglog_alpha,
    pcsa_bias_factor,
    sll_alpha_tilde,
    sll_truncated_count,
)


class TestPCSAConstants:
    def test_phi_value(self):
        assert PCSA_PHI == pytest.approx(0.77351)

    def test_bias_factor_shrinks_with_m(self):
        assert pcsa_bias_factor(1) == pytest.approx(1.31)
        assert pcsa_bias_factor(64) == pytest.approx(1 + 0.31 / 64)
        assert pcsa_bias_factor(10**6) == pytest.approx(1.0, abs=1e-5)

    def test_bias_factor_rejects_bad_m(self):
        with pytest.raises(ValueError):
            pcsa_bias_factor(0)


class TestLogLogAlpha:
    def test_asymptotic_value(self):
        # DF03: alpha_m -> ~0.39701 as m -> infinity.
        assert loglog_alpha(2**16) == pytest.approx(0.39701, rel=1e-3)

    def test_monotone_increasing_in_m(self):
        # alpha_m climbs toward the 0.39701 asymptote from below.
        values = [loglog_alpha(1 << c) for c in range(2, 14)]
        assert all(a < b for a, b in zip(values, values[1:]))
        assert all(v < 0.39701 for v in values)

    def test_known_m16(self):
        # Closed form evaluated independently: alpha_16 = 0.376033.
        assert loglog_alpha(16) == pytest.approx(0.376033, rel=1e-4)

    def test_positive_for_all_m(self):
        for m in (2, 3, 5, 100, 4096):
            assert loglog_alpha(m) > 0

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            loglog_alpha(0)


class TestSLLConstants:
    def test_theta0(self):
        assert SLL_THETA0 == pytest.approx(0.7)

    def test_truncated_count(self):
        assert sll_truncated_count(512) == 358
        assert sll_truncated_count(1) == 1
        assert sll_truncated_count(10) == 7

    def test_truncated_count_rejects_bad_m(self):
        with pytest.raises(ValueError):
            sll_truncated_count(0)

    def test_alpha_tilde_table_entries(self):
        assert sll_alpha_tilde(512) == pytest.approx(1.0954, rel=1e-3)
        assert sll_alpha_tilde(128) == pytest.approx(1.1034, rel=1e-3)

    def test_alpha_tilde_interpolation_between_powers(self):
        lower, upper = sll_alpha_tilde(256), sll_alpha_tilde(512)
        mid = sll_alpha_tilde(384)
        assert min(lower, upper) <= mid <= max(lower, upper)

    def test_alpha_tilde_beyond_table_uses_asymptote(self):
        assert sll_alpha_tilde(1 << 20) == pytest.approx(1.0915, rel=1e-3)

    def test_alpha_tilde_stable_for_large_m(self):
        # The converged region should be flat to within ~1%.
        values = [sll_alpha_tilde(1 << c) for c in range(8, 15)]
        assert max(values) / min(values) < 1.01

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            sll_alpha_tilde(0)


class TestHLLAlpha:
    def test_standard_values(self):
        assert hll_alpha(16) == pytest.approx(0.673)
        assert hll_alpha(32) == pytest.approx(0.697)
        assert hll_alpha(64) == pytest.approx(0.709)
        assert hll_alpha(128) == pytest.approx(0.7213 / (1 + 1.079 / 128))

    def test_asymptote(self):
        assert hll_alpha(1 << 20) == pytest.approx(0.7213, rel=1e-3)

    def test_monotone_above_64(self):
        assert hll_alpha(128) < hll_alpha(256) < hll_alpha(1024) < 0.7213


class TestCrossEstimatorSanity:
    def test_sll_alpha_larger_than_loglog(self):
        # Truncation discards the largest registers, so the correction
        # constant must be above the untruncated alpha.
        for c in range(5, 13):
            assert sll_alpha_tilde(1 << c) > loglog_alpha(1 << c)

    def test_all_constants_finite(self):
        for m in (16, 64, 512, 4096):
            for value in (loglog_alpha(m), sll_alpha_tilde(m), hll_alpha(m)):
                assert math.isfinite(value)
