"""Tests for the HashSketch base machinery: key splitting, config, merging."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, IncompatibleSketchError
from repro.hashing.bits import rho
from repro.hashing.family import MD4Hash, MixerHash
from repro.sketches import (
    HyperLogLogSketch,
    LogLogSketch,
    PCSASketch,
    SKETCH_TYPES,
    SuperLogLogSketch,
    required_key_bits,
    split_key,
)

ALL_SKETCHES = [PCSASketch, LogLogSketch, SuperLogLogSketch, HyperLogLogSketch]


@pytest.fixture(params=ALL_SKETCHES)
def sketch_cls(request):
    return request.param


class TestSplitKey:
    def test_single_bucket(self):
        # m=1: vector always 0, position = rho of the whole key.
        vector, position = split_key(0b1011000, m=1, key_bits=24)
        assert vector == 0
        assert position == 3

    def test_vector_uses_low_bits(self):
        vector, _ = split_key(0b110101, m=4, key_bits=24)
        assert vector == 0b01

    def test_position_uses_remaining_bits(self):
        # key = 0b110100 with m=4: low 2 bits -> vector 0, remaining
        # 0b1101 -> rho = 0.
        vector, position = split_key(0b110100, m=4, key_bits=24)
        assert vector == 0
        assert position == 0

    def test_zero_suffix_convention(self):
        # Remaining bits all zero => position == key_bits - c.
        vector, position = split_key(0b11, m=4, key_bits=24)
        assert vector == 3
        assert position == 22

    def test_truncates_to_key_bits(self):
        a = split_key(0xDEADBEEF, m=8, key_bits=16)
        b = split_key(0xDEADBEEF & 0xFFFF, m=8, key_bits=16)
        assert a == b

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_consistent_with_manual_split(self, key):
        m, k = 16, 32
        vector, position = split_key(key, m, k)
        truncated = key & (2**k - 1)
        assert vector == truncated % m
        assert position == rho(truncated // m, k - 4)


class TestRequiredKeyBits:
    def test_paper_example_magnitude(self):
        # Counting up to 2^24 items with one bitmap needs ~27 bits.
        assert required_key_bits(2**24, m=1) == 27

    def test_grows_with_cardinality(self):
        assert required_key_bits(10**6, 64) < required_key_bits(10**9, 64)

    def test_accounts_for_bucket_split(self):
        # More buckets -> fewer items each -> fewer position bits, but the
        # c selector bits are added back.
        assert required_key_bits(2**20, m=1) == 23
        assert required_key_bits(2**20, m=1024) == 10 + 13

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            required_key_bits(0, 16)
        with pytest.raises(ConfigurationError):
            required_key_bits(100, 3)


class TestConfiguration:
    def test_m_must_be_power_of_two(self, sketch_cls):
        with pytest.raises(ConfigurationError):
            sketch_cls(m=3)

    def test_m_must_be_positive(self, sketch_cls):
        with pytest.raises(ConfigurationError):
            sketch_cls(m=0)

    def test_key_bits_must_exceed_selector(self, sketch_cls):
        with pytest.raises(ConfigurationError):
            sketch_cls(m=256, key_bits=8)

    def test_position_bits(self, sketch_cls):
        sketch = sketch_cls(m=256, key_bits=24)
        assert sketch.position_bits == 16

    def test_default_hash_family(self, sketch_cls):
        assert isinstance(sketch_cls(m=16).hash_family, MixerHash)


class TestMergeCompatibility:
    def test_different_m_rejected(self, sketch_cls):
        with pytest.raises(IncompatibleSketchError):
            sketch_cls(m=16).merge(sketch_cls(m=32))

    def test_different_key_bits_rejected(self, sketch_cls):
        with pytest.raises(IncompatibleSketchError):
            sketch_cls(m=16, key_bits=32).merge(sketch_cls(m=16, key_bits=24))

    def test_different_hash_family_rejected(self, sketch_cls):
        a = sketch_cls(m=16, hash_family=MixerHash(seed=1))
        b = sketch_cls(m=16, hash_family=MixerHash(seed=2))
        with pytest.raises(IncompatibleSketchError):
            a.merge(b)

    def test_md4_vs_mixer_rejected(self, sketch_cls):
        a = sketch_cls(m=16, hash_family=MixerHash())
        b = sketch_cls(m=16, hash_family=MD4Hash())
        with pytest.raises(IncompatibleSketchError):
            a.merge(b)

    def test_cross_type_rejected(self):
        with pytest.raises(IncompatibleSketchError):
            PCSASketch(m=16).merge(LogLogSketch(m=16))

    def test_loglog_subclasses_not_interchangeable(self):
        with pytest.raises(IncompatibleSketchError):
            LogLogSketch(m=16).merge(SuperLogLogSketch(m=16))


class TestRegistry:
    def test_all_types_registered(self):
        assert set(SKETCH_TYPES) == {"pcsa", "loglog", "sll", "hll"}

    def test_registry_constructs(self):
        for cls in SKETCH_TYPES.values():
            assert cls(m=16).is_empty()


class TestObservation:
    def test_observation_matches_add(self, sketch_cls):
        sketch = sketch_cls(m=16)
        vector, position = sketch.observation("item-9")
        sketch.add("item-9")
        clone = sketch_cls(m=16)
        clone.record(vector, position)
        if hasattr(sketch, "registers"):
            assert sketch.registers() == clone.registers()
        else:
            assert sketch.bitmaps() == clone.bitmaps()

    def test_record_rejects_bad_vector(self, sketch_cls):
        sketch = sketch_cls(m=16)
        with pytest.raises(ValueError):
            sketch.record(16, 0)
        with pytest.raises(ValueError):
            sketch.record(-1, 0)
