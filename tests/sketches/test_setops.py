"""Tests for set-expression estimates (union/intersection/difference)."""

import pytest

from repro.errors import IncompatibleSketchError
from repro.hashing.family import MixerHash
from repro.sketches import PCSASketch, SuperLogLogSketch
from repro.sketches.setops import (
    estimate_difference,
    estimate_intersection,
    intersection_error_bound,
    jaccard_estimate,
)


def make_pair(cls=SuperLogLogSketch, m=1024, seed=2, a_range=(0, 30_000), b_range=(20_000, 50_000)):
    a = cls(m=m, hash_family=MixerHash(seed=seed))
    b = cls(m=m, hash_family=MixerHash(seed=seed))
    a.add_all(range(*a_range))
    b.add_all(range(*b_range))
    return a, b


class TestIntersection:
    def test_overlapping_sets(self):
        a, b = make_pair()
        truth = 10_000  # [20k, 30k)
        estimate = estimate_intersection(a, b)
        assert estimate == pytest.approx(truth, rel=0.5)

    def test_disjoint_sets_near_zero(self):
        a, b = make_pair(a_range=(0, 20_000), b_range=(50_000, 70_000))
        estimate = estimate_intersection(a, b)
        assert estimate < 5_000  # within noise of zero

    def test_identical_sets(self):
        a, b = make_pair(a_range=(0, 25_000), b_range=(0, 25_000))
        assert estimate_intersection(a, b) == pytest.approx(25_000, rel=0.2)

    def test_clamped_nonnegative(self):
        a, b = make_pair(m=16, a_range=(0, 100), b_range=(1_000, 1_100))
        assert estimate_intersection(a, b) >= 0.0

    def test_incompatible_rejected(self):
        a = SuperLogLogSketch(m=16)
        b = SuperLogLogSketch(m=32)
        with pytest.raises(IncompatibleSketchError):
            estimate_intersection(a, b)

    def test_works_for_pcsa_too(self):
        a, b = make_pair(cls=PCSASketch)
        assert estimate_intersection(a, b) == pytest.approx(10_000, rel=0.6)


class TestDifference:
    def test_proper_subset(self):
        a, b = make_pair(a_range=(0, 30_000), b_range=(0, 10_000))
        # A \ B should be ~20k; B \ A ~0.
        assert estimate_difference(a, b) == pytest.approx(20_000, rel=0.5)
        assert estimate_difference(b, a) < 6_000


class TestJaccard:
    def test_range(self):
        a, b = make_pair()
        assert 0.0 <= jaccard_estimate(a, b) <= 1.0

    def test_identical_sets_near_one(self):
        a, b = make_pair(a_range=(0, 25_000), b_range=(0, 25_000))
        assert jaccard_estimate(a, b) > 0.8

    def test_empty_sketches(self):
        a = SuperLogLogSketch(m=16)
        b = SuperLogLogSketch(m=16)
        assert jaccard_estimate(a, b) == 0.0

    def test_ordering_tracks_similarity(self):
        similar = make_pair(a_range=(0, 30_000), b_range=(5_000, 35_000))
        dissimilar = make_pair(a_range=(0, 30_000), b_range=(28_000, 58_000))
        assert jaccard_estimate(*similar) > jaccard_estimate(*dissimilar)


class TestErrorBound:
    def test_scales_with_operand_sizes(self):
        small = make_pair(a_range=(0, 1_000), b_range=(500, 1_500))
        large = make_pair(a_range=(0, 100_000), b_range=(50_000, 150_000))
        assert intersection_error_bound(*large) > intersection_error_bound(*small)

    def test_mixed_estimators_rejected(self):
        a = SuperLogLogSketch(m=16)
        b = PCSASketch(m=16)
        with pytest.raises(IncompatibleSketchError):
            intersection_error_bound(a, b)


class TestDHSSetOps:
    def test_union_and_intersection_over_dhs(self):
        from repro.core.config import DHSConfig
        from repro.core.dhs import DistributedHashSketch
        from repro.overlay.chord import ChordRing

        ring = ChordRing.build(64, bits=32, seed=8)
        dhs = DistributedHashSketch(
            ring, DHSConfig(key_bits=16, num_bitmaps=16, lim=70), seed=5
        )
        node_ids = list(ring.node_ids())
        for i in range(3_000):
            dhs.insert("A", i, origin=node_ids[i % 64])
        for i in range(2_000, 5_000):
            dhs.insert("B", i, origin=node_ids[i % 64])
        union = dhs.count_union(["A", "B"])
        intersection = dhs.count_intersection("A", "B")
        assert union == pytest.approx(5_000, rel=0.5)
        assert intersection < union
