"""Hypothesis property tests for sketches/merge.py and sketches/setops.py.

The example-based coverage in test_setops.py pins specific values; these
tests pin the *algebra*: ``union_all`` is commutative, associative, and
idempotent over sketch state, and every set-expression estimate is
invariant under the order its operands are presented in.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SketchError
from repro.sketches import (
    HyperLogLogSketch,
    LogLogSketch,
    PCSASketch,
    SuperLogLogSketch,
)
from repro.sketches.merge import estimate_union, union_all
from repro.sketches.setops import (
    estimate_difference,
    estimate_intersection,
    intersection_error_bound,
    jaccard_estimate,
)
from repro.hashing.family import MixerHash

ALL_SKETCHES = [PCSASketch, LogLogSketch, SuperLogLogSketch, HyperLogLogSketch]

items_strategy = st.lists(st.integers(min_value=0, max_value=10**9), max_size=150)
sketch_cls_strategy = st.sampled_from(ALL_SKETCHES)


def build(cls, items, m=16):
    sketch = cls(m=m, hash_family=MixerHash(bits=64, seed=5))
    sketch.add_all(items)
    return sketch


def state_of(sketch):
    return sketch.registers() if hasattr(sketch, "registers") else sketch.bitmaps()


class TestUnionAllAlgebra:
    @given(sketch_cls_strategy, st.permutations(range(4)), st.data())
    @settings(max_examples=40, deadline=None)
    def test_commutative(self, cls, order, data):
        item_lists = [
            data.draw(items_strategy, label=f"items[{i}]") for i in range(4)
        ]
        sketches = [build(cls, items) for items in item_lists]
        reference = union_all(sketches)
        permuted = union_all([sketches[i] for i in order])
        assert state_of(permuted) == state_of(reference)
        assert permuted.estimate() == reference.estimate()

    @given(sketch_cls_strategy, items_strategy, items_strategy, items_strategy)
    @settings(max_examples=40, deadline=None)
    def test_associative(self, cls, a, b, c):
        x, y, z = build(cls, a), build(cls, b), build(cls, c)
        flat = union_all([x, y, z])
        nested = union_all([union_all([x, y]), z])
        assert state_of(flat) == state_of(nested)

    @given(sketch_cls_strategy, items_strategy)
    @settings(max_examples=40, deadline=None)
    def test_idempotent(self, cls, items):
        sketch = build(cls, items)
        doubled = union_all([sketch, sketch, sketch])
        assert state_of(doubled) == state_of(sketch)
        assert doubled.estimate() == sketch.estimate()

    @given(sketch_cls_strategy, items_strategy, items_strategy)
    @settings(max_examples=40, deadline=None)
    def test_does_not_mutate_inputs(self, cls, a, b):
        x, y = build(cls, a), build(cls, b)
        before_x, before_y = state_of(x), state_of(y)
        union_all([x, y])
        assert state_of(x) == before_x
        assert state_of(y) == before_y

    @given(sketch_cls_strategy, st.permutations(range(3)), st.data())
    @settings(max_examples=40, deadline=None)
    def test_estimate_union_permutation_invariant(self, cls, order, data):
        item_lists = [
            data.draw(items_strategy, label=f"items[{i}]") for i in range(3)
        ]
        sketches = [build(cls, items) for items in item_lists]
        reference = estimate_union(sketches)
        assert estimate_union([sketches[i] for i in order]) == reference

    def test_empty_iterable_rejected(self):
        with pytest.raises(SketchError):
            union_all([])


class TestSetOpEstimates:
    @given(sketch_cls_strategy, items_strategy, items_strategy)
    @settings(max_examples=40, deadline=None)
    def test_intersection_symmetric(self, cls, a_items, b_items):
        a, b = build(cls, a_items), build(cls, b_items)
        assert estimate_intersection(a, b) == estimate_intersection(b, a)

    @given(sketch_cls_strategy, items_strategy, items_strategy)
    @settings(max_examples=40, deadline=None)
    def test_intersection_bounded(self, cls, a_items, b_items):
        a, b = build(cls, a_items), build(cls, b_items)
        estimate = estimate_intersection(a, b)
        assert 0.0 <= estimate <= a.estimate() + b.estimate()

    @given(sketch_cls_strategy, items_strategy, items_strategy)
    @settings(max_examples=40, deadline=None)
    def test_difference_bounded_by_operand(self, cls, a_items, b_items):
        a, b = build(cls, a_items), build(cls, b_items)
        estimate = estimate_difference(a, b)
        assert 0.0 <= estimate <= a.estimate()

    @given(sketch_cls_strategy, items_strategy, items_strategy)
    @settings(max_examples=40, deadline=None)
    def test_jaccard_symmetric_and_unit_interval(self, cls, a_items, b_items):
        a, b = build(cls, a_items), build(cls, b_items)
        similarity = jaccard_estimate(a, b)
        assert 0.0 <= similarity <= 1.0
        assert similarity == jaccard_estimate(b, a)

    @given(sketch_cls_strategy, items_strategy)
    @settings(max_examples=40, deadline=None)
    def test_jaccard_of_self_is_one_when_nonempty(self, cls, items):
        sketch = build(cls, items)
        expected = 1.0 if sketch.estimate() > 0 else 0.0
        assert jaccard_estimate(sketch, sketch) == expected

    @given(sketch_cls_strategy, items_strategy, items_strategy)
    @settings(max_examples=40, deadline=None)
    def test_error_bound_symmetric_nonnegative(self, cls, a_items, b_items):
        a, b = build(cls, a_items), build(cls, b_items)
        bound = intersection_error_bound(a, b)
        assert bound >= 0.0
        assert bound == intersection_error_bound(b, a)

    @given(sketch_cls_strategy, items_strategy, items_strategy)
    @settings(max_examples=40, deadline=None)
    def test_inclusion_exclusion_consistent(self, cls, a_items, b_items):
        """|A\\B| + |A∩B| == |A| whenever neither term was clamped at 0."""
        a, b = build(cls, a_items), build(cls, b_items)
        intersection = estimate_intersection(a, b)
        raw_difference = a.estimate() - intersection
        if raw_difference >= 0.0:
            assert estimate_difference(a, b) == pytest.approx(raw_difference)
