"""Tests for the linear counting extension."""

import math

import pytest

from repro.errors import ConfigurationError, EstimationError, IncompatibleSketchError
from repro.hashing.family import MixerHash
from repro.sketches.linear_counting import LinearCounter, linear_counting_estimate


class TestFormula:
    def test_empty_bitmap(self):
        assert linear_counting_estimate(100, 100) == 0.0

    def test_saturated_bitmap(self):
        assert linear_counting_estimate(100, 0) == math.inf

    def test_half_full(self):
        assert linear_counting_estimate(1000, 500) == pytest.approx(1000 * math.log(2))

    def test_invalid_inputs(self):
        with pytest.raises(EstimationError):
            linear_counting_estimate(0, 0)
        with pytest.raises(EstimationError):
            linear_counting_estimate(10, 11)


class TestCounter:
    def test_small_cardinality_accuracy(self):
        counter = LinearCounter(size=1 << 14, hash_family=MixerHash(seed=1))
        counter.add_all(range(500))
        assert counter.estimate() == pytest.approx(500, rel=0.1)

    def test_duplicate_insensitive(self):
        counter = LinearCounter(size=4096)
        for _ in range(10):
            counter.add_all(range(100))
        assert counter.estimate() == pytest.approx(100, rel=0.2)

    def test_set_bits_tracking(self):
        counter = LinearCounter(size=1 << 12)
        assert counter.set_bits == 0
        counter.add("a")
        assert counter.set_bits == 1
        counter.add("a")
        assert counter.set_bits == 1

    def test_is_empty(self):
        counter = LinearCounter(size=64)
        assert counter.is_empty()
        counter.add(1)
        assert not counter.is_empty()

    def test_merge_union_semantics(self):
        a = LinearCounter(size=1 << 13, hash_family=MixerHash(seed=2))
        b = LinearCounter(size=1 << 13, hash_family=MixerHash(seed=2))
        a.add_all(range(0, 300))
        b.add_all(range(200, 500))
        a.merge(b)
        assert a.estimate() == pytest.approx(500, rel=0.15)

    def test_merge_rejects_mismatched(self):
        with pytest.raises(IncompatibleSketchError):
            LinearCounter(size=64).merge(LinearCounter(size=128))

    def test_copy_independent(self):
        a = LinearCounter(size=256)
        a.add_all(range(10))
        b = a.copy()
        b.add_all(range(10, 200))
        assert a.set_bits < b.set_bits

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            LinearCounter(size=0)

    def test_beats_loglog_family_at_tiny_n(self):
        """The reason it exists: better small-range behaviour."""
        from repro.sketches import SuperLogLogSketch

        errors_lc, errors_sll = [], []
        for seed in range(5):
            lc = LinearCounter(size=1 << 12, hash_family=MixerHash(seed=seed))
            sll = SuperLogLogSketch(m=64, hash_family=MixerHash(seed=seed))
            items = range(40)
            lc.add_all(items)
            sll.add_all(items)
            errors_lc.append(abs(lc.estimate() - 40) / 40)
            errors_sll.append(abs(sll.estimate() - 40) / 40)
        assert sum(errors_lc) <= sum(errors_sll)


class TestSerialization:
    def test_round_trip(self):
        counter = LinearCounter(size=1 << 10, hash_family=MixerHash(seed=3))
        counter.add_all(range(200))
        rebuilt = LinearCounter.from_bytes(
            counter.to_bytes(), size=1 << 10, hash_family=MixerHash(seed=3)
        )
        assert rebuilt.set_bits == counter.set_bits
        assert rebuilt.estimate() == counter.estimate()

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            LinearCounter.from_bytes(b"\x00", size=1 << 10)
