"""Behavioural tests shared by all four estimators: duplicate
insensitivity, union semantics, accuracy, serialization."""

import pytest

from repro.hashing.family import MixerHash
from repro.sketches import (
    HyperLogLogSketch,
    LogLogSketch,
    PCSASketch,
    SuperLogLogSketch,
    estimate_union,
    union_all,
)
from repro.errors import SketchError

ALL_SKETCHES = [PCSASketch, LogLogSketch, SuperLogLogSketch, HyperLogLogSketch]


@pytest.fixture(params=ALL_SKETCHES)
def sketch_cls(request):
    return request.param


def make(cls, m=256, seed=0):
    return cls(m=m, hash_family=MixerHash(bits=64, seed=seed))


def state_of(sketch):
    return sketch.registers() if hasattr(sketch, "registers") else sketch.bitmaps()


class TestEmpty:
    def test_empty_estimates_zero(self, sketch_cls):
        assert make(sketch_cls).estimate() == 0.0

    def test_is_empty_flips_on_add(self, sketch_cls):
        sketch = make(sketch_cls)
        assert sketch.is_empty()
        sketch.add("x")
        assert not sketch.is_empty()


class TestDuplicateInsensitivity:
    def test_duplicates_do_not_change_state(self, sketch_cls):
        sketch = make(sketch_cls)
        sketch.add_all(f"doc-{i}" for i in range(500))
        before = state_of(sketch)
        sketch.add_all(f"doc-{i}" for i in range(500))
        assert state_of(sketch) == before

    def test_heavy_multiset(self, sketch_cls):
        """1000 copies of 50 items must estimate ~50, not ~50000."""
        sketch = make(sketch_cls, m=16)
        for _ in range(1000):
            sketch.add_all(range(50))
        assert sketch.estimate() < 500


class TestUnionSemantics:
    def test_union_equals_sketch_of_union(self, sketch_cls):
        a, b = make(sketch_cls), make(sketch_cls)
        both = make(sketch_cls)
        a.add_all(range(0, 600))
        b.add_all(range(400, 1000))
        both.add_all(range(0, 1000))
        assert state_of(a.union(b)) == state_of(both)

    def test_union_is_commutative(self, sketch_cls):
        a, b = make(sketch_cls), make(sketch_cls)
        a.add_all(range(100))
        b.add_all(range(50, 200))
        assert state_of(a.union(b)) == state_of(b.union(a))

    def test_union_is_idempotent(self, sketch_cls):
        a = make(sketch_cls)
        a.add_all(range(300))
        assert state_of(a.union(a)) == state_of(a)

    def test_union_leaves_inputs_unchanged(self, sketch_cls):
        a, b = make(sketch_cls), make(sketch_cls)
        a.add_all(range(100))
        b.add_all(range(100, 200))
        before_a, before_b = state_of(a), state_of(b)
        a.union(b)
        assert state_of(a) == before_a
        assert state_of(b) == before_b

    def test_merge_mutates_receiver(self, sketch_cls):
        a, b = make(sketch_cls), make(sketch_cls)
        b.add_all(range(100))
        a.merge(b)
        assert state_of(a) == state_of(b)

    def test_union_all_many_shards(self, sketch_cls):
        shards = []
        for node in range(10):
            shard = make(sketch_cls)
            shard.add_all(range(node * 100, node * 100 + 150))  # overlapping
            shards.append(shard)
        whole = make(sketch_cls)
        whole.add_all(range(0, 1050))
        assert state_of(union_all(shards)) == state_of(whole)

    def test_union_all_empty_input_raises(self):
        with pytest.raises(SketchError):
            union_all([])

    def test_estimate_union_close_to_truth(self, sketch_cls):
        shards = []
        for node in range(4):
            shard = make(sketch_cls)
            shard.add_all(f"it-{i}" for i in range(node * 2000, node * 2000 + 3000))
            shards.append(shard)
        truth = 9000  # ranges overlap by 1000 each
        assert estimate_union(shards) == pytest.approx(truth, rel=0.25)


class TestCopy:
    def test_copy_is_deep(self, sketch_cls):
        a = make(sketch_cls)
        a.add_all(range(50))
        b = a.copy()
        b.add_all(range(50, 5000))
        assert state_of(a) != state_of(b)

    def test_copy_preserves_estimate(self, sketch_cls):
        a = make(sketch_cls)
        a.add_all(range(1234))
        assert a.copy().estimate() == a.estimate()


class TestAccuracy:
    """Estimates should land within a few theoretical standard errors."""

    @pytest.mark.parametrize("n", [1_000, 20_000, 100_000])
    def test_single_run_within_5_sigma(self, sketch_cls, n):
        sketch = make(sketch_cls, m=256, seed=42)
        sketch.add_all(range(n))
        sigma = sketch_cls.expected_std_error(256)
        assert sketch.estimate() == pytest.approx(n, rel=5 * sigma + 0.02)

    def test_mean_error_small_across_seeds(self, sketch_cls):
        n, m, trials = 30_000, 128, 6
        total = 0.0
        for seed in range(trials):
            sketch = make(sketch_cls, m=m, seed=seed)
            sketch.add_all(range(n))
            total += sketch.estimate() / n
        mean = total / trials
        sigma = sketch_cls.expected_std_error(m) / trials**0.5
        assert abs(mean - 1) < 5 * sigma + 0.02

    def test_accuracy_improves_with_m(self, sketch_cls):
        """Averaged over seeds, m=1024 must beat m=16."""
        n, trials = 50_000, 5

        def mean_abs_err(m):
            errors = []
            for seed in range(trials):
                sketch = make(sketch_cls, m=m, seed=seed + 100)
                sketch.add_all(range(n))
                errors.append(abs(sketch.estimate() / n - 1))
            return sum(errors) / trials

        assert mean_abs_err(1024) < mean_abs_err(16)

    def test_string_items(self, sketch_cls):
        sketch = make(sketch_cls, m=256, seed=7)
        sketch.add_all(f"url:/doc/{i}" for i in range(25_000))
        assert sketch.estimate() == pytest.approx(25_000, rel=0.3)


class TestSerialization:
    def test_round_trip(self, sketch_cls):
        sketch = make(sketch_cls, m=64)
        sketch.add_all(range(5_000))
        data = sketch.to_bytes()
        rebuilt = sketch_cls.from_bytes(
            data, m=64, key_bits=64, hash_family=MixerHash(bits=64, seed=0)
        )
        assert state_of(rebuilt) == state_of(sketch)
        assert rebuilt.estimate() == sketch.estimate()

    def test_wrong_length_rejected(self, sketch_cls):
        with pytest.raises(ValueError):
            sketch_cls.from_bytes(b"\x00", m=64)

    def test_serialized_size_reflects_family(self):
        """LogLog-family state must be smaller than PCSA's (log log vs log)."""
        pcsa, sll = make(PCSASketch, m=64), make(SuperLogLogSketch, m=64)
        pcsa.add_all(range(1000))
        sll.add_all(range(1000))
        assert len(sll.to_bytes()) < len(pcsa.to_bytes())
