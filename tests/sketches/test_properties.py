"""Hypothesis property tests on sketch invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.family import MixerHash
from repro.sketches import (
    HyperLogLogSketch,
    LogLogSketch,
    PCSASketch,
    SuperLogLogSketch,
)

ALL_SKETCHES = [PCSASketch, LogLogSketch, SuperLogLogSketch, HyperLogLogSketch]

items_strategy = st.lists(st.integers(min_value=0, max_value=10**9), max_size=200)
sketch_cls_strategy = st.sampled_from(ALL_SKETCHES)


def build(cls, items, m=16):
    sketch = cls(m=m, hash_family=MixerHash(bits=64, seed=5))
    sketch.add_all(items)
    return sketch


def state_of(sketch):
    return sketch.registers() if hasattr(sketch, "registers") else sketch.bitmaps()


@given(sketch_cls_strategy, items_strategy)
@settings(max_examples=60, deadline=None)
def test_insertion_order_irrelevant(cls, items):
    forward = build(cls, items)
    backward = build(cls, list(reversed(items)))
    assert state_of(forward) == state_of(backward)


@given(sketch_cls_strategy, items_strategy, items_strategy)
@settings(max_examples=60, deadline=None)
def test_merge_equals_concatenation(cls, a_items, b_items):
    merged = build(cls, a_items).union(build(cls, b_items))
    direct = build(cls, a_items + b_items)
    assert state_of(merged) == state_of(direct)


@given(sketch_cls_strategy, items_strategy, items_strategy, items_strategy)
@settings(max_examples=40, deadline=None)
def test_union_associative(cls, a, b, c):
    left = build(cls, a).union(build(cls, b)).union(build(cls, c))
    right = build(cls, a).union(build(cls, b).union(build(cls, c)))
    assert state_of(left) == state_of(right)


@given(sketch_cls_strategy, items_strategy, items_strategy)
@settings(max_examples=60, deadline=None)
def test_estimate_monotone_under_union(cls, a_items, b_items):
    """Adding more state never decreases a LogLog/PCSA estimate...

    ...except through the HLL small-range switch, which is only monotone
    in expectation; we therefore check the per-bucket state, which is
    strictly monotone for every estimator.
    """
    base = build(cls, a_items)
    grown = base.union(build(cls, b_items))
    for lhs, rhs in zip(state_of(base), state_of(grown)):
        if hasattr(base, "registers"):
            assert rhs >= lhs
        else:
            assert rhs & lhs == lhs  # bitmap only gains bits


@given(sketch_cls_strategy, items_strategy)
@settings(max_examples=60, deadline=None)
def test_duplication_invariance(cls, items):
    once = build(cls, items)
    thrice = build(cls, items * 3)
    assert state_of(once) == state_of(thrice)


@given(sketch_cls_strategy, items_strategy)
@settings(max_examples=40, deadline=None)
def test_serialization_round_trip(cls, items):
    sketch = build(cls, items)
    rebuilt = cls.from_bytes(
        sketch.to_bytes(), m=16, key_bits=64, hash_family=MixerHash(bits=64, seed=5)
    )
    assert state_of(rebuilt) == state_of(sketch)


@given(sketch_cls_strategy, items_strategy)
@settings(max_examples=60, deadline=None)
def test_estimate_nonnegative_and_finite(cls, items):
    estimate = build(cls, items).estimate()
    assert estimate >= 0.0
    assert estimate != float("inf")
