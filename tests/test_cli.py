"""Tests for the experiment CLI."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCatalogue:
    def test_every_table_and_figure_registered(self):
        expected = {
            "insertion",
            "table2",
            "table3",
            "scalability",
            "accuracy",
            "histogram-accuracy",
            "histogram-types",
            "query-opt",
            "baselines",
            "multidim",
            "multitenant",
            "churn",
            "robustness",
            "faultmatrix",
            "soak",
            "ablations",
            "trace",
        }
        assert set(EXPERIMENTS) == expected

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out


class TestExecution:
    def test_runs_small_experiment(self, capsys):
        # multidim is the cheapest registered experiment; run it for real.
        assert main(["multidim", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Multi-dimension" in out

    def test_scale_and_nodes_flags(self, capsys):
        assert main(["table2", "--seed", "3", "--scale", "0.0005", "--nodes", "32"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "0.0005" in out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["table9"])

    def test_query_opt_command(self, capsys):
        assert main(["query-opt", "--seed", "3", "--scale", "0.0002", "--nodes", "32"]) == 0
        assert "Query optimization" in capsys.readouterr().out


class TestOutputOption:
    def test_reports_written_to_directory(self, tmp_path, capsys):
        assert main(
            ["multidim", "--seed", "3", "--output", str(tmp_path / "reports")]
        ) == 0
        saved = tmp_path / "reports" / "multidim.txt"
        assert saved.exists()
        assert "Multi-dimension" in saved.read_text()
