"""Tests for the whole-program dataflow passes (DHS8xx) and their plumbing.

Fixture trees are miniature ``repro`` packages; each pass gets a seeded
defect it must catch (an RNG leak crossing modules, an out-of-API store
write, an impure merge function, ...) and a clean twin it must not flag.
Waiver handling, the result cache, and statement-span suppression
anchoring are covered at the same level.
"""

from __future__ import annotations

import datetime
import json
import sys
import textwrap
from pathlib import Path
from typing import Dict, List

import pytest

from tools.analyze import Config, analyze_file, analyze_paths
from tools.analyze.cache import AnalysisCache
from tools.analyze.engine import Violation
from tools.analyze.waivers import load_waivers


def make_package(root: Path, files: Dict[str, str]) -> Path:
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        for ancestor in path.relative_to(root).parents:
            if str(ancestor) != ".":
                (root / ancestor / "__init__.py").touch()
        path.write_text(textwrap.dedent(body))
    return root / "repro"


def dataflow_codes(tmp_path: Path, files: Dict[str, str], **kwargs) -> List[str]:
    pkg = make_package(tmp_path, files)
    report = analyze_paths([pkg], Config(), dataflow=True, **kwargs)
    assert not report.errors, report.errors
    return [v.code for v in report.violations]


# ----------------------------------------------------------------------
# RNG-taint (DHS801–DHS803)
# ----------------------------------------------------------------------
class TestRngTaint:
    def test_cross_module_rng_leak(self, tmp_path):
        codes = dataflow_codes(
            tmp_path,
            {
                "repro/sim/entropy.py": """
                    import random

                    def make_rng():
                        return random.Random()
                    """,
                "repro/experiments/driver.py": """
                    from repro.sim.entropy import make_rng

                    def run():
                        rng = make_rng()
                        return rng.random()
                    """,
            },
        )
        # The construction is flagged where it happens AND where it leaks
        # across the module boundary.
        assert "DHS801" in codes
        assert "DHS802" in codes

    def test_unblessed_literal_seed_flagged(self, tmp_path):
        codes = dataflow_codes(
            tmp_path,
            {
                "repro/sim/bad.py": """
                    import random

                    def make():
                        return random.Random(1234)
                    """,
            },
        )
        assert "DHS801" in codes

    def test_seed_derived_constructions_clean(self, tmp_path):
        codes = dataflow_codes(
            tmp_path,
            {
                "repro/sim/good.py": """
                    import random
                    from repro.sim.seeds import derive_seed

                    def make(seed):
                        return random.Random(derive_seed(seed, "sub"))

                    def make_from_param(worker_seed):
                        return random.Random(worker_seed % (2 ** 32))
                    """,
            },
        )
        assert [c for c in codes if c.startswith("DHS80")] == []

    def test_seed_passed_to_rng_parameter(self, tmp_path):
        codes = dataflow_codes(
            tmp_path,
            {
                "repro/sim/helper.py": """
                    def draw(rng):
                        return rng.random()
                    """,
                "repro/experiments/use.py": """
                    from repro.sim.helper import draw

                    def run(seed):
                        return draw(seed)
                    """,
            },
        )
        assert "DHS803" in codes

    def test_rng_passed_to_rng_parameter_clean(self, tmp_path):
        codes = dataflow_codes(
            tmp_path,
            {
                "repro/sim/helper.py": """
                    def draw(rng):
                        return rng.random()
                    """,
                "repro/experiments/use.py": """
                    from repro.sim.helper import draw
                    from repro.sim.seeds import rng_for

                    def run(seed):
                        return draw(rng_for(seed, "use"))
                    """,
            },
        )
        assert [c for c in codes if c.startswith("DHS80")] == []

    def test_seed_module_is_exempt(self, tmp_path):
        codes = dataflow_codes(
            tmp_path,
            {
                "repro/sim/seeds.py": """
                    import random

                    def rng_for(seed, label):
                        return random.Random(hash((seed, label)))
                    """,
            },
        )
        assert [c for c in codes if c.startswith("DHS80")] == []


# ----------------------------------------------------------------------
# Worker shared-state writes (DHS811–DHS813)
# ----------------------------------------------------------------------
class TestSharedState:
    def test_global_write_in_worker_cell(self, tmp_path):
        codes = dataflow_codes(
            tmp_path,
            {
                "repro/experiments/exp.py": """
                    from repro.sim.parallel import TrialSpec

                    TOTALS = {}

                    def _cell(seed):
                        TOTALS["runs"] = 1
                        return 0

                    def main():
                        return TrialSpec(fn=_cell, seed=1)
                    """,
            },
        )
        assert "DHS811" in codes

    def test_global_write_outside_worker_path_not_811(self, tmp_path):
        codes = dataflow_codes(
            tmp_path,
            {
                "repro/experiments/exp.py": """
                    TOTALS = {}

                    def untracked(seed):
                        TOTALS["runs"] = 1
                        return 0
                    """,
            },
        )
        assert "DHS811" not in codes

    def test_out_of_api_store_write(self, tmp_path):
        codes = dataflow_codes(
            tmp_path,
            {
                "repro/experiments/exp.py": """
                    from repro.sim.parallel import TrialSpec

                    def _cell(seed, node):
                        node.store["k"] = 1
                        return 0

                    def main():
                        return TrialSpec(fn=_cell, seed=1)
                    """,
            },
        )
        assert "DHS812" in codes

    def test_store_callback_pattern_is_sanctioned(self, tmp_path):
        codes = dataflow_codes(
            tmp_path,
            {
                "repro/experiments/exp.py": """
                    from repro.sim.parallel import TrialSpec

                    def _cell(seed, dht, key):
                        def write(node):
                            node.store[key] = 1

                        dht.store(key, write)
                        return 0

                    def main():
                        return TrialSpec(fn=_cell, seed=1)
                    """,
            },
        )
        assert "DHS812" not in codes

    def test_overlay_owns_store_writes(self, tmp_path):
        codes = dataflow_codes(
            tmp_path,
            {
                "repro/overlay/dht.py": """
                    from repro.sim.parallel import TrialSpec

                    def _cell(seed, node):
                        node.store["k"] = 1
                        return 0

                    def main():
                        return TrialSpec(fn=_cell, seed=1)
                    """,
            },
        )
        assert "DHS812" not in codes

    def test_obs_internals_mutation(self, tmp_path):
        codes = dataflow_codes(
            tmp_path,
            {
                "repro/obs/runtime.py": "METRICS = {}\n",
                "repro/experiments/exp.py": """
                    from repro.sim.parallel import TrialSpec
                    from repro.obs.runtime import METRICS

                    def _cell(seed):
                        METRICS["draws"] = 1
                        return 0

                    def main():
                        return TrialSpec(fn=_cell, seed=1)
                    """,
            },
        )
        assert "DHS813" in codes

    def test_roots_flow_through_call_graph(self, tmp_path):
        # The defect sits two hops below the TrialSpec entry point.
        codes = dataflow_codes(
            tmp_path,
            {
                "repro/experiments/exp.py": """
                    from repro.sim.parallel import TrialSpec

                    COUNTS = {}

                    def _leaf():
                        COUNTS["n"] = 1

                    def _mid():
                        _leaf()

                    def _cell(seed):
                        _mid()
                        return 0

                    def main():
                        return TrialSpec(fn=_cell, seed=1)
                    """,
            },
        )
        assert "DHS811" in codes


# ----------------------------------------------------------------------
# Purity (DHS821–DHS822)
# ----------------------------------------------------------------------
PURITY_BASE = {
    "repro/sketches/base.py": """
        class Sketch:
            def __init__(self):
                self.regs = []

            def copy(self):
                return Sketch()

            def merge(self, other):
                self.regs.append(other)
        """,
}


class TestPurity:
    def test_direct_param_mutation_in_merge_module(self, tmp_path):
        codes = dataflow_codes(
            tmp_path,
            {
                "repro/sketches/merge.py": """
                    def union_into(target, other):
                        target.regs.update(other.regs)
                        return target
                    """,
            },
        )
        assert "DHS821" in codes

    def test_chain_impurity_with_witness(self, tmp_path):
        pkg = make_package(
            tmp_path,
            {
                **PURITY_BASE,
                "repro/sketches/merge.py": """
                    from repro.sketches.base import Sketch

                    def union_bad(first: Sketch, rest):
                        first.merge(rest)
                        return first
                    """,
            },
        )
        report = analyze_paths([pkg], Config(), dataflow=True)
        chain = [v for v in report.violations if v.code == "DHS822"]
        assert chain, [v.code for v in report.violations]
        assert "Sketch.merge" in chain[0].message

    def test_fresh_local_mutation_is_pure(self, tmp_path):
        codes = dataflow_codes(
            tmp_path,
            {
                **PURITY_BASE,
                "repro/sketches/merge.py": """
                    from repro.sketches.base import Sketch

                    def union_all(first: Sketch, rest):
                        result = Sketch()
                        result.merge(first)
                        for sketch in rest:
                            result.merge(sketch)
                        return result
                    """,
            },
        )
        assert [c for c in codes if c.startswith("DHS82")] == []

    def test_estimator_method_mutating_self(self, tmp_path):
        codes = dataflow_codes(
            tmp_path,
            {
                "repro/sketches/flaky.py": """
                    class Flaky:
                        def __init__(self):
                            self.calls = 0

                        def estimate(self):
                            self.calls += 1
                            return 1.0
                    """,
            },
        )
        assert "DHS821" in codes

    def test_io_in_required_module(self, tmp_path):
        codes = dataflow_codes(
            tmp_path,
            {
                "repro/sketches/setops.py": """
                    def estimate_union(a, b):
                        print("estimating")
                        return 0.0
                    """,
            },
        )
        assert "DHS821" in codes

    def test_pure_reads_stay_clean(self, tmp_path):
        codes = dataflow_codes(
            tmp_path,
            {
                **PURITY_BASE,
                "repro/sketches/setops.py": """
                    from repro.sketches.base import Sketch

                    def estimate_intersection(a: Sketch, b: Sketch):
                        return len(a.regs) + len(b.regs)
                    """,
            },
        )
        assert [c for c in codes if c.startswith("DHS82")] == []


# ----------------------------------------------------------------------
# Waivers
# ----------------------------------------------------------------------
WORKER_GLOBAL_WRITE = {
    "repro/experiments/exp.py": """
        from repro.sim.parallel import TrialSpec

        TOTALS = {}

        def _cell(seed):
            TOTALS["runs"] = 1
            return 0

        def main():
            return TrialSpec(fn=_cell, seed=1)
        """,
}


class TestWaivers:
    def _waiver_file(self, tmp_path: Path, body: str) -> Path:
        path = tmp_path / ".dhslint-waivers"
        path.write_text(textwrap.dedent(body))
        return path

    def test_active_waiver_moves_violation_aside(self, tmp_path):
        pkg = make_package(tmp_path, dict(WORKER_GLOBAL_WRITE))
        waivers = load_waivers(
            self._waiver_file(
                tmp_path,
                """
                # tracking issue #42
                DHS811  experiments/exp.py  expires=2099-01-01  migrating to snapshot merge
                """,
            )
        )
        report = analyze_paths([pkg], Config(), dataflow=True, waivers=waivers)
        assert "DHS811" not in [v.code for v in report.violations]
        assert [v.code for v in report.waived] == ["DHS811"]
        assert report.waiver_errors == []

    def test_expired_waiver_resurfaces(self, tmp_path):
        pkg = make_package(tmp_path, dict(WORKER_GLOBAL_WRITE))
        waivers = load_waivers(
            self._waiver_file(
                tmp_path,
                "DHS811  experiments/exp.py  expires=2020-01-01  old excuse\n",
            )
        )
        report = analyze_paths([pkg], Config(), dataflow=True, waivers=waivers)
        assert "DHS811" in [v.code for v in report.violations]
        assert any("expired" in problem for problem in report.waiver_errors)

    def test_waiver_without_reason_is_a_problem(self, tmp_path):
        waivers = load_waivers(
            self._waiver_file(tmp_path, "DHS811  exp.py  expires=2099-01-01\n")
        )
        assert waivers.waivers == []
        assert any("justification" in p for p in waivers.problems)

    def test_waiver_without_expiry_is_a_problem(self, tmp_path):
        waivers = load_waivers(
            self._waiver_file(tmp_path, "DHS811  exp.py  some reason here\n")
        )
        assert waivers.waivers == []
        assert any("expires" in p for p in waivers.problems)

    def test_line_pinning(self, tmp_path):
        waiver = load_waivers(
            self._waiver_file(
                tmp_path,
                "DHS811  exp.py  expires=2099-01-01  line=7  pinned reason\n",
            ),
            today=datetime.date(2026, 1, 1),
        ).waivers[0]
        hit = Violation(code="DHS811", message="m", path="x/exp.py", line=7, col=0)
        miss = Violation(code="DHS811", message="m", path="x/exp.py", line=9, col=0)
        assert waiver.covers(hit)
        assert not waiver.covers(miss)


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
class TestCache:
    def test_second_run_hits_for_unchanged_files(self, tmp_path):
        pkg = make_package(
            tmp_path, {"repro/sim/mod.py": "def f():\n    return 1\n"}
        )
        cache_path = tmp_path / "cache.json"
        config = Config()
        first = analyze_paths([pkg], config, cache=AnalysisCache(cache_path, config))
        assert first.cache_hits == 0 and first.cache_misses > 0
        second = analyze_paths([pkg], config, cache=AnalysisCache(cache_path, config))
        assert second.cache_misses == 0
        assert second.cache_hits == first.cache_misses
        assert [v.code for v in second.violations] == [
            v.code for v in first.violations
        ]

    def test_content_change_invalidates_one_file(self, tmp_path):
        pkg = make_package(
            tmp_path,
            {
                "repro/sim/a.py": "def f():\n    return 1\n",
                "repro/sim/b.py": "def g():\n    return 2\n",
            },
        )
        cache_path = tmp_path / "cache.json"
        config = Config()
        analyze_paths([pkg], config, cache=AnalysisCache(cache_path, config))
        (pkg / "sim" / "a.py").write_text("import time\nx = time.time()\n")
        rerun = analyze_paths([pkg], config, cache=AnalysisCache(cache_path, config))
        assert rerun.cache_misses == 1
        assert "DHS102" in [v.code for v in rerun.violations]

    def test_config_change_invalidates_everything(self, tmp_path):
        pkg = make_package(
            tmp_path, {"repro/sim/mod.py": "def f():\n    return 1\n"}
        )
        cache_path = tmp_path / "cache.json"
        analyze_paths([pkg], Config(), cache=AnalysisCache(cache_path, Config()))
        changed = Config(disable=("DHS101",))
        rerun = analyze_paths([pkg], changed, cache=AnalysisCache(cache_path, changed))
        assert rerun.cache_hits == 0

    def test_cached_violations_round_trip(self, tmp_path):
        pkg = make_package(
            tmp_path, {"repro/sim/mod.py": "import time\nx = time.time()\n"}
        )
        cache_path = tmp_path / "cache.json"
        config = Config()
        first = analyze_paths([pkg], config, cache=AnalysisCache(cache_path, config))
        second = analyze_paths([pkg], config, cache=AnalysisCache(cache_path, config))
        assert second.cache_hits > 0
        assert [v.render() for v in second.violations] == [
            v.render() for v in first.violations
        ]
        assert json.loads(cache_path.read_text())["files"]


# ----------------------------------------------------------------------
# Suppression anchoring over multi-line statements
# ----------------------------------------------------------------------
class TestSuppressionSpans:
    def lint(self, tmp_path: Path, source: str):
        path = tmp_path / "snippet.py"
        path.write_text(textwrap.dedent(source))
        violations, suppressed = analyze_file(path, Config(), module=None)
        return [v.code for v in violations], suppressed

    def test_comment_on_first_line_covers_continuations(self, tmp_path):
        codes, suppressed = self.lint(
            tmp_path,
            """
            import time

            now = (  # dhslint: disable=DHS102
                time.time()
            )
            """,
        )
        assert codes == []
        assert suppressed == 1

    def test_comment_on_continuation_line_covers_whole_statement(self, tmp_path):
        codes, suppressed = self.lint(
            tmp_path,
            """
            import time

            pair = (
                time.time(),
                1,  # dhslint: disable=DHS102
            )
            """,
        )
        assert codes == []
        assert suppressed == 1

    def test_decorator_comment_does_not_blanket_the_body(self, tmp_path):
        codes, _ = self.lint(
            tmp_path,
            """
            import functools
            import time

            @functools.wraps(print)  # dhslint: disable=DHS102
            def f():
                return time.time()
            """,
        )
        assert codes == ["DHS102"]


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-q"]))
