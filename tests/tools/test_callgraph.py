"""Call-graph builder tests: golden expected-edge lists over fixture trees.

Each fixture materializes a miniature ``repro`` package and asserts the
exact edges the builder resolves — import aliasing, ``__init__``
re-exports (``__all__``), constructor calls, self-dispatch with subclass
overrides, conservative ``DHTProtocol`` fan-out, and cycles.
"""

from __future__ import annotations

import ast
import sys
import textwrap
from pathlib import Path
from typing import Dict, List, Tuple

import pytest

from tools.analyze import Config, FileContext
from tools.analyze.engine import resolve_module
from tools.analyze.dataflow.callgraph import CallGraph, build_callgraph
from tools.analyze.dataflow.symbols import SymbolTable, build_symbols


def make_package(root: Path, files: Dict[str, str]) -> Path:
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        for ancestor in path.relative_to(root).parents:
            if str(ancestor) != ".":
                (root / ancestor / "__init__.py").touch()
        path.write_text(textwrap.dedent(body))
    return root / "repro"


def build(
    tmp_path: Path, files: Dict[str, str], config: Config | None = None
) -> Tuple[SymbolTable, CallGraph]:
    make_package(tmp_path, files)
    config = config or Config()
    contexts: List[FileContext] = []
    for path in sorted(tmp_path.rglob("*.py")):
        source = path.read_text()
        contexts.append(
            FileContext(
                path=path,
                source=source,
                tree=ast.parse(source),
                config=config,
                module=resolve_module(path),
            )
        )
    symbols = build_symbols(contexts)
    return symbols, build_callgraph(symbols, config)


class TestImportAliasing:
    def test_all_alias_forms_resolve_to_the_same_edge(self, tmp_path):
        _, graph = build(
            tmp_path,
            {
                "repro/util/helpers.py": "def work():\n    return 1\n",
                "repro/a.py": (
                    "import repro.util.helpers as h\n"
                    "def f():\n    return h.work()\n"
                ),
                "repro/b.py": (
                    "from repro.util import helpers as hh\n"
                    "def g():\n    return hh.work()\n"
                ),
                "repro/c.py": (
                    "from repro.util.helpers import work as w\n"
                    "def k():\n    return w()\n"
                ),
            },
        )
        assert graph.edge_list() == [
            ("repro.a.f", "repro.util.helpers.work"),
            ("repro.b.g", "repro.util.helpers.work"),
            ("repro.c.k", "repro.util.helpers.work"),
        ]

    def test_plain_import_binds_head_name(self, tmp_path):
        _, graph = build(
            tmp_path,
            {
                "repro/util/helpers.py": "def work():\n    return 1\n",
                "repro/d.py": (
                    "import repro.util.helpers\n"
                    "def f():\n    return repro.util.helpers.work()\n"
                ),
            },
        )
        assert ("repro.d.f", "repro.util.helpers.work") in graph.edge_list()


class TestReExports:
    def test_dunder_all_reexport_canonicalizes(self, tmp_path):
        _, graph = build(
            tmp_path,
            {
                "repro/sketches/merge.py": "def union_all(xs):\n    return xs\n",
                "repro/sketches/__init__.py": (
                    "from repro.sketches.merge import union_all\n"
                    '__all__ = ["union_all"]\n'
                ),
                "repro/consumer.py": (
                    "from repro.sketches import union_all\n"
                    "def f(xs):\n    return union_all(xs)\n"
                ),
            },
        )
        assert graph.edge_list() == [
            ("repro.consumer.f", "repro.sketches.merge.union_all"),
        ]

    def test_relative_reexport_chain(self, tmp_path):
        _, graph = build(
            tmp_path,
            {
                "repro/sketches/merge.py": "def union_all(xs):\n    return xs\n",
                "repro/sketches/__init__.py": "from .merge import union_all\n",
                "repro/consumer.py": (
                    "import repro.sketches as sk\n"
                    "def f(xs):\n    return sk.union_all(xs)\n"
                ),
            },
        )
        assert graph.edge_list() == [
            ("repro.consumer.f", "repro.sketches.merge.union_all"),
        ]


class TestMethodsAndDispatch:
    FILES = {
        "repro/overlay/dht.py": """
            class DHTProtocol:
                def lookup(self, key):
                    raise NotImplementedError
                def route(self, key):
                    return self.lookup(key)
            """,
        "repro/overlay/chord.py": """
            from repro.overlay.dht import DHTProtocol

            class ChordRing(DHTProtocol):
                def __init__(self):
                    self.nodes = []
                def lookup(self, key):
                    return key
            """,
        "repro/query/q.py": """
            def run(d, key):
                return d.lookup(key)
            """,
    }

    def test_self_call_fans_out_to_overrides(self, tmp_path):
        _, graph = build(tmp_path, dict(self.FILES))
        callees = set(graph.callees("repro.overlay.dht.DHTProtocol.route"))
        assert callees == {
            "repro.overlay.dht.DHTProtocol.lookup",
            "repro.overlay.chord.ChordRing.lookup",
        }

    def test_untyped_receiver_uses_dispatch_roots(self, tmp_path):
        _, graph = build(tmp_path, dict(self.FILES))
        callees = set(graph.callees("repro.query.q.run"))
        assert callees == {
            "repro.overlay.dht.DHTProtocol.lookup",
            "repro.overlay.chord.ChordRing.lookup",
        }

    def test_dispatch_respects_configured_roots(self, tmp_path):
        config = Config(dispatch_roots=())
        _, graph = build(tmp_path, dict(self.FILES), config=config)
        assert graph.callees("repro.query.q.run") == {}

    def test_annotated_receiver_resolves_precisely(self, tmp_path):
        files = dict(self.FILES)
        files["repro/query/typed.py"] = """
            from repro.overlay.chord import ChordRing

            def run(ring: ChordRing, key):
                return ring.lookup(key)
            """
        _, graph = build(tmp_path, files)
        callees = set(graph.callees("repro.query.typed.run"))
        assert callees == {"repro.overlay.chord.ChordRing.lookup"}

    def test_constructor_edge_and_local_type(self, tmp_path):
        files = dict(self.FILES)
        files["repro/query/build.py"] = """
            from repro.overlay.chord import ChordRing

            def make(key):
                ring = ChordRing()
                return ring.lookup(key)
            """
        _, graph = build(tmp_path, files)
        callees = set(graph.callees("repro.query.build.make"))
        assert callees == {
            "repro.overlay.chord.ChordRing.__init__",
            "repro.overlay.chord.ChordRing.lookup",
        }


class TestCycles:
    def test_mutual_recursion_edges_and_reachability(self, tmp_path):
        _, graph = build(
            tmp_path,
            {
                "repro/m.py": """
                    def even(n):
                        return n == 0 or odd(n - 1)

                    def odd(n):
                        return n != 0 and even(n - 1)
                    """,
            },
        )
        assert graph.edge_list() == [
            ("repro.m.even", "repro.m.odd"),
            ("repro.m.odd", "repro.m.even"),
        ]
        # Closure over a cycle terminates and contains both ends.
        assert graph.reachable({"repro.m.even"}) == {
            "repro.m.even",
            "repro.m.odd",
        }


class TestEdgeMetadata:
    def test_first_call_site_is_recorded(self, tmp_path):
        _, graph = build(
            tmp_path,
            {
                "repro/m.py": """
                    def callee():
                        return 1

                    def caller():
                        callee()
                        return callee()
                    """,
            },
        )
        line, _col = graph.callees("repro.m.caller")["repro.m.callee"]
        # Fixture bodies keep their leading newline, so ``def callee`` sits
        # on line 2 and the first of the two call sites on line 6.
        assert line == 6


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-q"]))
